"""Figures 2 and 3: SKU performance projection and its error.

Figure 2: per-suite performance of SKU1-4 normalized to SKU1, for
production workloads, DCPerf, SPEC 2006, and SPEC 2017.  Figure 3:
each suite's projection error relative to production.

Shape criteria (the paper's decision-relevant claims):
* DCPerf tracks production within a few percent at every SKU;
* both SPEC generations overestimate the many-core SKU4, SPEC 2017
  worse than SPEC 2006;
* the orderings production <= dcperf < spec2006 < spec2017 hold at
  SKU4.
"""

from repro.analysis.fidelity import projection_errors
from repro.analysis.tables import series_table
from repro.workloads.targets import FIG2_SKU_PERFORMANCE, FIG3_PROJECTION_ERROR

from conftest import X86_SKUS


def test_fig2_sku_performance(benchmark, suite_scores):
    scores = benchmark.pedantic(lambda: suite_scores, rounds=1, iterations=1)
    print("\n=== Figure 2: performance normalized to SKU1 ===")
    print(series_table(X86_SKUS, scores))
    print("\n--- paper values ---")
    print(series_table(X86_SKUS, FIG2_SKU_PERFORMANCE))

    for suite, values in scores.items():
        paper = FIG2_SKU_PERFORMANCE[suite]
        assert values[0] == 1.0 or abs(values[0] - 1.0) < 1e-9
        # Every point within 15% of the published ratio.
        for measured, published in zip(values, paper):
            assert abs(measured - published) / published < 0.15, (
                f"{suite}: {measured:.2f} vs paper {published:.2f}"
            )

    # SKU4 ordering: production <= dcperf < spec2006 < spec2017.
    sku4 = {suite: values[3] for suite, values in scores.items()}
    assert sku4["production"] <= sku4["dcperf"] * 1.02
    assert sku4["dcperf"] < sku4["spec2006"]
    assert sku4["spec2006"] < sku4["spec2017"]


def test_fig3_projection_error(benchmark, suite_scores):
    def compute():
        prod = suite_scores["production"]
        return {
            suite: projection_errors(suite_scores[suite], prod)
            for suite in ("dcperf", "spec2006", "spec2017")
        }

    errors = benchmark.pedantic(compute, rounds=1, iterations=1)
    print("\n=== Figure 3: projection error vs production (%) ===")
    print(
        series_table(
            X86_SKUS,
            {k: [e * 100 for e in v] for k, v in errors.items()},
            value_format="{:+.1f}",
        )
    )
    print("\n--- paper values (%) ---")
    print(series_table(["SKU1", "SKU2", "SKU3", "SKU4"], FIG3_PROJECTION_ERROR,
                       value_format="{:+.1f}"))

    # DCPerf's error stays single-digit at every SKU (paper: <= 3.3%).
    for error in errors["dcperf"]:
        assert abs(error) < 0.08
    # SPEC overestimates the 176-core SKU far more than DCPerf does.
    assert errors["spec2017"][3] > errors["dcperf"][3] + 0.08
    assert errors["spec2006"][3] > errors["dcperf"][3] + 0.04
    # And SPEC 2017 is *worse* than the older SPEC 2006 (the paper's
    # counterintuitive finding).
    assert errors["spec2017"][3] > errors["spec2006"][3]
