"""Table 1: workload categories and their structural characteristics.

Regenerates the table's rows (metric, request-time scale, peak CPU
utilization, thread-to-core ratio, per-server RPS, RPC fanout,
instructions per request) from the workload models and checks each is
within the published order of magnitude.
"""

import math

from repro.core.report import format_table
from repro.workloads.profiles import BENCHMARK_PROFILES
from repro.workloads.registry import get_workload
from repro.workloads.targets import TABLE1_STRUCTURE


def build_table1(quick_run):
    rows = []
    for category, spec in TABLE1_STRUCTURE.items():
        for bench in spec["benchmarks"]:
            chars = BENCHMARK_PROFILES[bench]
            result = quick_run(bench)
            rows.append(
                {
                    "category": category,
                    "benchmark": bench,
                    "metric": get_workload(bench).metric_name,
                    "peak_cpu_util": result.cpu_util,
                    "thread_core_ratio": chars.thread_core_ratio,
                    "per_server_rps": result.throughput_rps,
                    "rpc_fanout": chars.rpc_fanout,
                    "instr_per_request": chars.instructions_per_request,
                }
            )
    return rows


def same_order_of_magnitude(value, reference, slack=1.2):
    if reference == 0:
        return value == 0
    return abs(math.log10(value / reference)) <= slack


def test_table1_workload_structure(benchmark, quick_run):
    rows = benchmark.pedantic(
        lambda: build_table1(quick_run), rounds=1, iterations=1
    )
    print("\n=== Table 1: workloads modeled in DCPerf ===")
    print(
        format_table(
            ["category", "benchmark", "util", "t/c", "rps", "fanout", "instr/req"],
            [
                [
                    r["category"], r["benchmark"], f"{r['peak_cpu_util']:.0%}",
                    r["thread_core_ratio"], f"{r['per_server_rps']:.3g}",
                    r["rpc_fanout"], f"{r['instr_per_request']:.1g}",
                ]
                for r in rows
            ],
        )
    )

    by_bench = {r["benchmark"]: r for r in rows}
    # Caching: RPS N(1M), requests of N(1K)-N(10K) instructions.
    assert same_order_of_magnitude(
        by_bench["taobench"]["per_server_rps"], 1_000_000
    )
    # Web: RPS N(1K)-ish; ranking N(100); media/bigdata task-scale.
    assert same_order_of_magnitude(by_bench["mediawiki"]["per_server_rps"], 1_000)
    assert same_order_of_magnitude(by_bench["feedsim"]["per_server_rps"], 100)
    # Peak utilization bands per category.
    assert by_bench["mediawiki"]["peak_cpu_util"] > 0.90
    assert by_bench["videotranscode"]["peak_cpu_util"] > 0.93
    assert 0.4 < by_bench["feedsim"]["peak_cpu_util"] < 0.9
    # Fanout: media has none; web has the largest.
    assert by_bench["videotranscode"]["rpc_fanout"] == 0
    assert by_bench["mediawiki"]["rpc_fanout"] > by_bench["taobench"]["rpc_fanout"]
