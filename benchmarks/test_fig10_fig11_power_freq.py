"""Figures 10 and 11: power breakdown and core frequency.

Figure 10 shape criteria: prod/DCPerf total power exceeds SPEC's;
DCPerf under-represents the "other" (platform) component relative to
production; the three VideoBench quality settings draw increasing core
power.  Figure 11: prod/DCPerf frequencies sit below SPEC's, with
Spark lowest.
"""

from repro.core.report import format_table
from repro.hw.sku import get_sku
from repro.uarch.projection import ProjectionEngine
from repro.workloads.profiles import (
    BENCHMARK_PROFILES,
    PRODUCTION_PROFILES,
    SPEC2017_PROFILES,
)
from repro.workloads.targets import (
    BENCHMARK_TARGETS,
    FIG10_POWER,
    PRODUCTION_TARGETS,
    SPEC2017_TARGETS,
)
from repro.workloads.videotranscode import VideoTranscodeBench

from conftest import FIDELITY_PAIRS


def _power_rows(fidelity_states):
    rows = {}
    for prod, bench in FIDELITY_PAIRS:
        for name in (prod, bench):
            rows[name] = fidelity_states[name].power
    for name in SPEC2017_PROFILES:
        rows[name] = fidelity_states[name].power
    # VideoBench quality settings 1-3 (Figure 10's three video pairs).
    engine = ProjectionEngine(get_sku("SKU2"))
    for quality in (1, 2, 3):
        chars = VideoTranscodeBench(quality=quality).characteristics
        rows[f"videobench{quality}"] = engine.solve(chars, cpu_util=0.97).power
    return rows


def test_fig10_power_breakdown(benchmark, fidelity_states):
    rows = benchmark.pedantic(
        lambda: _power_rows(fidelity_states), rounds=1, iterations=1
    )
    print("\n=== Figure 10: power as % of designed power ===")
    print(
        format_table(
            ["workload", "core", "soc", "dram", "other", "total"],
            [
                [n, f"{p.core:.0%}", f"{p.soc:.0%}", f"{p.dram:.0%}",
                 f"{p.other:.0%}", f"{p.total:.0%}"]
                for n, p in rows.items()
            ],
        )
    )
    prod_names = [p for p, _ in FIDELITY_PAIRS]
    bench_names = [b for _, b in FIDELITY_PAIRS]
    avg = lambda names, attr: sum(getattr(rows[n], attr) for n in names) / len(names)

    prod_total = avg(prod_names, "total")
    dcperf_total = avg(bench_names, "total")
    spec_total = avg(list(SPEC2017_PROFILES), "total")
    print(f"\naverages: prod {prod_total:.0%}, dcperf {dcperf_total:.0%}, "
          f"spec {spec_total:.0%}  (paper: 87% / 84% / 78%)")

    # Ordering: production > DCPerf > SPEC total power.
    assert prod_total > dcperf_total > spec_total
    assert abs(prod_total - 0.87) < 0.08
    assert abs(spec_total - 0.78) < 0.08
    # DCPerf under-represents the platform ("other") component.
    assert avg(bench_names, "other") < avg(prod_names, "other") - 0.03
    # Video quality settings: more vectors -> lower freq but the heavier
    # encode raises total draw monotonically in the paper's data.
    videos = [rows[f"videobench{q}"] for q in (1, 2, 3)]
    assert videos[0].total != videos[2].total  # settings distinguishable


def test_fig11_core_frequency(benchmark, fidelity_states):
    def compute():
        out = {}
        for prod, bench in FIDELITY_PAIRS:
            for name in (prod, bench):
                out[name] = fidelity_states[name].effective_freq_ghz
        for name in SPEC2017_PROFILES:
            out[name] = fidelity_states[name].effective_freq_ghz
        return out

    freq = benchmark.pedantic(compute, rounds=1, iterations=1)
    targets = {**PRODUCTION_TARGETS, **BENCHMARK_TARGETS, **SPEC2017_TARGETS}
    print("\n=== Figure 11: effective core frequency (GHz) ===")
    print(
        format_table(
            ["workload", "GHz", "paper"],
            [[n, f"{v:.2f}", f"{targets[n].freq_ghz:.2f}"] for n, v in freq.items()],
        )
    )
    dc_names = [n for pair in FIDELITY_PAIRS for n in pair]
    dc_avg = sum(freq[n] for n in dc_names) / len(dc_names)
    spec_avg = sum(freq[n] for n in SPEC2017_PROFILES) / len(SPEC2017_PROFILES)
    print(f"\naverages: datacenter {dc_avg:.2f} GHz, SPEC {spec_avg:.2f} GHz "
          f"(paper: 1.93 vs 2.12)")
    # SPEC runs measurably faster clocks.
    assert spec_avg > dc_avg + 0.10
    # Spark is the slowest-clocked DCPerf workload (vector throttling).
    assert freq["sparkbench"] == min(freq[n] for _, n in FIDELITY_PAIRS)
    # Per-workload agreement.
    for name, value in freq.items():
        assert abs(value - targets[name].freq_ghz) < 0.12, name
