"""Figures 6, 7, 8: IPC, memory bandwidth, and L1I MPKI on SKU2.

Shape criteria per figure:
* Fig. 6 — prod/DCPerf IPC lies in a narrow 1.0-2.9 band while SPEC
  spans a much wider 0.5-3.5 range; Spark has the highest DCPerf IPC.
* Fig. 7 — prod/DCPerf bandwidth clusters around ~30% of system peak;
  SPEC spans near-zero (exchange2) to ~70% (mcf).  TaoBench
  under-consumes vs the cache production workload (the paper's flagged
  gap).
* Fig. 8 — prod/DCPerf L1I MPKI is 7-60; SPEC is uniformly below 10.
"""

from repro.core.report import format_table
from repro.hw.sku import get_sku
from repro.workloads.profiles import SPEC2017_PROFILES
from repro.workloads.targets import BENCHMARK_TARGETS, PRODUCTION_TARGETS, SPEC2017_TARGETS

from conftest import FIDELITY_PAIRS


def _dc_names():
    out = []
    for prod, bench in FIDELITY_PAIRS:
        out += [prod, bench]
    return out


def test_fig6_ipc_per_physical_core(benchmark, fidelity_states):
    def compute():
        return {
            name: fidelity_states[name].ipc_per_physical_core
            for name in _dc_names() + list(SPEC2017_PROFILES)
        }

    ipc = benchmark.pedantic(compute, rounds=1, iterations=1)
    targets = {**PRODUCTION_TARGETS, **BENCHMARK_TARGETS, **SPEC2017_TARGETS}
    print("\n=== Figure 6: IPC per physical core (SMT on) ===")
    print(
        format_table(
            ["workload", "ipc", "paper"],
            [[n, f"{v:.2f}", f"{targets[n].ipc:.1f}"] for n, v in ipc.items()],
        )
    )
    dc_values = [ipc[n] for n in _dc_names()]
    spec_values = [ipc[n] for n in SPEC2017_PROFILES]
    # Narrow datacenter band vs wide SPEC range.
    assert max(dc_values) - min(dc_values) < max(spec_values) - min(spec_values)
    assert min(spec_values) < 0.9
    assert max(spec_values) > 2.7
    # Per-workload agreement with the published values.
    for name, value in ipc.items():
        assert abs(value - targets[name].ipc) / targets[name].ipc < 0.30, name
    # Spark leads DCPerf IPC.
    assert ipc["sparkbench"] == max(ipc[n] for _, n in FIDELITY_PAIRS)


def test_fig7_memory_bandwidth(benchmark, fidelity_states):
    def compute():
        return {
            name: fidelity_states[name].memory_bandwidth_gbps
            for name in _dc_names() + list(SPEC2017_PROFILES)
        }

    bw = benchmark.pedantic(compute, rounds=1, iterations=1)
    peak = get_sku("SKU2").memory.peak_bw_gbps
    targets = {**PRODUCTION_TARGETS, **BENCHMARK_TARGETS, **SPEC2017_TARGETS}
    print(f"\n=== Figure 7: memory bandwidth (GB/s; system peak {peak:.0f}) ===")
    print(
        format_table(
            ["workload", "GB/s", "paper"],
            [[n, f"{v:.1f}", f"{targets[n].membw_gbps:.1f}"] for n, v in bw.items()],
        )
    )
    dc_values = [bw[n] for n in _dc_names()]
    # Datacenter cluster: roughly 15-40 GB/s (~30% of peak).
    assert all(10 < v < 0.5 * peak for v in dc_values)
    # SPEC extremes on both sides.
    spec_values = [bw[n] for n in SPEC2017_PROFILES]
    assert min(spec_values) < 2
    assert max(spec_values) > 0.55 * peak
    # The paper's flagged gap: TaoBench's working set is too small.
    assert bw["taobench"] < 0.75 * bw["cache-prod"]


def test_fig8_l1i_mpki(benchmark, fidelity_states):
    def compute():
        return {
            name: fidelity_states[name].misses.l1i_mpki
            for name in _dc_names() + list(SPEC2017_PROFILES)
        }

    mpki = benchmark.pedantic(compute, rounds=1, iterations=1)
    targets = {**PRODUCTION_TARGETS, **BENCHMARK_TARGETS, **SPEC2017_TARGETS}
    print("\n=== Figure 8: L1 I-cache MPKI ===")
    print(
        format_table(
            ["workload", "mpki", "paper"],
            [[n, f"{v:.1f}", f"{targets[n].l1i_mpki:.0f}"] for n, v in mpki.items()],
        )
    )
    # SPEC's instruction working sets are tiny.
    for name in SPEC2017_PROFILES:
        assert mpki[name] < 10, name
    # Web + caching exceed 25 MPKI; spark is low but above SPEC.
    for name in ("cache-prod", "taobench", "igweb-prod", "fbweb-prod"):
        assert mpki[name] > 30, name
    assert mpki["sparkbench"] < 20
    # Per-workload agreement with the published values.
    for name, value in mpki.items():
        assert abs(value - targets[name].l1i_mpki) <= max(
            3.0, 0.2 * targets[name].l1i_mpki
        ), name
