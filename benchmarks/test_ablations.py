"""Ablation studies for the design choices DESIGN.md calls out.

1. Read-through vs look-aside caching (Section 2.2's fidelity
   argument): the read-through server absorbs the miss path, so its
   server-side work per request is higher and its hit/miss dispatch is
   observable server-side — remove it and the benchmark stops looking
   like TAO.
2. Multi-instance deployment vs a single instance: without the
   instance split, the serialized slice caps many-core scaling far
   harder (the CloudSuite failure mode).
3. Datacenter-tax inclusion: stripping the tax from the profile lowers
   frontend pressure and inflates projected performance — the error
   SPEC-style benchmarks make.
"""

from repro.cachelib.memcached import MemcachedServer
from repro.cachelib.readthrough import LookAsideCache, ReadThroughCache
from repro.hw.sku import get_sku
from repro.sim.rng import RngStreams, ZipfSampler
from repro.uarch.projection import ProjectionEngine
from repro.workloads.base import RunConfig
from repro.workloads.mediawiki import MediaWiki
from repro.workloads.profiles import BENCHMARK_PROFILES
from repro.workloads.runner import InstanceSet


def drive_cache_policies(requests=4000):
    """Same key stream against both policies; compare server work."""
    zipf = ZipfSampler(20_000, 0.99)
    rng = RngStreams(7).stream("keys")
    keys = [f"k{zipf.sample(rng)}" for _ in range(requests)]

    read_through_server = MemcachedServer(capacity_bytes=512 * 1024)
    read_through = ReadThroughCache(
        read_through_server, backend=lambda k: k.encode() * 16
    )
    look_aside_server = MemcachedServer(capacity_bytes=512 * 1024)
    look_aside = LookAsideCache(look_aside_server)

    server_side_fills = 0
    client_side_fills = 0
    for key in keys:
        read_through.get(key)  # server fills on miss
    server_side_fills = read_through_server.stats()["cmd_set"]
    for key in keys:
        if look_aside.get(key) is None:
            look_aside.fill(key, key.encode() * 16)  # client fills
            client_side_fills += 1
    return {
        "read_through_hit_rate": read_through.stats.hit_rate,
        "look_aside_hit_rate": look_aside.stats.hit_rate,
        "server_side_fills": server_side_fills,
        "client_side_fills": client_side_fills,
    }


def test_ablation_cache_policy(benchmark):
    data = benchmark.pedantic(drive_cache_policies, rounds=1, iterations=1)
    print("\n=== Ablation: read-through vs look-aside ===")
    for key, value in data.items():
        print(f"  {key}: {value}")
    # Same traffic -> same hit rate; the difference is WHERE the miss
    # work happens.  Read-through performs every fill server-side.
    assert abs(
        data["read_through_hit_rate"] - data["look_aside_hit_rate"]
    ) < 0.02
    assert data["server_side_fills"] > 0
    assert data["server_side_fills"] >= data["client_side_fills"] * 0.95


def test_ablation_multi_instance_scaling(benchmark):
    """Remove the multi-instance split on the 176-core SKU and the
    serialized slice caps throughput, CloudSuite-style."""

    def compute():
        config = RunConfig(
            sku_name="SKU4", warmup_seconds=0.3, measure_seconds=0.8
        )
        multi = MediaWiki().run(config)

        # Monkeypatch-free single-instance variant: widen the instance
        # size so the whole machine shares one serialized slice.
        original = InstanceSet.CORES_PER_INSTANCE
        InstanceSet.CORES_PER_INSTANCE = 10_000
        try:
            single = MediaWiki().run(config)
        finally:
            InstanceSet.CORES_PER_INSTANCE = original
        return multi.throughput_rps, single.throughput_rps

    multi_rps, single_rps = benchmark.pedantic(compute, rounds=1, iterations=1)
    print("\n=== Ablation: multi-instance vs single instance on SKU4 ===")
    print(f"  multi-instance RPS:  {multi_rps:,.0f}")
    print(f"  single-instance RPS: {single_rps:,.0f}")
    assert single_rps < 0.6 * multi_rps


def test_ablation_datacenter_tax(benchmark):
    """Strip the tax (and the code footprint it brings) and projected
    per-core performance jumps — the overestimate SPEC makes."""

    def compute():
        engine = ProjectionEngine(get_sku("SKU2"))
        chars = BENCHMARK_PROFILES["mediawiki"]
        with_tax = engine.solve(chars, cpu_util=0.95)
        taxless = chars.evolve(
            name="mediawiki-taxless",
            tax_profile=chars.tax_profile.scaled_tax(0.0),
            code_footprint_kb=chars.code_footprint_kb * 0.25,
            frontend_extra_cpk=chars.frontend_extra_cpk * 0.25,
        )
        without_tax = engine.solve(taxless, cpu_util=0.95)
        return with_tax, without_tax

    with_tax, without_tax = benchmark.pedantic(compute, rounds=1, iterations=1)
    gain = without_tax.instructions_per_second / with_tax.instructions_per_second
    print("\n=== Ablation: datacenter-tax inclusion ===")
    print(f"  IPC with tax:    {with_tax.ipc_per_physical_core:.2f}")
    print(f"  IPC without tax: {without_tax.ipc_per_physical_core:.2f}")
    print(f"  projected speedup from dropping the tax: {gain:.2f}x")
    assert gain > 1.2
    assert without_tax.misses.l1i_mpki < with_tax.misses.l1i_mpki
