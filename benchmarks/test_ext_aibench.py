"""Extension experiment: AI-inference serving (the paper's future work).

Section 8 names AI workloads as DCPerf's next coverage target.  This
experiment characterizes the AIBench extension the way the paper
characterizes its six benchmarks: SLO-bound throughput across SKUs,
plus the microarchitecture signature that distinguishes recommendation
inference from every published workload — DRAM-bandwidth saturation
from embedding gathers with low IPC despite heavy vector compute.
"""

from repro.core.report import format_table
from repro.workloads.aibench import AiBench
from repro.workloads.base import RunConfig


def run_across_skus():
    out = {}
    for sku in ("SKU1", "SKU2", "SKU4"):
        config = RunConfig(
            sku_name=sku, warmup_seconds=0.3, measure_seconds=1.0
        )
        out[sku] = AiBench().run(config)
    return out


def test_ext_aibench_characterization(benchmark):
    results = benchmark.pedantic(run_across_skus, rounds=1, iterations=1)
    print("\n=== Extension: AIBench (recommendation inference) ===")
    print(
        format_table(
            ["sku", "inf/s", "p99 (s)", "cpu util", "membw frac", "ipc"],
            [
                [
                    sku,
                    f"{r.throughput_rps:,.0f}",
                    f"{r.extra['slo_p99_seconds']:.3f}",
                    f"{r.cpu_util:.0%}",
                    f"{r.steady.memory_bandwidth_fraction:.0%}",
                    f"{r.steady.ipc_per_physical_core:.2f}",
                ]
                for sku, r in results.items()
            ],
        )
    )

    # The DLRM signature: bandwidth-bound, low IPC.
    for sku, result in results.items():
        assert result.steady.memory_bandwidth_fraction > 0.6, sku
        assert result.steady.ipc_per_physical_core < 1.2, sku
        assert result.extra["slo_p99_seconds"] <= 0.100, sku
        # The correctness layer ran: real model outputs are sane.
        assert 0.0 < result.extra["validation_mean_ctr"] < 1.0

    # Bandwidth, not cores, limits SKU2 vs SKU1 (similar peak BW)...
    assert results["SKU2"].throughput_rps < 1.35 * results["SKU1"].throughput_rps
    # ...while SKU4's much larger memory system unlocks real scaling.
    assert results["SKU4"].throughput_rps > 2.2 * results["SKU1"].throughput_rps
