"""Tables 3 and 4: server SKU specifications.

Regenerates the spec tables from the SKU registry and checks the
published values are reproduced verbatim.
"""

from repro.core.report import format_table
from repro.hw.sku import get_sku, list_skus


def build_spec_tables():
    return [sku.spec_row() for sku in list_skus()]


def test_table3_and_4_sku_specs(benchmark):
    rows = benchmark.pedantic(build_spec_tables, rounds=1, iterations=1)
    print("\n=== Tables 3 & 4: server SKU specifications ===")
    print(
        format_table(
            ["sku", "cores", "ram", "net", "storage", "year", "l1i", "power"],
            [
                [
                    r["sku"], r["logical_cores"], r["ram_gb"], r["network_gbps"],
                    r["storage"], r["year"], r["l1i_kb"], r["server_power_w"],
                ]
                for r in rows
            ],
        )
    )
    # Table 3 published values.
    assert get_sku("SKU1").logical_cores == 36
    assert get_sku("SKU4").logical_cores == 176
    assert get_sku("SKU4").network_gbps == 50
    # Table 4 published values.
    assert get_sku("SKU-A").designed_power_w == 175
    assert get_sku("SKU-B").designed_power_w == 275
    a = get_sku("SKU-A").cpu.caches.l1i.size_kb
    b = get_sku("SKU-B").cpu.caches.l1i.size_kb
    assert a == 4 * b
