"""Shared fixtures for the figure/table reproduction harness.

Expensive computations (full suite sweeps across SKUs) run once per
session and are shared by every figure that needs them.
"""

from __future__ import annotations

import pytest

from repro.core.suite import DCPerfSuite
from repro.hw.sku import get_sku
from repro.uarch.projection import ProjectionEngine
from repro.workloads.base import RunConfig
from repro.workloads.profiles import BENCHMARK_PROFILES, PRODUCTION_PROFILES
from repro.workloads.spec import spec2006_suite, spec2017_suite
from repro.workloads.targets import BENCHMARK_TARGETS, PRODUCTION_TARGETS, SPEC2017_TARGETS

X86_SKUS = ["SKU1", "SKU2", "SKU3", "SKU4"]

#: Workload display order used throughout Figures 4-12 (prod, bench
#: pairs in the paper's left-to-right order).
FIDELITY_PAIRS = [
    ("cache-prod", "taobench"),
    ("ranking-prod", "feedsim"),
    ("igweb-prod", "djangobench"),
    ("fbweb-prod", "mediawiki"),
    ("spark-prod", "sparkbench"),
]


@pytest.fixture(scope="session")
def fidelity_states():
    """SteadyState per workload at its published SKU2 utilization."""
    engine = ProjectionEngine(get_sku("SKU2"))
    states = {}
    for name, profile in {**PRODUCTION_PROFILES, **BENCHMARK_PROFILES}.items():
        targets = {**PRODUCTION_TARGETS, **BENCHMARK_TARGETS}[name]
        states[name] = engine.solve(profile, cpu_util=targets.cpu_util)
    from repro.workloads.profiles import SPEC2017_PROFILES

    for name, profile in SPEC2017_PROFILES.items():
        states[name] = engine.solve(profile, cpu_util=1.0)
    return states


@pytest.fixture(scope="session")
def suite_scores():
    """Figure 2 inputs: suite scores per SKU for all four suites.

    The two DCPerf sweeps go through the shared executor, so repeated
    harness sessions on one machine reuse the persistent run cache
    instead of recomputing every (benchmark, SKU) point.
    """
    s17, s06 = spec2017_suite(), spec2006_suite()
    data = {
        "spec2017": [s17.score(sku) for sku in X86_SKUS],
        "spec2006": [s06.score(sku) for sku in X86_SKUS],
    }
    bench = DCPerfSuite(measure_seconds=1.0)
    prod = DCPerfSuite(variant=":prod", measure_seconds=1.0)
    bench_reports = bench.run_many(X86_SKUS)
    prod_reports = prod.run_many(X86_SKUS)
    data["dcperf"] = [bench_reports[sku].overall_score for sku in X86_SKUS]
    data["production"] = [
        prod.production_score(prod_reports[sku]) for sku in X86_SKUS
    ]
    return data


@pytest.fixture(scope="session")
def quick_run():
    """Run one benchmark with a short window; memoized per (name, sku)."""
    from repro.workloads.registry import get_workload

    cache = {}

    def run(name: str, sku: str = "SKU2", **kwargs):
        key = (name, sku, tuple(sorted(kwargs.items())))
        if key not in cache:
            config = RunConfig(
                sku_name=sku, warmup_seconds=0.3, measure_seconds=0.8, **kwargs
            )
            cache[key] = get_workload(name).run(config)
        return cache[key]

    return run


def paper_vs_measured(label, rows):
    """Uniform printing helper: list of (name, measured, paper)."""
    print(f"\n=== {label} ===")
    width = max(len(str(r[0])) for r in rows)
    for name, measured, paper in rows:
        print(f"  {str(name).ljust(width)}  measured {measured:>9.3f}   paper {paper:>9.3f}")
