"""Figure 14: Perf/Watt across SKU4 and the two ARM candidates.

The decision-relevant shape criteria (Section 5.1):
* SKU-A beats SKU4 on suite-level Perf/Watt (the paper: +25%), with
  SparkBench its largest single win;
* SKU-B loses badly to SKU4 overall (paper: -57%), with the web
  benchmarks (DjangoBench, MediaWiki) its worst losses — the L1I-driven
  collapse that decided the SKU selection;
* SPEC 2017 sees SKU-A and SKU-B as comparable, i.e. SPEC alone would
  not have rejected SKU-B.
"""

import math

from repro.core.report import format_table
from repro.core.suite import DCPerfSuite
from repro.workloads.spec import spec2017_suite
from repro.workloads.targets import FIG14_PERF_PER_WATT

BENCH_ORDER = ["taobench", "feedsim", "djangobench", "mediawiki", "sparkbench"]


def compute_fig14():
    suite = DCPerfSuite(measure_seconds=0.8)
    base = suite.run("SKU1").perf_per_watt
    s17 = spec2017_suite()
    spec_base = s17.score("SKU1") / s17.average_power_watts("SKU1")
    out = {}
    for sku in ("SKU4", "SKU-A", "SKU-B"):
        report = suite.run(sku)
        norm = {k: report.perf_per_watt[k] / base[k] for k in base}
        values = [norm[b] for b in BENCH_ORDER]
        geo = math.exp(sum(math.log(v) for v in values) / len(values))
        spec_ppw = (
            s17.score(sku) / s17.average_power_watts(sku)
        ) / spec_base
        out[sku] = {**norm, "dcperf": geo, "spec2017": spec_ppw}
    return out


def test_fig14_perf_per_watt(benchmark):
    data = benchmark.pedantic(compute_fig14, rounds=1, iterations=1)
    print("\n=== Figure 14: Perf/Watt normalized to SKU1 ===")
    columns = BENCH_ORDER + ["dcperf", "spec2017"]
    print(
        format_table(
            ["sku"] + columns,
            [[sku] + [f"{data[sku][c]:.2f}" for c in columns] for sku in data],
        )
    )
    print("\n--- paper values ---")
    print(
        format_table(
            ["sku"] + columns,
            [
                [sku] + [f"{FIG14_PERF_PER_WATT[sku][c]:.1f}" for c in columns]
                for sku in FIG14_PERF_PER_WATT
            ],
        )
    )

    # SKU-A wins the suite on Perf/Watt.
    assert data["SKU-A"]["dcperf"] > 1.1 * data["SKU4"]["dcperf"]
    # SparkBench is SKU-A's largest relative gain over SKU4.
    gains = {
        b: data["SKU-A"][b] / data["SKU4"][b] for b in BENCH_ORDER
    }
    assert gains["sparkbench"] == max(gains.values())
    # SKU-B loses the suite decisively.
    assert data["SKU-B"]["dcperf"] < 0.75 * data["SKU4"]["dcperf"]
    # ... with web its worst losses.
    losses = {b: data["SKU-B"][b] / data["SKU4"][b] for b in BENCH_ORDER}
    worst_two = sorted(losses, key=losses.get)[:2]
    assert set(worst_two) <= {"djangobench", "mediawiki", "feedsim"}
    # SPEC would NOT have rejected SKU-B: it rates the two ARM SKUs
    # comparably (within ~40%) and rates SKU-B at or above SKU4.
    spec_a, spec_b = data["SKU-A"]["spec2017"], data["SKU-B"]["spec2017"]
    assert 0.6 < spec_b / spec_a < 1.7
    assert spec_b > 0.9 * data["SKU4"]["spec2017"]
