"""Figure 9: CPU utilization (total and kernel) per workload on SKU2.

These numbers come from the event-level simulation, not the analytic
model: utilization is where DCPerf's software-architecture modeling
(SLOs, thread pools, serialized slices) shows up.

Shape criteria: web saturates (>90%), caching runs hot but below
saturation with ~30% kernel share, ranking is SLO-bound at 50-75%,
SPEC-style compute (video) saturates with negligible kernel time.
"""

from repro.core.report import format_table
from repro.workloads.targets import BENCHMARK_TARGETS


BENCH_ORDER = ["taobench", "feedsim", "djangobench", "mediawiki",
               "sparkbench", "videotranscode"]


def test_fig9_cpu_utilization(benchmark, quick_run):
    def compute():
        out = {}
        for name in BENCH_ORDER:
            result = quick_run(name)
            out[name] = (result.cpu_util, result.kernel_util)
        return out

    utils = benchmark.pedantic(compute, rounds=1, iterations=1)
    print("\n=== Figure 9: CPU utilization (total / sys, %) ===")
    print(
        format_table(
            ["benchmark", "total", "sys", "paper total", "paper sys"],
            [
                [
                    name, f"{total:.0%}", f"{sys:.0%}",
                    f"{BENCHMARK_TARGETS[name].cpu_util:.0%}",
                    f"{BENCHMARK_TARGETS[name].sys_util:.0%}",
                ]
                for name, (total, sys) in utils.items()
            ],
        )
    )

    # Saturation band per category.
    assert utils["mediawiki"][0] > 0.90
    assert utils["djangobench"][0] > 0.88
    assert utils["videotranscode"][0] > 0.93
    assert 0.45 < utils["feedsim"][0] < 0.90       # SLO-bound
    assert 0.60 < utils["taobench"][0] < 0.97      # hot, not saturated
    assert 0.45 < utils["sparkbench"][0] < 0.90    # I/O phases

    # Kernel share: caching towers over everything else.
    tao_kernel_share = utils["taobench"][1] / utils["taobench"][0]
    assert tao_kernel_share > 0.20
    video_kernel_share = utils["videotranscode"][1] / utils["videotranscode"][0]
    assert video_kernel_share < 0.08
