"""Figures 4 and 5: TMAM profiles across Prod, DCPerf, and SPEC 2017.

Figure 4: per-workload slot breakdowns on SKU2.  Figure 5: the
averages, whose headline is that SPEC has far fewer frontend stalls
than datacenter workloads (small codebases -> few I-cache misses).
"""

from repro.core.report import format_table
from repro.workloads.profiles import SPEC2017_PROFILES
from repro.workloads.targets import (
    BENCHMARK_TARGETS,
    FIG5_AVG_STALLS,
    PRODUCTION_TARGETS,
)

from conftest import FIDELITY_PAIRS


def collect_tmam(fidelity_states):
    rows = []
    for prod, bench in FIDELITY_PAIRS:
        for name in (prod, bench):
            tmam = fidelity_states[name].tmam
            rows.append((name, tmam))
    for name in SPEC2017_PROFILES:
        rows.append((name, fidelity_states[name].tmam))
    return rows


def averages(rows, names):
    chosen = [tmam for name, tmam in rows if name in names]
    n = len(chosen)
    return {
        "frontend": sum(t.frontend for t in chosen) / n * 100,
        "bad_speculation": sum(t.bad_speculation for t in chosen) / n * 100,
        "backend": sum(t.backend for t in chosen) / n * 100,
        "retiring": sum(t.retiring for t in chosen) / n * 100,
    }


def test_fig4_tmam_profiles(benchmark, fidelity_states):
    rows = benchmark.pedantic(
        lambda: collect_tmam(fidelity_states), rounds=1, iterations=1
    )
    print("\n=== Figure 4: TMAM profiles on SKU2 (% of slots) ===")
    print(
        format_table(
            ["workload", "frontend", "badspec", "backend", "retiring"],
            [
                [name, f"{t.frontend:.0%}", f"{t.bad_speculation:.0%}",
                 f"{t.backend:.0%}", f"{t.retiring:.0%}"]
                for name, t in rows
            ],
        )
    )
    by_name = dict(rows)
    targets = {**PRODUCTION_TARGETS, **BENCHMARK_TARGETS}
    # Each prod/bench column matches its published profile closely
    # (these are the calibration anchors).
    for name, target in targets.items():
        if name not in by_name:  # video pairs are not in Figure 4
            continue
        tmam = by_name[name]
        assert abs(tmam.frontend - target.frontend) < 0.07, name
        assert abs(tmam.retiring - target.retiring) < 0.07, name
    # Benchmark profiles are close to their production twins.
    for prod, bench in FIDELITY_PAIRS:
        assert abs(by_name[bench].frontend - by_name[prod].frontend) < 0.16


def test_fig5_average_stalls(benchmark, fidelity_states):
    rows = collect_tmam(fidelity_states)
    prod_names = {p for p, _ in FIDELITY_PAIRS}
    bench_names = {b for _, b in FIDELITY_PAIRS}
    spec_names = set(SPEC2017_PROFILES)

    def compute():
        return {
            "prod": averages(rows, prod_names),
            "dcperf": averages(rows, bench_names),
            "spec2017": averages(rows, spec_names),
        }

    avg = benchmark.pedantic(compute, rounds=1, iterations=1)
    print("\n=== Figure 5: average stall causes (% of slots) ===")
    print(
        format_table(
            ["suite", "frontend", "badspec", "backend", "retiring"],
            [
                [suite, f"{v['frontend']:.0f}", f"{v['bad_speculation']:.0f}",
                 f"{v['backend']:.0f}", f"{v['retiring']:.0f}"]
                for suite, v in avg.items()
            ],
        )
    )
    print(f"paper: prod {FIG5_AVG_STALLS['prod']}  dcperf "
          f"{FIG5_AVG_STALLS['dcperf']}  spec {FIG5_AVG_STALLS['spec2017']}")

    # Headline: SPEC has far fewer frontend stalls than prod/DCPerf.
    assert avg["spec2017"]["frontend"] < avg["prod"]["frontend"] - 8
    assert avg["spec2017"]["frontend"] < avg["dcperf"]["frontend"] - 8
    # DCPerf's averages track production within a few points.
    for key in ("frontend", "backend", "retiring"):
        assert abs(avg["dcperf"][key] - avg["prod"][key]) < 10
