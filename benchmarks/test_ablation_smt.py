"""Ablation: SMT on vs off.

SMT is load-bearing in the model twice over — it boosts saturated
throughput ~30% and makes per-thread speed *utilization-dependent*
(the interference curve behind FeedSim's early SLO binding and the
Figure 9 sub-saturation utilizations).  This ablation turns it off on
SKU2 and measures both effects.
"""

from dataclasses import replace

import pytest

from repro.core.report import format_table
from repro.hw.sku import SKU_REGISTRY, get_sku
from repro.workloads.base import RunConfig
from repro.workloads.feedsim import FeedSim
from repro.workloads.mediawiki import MediaWiki


@pytest.fixture()
def smt_off_sku(monkeypatch):
    """Register a temporary SKU2 variant with SMT disabled."""
    sku2 = get_sku("SKU2")
    cpu = replace(sku2.cpu, smt=1)  # 26 physical cores, 26 threads
    variant = replace(sku2, name="SKU2-noSMT", cpu=cpu)
    monkeypatch.setitem(SKU_REGISTRY, "SKU2-noSMT", variant)
    return variant


def test_ablation_smt(benchmark, smt_off_sku):
    def compute():
        quick = lambda sku: RunConfig(
            sku_name=sku, warmup_seconds=0.3, measure_seconds=0.8
        )
        return {
            "mediawiki_smt": MediaWiki().run(quick("SKU2")),
            "mediawiki_nosmt": MediaWiki().run(quick("SKU2-noSMT")),
            "feedsim_smt": FeedSim().run(quick("SKU2")),
            "feedsim_nosmt": FeedSim().run(quick("SKU2-noSMT")),
        }

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    print("\n=== Ablation: SMT on vs off (SKU2, 26 physical cores) ===")
    print(
        format_table(
            ["run", "throughput", "cpu util"],
            [
                [name, f"{r.throughput_rps:,.0f}", f"{r.cpu_util:.0%}"]
                for name, r in results.items()
            ],
        )
    )

    # Saturated throughput: SMT buys roughly its calibrated ~30% boost.
    gain = (
        results["mediawiki_smt"].throughput_rps
        / results["mediawiki_nosmt"].throughput_rps
    )
    print(f"\nmediawiki SMT throughput gain: {gain - 1:+.0%} "
          "(calibrated boost: +30%)")
    assert 1.10 < gain < 1.55

    # SLO-bound FeedSim: without SMT there is no interference curve, so
    # per-thread speed is flat and the operating point shifts.
    feed_gain = (
        results["feedsim_smt"].throughput_rps
        / results["feedsim_nosmt"].throughput_rps
    )
    print(f"feedsim SMT throughput gain:   {feed_gain - 1:+.0%}")
    assert 0.8 < feed_gain < 2.0
