"""Figure 12: CPU cycles in application logic vs datacenter tax.

Regenerates the hot-function cycle breakdown for the four prod/bench
pairs the figure shows, using the cycle accountant over each
workload's measured cycle volume.

Shape criteria: every datacenter workload pays a double-digit tax
share; TaoBench spends far less on compression + serialization than
the cache production workload it models (the gap the paper flags as
future work); Spark pairs are application-dominated.
"""

from repro.core.report import format_table
from repro.dctax.accounting import CycleAccountant
from repro.workloads.profiles import BENCHMARK_PROFILES, PRODUCTION_PROFILES

PAIRS = [
    ("cache-prod", "taobench"),
    ("ranking-prod", "feedsim"),
    ("fbweb-prod", "mediawiki"),
    ("spark-prod", "sparkbench"),
]


def build_breakdowns():
    out = {}
    for prod, bench in PAIRS:
        for name, profile in (
            (prod, PRODUCTION_PROFILES[prod]),
            (bench, BENCHMARK_PROFILES[bench]),
        ):
            accountant = CycleAccountant()
            accountant.charge_profile(profile.tax_profile, 100.0)
            out[name] = accountant.breakdown()
    return out


def test_fig12_tax_breakdown(benchmark):
    breakdowns = benchmark.pedantic(build_breakdowns, rounds=1, iterations=1)
    print("\n=== Figure 12: cycles in app logic vs datacenter tax ===")
    print(
        format_table(
            ["workload", "app", "tax", "rpc", "compress", "serialize", "kvstore"],
            [
                [
                    name, f"{b.app_fraction:.0%}", f"{b.tax_fraction:.0%}",
                    f"{b.share('rpc'):.0%}", f"{b.share('compression'):.0%}",
                    f"{b.share('serialization'):.0%}", f"{b.share('kvstore'):.0%}",
                ]
                for name, b in breakdowns.items()
            ],
        )
    )

    for name, b in breakdowns.items():
        assert b.tax_fraction > 0.10, name
        assert abs(b.app_fraction + b.tax_fraction - 1.0) < 1e-9

    # TaoBench's flagged gap vs Cache (prod).
    tao, cache = breakdowns["taobench"], breakdowns["cache-prod"]
    assert tao.share("compression") < 0.5 * cache.share("compression")
    assert tao.share("serialization") < 0.5 * cache.share("serialization")

    # Caching is tax-dominated; Spark is application-dominated.
    assert cache.tax_fraction > 0.70
    assert breakdowns["spark-prod"].app_fraction > 0.50
    assert breakdowns["sparkbench"].app_fraction > 0.50

    # Benchmarks reflect their production counterparts' tax totals.
    for prod, bench in PAIRS:
        gap = abs(
            breakdowns[bench].tax_fraction - breakdowns[prod].tax_fraction
        )
        assert gap < 0.12, (prod, bench)
