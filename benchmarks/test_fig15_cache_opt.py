"""Figure 15: the vendor cache-replacement optimization case study.

Section 5.2: a CPU vendor iterated on cache-replacement microcode; the
MediaWiki benchmark predicted the effect (+3.5% performance, -36% L1I
misses, -28% L2 misses) and production later confirmed +2.9% on the
Facebook web application.

The experiment here: raise the SKU's ``replacement_quality`` so L1I
miss *counts* drop ~36%, and measure the deltas the figure reports —
app performance, GIPS, IPC, L1I/L2/LLC misses, memory bandwidth — for
both MediaWiki and its production counterpart.

Shape criteria: large double-digit miss-count reductions buy only a
small single-digit performance gain (the eliminated misses are the
cheap ones), and the benchmark's predicted gain is close to the
production workload's.
"""

from dataclasses import replace

from repro.core.report import format_table
from repro.hw.sku import get_sku
from repro.uarch.projection import ProjectionEngine
from repro.workloads.profiles import BENCHMARK_PROFILES, PRODUCTION_PROFILES
from repro.workloads.targets import FIG15_CACHE_OPT

#: Replacement quality that produces the paper's -36% L1I miss count.
IMPROVED_QUALITY = 1.56


def improved_sku():
    sku = get_sku("SKU2")
    cpu = replace(
        sku.cpu, caches=sku.cpu.caches.with_replacement_quality(IMPROVED_QUALITY)
    )
    return replace(sku, cpu=cpu)


def measure_deltas(profile, util):
    base = ProjectionEngine(get_sku("SKU2")).solve(profile, util)
    improved = ProjectionEngine(improved_sku()).solve(profile, util)

    def pct(after, before):
        return (after / before - 1.0) * 100.0

    return {
        "app_perf": pct(
            improved.instructions_per_second, base.instructions_per_second
        ),
        "gips": pct(
            improved.giga_instructions_per_second,
            base.giga_instructions_per_second,
        ),
        "ipc": pct(improved.ipc_per_physical_core, base.ipc_per_physical_core),
        "l1i_miss": pct(improved.misses.l1i_mpki, base.misses.l1i_mpki),
        "l2_miss": pct(improved.misses.l2_mpki, base.misses.l2_mpki),
        "llc_miss": pct(improved.misses.llc_mpki, base.misses.llc_mpki),
        "membw": pct(
            improved.memory_bandwidth_gbps, base.memory_bandwidth_gbps
        ),
    }


def test_fig15_cache_replacement_optimization(benchmark):
    def compute():
        return {
            "mediawiki": measure_deltas(BENCHMARK_PROFILES["mediawiki"], 0.95),
            "fbweb-prod": measure_deltas(PRODUCTION_PROFILES["fbweb-prod"], 0.99),
        }

    deltas = benchmark.pedantic(compute, rounds=1, iterations=1)
    metrics = ["app_perf", "gips", "ipc", "l1i_miss", "l2_miss", "llc_miss", "membw"]
    print("\n=== Figure 15: cache-replacement optimization impact (%) ===")
    print(
        format_table(
            ["workload"] + metrics,
            [
                [name] + [f"{d[m]:+.1f}" for m in metrics]
                for name, d in deltas.items()
            ],
        )
    )
    print("\n--- paper values (%) ---")
    print(
        format_table(
            ["workload"] + metrics,
            [
                [name] + [f"{FIG15_CACHE_OPT[name][m]:+.1f}" for m in metrics]
                for name in FIG15_CACHE_OPT
            ],
        )
    )

    for name, d in deltas.items():
        # Large microarchitecture improvements...
        assert d["l1i_miss"] < -30, name
        assert d["l2_miss"] < -15, name
        assert -25 < d["llc_miss"] < -5, name
        assert d["membw"] < -3, name
        # ...buy only a small end-to-end gain.
        assert 0.5 < d["app_perf"] < 8.0, name
        assert 0.5 < d["ipc"] < 8.0, name

    # The benchmark's prediction lands within ~3 points of production.
    assert abs(
        deltas["mediawiki"]["app_perf"] - deltas["fbweb-prod"]["app_perf"]
    ) < 3.0
