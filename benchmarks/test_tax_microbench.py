"""Datacenter-tax microbenchmarks (Section 3.2).

These are the only benches here measuring real wall-clock execution:
each runs the actual tax implementation (Thrift codec, compressors,
hashes, TLS records, serialization, memory ops) under pytest-benchmark.
"""

import pytest

from repro.dctax.microbench import (
    bench_compression,
    bench_crypto_digest,
    bench_hashing,
    bench_memory_copy,
    bench_rpc_roundtrip,
    bench_serialization,
    bench_tls_record,
)


def test_tax_rpc_roundtrip(benchmark):
    result = benchmark(lambda: bench_rpc_roundtrip(iterations=100))
    assert result.operations == 100


def test_tax_compression_zlib(benchmark):
    result = benchmark(lambda: bench_compression(iterations=5, codec_name="zlib"))
    assert result.ops_per_second > 0


def test_tax_compression_snappy_like(benchmark):
    result = benchmark(
        lambda: bench_compression(iterations=2, codec_name="snappy-like")
    )
    assert result.ops_per_second > 0


def test_tax_hashing(benchmark):
    result = benchmark(lambda: bench_hashing(iterations=200))
    assert result.operations == 200


def test_tax_crypto_digest(benchmark):
    result = benchmark(lambda: bench_crypto_digest(iterations=50))
    assert result.ops_per_second > 0


def test_tax_tls_record(benchmark):
    result = benchmark(lambda: bench_tls_record(iterations=10))
    assert result.ops_per_second > 0


def test_tax_serialization(benchmark):
    result = benchmark(lambda: bench_serialization(iterations=100))
    assert result.operations == 100


def test_tax_memory_copy(benchmark):
    result = benchmark(lambda: bench_memory_copy(iterations=10))
    assert result.ops_per_second > 0
