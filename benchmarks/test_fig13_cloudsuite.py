"""Figure 13: CloudSuite's scaling failures on modern servers.

13a — Data Caching: on the 72-core SKU-A, driving utilization up ~5x
yields only a small throughput gain; on the 176-core SKU4, throughput
*decreases* at high thread counts.  13b — Web Serving: ops/s flatten
past a load scale of ~100 while CPU keeps climbing and 504 errors
appear.  13c — In-memory Analytics: CPU utilization pins near 20% on
the 176-core SKU while SparkBench (same machine) runs far hotter.
"""

from repro.core.report import format_table
from repro.workloads.base import RunConfig
from repro.workloads.cloudsuite import (
    CloudSuiteInMemoryAnalytics,
    data_caching_curve,
    web_serving_curve,
)
from repro.workloads.sparkbench import SparkBench

THREAD_LEVELS = [0.3, 1.0, 3.0, 8.0]
LOAD_SCALES = [40, 100, 160, 280, 400]


def test_fig13a_data_caching(benchmark):
    def compute():
        return {
            "SKU-A": data_caching_curve("SKU-A", THREAD_LEVELS),
            "SKU4": data_caching_curve("SKU4", THREAD_LEVELS),
        }

    curves = benchmark.pedantic(compute, rounds=1, iterations=1)
    print("\n=== Figure 13a: Data Caching RPS vs CPU utilization ===")
    for sku, points in curves.items():
        print(
            format_table(
                [f"{sku} util", "RPS"],
                [[f"{u:.0%}", f"{r:,.0f}"] for u, r in points],
            )
        )

    # SKU-A: utilization multiplies, throughput barely moves.
    a = curves["SKU-A"]
    util_gain = a[-1][0] / a[0][0]
    rps_gain = max(r for _, r in a) / a[0][1]
    assert util_gain > 2.5
    assert rps_gain < 1.5  # paper: +26% for a 7.3x utilization swing

    # SKU4: throughput decreases at the highest thread counts.
    sku4 = curves["SKU4"]
    assert sku4[-1][1] < max(r for _, r in sku4) * 0.8


def test_fig13b_web_serving(benchmark):
    points = benchmark.pedantic(
        lambda: web_serving_curve("SKU4", LOAD_SCALES), rounds=1, iterations=1
    )
    print("\n=== Figure 13b: Web Serving vs load scale ===")
    print(
        format_table(
            ["scale", "ops/s", "errors/s", "cpu util"],
            [[s, f"{o:.0f}", f"{e:.1f}", f"{u:.0%}"] for s, o, e, u in points],
        )
    )
    by_scale = {s: (o, e, u) for s, o, e, u in points}
    # Goodput flattens: tripling the offered load past 100 does not
    # even double it.
    assert by_scale[400][0] < 2.0 * by_scale[100][0]
    # Errors appear under overload but not at light load.
    assert by_scale[40][1] == 0.0
    assert by_scale[280][1] > 0.0
    # CPU keeps climbing toward 100% regardless.
    assert by_scale[400][2] > 0.85
    assert by_scale[400][2] > 2 * by_scale[100][2] * 0.9


def test_fig13c_in_memory_analytics(benchmark):
    def compute():
        workload = CloudSuiteInMemoryAnalytics()
        timeline = workload.utilization_timeline(RunConfig(sku_name="SKU4"))
        spark = SparkBench().run(RunConfig(sku_name="SKU4"))
        return timeline, spark

    timeline, spark = benchmark.pedantic(compute, rounds=1, iterations=1)
    utils = [u for _, u in timeline]
    avg_util = sum(utils) / len(utils)
    print("\n=== Figure 13c: In-memory Analytics CPU utilization ===")
    print(f"samples: {len(timeline)}, job length {timeline[-1][0]:.0f}s, "
          f"average util {avg_util:.0%} (paper: ~20%)")
    print(f"SparkBench on the same SKU4: util {spark.cpu_util:.0%}")

    assert avg_util < 0.30
    assert timeline[-1][0] > 200  # a long-running job, as in the figure
    assert spark.cpu_util > 1.8 * avg_util
