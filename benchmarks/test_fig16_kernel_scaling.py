"""Figure 16: TaoBench vs Linux kernel version and core count.

Section 5.3: TaoBench on a 384-logical-core SKU ran only 1.62x its
176-core throughput on kernel 6.4 (expected >= 2.2x), traced to lock
contention on the scheduler's ``tg->load_avg`` counter; kernel 6.9's
rate-limit patch recovered it to 2.49x.

Shape criteria: kernels within ~5% of each other at 176 cores; a
30%+ gap at 384 cores; 6.9 restores super-core-ratio scaling.
"""

from repro.core.report import format_table
from repro.workloads.base import RunConfig
from repro.workloads.taobench import TaoBench
from repro.workloads.targets import FIG16_KERNEL_SCALING


def run_matrix():
    results = {}
    for sku in ("SKU4", "SKU-384"):
        for kernel in ("6.4", "6.9"):
            config = RunConfig(
                sku_name=sku,
                kernel_version=kernel,
                warmup_seconds=0.3,
                measure_seconds=1.0,
                load_scale=1.5,  # saturate: Figure 16 reports peak RPS
            )
            results[(sku, kernel)] = TaoBench().run(config).throughput_rps
    return results


def test_fig16_kernel_scalability(benchmark):
    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    base = results[("SKU4", "6.4")]
    relative = {key: value / base * 100.0 for key, value in results.items()}
    print("\n=== Figure 16: TaoBench relative performance (%) ===")
    print(
        format_table(
            ["sku", "kernel", "relative", "paper"],
            [
                [
                    sku, kernel, f"{relative[(sku, kernel)]:.0f}%",
                    f"{FIG16_KERNEL_SCALING[kernel][sku]:.0f}%",
                ]
                for sku in ("SKU4", "SKU-384")
                for kernel in ("6.4", "6.9")
            ],
        )
    )

    # 176 cores: the kernels are nearly equivalent (paper: 100 vs 103).
    gap_176 = relative[("SKU4", "6.9")] / relative[("SKU4", "6.4")]
    assert 0.97 < gap_176 < 1.10

    # 384 cores: kernel 6.4 leaves a third of the machine on the table.
    r64 = relative[("SKU-384", "6.4")]
    r69 = relative[("SKU-384", "6.9")]
    assert r69 > 1.35 * r64
    # Paper anchors within tolerance: 162% and 249%.
    assert abs(r64 - 162) < 25
    assert abs(r69 - 249) < 30

    # Kernel 6.9 restores better-than-core-ratio scaling (2.18x cores).
    scaling_69 = r69 / relative[("SKU4", "6.9")]
    assert scaling_69 > 2.18
