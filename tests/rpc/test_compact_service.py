"""Tests for compact-protocol messages and protocol-selectable RPC."""

import pytest

from repro.rpc.compact import (
    decode_compact_message,
    encode_compact_message,
)
from repro.rpc.protocol import ProtocolError
from repro.rpc.service import RpcClient, RpcError, RpcServer
from repro.rpc.transport import InMemoryChannel


class TestCompactMessage:
    def test_roundtrip(self):
        wire = encode_compact_message("getFeed", {1: 42, 2: "alice"}, seqid=9)
        name, mtype, seqid, fields = decode_compact_message(wire)
        assert name == "getFeed"
        assert mtype == 1
        assert seqid == 9
        assert fields[1] == 42
        assert fields[2] == b"alice"

    def test_bad_protocol_id(self):
        with pytest.raises(ProtocolError, match="protocol id"):
            decode_compact_message(b"\x99\x21\x00")

    def test_bad_version(self):
        with pytest.raises(ProtocolError, match="version"):
            decode_compact_message(bytes([0x82, 0x3F, 0x00]))

    def test_mtype_range(self):
        with pytest.raises(ProtocolError):
            encode_compact_message("m", {}, mtype=9)

    def test_compact_envelope_smaller_than_binary(self):
        from repro.rpc.protocol import encode_message

        fields = {i: i for i in range(1, 12)}
        compact = encode_compact_message("method", fields, seqid=3)
        binary = encode_message("method", fields, seqid=3)
        assert len(compact) < 0.6 * len(binary)


@pytest.fixture(params=["binary", "compact"])
def rpc_pair(request):
    channel = InMemoryChannel()
    server = RpcServer(channel, protocol=request.param)
    client = RpcClient(channel, server, protocol=request.param)
    return server, client


class TestProtocolSelectableService:
    def test_call_roundtrip(self, rpc_pair):
        server, client = rpc_pair
        server.register("add", lambda f: {1: f[1] + f[2]})
        assert client.call("add", {1: 20, 2: 22})[1] == 42

    def test_exceptions_travel(self, rpc_pair):
        server, client = rpc_pair

        def boom(_):
            raise RuntimeError("nope")

        server.register("boom", boom)
        with pytest.raises(RpcError, match="nope"):
            client.call("boom", {})

    def test_oneway(self, rpc_pair):
        server, client = rpc_pair
        seen = []
        server.register("log", lambda f: seen.append(f[1]) or {})
        client.call_oneway("log", {1: 5})
        assert seen == [5]


class TestProtocolMismatch:
    def test_mismatched_protocols_rejected(self):
        channel = InMemoryChannel()
        server = RpcServer(channel, protocol="binary")
        with pytest.raises(ValueError, match="does not match"):
            RpcClient(channel, server, protocol="compact")

    def test_unknown_protocol(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            RpcServer(InMemoryChannel(), protocol="json")

    def test_compact_uses_fewer_bytes_end_to_end(self):
        def run(protocol):
            channel = InMemoryChannel()
            server = RpcServer(channel, protocol=protocol)
            client = RpcClient(channel, server, protocol=protocol)
            server.register("sum", lambda f: {1: sum(f[1])})
            for _ in range(10):
                client.call("sum", {1: list(range(30)), 2: 7, 3: 999})
            return client.bytes_out + server.bytes_out

        assert run("compact") < 0.6 * run("binary")
