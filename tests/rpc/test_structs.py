"""Tests for declarative struct schemas."""

import pytest

from repro.rpc.protocol import ProtocolError
from repro.rpc.structs import ThriftField, ThriftStruct, struct_from_dict


def story_schema():
    return ThriftStruct(
        "Story",
        [
            ThriftField(1, "story_id"),
            ThriftField(2, "author"),
            ThriftField(3, "score", required=False),
        ],
    )


class TestSchemaValidation:
    def test_duplicate_field_ids(self):
        with pytest.raises(ValueError):
            ThriftStruct("S", [ThriftField(1, "a"), ThriftField(1, "b")])

    def test_duplicate_names(self):
        with pytest.raises(ValueError):
            ThriftStruct("S", [ThriftField(1, "a"), ThriftField(2, "a")])

    def test_field_id_starts_at_one(self):
        with pytest.raises(ValueError):
            ThriftField(0, "a")


class TestEncodeDecode:
    def test_roundtrip(self):
        schema = story_schema()
        wire = schema.encode({"story_id": 7, "author": "alice", "score": 0.9})
        out = schema.decode(wire)
        assert out["story_id"] == 7
        assert out["author"] == b"alice"
        assert out["score"] == pytest.approx(0.9)

    def test_optional_field_omitted(self):
        schema = story_schema()
        out = schema.decode(schema.encode({"story_id": 7, "author": "a"}))
        assert "score" not in out

    def test_missing_required_on_encode(self):
        with pytest.raises(ProtocolError, match="author"):
            story_schema().encode({"story_id": 7})

    def test_unknown_field_on_encode(self):
        with pytest.raises(ProtocolError, match="bogus"):
            story_schema().encode({"story_id": 7, "author": "a", "bogus": 1})

    def test_unknown_wire_field_skipped_on_decode(self):
        """Forward compatibility: newer senders add fields."""
        extended = ThriftStruct(
            "StoryV2",
            [
                ThriftField(1, "story_id"),
                ThriftField(2, "author"),
                ThriftField(9, "new_field"),
            ],
        )
        wire = extended.encode(
            {"story_id": 1, "author": "a", "new_field": "x"}
        )
        out = story_schema().decode(wire)
        assert out["story_id"] == 1
        assert "new_field" not in out

    def test_missing_required_on_decode(self):
        other = ThriftStruct("Other", [ThriftField(5, "z")])
        wire = other.encode({"z": 1})
        with pytest.raises(ProtocolError, match="story_id"):
            story_schema().decode(wire)

    def test_wire_size(self):
        schema = story_schema()
        small = schema.wire_size({"story_id": 1, "author": "a"})
        big = schema.wire_size({"story_id": 1, "author": "a" * 100})
        assert big == small + 99


class TestStructFromDict:
    def test_derives_sorted_schema(self):
        schema = struct_from_dict("Auto", {"b": 1, "a": 2})
        assert [f.name for f in schema.fields] == ["a", "b"]
        out = schema.decode(schema.encode({"a": 2, "b": 1}))
        assert out == {"a": 2, "b": 1}
