"""Tests for the Thrift compact protocol."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rpc.compact import (
    decode_compact_struct,
    encode_compact_struct,
    read_varint,
    write_varint,
    zigzag_decode,
    zigzag_encode,
)
from repro.rpc.protocol import ProtocolError


class TestZigzag:
    @pytest.mark.parametrize(
        "value,encoded", [(0, 0), (-1, 1), (1, 2), (-2, 3), (2, 4)]
    )
    def test_known_mappings(self, value, encoded):
        assert zigzag_encode(value) == encoded
        assert zigzag_decode(encoded) == value

    @given(st.integers(min_value=-(2**62), max_value=2**62))
    def test_roundtrip(self, value):
        assert zigzag_decode(zigzag_encode(value)) == value


class TestVarint:
    @given(st.integers(min_value=0, max_value=2**63))
    def test_roundtrip(self, value):
        out = bytearray()
        write_varint(out, value)
        decoded, pos = read_varint(bytes(out), 0)
        assert decoded == value
        assert pos == len(out)

    def test_small_values_one_byte(self):
        out = bytearray()
        write_varint(out, 100)
        assert len(out) == 1

    def test_negative_rejected(self):
        with pytest.raises(ProtocolError):
            write_varint(bytearray(), -1)

    def test_truncation_detected(self):
        with pytest.raises(ProtocolError):
            read_varint(b"\x80\x80", 0)


SCALARS = st.one_of(
    st.booleans(),
    st.integers(min_value=-(2**60), max_value=2**60),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=30),
    st.binary(max_size=40),
)


class TestStructRoundTrip:
    def _normalize(self, value):
        if isinstance(value, str):
            return value.encode("utf-8")
        return value

    @given(
        fields=st.dictionaries(
            st.integers(min_value=1, max_value=3000), SCALARS, max_size=10
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_scalar_fields(self, fields):
        decoded = decode_compact_struct(encode_compact_struct(fields))
        assert set(decoded) == set(fields)
        for fid, value in fields.items():
            assert decoded[fid] == self._normalize(value)

    def test_containers(self):
        fields = {
            1: [1, 2, 3],
            2: {"a": 10, "b": 20},
            3: [True, False, True],
            5: list(range(20)),  # long-form list header
        }
        decoded = decode_compact_struct(encode_compact_struct(fields))
        assert decoded[1] == [1, 2, 3]
        assert decoded[2] == {"a": 10, "b": 20}
        assert decoded[3] == [True, False, True]
        assert decoded[5] == list(range(20))

    def test_field_id_deltas_and_jumps(self):
        fields = {1: 10, 2: 20, 100: 30, 2000: 40}
        assert decode_compact_struct(encode_compact_struct(fields)) == fields

    def test_none_fields_skipped(self):
        decoded = decode_compact_struct(encode_compact_struct({1: None, 2: 5}))
        assert decoded == {2: 5}

    def test_bools_travel_in_type_nibble(self):
        wire = encode_compact_struct({1: True, 2: False})
        # 2 field headers + STOP: bools cost zero payload bytes.
        assert len(wire) == 3

    def test_missing_stop_detected(self):
        wire = encode_compact_struct({1: 5})
        with pytest.raises(ProtocolError):
            decode_compact_struct(wire[:-1] + b"\x15")  # overwrite STOP

    def test_invalid_field_id(self):
        with pytest.raises(ProtocolError):
            encode_compact_struct({0: 1})

    def test_heterogeneous_list_rejected(self):
        with pytest.raises(ProtocolError):
            encode_compact_struct({1: [1, "two"]})


class TestCompactVsBinary:
    def test_compact_smaller_for_small_ints(self):
        """The reason production prefers compact: varint integers."""
        from repro.rpc.protocol import BinaryProtocolWriter, write_struct_fields

        fields = {i: i * 3 for i in range(1, 20)}
        writer = BinaryProtocolWriter()
        write_struct_fields(writer, fields)
        binary_size = len(writer.getvalue())
        compact_size = len(encode_compact_struct(fields))
        assert compact_size < 0.5 * binary_size
