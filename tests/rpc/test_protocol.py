"""Tests for the Thrift binary protocol codec."""

import pytest
from hypothesis import given, strategies as st

from repro.rpc.protocol import (
    BinaryProtocolReader,
    BinaryProtocolWriter,
    MessageType,
    ProtocolError,
    decode_message,
    encode_message,
    read_struct_fields,
    read_value,
    thrift_type_of,
    ThriftType,
    write_struct_fields,
    write_value,
)


class TestScalars:
    @pytest.mark.parametrize("value", [-(2**31), -1, 0, 1, 2**31 - 1])
    def test_i32_roundtrip(self, value):
        w = BinaryProtocolWriter()
        w.write_i32(value)
        assert BinaryProtocolReader(w.getvalue()).read_i32() == value

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_i64_roundtrip(self, value):
        w = BinaryProtocolWriter()
        w.write_i64(value)
        assert BinaryProtocolReader(w.getvalue()).read_i64() == value

    @given(st.floats(allow_nan=False))
    def test_double_roundtrip(self, value):
        w = BinaryProtocolWriter()
        w.write_double(value)
        assert BinaryProtocolReader(w.getvalue()).read_double() == value

    @given(st.text(max_size=200))
    def test_string_roundtrip(self, value):
        w = BinaryProtocolWriter()
        w.write_string(value)
        assert BinaryProtocolReader(w.getvalue()).read_string() == value

    @given(st.binary(max_size=500))
    def test_binary_roundtrip(self, value):
        w = BinaryProtocolWriter()
        w.write_binary(value)
        assert BinaryProtocolReader(w.getvalue()).read_binary() == value

    def test_bool_roundtrip(self):
        for flag in (True, False):
            w = BinaryProtocolWriter()
            w.write_bool(flag)
            assert BinaryProtocolReader(w.getvalue()).read_bool() is flag


class TestWireErrors:
    def test_truncated_read_raises(self):
        with pytest.raises(ProtocolError, match="truncated"):
            BinaryProtocolReader(b"\x00\x01").read_i32()

    def test_negative_string_length_raises(self):
        w = BinaryProtocolWriter()
        w.write_i32(-5)
        with pytest.raises(ProtocolError):
            BinaryProtocolReader(w.getvalue()).read_binary()

    def test_bad_version_raises(self):
        with pytest.raises(ProtocolError, match="version"):
            decode_message(b"\x00\x00\x00\x05hello")


class TestDynamicValues:
    @given(
        st.one_of(
            st.booleans(),
            st.integers(min_value=-(2**62), max_value=2**62),
            st.floats(allow_nan=False, allow_infinity=False),
            st.text(max_size=30),
            st.lists(st.integers(min_value=0, max_value=100), max_size=5),
            st.dictionaries(
                st.text(min_size=1, max_size=8),
                st.integers(min_value=0, max_value=100),
                max_size=4,
            ),
        )
    )
    def test_value_roundtrip(self, value):
        w = BinaryProtocolWriter()
        write_value(w, value)
        out = read_value(BinaryProtocolReader(w.getvalue()), thrift_type_of(value))
        if isinstance(value, str):
            assert out == value.encode("utf-8")
        elif isinstance(value, bool):
            assert out is value
        else:
            assert out == value

    def test_unencodable_type_raises(self):
        with pytest.raises(ProtocolError):
            thrift_type_of(object())

    def test_heterogeneous_list_rejected(self):
        w = BinaryProtocolWriter()
        with pytest.raises(ProtocolError):
            write_value(w, [1, "two"])


class TestStructs:
    def test_fields_roundtrip(self):
        fields = {1: 42, 2: "hello", 3: [1, 2, 3], 5: {"k": 9}}
        w = BinaryProtocolWriter()
        write_struct_fields(w, fields)
        out = read_struct_fields(BinaryProtocolReader(w.getvalue()))
        assert out[1] == 42
        assert out[2] == b"hello"
        assert out[3] == [1, 2, 3]
        assert out[5] == {"k": 9}

    def test_none_fields_skipped(self):
        w = BinaryProtocolWriter()
        write_struct_fields(w, {1: None, 2: 7})
        out = read_struct_fields(BinaryProtocolReader(w.getvalue()))
        assert out == {2: 7}


class TestMessages:
    def test_envelope_roundtrip(self):
        wire = encode_message("getFeed", {1: 99}, seqid=12, mtype=MessageType.CALL)
        name, mtype, seqid, fields = decode_message(wire)
        assert name == "getFeed"
        assert mtype == MessageType.CALL
        assert seqid == 12
        assert fields[1] == 99

    @pytest.mark.parametrize("mtype", list(MessageType))
    def test_all_message_types(self, mtype):
        wire = encode_message("m", {}, seqid=1, mtype=mtype)
        assert decode_message(wire)[1] == mtype
