"""Tests for framed transport and in-memory channels."""

import pytest
from hypothesis import given, strategies as st

from repro.rpc.transport import (
    FramedTransport,
    InMemoryChannel,
    MAX_FRAME_BYTES,
    TransportError,
)


class TestFraming:
    def test_frame_roundtrip(self):
        t = FramedTransport()
        t.feed(FramedTransport.frame(b"hello"))
        assert t.next_frame() == b"hello"
        assert t.next_frame() is None

    def test_partial_feed(self):
        wire = FramedTransport.frame(b"payload")
        t = FramedTransport()
        t.feed(wire[:3])
        assert t.next_frame() is None
        t.feed(wire[3:6])
        assert t.next_frame() is None
        t.feed(wire[6:])
        assert t.next_frame() == b"payload"

    def test_multiple_frames_in_one_feed(self):
        t = FramedTransport()
        t.feed(FramedTransport.frame(b"a") + FramedTransport.frame(b"bb"))
        assert t.next_frame() == b"a"
        assert t.next_frame() == b"bb"

    def test_oversized_frame_rejected_on_send(self):
        with pytest.raises(TransportError):
            FramedTransport.frame(b"x" * (MAX_FRAME_BYTES + 1))

    def test_oversized_advertised_length_rejected(self):
        t = FramedTransport()
        t.feed((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
        with pytest.raises(TransportError):
            t.next_frame()

    @given(payloads=st.lists(st.binary(max_size=200), min_size=1, max_size=10),
           chunk=st.integers(1, 17))
    def test_arbitrary_chunking(self, payloads, chunk):
        wire = b"".join(FramedTransport.frame(p) for p in payloads)
        t = FramedTransport()
        out = []
        for i in range(0, len(wire), chunk):
            t.feed(wire[i : i + chunk])
            while True:
                frame = t.next_frame()
                if frame is None:
                    break
                out.append(frame)
        assert out == payloads
        assert t.buffered_bytes == 0


class TestInMemoryChannel:
    def test_bidirectional(self):
        ch = InMemoryChannel()
        ch.send_a(b"ping")
        assert ch.recv_b() == b"ping"
        ch.send_b(b"pong")
        assert ch.recv_a() == b"pong"

    def test_empty_recv_none(self):
        ch = InMemoryChannel()
        assert ch.recv_a() is None
        assert ch.recv_b() is None

    def test_byte_counters(self):
        ch = InMemoryChannel()
        ch.send_a(b"12345")
        ch.send_b(b"123")
        assert ch.bytes_sent_a == 5
        assert ch.bytes_sent_b == 3
