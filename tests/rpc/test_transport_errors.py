"""Error-path tests for the framed transport: truncation, zero-length
and boundary frames, and recovery after a framing violation."""

import pytest

from repro.rpc.transport import (
    FramedTransport,
    InMemoryChannel,
    MAX_FRAME_BYTES,
    TransportError,
)


class TestTruncation:
    def test_truncated_header_yields_nothing(self):
        t = FramedTransport()
        t.feed(b"\x00\x00\x00")  # 3 of 4 header bytes
        assert t.next_frame() is None
        assert t.buffered_bytes == 3

    def test_truncated_body_retains_buffer(self):
        wire = FramedTransport.frame(b"abcdef")
        t = FramedTransport()
        t.feed(wire[:-2])  # header promises 6 bytes, only 4 arrived
        assert t.next_frame() is None
        assert t.buffered_bytes == len(wire) - 2
        t.feed(wire[-2:])
        assert t.next_frame() == b"abcdef"
        assert t.buffered_bytes == 0

    def test_repeated_polls_on_truncated_frame_are_stable(self):
        t = FramedTransport()
        t.feed(FramedTransport.frame(b"xyz")[:5])
        for _ in range(3):
            assert t.next_frame() is None
        assert t.buffered_bytes == 5


class TestBoundaries:
    def test_zero_length_frame(self):
        t = FramedTransport()
        t.feed(FramedTransport.frame(b""))
        assert t.next_frame() == b""
        assert t.next_frame() is None

    def test_frame_at_exact_limit_allowed(self):
        payload = b"x" * MAX_FRAME_BYTES
        t = FramedTransport()
        t.feed(FramedTransport.frame(payload))
        assert t.next_frame() == payload

    def test_send_rejects_before_wire(self):
        with pytest.raises(TransportError, match="exceeds max"):
            FramedTransport.frame(b"x" * (MAX_FRAME_BYTES + 1))

    def test_error_is_exception_subclass(self):
        # Callers catching broad Exception (not BaseException) must see
        # framing violations.
        assert issubclass(TransportError, Exception)
        assert not issubclass(TransportError, (KeyboardInterrupt, SystemExit))


class TestViolationHandling:
    def test_oversized_header_raises_every_poll(self):
        t = FramedTransport()
        t.feed((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
        with pytest.raises(TransportError, match="too large"):
            t.next_frame()
        # The poison header stays buffered: the connection is dead, and
        # silently resynchronizing mid-stream would corrupt framing.
        with pytest.raises(TransportError):
            t.next_frame()

    def test_fresh_transport_unaffected_by_peer_violation(self):
        bad = FramedTransport()
        bad.feed((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
        with pytest.raises(TransportError):
            bad.next_frame()
        good = FramedTransport()
        good.feed(FramedTransport.frame(b"ok"))
        assert good.next_frame() == b"ok"


class TestChannelEdgeCases:
    def test_chunks_preserve_boundaries_and_order(self):
        ch = InMemoryChannel()
        ch.send_a(b"one")
        ch.send_a(b"two")
        assert ch.recv_b() == b"one"
        assert ch.recv_b() == b"two"
        assert ch.recv_b() is None

    def test_empty_send_counts_zero_bytes(self):
        ch = InMemoryChannel()
        ch.send_a(b"")
        assert ch.bytes_sent_a == 0
        assert ch.recv_b() == b""
        assert ch.recv_b() is None

    def test_directions_are_independent(self):
        ch = InMemoryChannel()
        ch.send_a(b"to-b")
        assert ch.recv_a() is None  # A's inbox only sees B's sends
        assert ch.recv_b() == b"to-b"
