"""Tests for the RPC client/server pair."""

import pytest

from repro.rpc.service import RpcClient, RpcError, RpcServer
from repro.rpc.transport import InMemoryChannel


@pytest.fixture
def rpc():
    channel = InMemoryChannel()
    server = RpcServer(channel)
    client = RpcClient(channel, server)
    return server, client


class TestCalls:
    def test_roundtrip(self, rpc):
        server, client = rpc
        server.register("add", lambda f: {1: f[1] + f[2]})
        assert client.call("add", {1: 2, 2: 3})[1] == 5

    def test_multiple_sequential_calls(self, rpc):
        server, client = rpc
        server.register("echo", lambda f: f)
        for i in range(5):
            assert client.call("echo", {1: i})[1] == i
        assert server.calls_served == 5

    def test_unknown_method(self, rpc):
        server, client = rpc
        with pytest.raises(RpcError, match="no handler"):
            client.call("missing", {})

    def test_handler_exception_travels(self, rpc):
        server, client = rpc

        def boom(_fields):
            raise RuntimeError("backend down")

        server.register("explode", boom)
        with pytest.raises(RpcError, match="backend down"):
            client.call("explode", {})

    def test_oneway_has_no_reply(self, rpc):
        server, client = rpc
        seen = []
        server.register("log", lambda f: seen.append(f[1]) or {})
        client.call_oneway("log", {1: 7})
        assert seen == [7]
        assert rpc[1].channel.recv_a() is None

    def test_duplicate_registration_rejected(self, rpc):
        server, _ = rpc
        server.register("m", lambda f: {})
        with pytest.raises(ValueError):
            server.register("m", lambda f: {})

    def test_byte_accounting(self, rpc):
        server, client = rpc
        server.register("echo", lambda f: f)
        client.call("echo", {1: "payload"})
        assert client.bytes_out > 0
        assert server.bytes_in == client.bytes_out
        assert server.bytes_out > 0
