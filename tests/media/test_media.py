"""Tests for the media substrate: frames, codec, transcode pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.media.codec import BlockCodec, CodecError, psnr
from repro.media.frames import FrameSequence, bilinear_resize, synthetic_sequence
from repro.media.pipeline import PRESET_QUANTIZERS, transcode_ladder


class TestFrames:
    def test_synthetic_sequence_shape(self):
        seq = synthetic_sequence(num_frames=5, height=64, width=96)
        assert seq.num_frames == 5
        assert seq.height == 64
        assert seq.width == 96
        assert seq.frames.dtype == np.uint8

    def test_deterministic(self):
        a = synthetic_sequence(seed=3)
        b = synthetic_sequence(seed=3)
        assert np.array_equal(a.frames, b.frames)

    def test_motion_between_frames(self):
        seq = synthetic_sequence(num_frames=6)
        assert not np.array_equal(seq.frames[0], seq.frames[-1])

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_sequence(num_frames=0)
        with pytest.raises(ValueError):
            FrameSequence(frames=np.zeros((2, 4, 4), dtype=np.float32))


class TestBilinearResize:
    def test_identity(self):
        frame = synthetic_sequence(num_frames=1).frames[0]
        out = bilinear_resize(frame, frame.shape[0], frame.shape[1])
        assert np.array_equal(out, frame)

    def test_downscale_shape(self):
        frame = synthetic_sequence(num_frames=1).frames[0]
        out = bilinear_resize(frame, 24, 40)
        assert out.shape == (24, 40)
        assert out.dtype == np.uint8

    def test_constant_frame_preserved(self):
        frame = np.full((32, 32), 100, dtype=np.uint8)
        out = bilinear_resize(frame, 16, 20)
        assert np.all(out == 100)

    def test_validation(self):
        frame = np.zeros((16, 16), dtype=np.uint8)
        with pytest.raises(ValueError):
            bilinear_resize(frame, 0, 10)


class TestBlockCodec:
    def test_lossless_on_constant_frame(self):
        frame = np.full((16, 24), 128, dtype=np.uint8)
        codec = BlockCodec(quantizer=16)
        decoded = codec.decode(codec.encode(frame))
        assert np.array_equal(decoded, frame)

    def test_roundtrip_quality(self):
        frame = synthetic_sequence(num_frames=1).frames[0]
        codec = BlockCodec(quantizer=8)
        decoded = codec.decode(codec.encode(frame))
        assert decoded.shape == frame.shape
        assert psnr(frame, decoded) > 35.0

    def test_quantizer_quality_tradeoff(self):
        """Coarser quantization -> fewer bytes, lower PSNR."""
        frame = synthetic_sequence(num_frames=1).frames[0]
        fine = BlockCodec(quantizer=4)
        coarse = BlockCodec(quantizer=64)
        fine_enc = fine.encode(frame)
        coarse_enc = coarse.encode(frame)
        assert coarse_enc.compressed_bytes < fine_enc.compressed_bytes
        assert psnr(frame, coarse.decode(coarse_enc)) < psnr(
            frame, fine.decode(fine_enc)
        )

    def test_non_multiple_of_block_size(self):
        frame = synthetic_sequence(num_frames=1, height=30, width=50).frames[0]
        codec = BlockCodec(quantizer=12)
        decoded = codec.decode(codec.encode(frame))
        assert decoded.shape == frame.shape

    def test_actually_compresses(self):
        frame = synthetic_sequence(num_frames=1).frames[0]
        encoded = BlockCodec(quantizer=20).encode(frame)
        assert encoded.compressed_bytes < frame.size / 2

    def test_corrupt_bitstream_detected(self):
        frame = synthetic_sequence(num_frames=1, height=16, width=16).frames[0]
        codec = BlockCodec(quantizer=16)
        encoded = codec.encode(frame)
        truncated = type(encoded)(
            height=encoded.height, width=encoded.width,
            quantizer=encoded.quantizer, payload=encoded.payload[:1],
        )
        with pytest.raises(CodecError):
            codec.decode(truncated)

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockCodec(quantizer=0)
        with pytest.raises(ValueError):
            BlockCodec(quantizer=16).encode(np.zeros((4, 4), dtype=np.float32))

    @given(seed=st.integers(0, 1000), quantizer=st.sampled_from([4, 16, 48]))
    @settings(max_examples=15, deadline=None)
    def test_decoder_inverts_encoder_structurally(self, seed, quantizer):
        frame = synthetic_sequence(num_frames=1, height=32, width=48,
                                   seed=seed).frames[0]
        codec = BlockCodec(quantizer=quantizer)
        decoded = codec.decode(codec.encode(frame))
        assert decoded.shape == frame.shape
        # Reconstruction error is bounded by the quantizer scale.
        assert psnr(frame, decoded) > 18.0


class TestPsnr:
    def test_identical_frames_infinite(self):
        frame = np.zeros((8, 8), dtype=np.uint8)
        assert psnr(frame, frame) == float("inf")

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            psnr(np.zeros((8, 8), dtype=np.uint8), np.zeros((4, 4), dtype=np.uint8))


class TestPipeline:
    def test_ladder_monotone_bytes(self):
        seq = synthetic_sequence(num_frames=3)
        result = transcode_ladder(seq, quality=2)
        sizes = [r.compressed_bytes for r in result.renditions]
        assert sizes == sorted(sizes, reverse=True)  # bigger rungs, more bytes

    def test_quality_presets_monotone(self):
        seq = synthetic_sequence(num_frames=3)
        results = {q: transcode_ladder(seq, quality=q) for q in PRESET_QUANTIZERS}
        assert (
            results[1].total_compressed_bytes
            < results[2].total_compressed_bytes
            < results[3].total_compressed_bytes
        )
        assert results[1].mean_psnr_db < results[3].mean_psnr_db

    def test_validation(self):
        seq = synthetic_sequence(num_frames=2)
        with pytest.raises(ValueError):
            transcode_ladder(seq, quality=9)
        with pytest.raises(ValueError):
            transcode_ladder(seq, quality=1, ladder=())
