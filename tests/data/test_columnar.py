"""Tests for columnar encoding + compression."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.columnar import (
    ColumnarError,
    decode_column,
    encode_column,
    store_table,
    table_compression_ratio,
)
from repro.data.generator import DatasetGenerator
from repro.data.schema import ColumnKind, warehouse_fact_schema


class TestColumnRoundTrip:
    @given(
        values=st.lists(
            st.one_of(st.none(), st.integers(-(2**40), 2**40)), max_size=200
        )
    )
    @settings(max_examples=50)
    def test_int64(self, values):
        assert decode_column(encode_column(values, ColumnKind.INT64),
                             ColumnKind.INT64) == values

    @given(
        values=st.lists(
            st.one_of(st.none(), st.floats(allow_nan=False)), max_size=100
        )
    )
    @settings(max_examples=50)
    def test_double(self, values):
        assert decode_column(encode_column(values, ColumnKind.DOUBLE),
                             ColumnKind.DOUBLE) == values

    @given(values=st.lists(st.one_of(st.none(), st.booleans()), max_size=200))
    @settings(max_examples=50)
    def test_bool(self, values):
        assert decode_column(encode_column(values, ColumnKind.BOOL),
                             ColumnKind.BOOL) == values

    @given(values=st.lists(st.one_of(st.none(), st.text(max_size=20)), max_size=80))
    @settings(max_examples=50)
    def test_string(self, values):
        assert decode_column(encode_column(values, ColumnKind.STRING),
                             ColumnKind.STRING) == values

    def test_empty_column(self):
        assert decode_column(encode_column([], ColumnKind.INT64),
                             ColumnKind.INT64) == []

    def test_truncation_detected(self):
        encoded = encode_column([1, 2, 3], ColumnKind.INT64)
        with pytest.raises((ColumnarError, Exception)):
            decode_column(encoded[:2], ColumnKind.INT64)

    def test_delta_encoding_compact_for_sorted_ints(self):
        sequential = encode_column(list(range(10_000)), ColumnKind.INT64)
        # Sequential ids delta-encode to ~1 byte each + header/bitmap.
        assert len(sequential) < 12_000


class TestTableStorage:
    def test_store_and_ratio(self):
        table = DatasetGenerator(warehouse_fact_schema(), seed=2).generate(600)
        stats = store_table(table)
        assert set(stats) == set(table.schema.column_names)
        for column_stats in stats.values():
            assert column_stats.encoded_bytes > 0
            assert column_stats.compressed_bytes > 0
        ratio = table_compression_ratio(stats)
        # Warehouse data compresses: skewed keys and bounded domains.
        assert ratio > 1.3

    def test_low_cardinality_columns_compress_best(self):
        table = DatasetGenerator(warehouse_fact_schema(), seed=2).generate(600)
        stats = store_table(table)
        # 'region' repeats 64 distinct strings -> high ratio; 'spend'
        # is 4-decimal random doubles -> near-incompressible.
        assert stats["region"].compression_ratio > 2 * stats["spend"].compression_ratio
        # Sequential ids delta-encode into runs zlib folds away.
        assert stats["event_id"].compression_ratio > 10
