"""Tests for dataset schemas and the generator."""

import pytest

from repro.data.generator import DatasetGenerator
from repro.data.schema import (
    Column,
    ColumnKind,
    TableSchema,
    warehouse_dim_schema,
    warehouse_fact_schema,
)


class TestSchema:
    def test_warehouse_schemas_valid(self):
        fact = warehouse_fact_schema()
        dim = warehouse_dim_schema()
        assert "campaign_id" in fact.column_names
        assert "campaign_id" in dim.column_names

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            TableSchema("t", [Column("a", ColumnKind.INT64), Column("a", ColumnKind.INT64)])

    def test_empty_schema_rejected(self):
        with pytest.raises(ValueError):
            TableSchema("t", [])

    def test_column_lookup(self):
        fact = warehouse_fact_schema()
        assert fact.column("region").kind == ColumnKind.STRING
        with pytest.raises(KeyError):
            fact.column("missing")

    def test_column_validation(self):
        with pytest.raises(ValueError):
            Column("c", ColumnKind.INT64, distinct_values=0)
        with pytest.raises(ValueError):
            Column("c", ColumnKind.INT64, zipf_skew=-1)
        with pytest.raises(ValueError):
            Column("c", ColumnKind.STRING, null_fraction=1.0)


class TestGenerator:
    def test_deterministic(self):
        schema = warehouse_fact_schema()
        t1 = DatasetGenerator(schema, seed=5).generate(100)
        t2 = DatasetGenerator(schema, seed=5).generate(100)
        assert t1.columns == t2.columns

    def test_seed_changes_data(self):
        schema = warehouse_fact_schema()
        t1 = DatasetGenerator(schema, seed=5).generate(50)
        t2 = DatasetGenerator(schema, seed=6).generate(50)
        assert t1.columns != t2.columns

    def test_distinct_values_bounded(self):
        table = DatasetGenerator(warehouse_fact_schema(), seed=1).generate(500)
        assert table.distinct_count("region") <= 64
        assert table.distinct_count("clicks") <= 100

    def test_null_fraction(self):
        table = DatasetGenerator(warehouse_fact_schema(), seed=1).generate(2000)
        nulls = sum(1 for v in table.columns["spend"] if v is None)
        assert nulls / 2000 == pytest.approx(0.02, abs=0.015)

    def test_types(self):
        table = DatasetGenerator(warehouse_fact_schema(), seed=1).generate(20)
        row = table.row(0)
        assert isinstance(row["event_id"], int)
        assert isinstance(row["region"], str)
        assert isinstance(row["is_conversion"], bool)
        assert isinstance(row["event_time"], int)

    def test_zipf_skews_popularity(self):
        table = DatasetGenerator(warehouse_fact_schema(), seed=1).generate(3000)
        values = [v for v in table.columns["campaign_id"] if v is not None]
        counts = {}
        for v in values:
            counts[v] = counts.get(v, 0) + 1
        top = max(counts.values())
        assert top > 3 * (len(values) / len(counts))  # head much hotter

    def test_estimated_bytes_positive(self):
        table = DatasetGenerator(warehouse_fact_schema(), seed=1).generate(50)
        assert table.estimated_bytes() > 50 * 8

    def test_zero_rows(self):
        table = DatasetGenerator(warehouse_fact_schema(), seed=1).generate(0)
        assert table.num_rows == 0

    def test_negative_rows_rejected(self):
        with pytest.raises(ValueError):
            DatasetGenerator(warehouse_fact_schema(), seed=1).generate(-1)
