"""Tests for the mini query engine — correctness vs brute force."""

import pytest

from repro.data.generator import DatasetGenerator, GeneratedTable
from repro.data.query import (
    AggregateSpec,
    QueryError,
    group_aggregate,
    hash_join,
    run_warehouse_query,
    scan_filter,
)
from repro.data.schema import (
    Column,
    ColumnKind,
    TableSchema,
    warehouse_dim_schema,
    warehouse_fact_schema,
)


def small_table(columns):
    """Build a GeneratedTable directly from a dict of column lists."""
    schema = TableSchema(
        "t",
        [
            Column(name, ColumnKind.INT64 if isinstance(v[0], int) else ColumnKind.DOUBLE)
            for name, v in columns.items()
        ],
    )
    return GeneratedTable(schema=schema, columns=dict(columns))


class TestScanFilter:
    def test_predicate_applied(self):
        t = small_table({"x": [1, 2, 3, 4]})
        rows = scan_filter(t, lambda r: r["x"] > 2)
        assert [r["x"] for r in rows] == [3, 4]

    def test_null_safe(self):
        t = small_table({"x": [1, None, 3]})
        rows = scan_filter(t, lambda r: r["x"] > 0)
        assert [r["x"] for r in rows] == [1, 3]


class TestHashJoin:
    def test_inner_join(self):
        left = [{"k": 1, "a": 10}, {"k": 2, "a": 20}, {"k": 9, "a": 90}]
        right = small_table({"k": [1, 2, 3], "b": [100, 200, 300]})
        joined = hash_join(left, right, "k", "k")
        assert len(joined) == 2
        assert joined[0]["b"] == 100
        assert joined[0]["a"] == 10

    def test_null_keys_dropped(self):
        left = [{"k": None, "a": 1}]
        right = small_table({"k": [1], "b": [9]})
        assert hash_join(left, right, "k", "k") == []


class TestGroupAggregate:
    ROWS = [
        {"g": "a", "v": 10, "c": 1},
        {"g": "a", "v": 20, "c": 1},
        {"g": "b", "v": 5, "c": 1},
    ]

    def test_sum_count_avg_max_min(self):
        groups = group_aggregate(
            self.ROWS,
            "g",
            [
                AggregateSpec("sum", "v", "total"),
                AggregateSpec("count", "c", "n"),
                AggregateSpec("avg", "v", "mean"),
                AggregateSpec("max", "v", "top"),
                AggregateSpec("min", "v", "bottom"),
            ],
        )
        a = groups["a"]
        assert a["total"] == 30
        assert a["n"] == 2
        assert a["mean"] == pytest.approx(15.0)
        assert a["top"] == 20
        assert a["bottom"] == 10
        assert groups["b"]["total"] == 5

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(QueryError):
            AggregateSpec("median", "v", "out")


class TestWarehouseQuery:
    def test_matches_brute_force(self):
        fact = DatasetGenerator(warehouse_fact_schema(), seed=11).generate(800)
        dim = DatasetGenerator(warehouse_dim_schema(), seed=12).generate(200)
        result = run_warehouse_query(fact, dim, min_spend=100.0)

        # Brute force the same query.
        dim_keys = {}
        for i in range(dim.num_rows):
            row = dim.row(i)
            dim_keys[row["campaign_id"]] = row
        expected_spend = {}
        for i in range(fact.num_rows):
            row = fact.row(i)
            if (
                row["spend"] is not None
                and row["spend"] >= 100.0
                and row["is_conversion"]
                and row["campaign_id"] in dim_keys
            ):
                region = row["region"]
                expected_spend[region] = expected_spend.get(region, 0) + row["spend"]

        got = {r["region"]: r["total_spend"] for r in result.rows}
        assert set(got) == set(expected_spend)
        for region in got:
            assert got[region] == pytest.approx(expected_spend[region])

    def test_stage_counts_monotone(self):
        fact = DatasetGenerator(warehouse_fact_schema(), seed=3).generate(400)
        dim = DatasetGenerator(warehouse_dim_schema(), seed=4).generate(100)
        result = run_warehouse_query(fact, dim)
        assert result.scanned_rows == 400
        assert result.scanned_rows >= result.filtered_rows >= result.joined_rows
        assert result.groups <= result.joined_rows or result.joined_rows == 0

    def test_results_sorted_by_spend(self):
        fact = DatasetGenerator(warehouse_fact_schema(), seed=3).generate(400)
        dim = DatasetGenerator(warehouse_dim_schema(), seed=4).generate(100)
        result = run_warehouse_query(fact, dim)
        spends = [r["total_spend"] for r in result.rows]
        assert spends == sorted(spends, reverse=True)
