"""Draw-order contract of the batched columnar generator.

``DatasetGenerator.generate`` fills each column with a single batched
pass (:meth:`_column_values`); ``_value_for`` is the per-value
reference path it replaced.  Both must consume each column's named RNG
stream in the same per-row draw sequence — null draw first, then the
ordinal draw, then the kind draw — so the batched rewrite cannot have
changed a single generated value.  These tests pin that contract: a
reordered or hoisted draw in the batched loops shows up as a value
mismatch against the reference path.
"""

import pytest

from repro.data.generator import DatasetGenerator
from repro.data.schema import (
    Column,
    ColumnKind,
    TableSchema,
    warehouse_dim_schema,
    warehouse_fact_schema,
)

#: One column per kind, with nulls, skew, and bounded domains in the
#: mix so every branch of the batched loops is exercised.
ALL_KINDS_SCHEMA = TableSchema(
    "draworder",
    [
        Column("ident", ColumnKind.INT64),  # row-index identity
        Column("bucket", ColumnKind.INT64, distinct_values=20),
        Column("hot", ColumnKind.INT64, distinct_values=50, zipf_skew=0.9),
        Column("spend", ColumnKind.DOUBLE, null_fraction=0.1),
        Column("ratio", ColumnKind.DOUBLE, distinct_values=8),
        Column("flag", ColumnKind.BOOL, null_fraction=0.05),
        Column("at", ColumnKind.TIMESTAMP),
        Column("region", ColumnKind.STRING, distinct_values=16, zipf_skew=0.6),
        Column("note", ColumnKind.STRING, null_fraction=0.2, avg_string_len=12),
    ],
)


def reference_rows(schema, seed, num_rows):
    """Row-major generation through the reference `_value_for` path."""
    gen = DatasetGenerator(schema, seed=seed)
    columns = {col.name: [] for col in schema.columns}
    # Row-major iteration order: per-column streams make this produce
    # the same per-column draw sequence as a column-major pass.
    for row_index in range(num_rows):
        for col in schema.columns:
            columns[col.name].append(gen._value_for(col, row_index))
    return columns


@pytest.mark.parametrize(
    "schema",
    [ALL_KINDS_SCHEMA, warehouse_fact_schema(), warehouse_dim_schema()],
    ids=lambda s: s.name,
)
def test_batched_generate_matches_reference_path(schema):
    batched = DatasetGenerator(schema, seed=33).generate(400).columns
    assert batched == reference_rows(schema, 33, 400)


def test_row_major_equals_column_major_reference():
    """The contract that makes the batched rewrite safe at all: each
    column owns its stream, so interleaving columns (row-major) and
    finishing one column at a time (column-major) consume every stream
    identically."""
    gen = DatasetGenerator(ALL_KINDS_SCHEMA, seed=9)
    column_major = {
        col.name: [gen._value_for(col, i) for i in range(200)]
        for col in ALL_KINDS_SCHEMA.columns
    }
    assert column_major == reference_rows(ALL_KINDS_SCHEMA, 9, 200)


def test_string_streams_are_name_derived_not_order_derived():
    """Per-ordinal string spawns depend only on (column, ordinal): the
    same ordinal yields the same string no matter how many draws
    happened before it."""
    schema = TableSchema(
        "s", [Column("region", ColumnKind.STRING, distinct_values=4)]
    )
    a = DatasetGenerator(schema, seed=3)._string_value(
        schema.column("region"), 2
    )
    gen = DatasetGenerator(schema, seed=3)
    gen.generate(100)  # burn plenty of draws first
    assert gen._string_value(schema.column("region"), 2) == a
