"""Tests for suite regression detection — including the Section 5.3
kernel-regression scenario end to end."""

import pytest

from repro.analysis.regression import Verdict, compare_suite_runs
from repro.core.suite import DCPerfSuite


@pytest.fixture(scope="module")
def kernel_comparison():
    """TaoBench-only suite on the 384-thread SKU, kernel 6.4 vs 6.9."""
    suite = DCPerfSuite(benchmark_names=["taobench"], measure_seconds=0.8)
    before = suite.run("SKU-384", kernel="6.4")
    # Fresh suite so baselines re-run under the new kernel.
    suite_after = DCPerfSuite(benchmark_names=["taobench"], measure_seconds=0.8)
    after = suite_after.run("SKU-384", kernel="6.9")
    return before, after


class TestKernelScenario:
    def test_kernel_upgrade_detected_as_improvement(self, kernel_comparison):
        before, after = kernel_comparison
        report = compare_suite_runs(before, after)
        assert report.verdict is Verdict.IMPROVEMENT
        tao = report.deltas[-1]
        assert tao.benchmark == "taobench"
        assert tao.relative_change > 0.25  # the Section 5.3 magnitude

    def test_reverse_direction_is_regression(self, kernel_comparison):
        before, after = kernel_comparison
        report = compare_suite_runs(after, before)
        assert report.verdict is Verdict.REGRESSION
        assert report.worst().benchmark == "taobench"
        assert len(report.regressions()) == 1


class TestComparisonMechanics:
    def test_self_comparison_neutral(self, kernel_comparison):
        before, _ = kernel_comparison
        report = compare_suite_runs(before, before)
        assert report.verdict is Verdict.NEUTRAL
        assert not report.regressions()
        assert not report.improvements()
        assert report.suite_relative_change == pytest.approx(0.0)

    def test_mismatched_skus_rejected(self, kernel_comparison):
        before, _ = kernel_comparison
        other = DCPerfSuite(
            benchmark_names=["taobench"], measure_seconds=0.5
        ).run("SKU2")
        with pytest.raises(ValueError, match="same SKU"):
            compare_suite_runs(before, other)

    def test_threshold_validation(self, kernel_comparison):
        before, after = kernel_comparison
        with pytest.raises(ValueError):
            compare_suite_runs(before, after, noise_threshold=1.5)

    def test_deltas_sorted_worst_first(self, kernel_comparison):
        before, after = kernel_comparison
        report = compare_suite_runs(before, after)
        changes = [d.relative_change for d in report.deltas]
        assert changes == sorted(changes)
