"""Tests for load-response curves."""

import pytest

from repro.analysis.loadcurve import LoadCurve, LoadPoint, sweep_load
from repro.workloads.base import RunConfig
from repro.workloads.mediawiki import MediaWiki


@pytest.fixture(scope="module")
def mediawiki_curve():
    config = RunConfig(
        sku_name="SKU2", warmup_seconds=0.3, measure_seconds=0.6,
        load_scale=0.4,  # start below the default saturating load
    )
    return sweep_load(MediaWiki(), config, [1.0, 1.5, 2.0, 3.0])


class TestSweep:
    def test_curve_shape(self, mediawiki_curve):
        assert len(mediawiki_curve.points) == 4
        assert mediawiki_curve.workload == "mediawiki"
        # Utilization rises monotonically with offered load.
        utils = [p.cpu_util for p in mediawiki_curve.points]
        assert utils == sorted(utils)

    def test_throughput_saturates(self, mediawiki_curve):
        first = mediawiki_curve.points[0].throughput
        peak = mediawiki_curve.peak_throughput()
        assert peak > first  # load 1.0x of 0.4 base is below capacity
        # Tripling offered load does not triple goodput.
        assert mediawiki_curve.points[-1].throughput < 2.5 * first

    def test_latency_rises_with_load(self, mediawiki_curve):
        assert (
            mediawiki_curve.points[-1].p95_seconds
            > mediawiki_curve.points[0].p95_seconds
        )

    def test_knee_located(self, mediawiki_curve):
        knee = mediawiki_curve.knee_load_scale()
        assert 1.0 <= knee <= 3.0

    def test_validation(self):
        config = RunConfig(sku_name="SKU2")
        with pytest.raises(ValueError):
            sweep_load(MediaWiki(), config, [])
        with pytest.raises(ValueError):
            sweep_load(MediaWiki(), config, [2.0, 1.0])


class TestCurveFeatures:
    def make_curve(self, throughputs):
        points = [
            LoadPoint(load_scale=float(i + 1), throughput=t,
                      cpu_util=min(1.0, 0.3 * (i + 1)), p95_seconds=0.1 * (i + 1))
            for i, t in enumerate(throughputs)
        ]
        return LoadCurve(workload="w", sku="SKU2", points=points)

    def test_degrades_past_knee(self):
        degrading = self.make_curve([100.0, 200.0, 180.0, 120.0])
        flat = self.make_curve([100.0, 200.0, 201.0, 199.0])
        assert degrading.degrades_past_knee()
        assert not flat.degrades_past_knee()

    def test_saturated_flag(self):
        point = LoadPoint(1.0, 10.0, cpu_util=0.99, p95_seconds=0.2)
        assert point.saturated
