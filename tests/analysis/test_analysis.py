"""Tests for the analysis helpers."""

import pytest

from repro.analysis.fidelity import compare_profiles, projection_errors
from repro.analysis.perfwatt import normalized_perf_per_watt
from repro.analysis.tables import ascii_bar_chart, series_table
from repro.hw.sku import get_sku
from repro.uarch.projection import ProjectionEngine
from repro.workloads.profiles import BENCHMARK_PROFILES, PRODUCTION_PROFILES


class TestFidelityComparison:
    def test_benchmark_vs_production(self):
        engine = ProjectionEngine(get_sku("SKU2"))
        bench = engine.solve(BENCHMARK_PROFILES["taobench"], cpu_util=0.86)
        prod = engine.solve(PRODUCTION_PROFILES["cache-prod"], cpu_util=0.90)
        cmp = compare_profiles(bench, prod)
        assert cmp.benchmark == "taobench"
        # The paper's flagged discrepancy: TaoBench under-consumes
        # memory bandwidth vs the cache production workload.
        assert cmp.differences["membw"] < -0.2
        # But IPC is aligned within ~20%.
        assert abs(cmp.differences["ipc"]) < 0.25

    def test_within_and_worst(self):
        engine = ProjectionEngine(get_sku("SKU2"))
        bench = engine.solve(BENCHMARK_PROFILES["mediawiki"], cpu_util=0.95)
        prod = engine.solve(PRODUCTION_PROFILES["fbweb-prod"], cpu_util=0.99)
        cmp = compare_profiles(bench, prod)
        worst = cmp.worst_metric()
        assert worst in cmp.differences
        assert not cmp.within(0.0001)


class TestProjectionErrors:
    def test_basic(self):
        errors = projection_errors([1.0, 1.24, 4.65], [1.0, 1.25, 4.50])
        assert errors[0] == pytest.approx(0.0)
        assert errors[1] == pytest.approx(-0.008)
        assert errors[2] == pytest.approx(0.0333, abs=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            projection_errors([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            projection_errors([], [])
        with pytest.raises(ValueError):
            projection_errors([1.0], [0.0])


class TestPerfPerWatt:
    def test_normalization(self):
        out = normalized_perf_per_watt(
            {"a": 2.0, "b": 8.0}, {"a": 1.0, "b": 2.0}
        )
        assert out["a"] == pytest.approx(2.0)
        assert out["b"] == pytest.approx(4.0)
        assert out["dcperf"] == pytest.approx((2.0 * 4.0) ** 0.5)

    def test_mismatched_benchmarks(self):
        with pytest.raises(ValueError):
            normalized_perf_per_watt({"a": 1.0}, {"b": 1.0})

    def test_non_positive(self):
        with pytest.raises(ValueError):
            normalized_perf_per_watt({"a": 0.0}, {"a": 1.0})


class TestTables:
    def test_series_table(self):
        text = series_table(
            ["SKU1", "SKU2"], {"prod": [1.0, 1.25], "dcperf": [1.0, 1.24]}
        )
        assert "SKU2" in text
        assert "1.25" in text

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            series_table(["a"], {"s": [1.0, 2.0]})

    def test_bar_chart(self):
        chart = ascii_bar_chart({"x": 1.0, "y": 2.0})
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") > lines[0].count("#")

    def test_bar_chart_validation(self):
        with pytest.raises(ValueError):
            ascii_bar_chart({})
        with pytest.raises(ValueError):
            ascii_bar_chart({"x": 0.0})
