"""Tests for capacity planning and procurement comparison."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis.capacity import (
    cheapest,
    compare_procurement,
    most_power_efficient,
    servers_needed,
)
from repro.hw.tco import CostEffectiveness


class TestServersNeeded:
    def test_failover_headroom(self):
        # 3 regions, 2 must carry 1000 rps at <= 100% of 10 rps/server:
        # 50 servers per region x 3 regions.
        assert servers_needed(1000.0, 10.0, target_utilization=1.0, regions=3) == 150

    def test_utilization_target_inflates_fleet(self):
        relaxed = servers_needed(1000.0, 10.0, target_utilization=1.0)
        strict = servers_needed(1000.0, 10.0, target_utilization=0.5)
        assert strict == 2 * relaxed

    def test_more_regions_less_headroom(self):
        few = servers_needed(1200.0, 10.0, regions=2)
        many = servers_needed(1200.0, 10.0, regions=6)
        # 2 regions: each sized for the FULL demand; 6 regions: 1/5th.
        assert few > many

    def test_validation(self):
        with pytest.raises(ValueError):
            servers_needed(0.0, 10.0)
        with pytest.raises(ValueError):
            servers_needed(100.0, 0.0)
        with pytest.raises(ValueError):
            servers_needed(100.0, 10.0, regions=1)
        with pytest.raises(ValueError):
            servers_needed(100.0, 10.0, target_utilization=0.0)

    @given(
        demand=st.floats(1.0, 1e6),
        capacity=st.floats(0.1, 1e4),
        regions=st.integers(2, 8),
    )
    def test_fleet_survives_one_region_failure(self, demand, capacity, regions):
        util = 0.8
        total = servers_needed(demand, capacity, util, regions)
        per_region = total // regions
        surviving = per_region * (regions - 1)
        assert surviving * capacity * util >= demand * 0.999


def record(sku, perf, watts, tco):
    return CostEffectiveness(
        sku=sku, performance=perf, average_power_w=watts, tco_per_year_usd=tco
    )


class TestProcurementComparison:
    def setup_method(self):
        self.candidates = [
            record("dense", 2000.0, 600.0, 6000.0),
            record("efficient", 500.0, 120.0, 3500.0),
        ]

    def test_fleet_totals(self):
        options = compare_procurement(self.candidates, total_demand=100_000.0)
        dense = options["dense"]
        assert dense.servers == servers_needed(100_000.0, 2000.0)
        assert dense.fleet_power_w == dense.servers * 600.0
        assert dense.fleet_tco_per_year_usd == dense.servers * 6000.0

    def test_winners_can_differ(self):
        options = compare_procurement(self.candidates, total_demand=100_000.0)
        assert most_power_efficient(options) == "efficient"
        assert cheapest(options) == "dense"

    def test_empty_candidates(self):
        with pytest.raises(ValueError):
            compare_procurement([], total_demand=100.0)
