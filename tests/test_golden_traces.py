"""Golden-trace determinism suite.

Runs every named DCPerf workload (fault-free) plus every named fault
scenario through the old-API surface (``execute_point`` → normalized
report codec) and asserts the canonical report JSON is byte-identical
to digests recorded *before* the sim-engine fast path landed.

These digests pin the simulator's observable behavior: any engine,
load-generator, or runner change that perturbs event ordering, RNG
draw order, or float arithmetic shows up here as a digest mismatch.
Early termination is explicitly disabled (``early_stop=False``) so the
measured window matches the pre-fast-path engine exactly.

Regenerate (only when an *intentional* model/behavior change lands)::

    PYTHONPATH=src python tests/test_golden_traces.py --regen
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import fields

import pytest

from repro.exec.executor import execute_point
from repro.exec.spec import RunPoint

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data", "golden_reports.json")

BENCHMARKS = [
    "mediawiki",
    "djangobench",
    "feedsim",
    "taobench",
    "sparkbench",
    "videotranscode",
    "storagebench",
    "llmbench-chat",
    "llmbench-codegen",
    "llmbench-long_reasoning",
]
FAULT_SCENARIOS = [
    "brownout",
    "blackout",
    "flaky_network",
    "noisy_neighbor",
    "disk_degraded",
    "brownout_degraded_disk",
    "flaky_network_compaction",
    "overload_shed",
]


def _make_point(benchmark: str, faults: str = "") -> RunPoint:
    """A short, fully pinned run; early termination off when supported."""
    kwargs = dict(
        benchmark=benchmark,
        sku="SKU2",
        seed=11,
        measure_seconds=0.5,
        warmup_seconds=0.2,
        faults=faults,
    )
    if any(f.name == "early_stop" for f in fields(RunPoint)):
        kwargs["early_stop"] = False
    return RunPoint(**kwargs)


def golden_points():
    """(case name, point) for every workload and fault scenario."""
    cases = [(name, _make_point(name)) for name in BENCHMARKS]
    cases += [
        (f"taobench+{scenario}", _make_point("taobench", faults=scenario))
        for scenario in FAULT_SCENARIOS
    ]
    # The device-channel fault against the device-backed workload: the
    # pair that pins compaction interference (stalls, iostat section).
    cases.append(
        (
            "storagebench+disk_degraded",
            _make_point("storagebench", faults="disk_degraded"),
        )
    )
    # The compound storage scenario against the device-backed workload:
    # pins admission control and stall-time SLO folding together.
    cases.append(
        (
            "storagebench+flaky_network_compaction",
            _make_point("storagebench", faults="flaky_network_compaction"),
        )
    )
    # The SLO control plane against the token-serving workload: pins
    # turn shedding plus the token-level TTFT/ITL SLO pass-through.
    cases.append(
        (
            "llmbench-chat+overload_shed",
            _make_point("llmbench-chat", faults="overload_shed"),
        )
    )
    return cases


def report_digest(point: RunPoint) -> str:
    """SHA-256 over the canonical JSON of the point's report."""
    report = execute_point(point)
    canon = json.dumps(report.as_dict(), sort_keys=True)
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


def _load_goldens() -> dict:
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


@pytest.mark.parametrize(
    "case,point", golden_points(), ids=[c for c, _ in golden_points()]
)
def test_report_matches_golden_digest(case, point):
    goldens = _load_goldens()
    assert case in goldens, (
        f"no golden recorded for {case}; run "
        "`PYTHONPATH=src python tests/test_golden_traces.py --regen`"
    )
    digest = report_digest(point)
    assert digest == goldens[case]["digest"], (
        f"{case}: report diverged from the pre-fast-path golden trace "
        f"(got {digest}, want {goldens[case]['digest']}). The simulator's "
        "observable behavior changed — if intentional, regenerate the "
        "goldens; otherwise the fast path broke determinism."
    )


def test_goldens_cover_every_workload_and_scenario():
    goldens = _load_goldens()
    for case, _ in golden_points():
        assert case in goldens


def _regen() -> None:
    payload = {}
    for case, point in golden_points():
        digest = report_digest(point)
        payload[case] = {"digest": digest, "point": point.as_dict()}
        print(f"{case:28s} {digest}")
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
