"""Tests for hashing-tax functions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dctax.hashing import consistent_bucket, fingerprint64, hash_bytes


class TestFingerprint64:
    def test_deterministic(self):
        assert fingerprint64(b"key") == fingerprint64(b"key")

    def test_64bit_range(self):
        for data in (b"", b"a", b"hello world" * 100):
            assert 0 <= fingerprint64(data) < 2**64

    @given(a=st.binary(max_size=64), b=st.binary(max_size=64))
    @settings(max_examples=100)
    def test_distinct_inputs_rarely_collide(self, a, b):
        if a != b:
            assert fingerprint64(a) != fingerprint64(b)

    def test_avalanche(self):
        """Flipping one bit should change about half the output bits."""
        h1 = fingerprint64(b"key0")
        h2 = fingerprint64(b"key1")
        flipped = bin(h1 ^ h2).count("1")
        assert 16 <= flipped <= 48


class TestHashBytes:
    def test_sha256_length(self):
        assert len(hash_bytes(b"data", "sha256")) == 32

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            hash_bytes(b"data", "sha9000")


class TestConsistentBucket:
    def test_range(self):
        for key in range(200):
            assert 0 <= consistent_bucket(key, 16) < 16

    def test_single_bucket(self):
        assert consistent_bucket(12345, 1) == 0

    def test_invalid_bucket_count(self):
        with pytest.raises(ValueError):
            consistent_bucket(1, 0)

    def test_deterministic(self):
        assert consistent_bucket(987, 64) == consistent_bucket(987, 64)

    @given(key=st.integers(min_value=0, max_value=2**63))
    @settings(max_examples=100)
    def test_growth_moves_few_keys(self, key):
        """Jump hash invariant: adding a bucket either keeps the key in
        place or moves it to the NEW bucket — never shuffles among old
        buckets."""
        before = consistent_bucket(key, 10)
        after = consistent_bucket(key, 11)
        assert after == before or after == 10

    def test_distribution_roughly_uniform(self):
        counts = [0] * 8
        for key in range(8000):
            counts[consistent_bucket(fingerprint64(str(key).encode()), 8)] += 1
        assert max(counts) < 2 * min(counts)
