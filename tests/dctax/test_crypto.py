"""Tests for the TLS record model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dctax.crypto import CryptoError, TlsSessionModel, hkdf_extract_expand

KEY = b"0123456789abcdef0123456789abcdef"


class TestHkdf:
    def test_length(self):
        for length in (16, 32, 64, 100):
            assert len(hkdf_extract_expand(KEY, b"salt", length)) == length

    def test_deterministic_and_salt_sensitive(self):
        a = hkdf_extract_expand(KEY, b"salt1")
        b = hkdf_extract_expand(KEY, b"salt1")
        c = hkdf_extract_expand(KEY, b"salt2")
        assert a == b != c

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            hkdf_extract_expand(KEY, b"s", 0)


class TestTlsSession:
    def test_seal_open_roundtrip(self):
        session = TlsSessionModel(KEY)
        assert session.open(session.seal(b"hello")) == b"hello"

    @given(payload=st.binary(max_size=2000))
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_payloads(self, payload):
        session = TlsSessionModel(KEY)
        assert session.open(session.seal(payload)) == payload

    def test_sequence_numbers_differ(self):
        session = TlsSessionModel(KEY)
        r1 = session.seal(b"same")
        r2 = session.seal(b"same")
        assert r1 != r2  # distinct seq -> distinct keystream

    def test_tamper_detected(self):
        session = TlsSessionModel(KEY)
        record = bytearray(session.seal(b"secret"))
        record[9] ^= 0x01
        with pytest.raises(CryptoError):
            session.open(bytes(record))

    def test_truncated_record(self):
        session = TlsSessionModel(KEY)
        with pytest.raises(CryptoError):
            session.open(b"tooshort")

    def test_ciphertext_hides_plaintext(self):
        session = TlsSessionModel(KEY)
        record = session.seal(b"findme-findme-findme")
        assert b"findme" not in record

    def test_short_key_rejected(self):
        with pytest.raises(ValueError):
            TlsSessionModel(b"short")
