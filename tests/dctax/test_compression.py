"""Tests for the compression codecs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dctax.compression import (
    CompressionError,
    SnappyLikeCodec,
    ZlibCodec,
    get_codec,
)

CODECS = [ZlibCodec(), SnappyLikeCodec()]


class TestRoundTrip:
    @pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)
    def test_empty(self, codec):
        assert codec.decompress(codec.compress(b"")) == b""

    @pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)
    def test_repetitive_data_compresses(self, codec):
        data = b"abcdefgh" * 500
        compressed = codec.compress(data)
        assert len(compressed) < len(data) / 2
        assert codec.decompress(compressed) == data

    @pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)
    @given(data=st.binary(max_size=4096))
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_bytes(self, codec, data):
        assert codec.decompress(codec.compress(data)) == data

    @pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)
    def test_overlapping_runs(self, codec):
        # Run-length-style input exercises overlapping copies.
        data = b"a" * 10000
        assert codec.decompress(codec.compress(data)) == data


class TestErrors:
    def test_zlib_corrupt(self):
        with pytest.raises(CompressionError):
            ZlibCodec().decompress(b"not zlib data")

    def test_snappy_truncated_header(self):
        with pytest.raises(CompressionError):
            SnappyLikeCodec().decompress(b"\x00\x00")

    def test_snappy_bad_tag(self):
        codec = SnappyLikeCodec()
        wire = bytearray(codec.compress(b"hello world"))
        wire[4] = 99  # corrupt the first element tag
        with pytest.raises(CompressionError):
            codec.decompress(bytes(wire))

    def test_snappy_length_mismatch(self):
        codec = SnappyLikeCodec()
        wire = bytearray(codec.compress(b"hello"))
        wire[3] = 200  # lie about the uncompressed length
        with pytest.raises(CompressionError):
            codec.decompress(bytes(wire))

    def test_zlib_level_validation(self):
        with pytest.raises(ValueError):
            ZlibCodec(level=0)


class TestRegistry:
    def test_get_codec(self):
        assert get_codec("zlib").name == "zlib"
        assert get_codec("snappy-like").name == "snappy-like"

    def test_unknown_codec(self):
        with pytest.raises(KeyError):
            get_codec("zstd")

    def test_ratio(self):
        assert ZlibCodec().ratio(b"x" * 1000) > 5.0
        assert ZlibCodec().ratio(b"") == 1.0
