"""Tests for serialization, memory ops, accounting, microbenchmarks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dctax.accounting import CycleAccountant
from repro.dctax.memory_ops import checked_copy, scatter_gather, split_at_offsets
from repro.dctax.microbench import ALL_MICROBENCHMARKS, make_payload, run_all
from repro.dctax.serialization import deserialize_record, serialize_record
from repro.uarch.characteristics import TaxProfile


class TestSerialization:
    def test_roundtrip(self):
        record = {"id": 7, "name": "alice", "score": 1.5, "tags": [1, 2]}
        out = deserialize_record(serialize_record(record))
        assert out["id"] == 7
        assert out["name"] == b"alice"
        assert out["score"] == 1.5
        assert out["tags"] == [1, 2]

    def test_empty_record(self):
        assert deserialize_record(serialize_record({})) == {}

    @given(
        record=st.dictionaries(
            st.text(min_size=1, max_size=10),
            st.integers(min_value=-(2**31), max_value=2**31),
            max_size=8,
        )
    )
    @settings(max_examples=40)
    def test_integer_records(self, record):
        assert deserialize_record(serialize_record(record)) == record


class TestMemoryOps:
    def test_checked_copy(self):
        data = b"payload"
        copy = checked_copy(data)
        assert copy == data and copy is not data

    def test_copy_guard(self):
        with pytest.raises(ValueError):
            checked_copy(b"xxxx", max_bytes=2)

    @given(buffers=st.lists(st.binary(max_size=50), max_size=8))
    @settings(max_examples=40)
    def test_scatter_gather_roundtrip(self, buffers):
        joined, offsets = scatter_gather(buffers)
        assert split_at_offsets(joined, offsets) == list(buffers)

    def test_split_validation(self):
        with pytest.raises(ValueError):
            split_at_offsets(b"abc", [2, 1])


class TestAccounting:
    def test_breakdown_normalizes(self):
        acc = CycleAccountant()
        acc.charge("app:logic", 60.0)
        acc.charge("rpc", 30.0)
        acc.charge("compression", 10.0)
        b = acc.breakdown()
        assert b.app_fraction == pytest.approx(0.6)
        assert b.tax_fraction == pytest.approx(0.4)
        assert b.share("rpc") == pytest.approx(0.3)

    def test_charge_profile(self):
        acc = CycleAccountant()
        profile = TaxProfile({"app:x": 0.7, "rpc": 0.3})
        acc.charge_profile(profile, 1000.0)
        assert acc.cycles["rpc"] == pytest.approx(300.0)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            CycleAccountant().charge("rpc", -1.0)

    def test_empty_breakdown(self):
        b = CycleAccountant().breakdown()
        assert b.shares == {}

    def test_top_categories(self):
        acc = CycleAccountant()
        for name, amount in (("a", 5.0), ("b", 3.0), ("c", 2.0)):
            acc.charge(name, amount)
        top = acc.breakdown().top_categories(2)
        assert list(top) == ["a", "b"]


class TestMicrobench:
    def test_payload_deterministic(self):
        assert make_payload(256, seed=1) == make_payload(256, seed=1)
        assert make_payload(256, seed=1) != make_payload(256, seed=2)

    def test_payload_validation(self):
        with pytest.raises(ValueError):
            make_payload(-1)
        with pytest.raises(ValueError):
            make_payload(10, entropy=2.0)

    @pytest.mark.parametrize("name", sorted(ALL_MICROBENCHMARKS))
    def test_each_microbenchmark_runs(self, name):
        result = ALL_MICROBENCHMARKS[name]()
        assert result.operations > 0
        assert result.ops_per_second > 0

    def test_run_all_covers_registry(self):
        results = run_all()
        assert set(results) == set(ALL_MICROBENCHMARKS)
