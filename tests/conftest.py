"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.hw.sku import get_sku
from repro.sim.engine import Environment
from repro.workloads.base import RunConfig


@pytest.fixture
def env() -> Environment:
    return Environment()


@pytest.fixture
def sku1():
    return get_sku("SKU1")


@pytest.fixture
def sku2():
    return get_sku("SKU2")


@pytest.fixture
def sku4():
    return get_sku("SKU4")


@pytest.fixture
def quick_config() -> RunConfig:
    """A short measurement window for fast workload tests."""
    return RunConfig(
        sku_name="SKU2",
        kernel_version="6.9",
        seed=7,
        warmup_seconds=0.3,
        measure_seconds=0.8,
    )
