"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import tempfile

import pytest

from repro.hw.sku import get_sku
from repro.sim.engine import Environment
from repro.workloads.base import RunConfig


@pytest.fixture(scope="session", autouse=True)
def _isolated_run_cache():
    """Point the persistent run cache at a session-private temp dir.

    Keeps the test suite hermetic: runs neither read stale entries from
    nor leak entries into the developer's ``~/.cache/dcperf-repro``.
    Within the session the cache still works, which is what the
    executor tests exercise.
    """
    if os.environ.get("DCPERF_CACHE_DIR"):
        # CI already sandboxed the cache (tools/ci.sh); respect it.
        yield
        return
    with tempfile.TemporaryDirectory(prefix="dcperf-test-cache-") as tmp:
        os.environ["DCPERF_CACHE_DIR"] = tmp
        try:
            yield
        finally:
            os.environ.pop("DCPERF_CACHE_DIR", None)


@pytest.fixture
def env() -> Environment:
    return Environment()


@pytest.fixture
def sku1():
    return get_sku("SKU1")


@pytest.fixture
def sku2():
    return get_sku("SKU2")


@pytest.fixture
def sku4():
    return get_sku("SKU4")


@pytest.fixture
def quick_config() -> RunConfig:
    """A short measurement window for fast workload tests."""
    return RunConfig(
        sku_name="SKU2",
        kernel_version="6.9",
        seed=7,
        warmup_seconds=0.3,
        measure_seconds=0.8,
    )
