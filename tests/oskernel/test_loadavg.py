"""Tests for the scheduler-overhead fixed point."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.oskernel.kernel import KERNEL_6_4, KERNEL_6_9
from repro.oskernel.loadavg import LoadAvgContentionModel


class TestFixedPoint:
    def test_zero_rate_zero_overhead(self):
        model = LoadAvgContentionModel(KERNEL_6_4)
        result = model.solve(0.0, 176, 2.2)
        assert result.overhead_fraction == 0.0

    def test_converges(self):
        model = LoadAvgContentionModel(KERNEL_6_4)
        result = model.solve(3e6, 384, 2.3)
        assert result.iterations < 20
        # Self-consistency: recomputing from the converged rate agrees.
        capacity = 384 * 2.3e9
        expected = result.switch_rate_per_sec * result.per_event_cost_cycles / capacity
        assert result.overhead_fraction == pytest.approx(expected, rel=1e-3)

    def test_kernel_64_much_worse_on_many_cores(self):
        rate = 4e6
        o64 = LoadAvgContentionModel(KERNEL_6_4).solve(rate, 384, 2.3)
        o69 = LoadAvgContentionModel(KERNEL_6_9).solve(rate, 384, 2.3)
        assert o64.overhead_fraction > 5 * o69.overhead_fraction

    def test_kernels_similar_on_176(self):
        """The paper: only ~3% difference at 176 cores."""
        rate = 2.5e6
        o64 = LoadAvgContentionModel(KERNEL_6_4).solve(rate, 176, 2.2)
        o69 = LoadAvgContentionModel(KERNEL_6_9).solve(rate, 176, 2.2)
        assert abs(o64.overhead_fraction - o69.overhead_fraction) < 0.05

    def test_input_validation(self):
        model = LoadAvgContentionModel(KERNEL_6_4)
        with pytest.raises(ValueError):
            model.solve(-1.0, 176, 2.2)
        with pytest.raises(ValueError):
            model.solve(1e6, 0, 2.2)
        with pytest.raises(ValueError):
            model.solve(1e6, 176, 0.0)

    @given(
        rate=st.floats(0.0, 2e7),
        cores=st.integers(1, 512),
        freq=st.floats(1.0, 4.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_overhead_bounded(self, rate, cores, freq):
        result = LoadAvgContentionModel(KERNEL_6_4).solve(rate, cores, freq)
        assert 0.0 <= result.overhead_fraction <= 0.9
        assert result.switch_rate_per_sec <= rate
