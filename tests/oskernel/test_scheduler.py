"""Tests for the discrete-event CPU scheduler."""

import pytest

from repro.oskernel.kernel import KERNEL_6_4, KERNEL_6_9
from repro.oskernel.scheduler import CpuScheduler
from repro.sim.engine import Environment


def make_scheduler(env, cores=4, speedup=1.0, kernel=KERNEL_6_9):
    return CpuScheduler(
        env=env, logical_cores=cores, freq_ghz=2.0, kernel=kernel,
        single_thread_speedup=speedup,
    )


class TestExecute:
    def test_burst_accounting(self, env):
        sched = make_scheduler(env)

        def proc():
            yield from sched.execute(1.0, 0.25)

        env.process(proc())
        env.run()
        assert sched.stats.dispatch_count == 1
        assert sched.stats.kernel_seconds == pytest.approx(0.25)
        assert sched.stats.busy_seconds > 1.25  # includes overhead

    def test_dispatch_overhead_charged(self, env):
        sched = make_scheduler(env)
        overhead = sched.dispatch_overhead_seconds
        assert overhead > 0

        def proc():
            yield from sched.execute(0.0, 0.0, dispatches=10)

        env.process(proc())
        env.run()
        assert sched.stats.overhead_seconds == pytest.approx(overhead * 10)
        assert sched.stats.dispatch_count == 10

    def test_cores_limit_parallelism(self, env):
        sched = make_scheduler(env, cores=2)
        finished = []

        def proc(i):
            yield from sched.execute(1.0)
            finished.append((i, env.now))

        for i in range(4):
            env.process(proc(i))
        env.run()
        # Two waves of two: second wave ends about twice as late.
        assert finished[1][1] < finished[2][1]

    def test_validation(self, env):
        sched = make_scheduler(env)
        with pytest.raises(ValueError):
            list(sched.execute(-1.0))
        with pytest.raises(ValueError):
            list(sched.execute(1.0, dispatches=0))


class TestSmtInterference:
    def test_light_occupancy_runs_faster(self, env):
        sched = make_scheduler(env, cores=4, speedup=1.5)
        times = []

        def lone():
            start = env.now
            yield from sched.execute(1.5)
            times.append(env.now - start)

        env.process(lone())
        env.run()
        # Only 1 of 4 cores busy -> full speedup.
        assert times[0] == pytest.approx(1.5 / 1.5, rel=0.05)

    def test_full_occupancy_runs_at_calibrated_speed(self, env):
        sched = make_scheduler(env, cores=2, speedup=1.5)
        times = []

        def worker():
            start = env.now
            yield from sched.execute(1.0)
            times.append(env.now - start)

        # Saturate: 4 jobs on 2 cores.
        for _ in range(4):
            env.process(worker())
        env.run()
        # The last dispatched jobs run at occupancy 1.0 -> speedup 1.0.
        assert max(times) >= 0.99

    def test_speedup_validation(self, env):
        with pytest.raises(ValueError):
            make_scheduler(env, speedup=0.8)


class TestKernelSensitivity:
    def test_64_overhead_exceeds_69_on_many_cores(self, env):
        s64 = CpuScheduler(env, logical_cores=384, freq_ghz=2.3, kernel=KERNEL_6_4)
        s69 = CpuScheduler(env, logical_cores=384, freq_ghz=2.3, kernel=KERNEL_6_9)
        assert s64.dispatch_overhead_seconds > 3 * s69.dispatch_overhead_seconds


class TestStats:
    def test_util_windows(self, env):
        sched = make_scheduler(env, cores=2)

        def proc():
            yield from sched.execute(2.0)

        env.process(proc())
        env.run()
        util = sched.stats.cpu_util(env.now, 2)
        assert 0.4 < util <= 1.0
        sched.stats.reset(env.now)
        assert sched.stats.cpu_util(env.now + 1.0, 2) == 0.0


class TestOverheadCache:
    def test_freq_change_invalidates_cache(self, env):
        """The fault injector mutates ``freq_ghz`` at runtime (throttle
        faults); the cached overhead must follow it exactly."""
        sched = make_scheduler(env)
        base = sched.dispatch_overhead_seconds
        sched.freq_ghz = 1.0  # throttled
        throttled = sched.dispatch_overhead_seconds
        assert throttled > base
        expected = (
            sched.kernel.context_switch_us * 1e-6
            + sched.kernel.loadavg_cost_cycles(sched.logical_cores) / 1e9
        )
        assert throttled == expected
        sched.freq_ghz = 2.0  # restored
        assert sched.dispatch_overhead_seconds == base

    def test_cached_value_matches_direct_formula(self, env):
        for kernel in (KERNEL_6_4, KERNEL_6_9):
            sched = make_scheduler(env, cores=176, kernel=kernel)
            expected = kernel.context_switch_us * 1e-6 + kernel.loadavg_cost_cycles(
                176
            ) / (sched.freq_ghz * 1e9)
            assert sched.dispatch_overhead_seconds == expected

    def test_speedup_table_matches_formula(self, env):
        sched = make_scheduler(env, cores=8, speedup=1.5)
        for count in range(9):
            occupancy = count / 8
            if occupancy <= 0.5:
                expected = 1.5
            else:
                expected = 1.5 - ((occupancy - 0.5) / 0.5) * 0.5
            assert sched._speedup_by_count[count] == expected

    def test_speedup_table_flat_without_smt(self, env):
        sched = make_scheduler(env, cores=4, speedup=1.0)
        assert sched._speedup_by_count == [1.0] * 5
