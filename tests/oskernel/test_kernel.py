"""Tests for kernel-version descriptors."""

import pytest

from repro.oskernel.kernel import KERNEL_6_4, KERNEL_6_9, KernelVersion, get_kernel


class TestKernelVersions:
    def test_lookup(self):
        assert get_kernel("6.4") is KERNEL_6_4
        assert get_kernel("6.9") is KERNEL_6_9

    def test_unknown_version(self):
        with pytest.raises(KeyError, match="6.4"):
            get_kernel("5.10")

    def test_ratelimit_difference(self):
        """The commit-1528c661 effect: 6.9 rate-limits load_avg updates."""
        assert KERNEL_6_4.loadavg_update_ratio == 1.0
        assert KERNEL_6_9.loadavg_update_ratio < 0.05


class TestLoadAvgCost:
    def test_superlinear_growth_with_cores(self):
        c176 = KERNEL_6_4.loadavg_cost_cycles(176)
        c384 = KERNEL_6_4.loadavg_cost_cycles(384)
        core_ratio = 384 / 176
        assert c384 / c176 > core_ratio**2  # superlinear

    def test_small_machines_barely_affected(self):
        assert KERNEL_6_4.loadavg_cost_cycles(36) < 0.05 * KERNEL_6_4.loadavg_cost_cycles(384)

    def test_kernel_69_cheap_everywhere(self):
        for cores in (36, 176, 384):
            assert KERNEL_6_9.loadavg_cost_cycles(cores) <= (
                0.05 * KERNEL_6_4.loadavg_cost_cycles(cores)
            )

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            KERNEL_6_4.loadavg_cost_cycles(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            KernelVersion(version="x", context_switch_us=0.0)
        with pytest.raises(ValueError):
            KernelVersion(version="x", loadavg_update_ratio=1.5)
