"""Tests for the syscall cost table."""

import pytest

from repro.oskernel.syscalls import (
    SYSCALL_TABLE,
    request_kernel_time_us,
    syscall_cost_us,
)


class TestSyscallCosts:
    def test_single_cost(self):
        assert syscall_cost_us("read") == SYSCALL_TABLE["read"]

    def test_count_multiplies(self):
        assert syscall_cost_us("send", 10) == pytest.approx(
            10 * SYSCALL_TABLE["send"]
        )

    def test_zero_count(self):
        assert syscall_cost_us("read", 0) == 0.0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            syscall_cost_us("read", -1)

    def test_unknown_syscall(self):
        with pytest.raises(KeyError, match="epoll_wait"):
            syscall_cost_us("bogus_call")

    def test_request_mix(self):
        mix = {"recv": 1, "send": 1, "epoll_wait": 2}
        expected = (
            SYSCALL_TABLE["recv"] + SYSCALL_TABLE["send"] + 2 * SYSCALL_TABLE["epoll_wait"]
        )
        assert request_kernel_time_us(mix) == pytest.approx(expected)

    def test_all_costs_positive(self):
        assert all(cost > 0 for cost in SYSCALL_TABLE.values())
