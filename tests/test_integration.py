"""Cross-module integration tests.

These exercise the full stack — workload model on the simulated server
with calibrated profiles, wrapped by the DCPerf framework with hooks —
and check the paper's headline relationships end to end.
"""

import pytest

from repro.core.benchmark import Benchmark
from repro.core.suite import DCPerfSuite
from repro.workloads.base import RunConfig
from repro.workloads.registry import dcperf_benchmarks


QUICK = RunConfig(sku_name="SKU2", warmup_seconds=0.3, measure_seconds=0.6)


class TestEveryBenchmarkEndToEnd:
    @pytest.mark.parametrize("name", dcperf_benchmarks())
    def test_full_report(self, name):
        report = Benchmark.by_name(name).run(QUICK)
        assert report.metric_value > 0
        assert 0 < report.result.cpu_util <= 1.0
        assert report.result.steady is not None
        assert report.hook_sections["topdown"]
        assert report.system["sku"] == "SKU2"

    @pytest.mark.parametrize("name", dcperf_benchmarks())
    def test_deterministic_given_seed(self, name):
        a = Benchmark.by_name(name).run(QUICK)
        b = Benchmark.by_name(name).run(QUICK)
        assert a.metric_value == pytest.approx(b.metric_value, rel=1e-9)


class TestPaperHeadlines:
    """The claims a reader would check first."""

    def test_fidelity_utilization_ordering(self):
        """Figure 9's qualitative ordering: web saturates, caching runs
        hot but not saturated, ranking is SLO-bound in the middle."""
        results = {
            name: Benchmark.by_name(name).run(QUICK).result
            for name in ("mediawiki", "taobench", "feedsim")
        }
        assert results["mediawiki"].cpu_util > results["taobench"].cpu_util - 0.05
        assert results["taobench"].cpu_util > results["feedsim"].cpu_util

    def test_kernel_time_ordering(self):
        """Figure 9: caching spends far more time in the kernel than
        media processing."""
        tao = Benchmark.by_name("taobench").run(QUICK).result
        video = Benchmark.by_name("videotranscode").run(QUICK).result
        assert tao.kernel_util > 4 * video.kernel_util

    def test_icache_pressure_ordering(self):
        """Figure 8: web and caching stress the I-cache; spark barely."""
        mw = Benchmark.by_name("mediawiki").run(QUICK).result
        spark = Benchmark.by_name("sparkbench").run(RunConfig(sku_name="SKU2")).result
        assert mw.steady.misses.l1i_mpki > 2 * spark.steady.misses.l1i_mpki

    def test_spark_has_highest_ipc(self):
        """Figure 6: Spark's IPC (2.6) towers over web (~1.0-1.4)."""
        spark = Benchmark.by_name("sparkbench").run(RunConfig(sku_name="SKU2")).result
        dj = Benchmark.by_name("djangobench").run(QUICK).result
        assert spark.steady.ipc_per_physical_core > 1.5 * dj.steady.ipc_per_physical_core


class TestSuiteAcrossSkus:
    def test_two_sku_suite_scaling(self):
        suite = DCPerfSuite(
            benchmark_names=["taobench", "videotranscode"], measure_seconds=0.5
        )
        sku1 = suite.run("SKU1")
        sku2 = suite.run("SKU2")
        assert sku1.overall_score == pytest.approx(1.0)
        # SKU2 has 1.44x the cores; suite score improves but less than
        # a naive core-count ratio once per-core regression is priced.
        assert 1.1 < sku2.overall_score < 1.8
