"""Tests for the sweep executor: dedup, caching, determinism."""

import pytest

from repro.core.suite import DCPerfSuite
from repro.exec.cache import RunCache
from repro.exec.executor import SweepExecutor, auto_workers, execute_point
from repro.exec.spec import RunPoint

FAST = dict(measure_seconds=0.5, warmup_seconds=0.2)


def fast_point(benchmark="taobench", **kwargs):
    return RunPoint(benchmark=benchmark, **{**FAST, **kwargs})


class TestSweepExecutor:
    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            SweepExecutor(max_workers=0)

    def test_auto_workers_positive(self):
        assert auto_workers() >= 1

    def test_dedupes_repeated_points(self):
        executor = SweepExecutor(max_workers=1, cache=None, use_cache=False)
        point = fast_point()
        reports = executor.run([point, point, point])
        stats = executor.last_stats
        assert stats.total_points == 3
        assert stats.unique_points == 1
        assert stats.executed == 1
        assert stats.pool_mode == "inproc"
        assert stats.workers == 1
        assert len(reports) == 3
        # Fresh object per position: scoring mutates .score in place.
        assert len({id(r) for r in reports}) == 3
        assert reports[0].as_dict() == reports[1].as_dict()

    def test_preserves_spec_order(self):
        executor = SweepExecutor(max_workers=1, cache=None, use_cache=False)
        points = [fast_point("feedsim"), fast_point("taobench")]
        reports = executor.run(points)
        assert [r.benchmark for r in reports] == ["feedsim", "taobench"]

    def test_cache_round_trip(self, tmp_path):
        cache = RunCache(str(tmp_path))
        executor = SweepExecutor(max_workers=1, cache=cache)
        point = fast_point()
        first = executor.run([point])
        assert executor.last_stats.executed == 1
        assert executor.last_stats.cache_hits == 0

        second = executor.run([point])
        assert executor.last_stats.executed == 0
        assert executor.last_stats.cache_hits == 1
        assert first[0].as_dict() == second[0].as_dict()

    def test_cached_report_identical_across_instances(self, tmp_path):
        """A payload loaded from disk must decode to the same report
        the original run produced — the codec is lossless."""
        cache_dir = str(tmp_path)
        point = fast_point("feedsim")
        fresh = SweepExecutor(
            max_workers=1, cache=RunCache(cache_dir)
        ).run([point])
        warm = SweepExecutor(
            max_workers=1, cache=RunCache(cache_dir)
        ).run([point])
        assert fresh[0].as_dict() == warm[0].as_dict()

    def test_execute_point_matches_executor(self):
        point = fast_point()
        via_executor = SweepExecutor(
            max_workers=1, cache=None, use_cache=False
        ).run([point])[0]
        direct = execute_point(point)
        assert direct.as_dict() == via_executor.as_dict()


class TestParallelDeterminism:
    """ISSUE acceptance: parallel output is byte-identical to serial —
    on the warm path and on the cold fallback alike."""

    @pytest.mark.parametrize("warm", [True, False], ids=["warm", "cold"])
    def test_pooled_matches_serial(self, warm):
        points = [
            fast_point("taobench", sku="SKU1"),
            fast_point("taobench", sku="SKU2"),
            fast_point("feedsim", sku="SKU1"),
            fast_point("feedsim", sku="SKU2"),
        ]
        serial = SweepExecutor(max_workers=1, cache=None, use_cache=False)
        pooled = SweepExecutor(
            max_workers=4, cache=None, use_cache=False, warm_pool=warm
        )
        serial_reports = serial.run(points)
        pooled_reports = pooled.run(points)
        assert pooled.last_stats.workers > 1
        assert pooled.last_stats.pool_mode == ("warm" if warm else "cold")
        assert [r.as_dict() for r in serial_reports] == [
            r.as_dict() for r in pooled_reports
        ]

    def test_workers_capped_by_todo_not_max_workers(self):
        """Satellite: ``stats.workers`` reports the parallelism actually
        used — 2 points on a 16-worker executor is 2 workers, and a
        fully cached sweep runs on no pool at all."""
        points = [fast_point("taobench"), fast_point("feedsim")]
        executor = SweepExecutor(max_workers=16, cache=None, use_cache=False)
        executor.run(points)
        assert executor.last_stats.workers == 2

    def test_fully_cached_sweep_reports_inproc(self, tmp_path):
        from repro.exec.cache import RunCache

        points = [fast_point("taobench"), fast_point("feedsim")]
        SweepExecutor(max_workers=4, cache=RunCache(str(tmp_path))).run(points)
        warm = SweepExecutor(max_workers=4, cache=RunCache(str(tmp_path)))
        warm.run(points)
        stats = warm.last_stats
        assert stats.cache_hits == 2 and stats.executed == 0
        assert stats.pool_mode == "inproc"
        assert stats.workers == 1

    def test_stats_dict_has_pool_fields(self):
        executor = SweepExecutor(max_workers=1, cache=None, use_cache=False)
        executor.run([fast_point()])
        payload = executor.last_stats.as_dict()
        for field in ("pool_mode", "spawned", "reused", "respawned",
                      "bytes_shipped"):
            assert field in payload

    def test_suite_parallel_matches_serial(self):
        names = ["taobench", "feedsim"]
        serial_suite = DCPerfSuite(
            benchmark_names=names,
            measure_seconds=0.5,
            executor=SweepExecutor(max_workers=1, cache=None, use_cache=False),
        )
        parallel_suite = DCPerfSuite(
            benchmark_names=names,
            measure_seconds=0.5,
            executor=SweepExecutor(max_workers=4, cache=None, use_cache=False),
        )
        serial_report = serial_suite.run("SKU2")
        parallel_report = parallel_suite.run("SKU2")
        assert serial_report.as_dict() == parallel_report.as_dict()


class TestBaselineIsolation:
    """ISSUE satellite: suites with different measurement windows
    sharing one cache directory must not cross-contaminate baselines."""

    def test_measure_seconds_do_not_cross_contaminate(self, tmp_path):
        names = ["taobench"]
        short = DCPerfSuite(
            benchmark_names=names,
            measure_seconds=0.5,
            executor=SweepExecutor(
                max_workers=1, cache=RunCache(str(tmp_path))
            ),
        )
        long = DCPerfSuite(
            benchmark_names=names,
            measure_seconds=1.0,
            executor=SweepExecutor(
                max_workers=1, cache=RunCache(str(tmp_path))
            ),
        )
        # Each suite scores its own baseline SKU at exactly 1.0: if the
        # second suite reused the first's baseline (as a name-keyed
        # scoreboard would), its metric under the longer window would
        # divide by the short-window baseline instead.
        short_scores = short.run("SKU1").scores
        long_scores = long.run("SKU1").scores
        assert all(v == pytest.approx(1.0) for v in short_scores.values())
        assert all(v == pytest.approx(1.0) for v in long_scores.values())
        # And the scoreboard keys themselves are disjoint fingerprints.
        short_keys = set(short.scoreboard._baselines)
        long_keys = set(long.scoreboard._baselines)
        assert short_keys and long_keys
        assert short_keys.isdisjoint(long_keys)

    def test_different_kernels_get_their_own_baselines(self):
        suite = DCPerfSuite(
            benchmark_names=["taobench"],
            measure_seconds=0.5,
            executor=SweepExecutor(max_workers=1, cache=None, use_cache=False),
        )
        suite.run("SKU1", kernel="6.9")
        suite.run("SKU1", kernel="6.4")
        assert len(suite.scoreboard._baselines) == 2
