"""Warm worker pool: reuse, keying, crash/timeout recovery, teardown.

These tests exercise :mod:`repro.exec.workerpool` both directly (pool
semantics) and through :class:`SweepExecutor` (the ``pool_mode="warm"``
path), including the satellite regressions: per-worker kill-and-respawn
on timeout (no straggler processes) and clean ``close()`` teardown.
"""

import json
import os
import signal
import threading
import time

import pytest

from repro.exec.executor import SweepExecutor, _run_point_payload
from repro.exec.spec import RunPoint, pool_key, run_fingerprint
from repro.exec.workerpool import (
    WarmPool,
    get_warm_pool,
    shutdown_warm_pool,
    warm_pool_enabled,
)

FAST = dict(measure_seconds=0.3, warmup_seconds=0.1)


def fast_point(benchmark="taobench", **kwargs):
    return RunPoint(benchmark=benchmark, **{**FAST, **kwargs})


def as_todo(points):
    return [(run_fingerprint(p), p) for p in points]


def assert_dead(pids):
    for pid in pids:
        with pytest.raises(ProcessLookupError):
            os.kill(pid, 0)


@pytest.fixture
def pool():
    p = WarmPool()
    yield p
    p.close()


class TestWarmPoolLifecycle:
    def test_spawn_then_reuse(self, pool):
        points = [fast_point(), fast_point("feedsim")]
        _, _, _, first = pool.run_points(as_todo(points), workers=2)
        assert first.spawned == 2 and first.reused == 0
        pids = set(pool.worker_pids())
        assert len(pids) == 2

        _, _, _, second = pool.run_points(as_todo(points), workers=2)
        assert second.spawned == 0 and second.reused == 2
        assert set(pool.worker_pids()) == pids
        assert pool.stats.spawned == 2 and pool.stats.reused == 2

    def test_close_leaves_no_orphans(self):
        pool = WarmPool()
        pool.run_points(as_todo([fast_point()]), workers=1)
        pids = pool.worker_pids()
        assert pids and pool.alive_count() == 1
        pool.close()
        assert pool.closed
        assert pool.alive_count() == 0
        assert_dead(pids)

    def test_closed_pool_rejects_work(self, pool):
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.run_points(as_todo([fast_point()]), workers=1)

    def test_global_pool_survives_executor_instances(self):
        """The pool outlives SweepExecutor objects: a second executor's
        sweep reuses the first's warm workers."""
        shutdown_warm_pool()
        try:
            points = [fast_point(), fast_point("feedsim")]
            first = SweepExecutor(
                max_workers=2, cache=None, use_cache=False, warm_pool=True
            )
            first.run(points)
            assert first.last_stats.pool_mode == "warm"
            assert first.last_stats.spawned == 2

            second = SweepExecutor(
                max_workers=2, cache=None, use_cache=False, warm_pool=True
            )
            second.run(points)
            assert second.last_stats.spawned == 0
            assert second.last_stats.reused == 2
        finally:
            shutdown_warm_pool()

    def test_shutdown_global_pool_idempotent(self):
        shutdown_warm_pool()
        pool = get_warm_pool()
        pool.run_points(as_todo([fast_point()]), workers=1)
        pids = pool.worker_pids()
        shutdown_warm_pool()
        shutdown_warm_pool()
        assert_dead(pids)
        assert get_warm_pool() is not pool


class TestWorkerKeying:
    def test_stale_key_workers_self_retire(self, pool):
        todo = as_todo([fast_point()])
        pool.run_points(todo, workers=1, key="key-A")
        old_pids = pool.worker_pids()
        _, _, _, run = pool.run_points(todo, workers=1, key="key-B")
        assert run.spawned == 1 and run.reused == 0
        assert_dead(old_pids)
        assert pool.worker_pids() != old_pids

    def test_default_key_is_model_plus_code(self, pool):
        pool.run_points(as_todo([fast_point()]), workers=1)
        assert all(w.key == pool_key() for w in pool._workers)

    def test_dead_worker_replaced_on_next_acquire(self, pool):
        pool.run_points(as_todo([fast_point()]), workers=1)
        (pid,) = pool.worker_pids()
        os.kill(pid, signal.SIGKILL)
        deadline = time.monotonic() + 5.0
        while pool.alive_count() and time.monotonic() < deadline:
            time.sleep(0.01)
        _, _, _, run = pool.run_points(as_todo([fast_point()]), workers=1)
        assert run.spawned == 1 and run.reused == 0
        assert pool.worker_pids() != [pid]


class TestTransport:
    def test_shm_and_pipe_transport_agree(self):
        point = fast_point()
        expected = _run_point_payload(point)
        for use_shm in (True, False):
            pool = WarmPool(use_shm=use_shm)
            try:
                completed, lost, timeouts, run = pool.run_points(
                    as_todo([point]), workers=1
                )
                assert not lost and timeouts == 0
                assert run.bytes_shipped > 0
                (payload,) = completed.values()
                assert json.dumps(payload, sort_keys=True) == json.dumps(
                    expected, sort_keys=True
                )
            finally:
                pool.close()

    def test_ring_wraps_across_many_results(self):
        """A ring barely bigger than one record forces wrap-around on
        nearly every completion; payloads must still be intact."""
        points = [fast_point(seed=s) for s in range(5)]
        pool = WarmPool(ring_bytes=4096)
        try:
            completed, lost, timeouts, _ = pool.run_points(
                as_todo(points), workers=1
            )
            assert not lost and timeouts == 0
            assert len(completed) == 5
        finally:
            pool.close()
        expected = {
            run_fingerprint(p): _run_point_payload(p) for p in points
        }
        assert {
            fp: json.dumps(v, sort_keys=True) for fp, v in completed.items()
        } == {fp: json.dumps(v, sort_keys=True) for fp, v in expected.items()}

    def test_oversized_record_falls_back_to_pipe(self):
        """A record larger than the whole ring ships via the pipe."""
        point = fast_point()
        pool = WarmPool(ring_bytes=256)
        try:
            completed, lost, timeouts, run = pool.run_points(
                as_todo([point]), workers=1
            )
            assert not lost and timeouts == 0
            assert run.bytes_shipped > 256
            (payload,) = completed.values()
            assert json.dumps(payload, sort_keys=True) == json.dumps(
                _run_point_payload(point), sort_keys=True
            )
        finally:
            pool.close()


class TestAffinityDispatch:
    def test_repeat_sweep_routes_to_warm_worker(self, pool):
        """Dispatch prefers the worker that has run a workload before:
        per-process warm-setup memos make repeats much cheaper, so a
        repeated sweep must land each point on its original worker even
        when the spec order changes."""
        points = [fast_point("taobench"), fast_point("feedsim")]
        pool.run_points(as_todo(points), workers=2)
        seen_after_first = [set(w.seen) for w in pool._workers]
        # Two points over two workers: initial dispatch assigns one
        # each, so every worker has exactly one workload.
        assert sorted(len(s) for s in seen_after_first) == [1, 1]

        # Reversed order: FIFO dispatch would swap the assignment and
        # every worker would pay the other workload's warm-up.
        pool.run_points(as_todo(list(reversed(points))), workers=2)
        assert [set(w.seen) for w in pool._workers] == seen_after_first

    def test_respawned_worker_starts_cold(self, pool):
        point = fast_point()
        pool.run_points(as_todo([point]), workers=1)
        worker = pool._workers[0]
        assert worker.seen == {point.workload_name}
        replacement = pool._respawn(worker, pool.stats)
        assert replacement.seen == set()


class TestCrashRecovery:
    def test_midflight_crash_respawns_only_that_worker(self, pool, monkeypatch):
        """SIGKILL one of two busy workers: its point is lost, the other
        worker's point completes, and only the dead worker respawns."""
        monkeypatch.setenv("DCPERF_FAULT_POINT_DELAY", "2.0")
        points = [fast_point(), fast_point("feedsim")]
        # Prime two workers (no delay inside this first call: the env
        # var is read at dispatch, so clear it temporarily).
        monkeypatch.delenv("DCPERF_FAULT_POINT_DELAY")
        pool.run_points(as_todo(points), workers=2)
        monkeypatch.setenv("DCPERF_FAULT_POINT_DELAY", "2.0")
        victim = pool.worker_pids()[0]
        survivor = pool.worker_pids()[1]
        killer = threading.Timer(0.5, os.kill, [victim, signal.SIGKILL])
        killer.start()
        try:
            completed, lost, timeouts, run = pool.run_points(
                as_todo(points), workers=2
            )
        finally:
            killer.cancel()
        assert timeouts == 0
        assert len(lost) == 1 and len(completed) == 1
        assert run.respawned == 1
        assert survivor in pool.worker_pids()
        assert victim not in pool.worker_pids()

    def test_app_level_exception_propagates_and_pool_survives(self, pool):
        bad = RunPoint(benchmark="no_such_benchmark", **FAST)
        with pytest.raises(Exception):
            pool.run_points(as_todo([bad]), workers=1)
        # The pool is still usable afterwards.
        completed, lost, timeouts, _ = pool.run_points(
            as_todo([fast_point()]), workers=1
        )
        assert len(completed) == 1 and not lost and timeouts == 0


class TestTimeoutKillsStraggler:
    """Satellite regression: a timed-out point's worker is killed and
    respawned instead of leaking until interpreter exit."""

    def test_straggler_killed_and_respawned(self, monkeypatch):
        monkeypatch.setenv("DCPERF_FAULT_POINT_DELAY", "30.0")
        pool = WarmPool()
        try:
            points = [fast_point(), fast_point("feedsim")]
            started = time.monotonic()
            completed, lost, timeouts, run = pool.run_points(
                as_todo(points), workers=2, timeout_s=0.5
            )
            elapsed = time.monotonic() - started
            assert timeouts == 2 and len(lost) == 2 and not completed
            assert run.respawned == 2
            # Stragglers died with their deadline, not with the 30s
            # sleep: the whole call is bounded by the timeout plus
            # respawn cost.
            assert elapsed < 10.0
            assert pool.alive_count() == 2
        finally:
            pids = pool.worker_pids()
            pool.close()
            assert_dead(pids)

    def test_executor_warm_timeout_recovers_in_process(self, monkeypatch):
        """End-to-end: warm path timeout → kill/respawn → in-process
        recovery, mirroring the cold-path regression test."""
        monkeypatch.setenv("DCPERF_FAULT_POINT_DELAY", "5.0")
        executor = SweepExecutor(
            max_workers=2,
            cache=None,
            use_cache=False,
            point_timeout_s=0.5,
            warm_pool=True,
        )
        points = [fast_point(), fast_point("feedsim")]

        original = SweepExecutor._run_warm

        def warm_then_clear_delay(self, todo, workers, stats, on_point,
                                  **kwargs):
            result = original(self, todo, workers, stats, on_point, **kwargs)
            os.environ.pop("DCPERF_FAULT_POINT_DELAY", None)
            return result

        monkeypatch.setattr(SweepExecutor, "_run_warm", warm_then_clear_delay)
        reports = executor.run(points)
        stats = executor.last_stats
        assert stats.pool_mode == "warm"
        assert stats.timeouts == 2
        assert stats.recovered == 2
        assert stats.respawned == 2
        assert [r.benchmark for r in reports] == ["taobench", "feedsim"]
        assert all(r.metric_value > 0 for r in reports)
        # No straggler outlived the sweep: every live pool process is
        # a respawned worker, idle.
        assert get_warm_pool().alive_count() == 2


class TestExecutorWarmPath:
    def test_warm_matches_serial_byte_for_byte(self):
        points = [
            fast_point("taobench", sku="SKU1"),
            fast_point("taobench", sku="SKU2"),
            fast_point("feedsim", sku="SKU1"),
            fast_point("feedsim", sku="SKU2"),
        ]
        serial = SweepExecutor(max_workers=1, cache=None, use_cache=False)
        warm = SweepExecutor(
            max_workers=4, cache=None, use_cache=False, warm_pool=True
        )
        serial_reports = serial.run(points)
        warm_reports = warm.run(points)
        assert warm.last_stats.pool_mode == "warm"
        assert warm.last_stats.workers == 4
        assert warm.last_stats.bytes_shipped > 0
        assert [json.dumps(r.as_dict(), sort_keys=True) for r in serial_reports] == [
            json.dumps(r.as_dict(), sort_keys=True) for r in warm_reports
        ]

    def test_on_point_streams_every_unique_point(self):
        points = [fast_point(), fast_point("feedsim"), fast_point()]
        streamed = []
        executor = SweepExecutor(
            max_workers=2, cache=None, use_cache=False, warm_pool=True
        )
        reports = executor.run(
            points, on_point=lambda p, r: streamed.append((p, r))
        )
        # Unique points only (the duplicate taobench point streams once).
        assert sorted(p.benchmark for p, _ in streamed) == [
            "feedsim",
            "taobench",
        ]
        by_name = {p.benchmark: r for p, r in streamed}
        for report in reports:
            assert (
                by_name[report.benchmark].as_dict() == report.as_dict()
            )
            # Streamed objects are distinct from the merged results
            # (callers mutate .score in place).
            assert by_name[report.benchmark] is not report

    def test_on_point_fires_for_cache_hits(self, tmp_path):
        from repro.exec.cache import RunCache

        point = fast_point()
        executor = SweepExecutor(
            max_workers=1, cache=RunCache(str(tmp_path))
        )
        executor.run([point])
        streamed = []
        executor.run([point], on_point=lambda p, r: streamed.append(p))
        assert executor.last_stats.cache_hits == 1
        assert streamed == [point]

    def test_env_flag_parsing(self, monkeypatch):
        monkeypatch.delenv("DCPERF_WARM_POOL", raising=False)
        assert warm_pool_enabled()
        monkeypatch.setenv("DCPERF_WARM_POOL", "0")
        assert not warm_pool_enabled()
        assert (
            SweepExecutor(max_workers=2, cache=None, use_cache=False).warm_pool
            is False
        )
        monkeypatch.setenv("DCPERF_WARM_POOL", "1")
        assert warm_pool_enabled()
