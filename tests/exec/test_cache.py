"""Tests for the persistent run cache."""

import json
import os

from repro.exec.cache import (
    CACHE_DIR_ENV,
    CACHE_ENABLE_ENV,
    RunCache,
    cache_enabled,
    cache_from_env,
    default_cache_dir,
)
from repro.exec.spec import CACHE_SCHEMA_VERSION, RunPoint

POINT = RunPoint(benchmark="taobench")
PAYLOAD = {"benchmark": "taobench", "metric": 123.456}


class TestRunCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = RunCache(str(tmp_path))
        cache.put("abc123", POINT, PAYLOAD)
        assert cache.get("abc123") == PAYLOAD
        assert cache.hits == 1
        assert cache.misses == 0

    def test_miss_returns_none(self, tmp_path):
        cache = RunCache(str(tmp_path))
        assert cache.get("missing") is None
        assert cache.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = RunCache(str(tmp_path))
        (tmp_path / "bad.json").write_text("{not json")
        assert cache.get("bad") is None

    def test_fingerprint_mismatch_is_a_miss(self, tmp_path):
        """An entry renamed (or tampered with) on disk must not load."""
        cache = RunCache(str(tmp_path))
        cache.put("abc123", POINT, PAYLOAD)
        os.rename(tmp_path / "abc123.json", tmp_path / "def456.json")
        assert cache.get("def456") is None

    def test_entries_are_valid_json_with_point(self, tmp_path):
        cache = RunCache(str(tmp_path))
        path = cache.put("abc123", POINT, PAYLOAD)
        entry = json.loads(open(path).read())
        assert entry["fingerprint"] == "abc123"
        assert RunPoint.from_dict(entry["point"]) == POINT
        assert entry["report"] == PAYLOAD

    def test_info_and_clear(self, tmp_path):
        cache = RunCache(str(tmp_path))
        cache.put("a" * 8, POINT, PAYLOAD)
        cache.put("b" * 8, POINT, PAYLOAD)
        info = cache.info()
        assert info.directory == str(tmp_path)
        assert info.entries == 2
        assert info.total_bytes > 0
        assert cache.clear() == 2
        assert cache.info().entries == 0

    def test_info_on_missing_directory(self, tmp_path):
        cache = RunCache(str(tmp_path / "never-created"))
        assert cache.info().entries == 0
        assert cache.clear() == 0

    def test_temp_files_ignored(self, tmp_path):
        cache = RunCache(str(tmp_path))
        (tmp_path / ".tmp-leftover.json").write_text("{}")
        assert cache.info().entries == 0

    def test_entries_record_schema_version(self, tmp_path):
        cache = RunCache(str(tmp_path))
        path = cache.put("abc123", POINT, PAYLOAD)
        entry = json.loads(open(path).read())
        assert entry["schema"] == CACHE_SCHEMA_VERSION

    def test_info_groups_by_schema(self, tmp_path):
        cache = RunCache(str(tmp_path))
        cache.put("a" * 8, POINT, PAYLOAD)
        # A pre-schema-tagging entry and one from an older version.
        (tmp_path / ("b" * 8 + ".json")).write_text(
            json.dumps({"fingerprint": "b" * 8, "report": PAYLOAD})
        )
        (tmp_path / ("c" * 8 + ".json")).write_text(
            json.dumps({"fingerprint": "c" * 8, "schema": 4, "report": PAYLOAD})
        )
        (tmp_path / ("d" * 8 + ".json")).write_text("{not json")
        info = cache.info()
        assert info.entries == 4
        assert info.by_schema == {
            str(CACHE_SCHEMA_VERSION): 1,
            "unversioned": 1,
            "4": 1,
            "corrupt": 1,
        }
        assert info.as_dict()["by_schema"] == info.by_schema

    def test_clear_stale_keeps_current_entries(self, tmp_path):
        cache = RunCache(str(tmp_path))
        cache.put("a" * 8, POINT, PAYLOAD)
        (tmp_path / ("b" * 8 + ".json")).write_text(
            json.dumps({"fingerprint": "b" * 8, "schema": 4, "report": PAYLOAD})
        )
        (tmp_path / ("c" * 8 + ".json")).write_text("{not json")
        assert cache.clear(stale_only=True) == 2
        info = cache.info()
        assert info.entries == 1
        assert info.by_schema == {str(CACHE_SCHEMA_VERSION): 1}
        # The surviving entry still loads.
        assert cache.get("a" * 8) == PAYLOAD


class TestEnvironment:
    def test_dir_env_overrides_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        assert default_cache_dir() == str(tmp_path)
        cache = cache_from_env()
        assert cache is not None
        assert cache.directory == str(tmp_path)

    def test_default_dir_under_home(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert default_cache_dir().endswith(
            os.path.join(".cache", "dcperf-repro")
        )

    def test_disable_env(self, monkeypatch):
        for value in ("0", "false", "OFF", "no"):
            monkeypatch.setenv(CACHE_ENABLE_ENV, value)
            assert not cache_enabled()
            assert cache_from_env() is None
        monkeypatch.setenv(CACHE_ENABLE_ENV, "1")
        assert cache_enabled()
