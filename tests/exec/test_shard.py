"""Tests for intra-run sharding: expansion, seed split, merging.

The headline invariants: ``shards=1`` is bit-identical to the
unsharded path, and a fixed ``shards=N`` run produces byte-identical
reports on every execution path (in-process, cold pool, warm pool) and
across cache round-trips.
"""

import dataclasses
import json

import pytest

from repro.core.benchmark import Benchmark
from repro.exec.cache import RunCache
from repro.exec.executor import SweepExecutor, execute_point
from repro.exec.shard import expand_shards, merge_shard_payloads
from repro.exec.spec import RunPoint, run_fingerprint, shard_seed

FAST = dict(measure_seconds=0.5, warmup_seconds=0.2, early_stop=False)


def fast_point(benchmark="taobench", **kwargs):
    return RunPoint(benchmark=benchmark, **{**FAST, **kwargs})


def report_bytes(report):
    return json.dumps(report.as_dict(), sort_keys=True)


class TestShardSpec:
    def test_shard_seed_is_documented_split(self):
        assert shard_seed(7, 0) == 7 * 1_000_003 + 1
        assert shard_seed(7, 3) == 7 * 1_000_003 + 4
        # Shard 0 never collides with the parent seed.
        assert shard_seed(7, 0) != 7

    def test_point_validation(self):
        with pytest.raises(ValueError):
            RunPoint(benchmark="taobench", shards=0)
        with pytest.raises(ValueError):
            RunPoint(benchmark="taobench", shards=2, shard_index=2)
        with pytest.raises(ValueError):
            RunPoint(benchmark="taobench", shards=1, shard_index=-2)

    def test_expand_shards(self):
        parent = fast_point(shards=3)
        subs = expand_shards(parent)
        assert [s.shard_index for s in subs] == [0, 1, 2]
        assert all(s.shards == 3 for s in subs)
        # Sub-points differ only in shard_index — same cache identity
        # space as the parent otherwise.
        assert {dataclasses.replace(s, shard_index=-1) for s in subs} == {parent}
        # Distinct fingerprints: shard results cache independently.
        fps = {run_fingerprint(s) for s in subs} | {run_fingerprint(parent)}
        assert len(fps) == 4

    def test_expand_is_identity_for_unsharded(self):
        point = fast_point()
        assert expand_shards(point) == [point]
        sub = fast_point(shards=2, shard_index=1)
        assert expand_shards(sub) == [sub]

    def test_sub_point_run_config_derivation(self):
        parent = fast_point(seed=11, load_scale=1.0, shards=4)
        sub = expand_shards(parent)[2]
        config = sub.run_config()
        assert config.seed == shard_seed(11, 2)
        assert config.load_scale == pytest.approx(0.25)
        assert config.shards == 4
        assert config.shard_index == 2
        # The parent's own config keeps the undivided rate.
        assert parent.run_config().load_scale == 1.0

    def test_benchmark_run_rejects_unexpanded_parent(self):
        parent = fast_point(shards=2)
        with pytest.raises(ValueError, match="SweepExecutor"):
            Benchmark.by_name("taobench").run(parent.run_config())


class TestShardMerge:
    def test_merge_requires_all_shards(self):
        parent = fast_point(shards=2)
        with pytest.raises(ValueError):
            merge_shard_payloads(parent, [{}])
        with pytest.raises(ValueError):
            merge_shard_payloads(fast_point(), [{}])

    def test_shards_one_identical_to_unsharded(self):
        point = fast_point(seed=11)
        direct = Benchmark.by_name("taobench").run(point.run_config())
        executor = SweepExecutor(max_workers=1, cache=None, use_cache=False)
        via_executor = executor.run([point])[0]
        assert report_bytes(direct) == report_bytes(via_executor)
        assert executor.last_stats.shard_points == 0
        assert executor.last_stats.merged_runs == 0

    def test_merged_report_shape(self):
        parent = fast_point(seed=11, shards=2)
        report = execute_point(parent)
        payload = report.as_dict()
        assert payload["system"]["shards"] == 2
        sharding = payload["hooks"]["sharding"]
        assert sharding["enabled"] is True
        assert sharding["role"] == "merged"
        assert sharding["shard_seeds"] == [shard_seed(11, 0), shard_seed(11, 1)]
        assert len(sharding["shard_throughput_rps"]) == 2
        # Merged throughput is the shard sum; the raw recorder state
        # never leaks into the merged report.
        assert report.metric_value == pytest.approx(
            sum(sharding["shard_throughput_rps"])
        )
        assert "shard_latency" not in report.result.extra
        assert report.result.extra["shards"] == 2

    def test_shard_sub_report_is_marked(self):
        sub = expand_shards(fast_point(seed=11, shards=2))[1]
        report = Benchmark.by_name("taobench").run(sub.run_config())
        sharding = report.hook_sections["sharding"]
        assert sharding == {
            "enabled": True,
            "role": "shard",
            "shards": 2,
            "shard_index": 1,
            "shard_seed": shard_seed(11, 1),
        }
        assert "shard_latency" in report.result.extra

    def test_unsharded_report_sharding_disabled(self):
        report = Benchmark.by_name("taobench").run(fast_point().run_config())
        assert report.hook_sections["sharding"] == {"enabled": False}
        assert "shard_latency" not in report.result.extra

    def test_merged_latency_is_exact_union(self):
        # The merged percentiles must equal percentiles over the union
        # of the shard sample streams — not a weighted-summary blend.
        from repro.loadgen.recorder import LatencyRecorder

        parent = fast_point(seed=11, shards=2)
        subs = expand_shards(parent)
        reports = [
            Benchmark.by_name("taobench").run(s.run_config()) for s in subs
        ]
        union = LatencyRecorder()
        for rep in reports:
            union.merge(
                LatencyRecorder.from_state(rep.result.extra["shard_latency"])
            )
        merged = execute_point(parent)
        assert merged.result.latency == union.summary()


class TestShardExecution:
    def test_byte_identity_across_paths(self):
        parent = fast_point(seed=11, shards=2)
        inproc = SweepExecutor(max_workers=1, cache=None, use_cache=False)
        baseline = report_bytes(inproc.run([parent])[0])
        assert inproc.last_stats.pool_mode == "inproc"
        assert inproc.last_stats.shard_points == 2
        assert inproc.last_stats.merged_runs == 1
        assert inproc.last_stats.executed == 2

        assert report_bytes(execute_point(parent)) == baseline

        for warm in (False, True):
            pooled = SweepExecutor(
                max_workers=2, cache=None, use_cache=False, warm_pool=warm
            )
            assert report_bytes(pooled.run([parent])[0]) == baseline
            stats = pooled.last_stats
            assert stats.pool_mode == ("warm" if warm else "cold")
            # The workers field reflects shard sub-points: one run
            # genuinely fanned out across the pool.
            assert stats.workers == 2
            assert stats.shard_points == 2
            assert stats.merged_runs == 1

    def test_cache_round_trip(self, tmp_path):
        parent = fast_point(seed=11, shards=2)
        cache = RunCache(str(tmp_path))
        executor = SweepExecutor(max_workers=1, cache=cache)
        first = report_bytes(executor.run([parent])[0])
        # Two shard entries plus the merged parent.
        assert cache.info().entries == 3

        rerun = SweepExecutor(max_workers=1, cache=RunCache(str(tmp_path)))
        second = report_bytes(rerun.run([parent])[0])
        assert second == first
        # The parent hit short-circuits: nothing re-expands or re-runs.
        assert rerun.last_stats.cache_hits == 1
        assert rerun.last_stats.executed == 0
        assert rerun.last_stats.shard_points == 0
        assert rerun.last_stats.merged_runs == 0

    def test_partial_cache_reuses_shard_results(self, tmp_path):
        parent = fast_point(seed=11, shards=2)
        cache = RunCache(str(tmp_path))
        executor = SweepExecutor(max_workers=1, cache=cache)
        first = report_bytes(executor.run([parent])[0])

        # Drop only the merged parent entry; the shard results stay.
        import os

        parent_fp = run_fingerprint(parent)
        os.unlink(os.path.join(str(tmp_path), f"{parent_fp}.json"))

        rerun = SweepExecutor(max_workers=1, cache=RunCache(str(tmp_path)))
        second = report_bytes(rerun.run([parent])[0])
        assert second == first
        assert rerun.last_stats.cache_hits == 2  # both shard entries
        assert rerun.last_stats.executed == 0
        assert rerun.last_stats.merged_runs == 1

    def test_on_point_streams_only_parent(self):
        parent = fast_point(seed=11, shards=2)
        seen = []
        executor = SweepExecutor(max_workers=1, cache=None, use_cache=False)
        executor.run([parent], on_point=lambda p, r: seen.append(p))
        assert seen == [parent]

    def test_sharded_and_plain_points_coexist(self):
        sharded = fast_point(seed=11, shards=2)
        plain = fast_point("feedsim", seed=11)
        executor = SweepExecutor(max_workers=1, cache=None, use_cache=False)
        reports = executor.run([sharded, plain])
        assert [r.benchmark for r in reports] == ["taobench", "feedsim"]
        stats = executor.last_stats
        assert stats.executed == 3  # 2 shard subs + 1 plain point
        assert stats.shard_points == 2
        assert stats.merged_runs == 1

    def test_deterministic_replay(self):
        parent = fast_point(seed=11, shards=3)
        a = report_bytes(execute_point(parent))
        b = report_bytes(execute_point(parent))
        assert a == b

    def test_stats_dict_has_shard_fields(self):
        executor = SweepExecutor(max_workers=1, cache=None, use_cache=False)
        executor.run([fast_point(seed=11, shards=2)])
        payload = executor.last_stats.as_dict()
        assert payload["shard_points"] == 2
        assert payload["merged_runs"] == 1
