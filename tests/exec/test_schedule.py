"""Cost-model scheduling: ledger, LPT, stealing, auto-shard plans.

The load-bearing invariants (ISSUE 9):

* LPT dispatch + queue-aware stealing produce **byte-identical**
  merged ``SweepResult``s vs FIFO across the in-process, cold-pool,
  and warm-pool paths — scheduling moves completion order, never
  bytes.
* The auto-shard plan is a **pure function** of its inputs: the same
  specs against the same ledger snapshot always produce the same
  plan, and different worker counts record different plans.
* The ledger degrades gracefully: corrupt sidecars load as empty,
  unwritable directories stop persistence without stopping the sweep.
"""

import json
import os
import warnings

import pytest

from repro.exec.cache import LEDGER_FILENAME, RunCache
from repro.exec.executor import (
    SweepExecutor,
    _cgroup_cpu_quota,
    auto_workers,
)
from repro.exec.schedule import (
    SOURCE_CLASS,
    SOURCE_EXACT,
    SOURCE_SEED,
    CostLedger,
    order_lpt,
    plan_auto_shards,
    seed_cost,
)
from repro.exec.shard import shardable
from repro.exec.spec import RunPoint, cost_class, run_fingerprint
from repro.exec.workerpool import WarmPool, shutdown_warm_pool

FAST = dict(measure_seconds=0.3, warmup_seconds=0.1)


def fast_point(benchmark="taobench", **kwargs):
    return RunPoint(benchmark=benchmark, **{**FAST, **kwargs})


def sweep_bytes(reports):
    return [json.dumps(r.as_dict(), sort_keys=True) for r in reports]


class TestCostLedger:
    def test_prediction_specificity_ladder(self, tmp_path):
        """Exact fingerprint beats class aggregate beats seed table."""
        ledger = CostLedger(str(tmp_path))
        point = fast_point()
        fp = run_fingerprint(point)
        cold, source = ledger.predict_with_source(point, fp)
        assert source == SOURCE_SEED
        assert cold == pytest.approx(seed_cost(point))

        # A sibling in the same class (different seed) feeds the class
        # aggregate, which now predicts our point too.
        sibling = fast_point(seed=99)
        ledger.record(run_fingerprint(sibling), sibling, 2.0)
        via_class, source = ledger.predict_with_source(point, fp)
        assert source == SOURCE_CLASS
        assert via_class == pytest.approx(2.0)

        ledger.record(fp, point, 4.0)
        exact, source = ledger.predict_with_source(point, fp)
        assert source == SOURCE_EXACT
        assert exact == pytest.approx(4.0)

    def test_ewma_update_and_class_aggregates(self, tmp_path):
        ledger = CostLedger(str(tmp_path))
        point = fast_point()
        fp = run_fingerprint(point)
        ledger.record(fp, point, 2.0)
        ledger.record(fp, point, 4.0)
        assert ledger.predict(point, fp) == pytest.approx(3.0)  # EWMA 0.5
        summary = ledger.workload_summary()
        assert summary["taobench"]["count"] == 2
        assert summary["taobench"]["max_s"] == pytest.approx(4.0)
        assert summary["taobench"]["mean_s"] == pytest.approx(3.0)

    def test_round_trip_and_merge_on_save(self, tmp_path):
        """Two ledger instances saving into one directory both keep
        their recordings — save merges with the file, not over it."""
        a = CostLedger(str(tmp_path))
        b = CostLedger(str(tmp_path))
        pa, pb = fast_point(), fast_point("feedsim")
        a.record(run_fingerprint(pa), pa, 1.0)
        b.record(run_fingerprint(pb), pb, 2.0)
        a.save()
        b.save()
        merged = CostLedger(str(tmp_path)).load()
        assert merged.entries() == 2
        assert merged.predict(pa, run_fingerprint(pa)) == pytest.approx(1.0)
        assert merged.predict(pb, run_fingerprint(pb)) == pytest.approx(2.0)

    def test_corrupt_sidecar_loads_empty_and_is_repaired(self, tmp_path):
        path = tmp_path / LEDGER_FILENAME
        path.write_text("{not json at all")
        ledger = CostLedger(str(tmp_path)).load()
        assert ledger.entries() == 0
        point = fast_point()
        # Predictions still work (seed table) and a save replaces the
        # corrupt file with a valid one.
        assert ledger.predict(point) > 0
        ledger.record(run_fingerprint(point), point, 1.5)
        assert ledger.save() == str(path)
        assert CostLedger(str(tmp_path)).load().entries() == 1

    def test_unwritable_directory_degrades_to_memory(self, tmp_path):
        # A regular file where the directory should be defeats even a
        # privileged user — os.makedirs cannot replace it.
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        ledger = CostLedger(str(blocker / "nested"))
        point = fast_point()
        ledger.record(run_fingerprint(point), point, 1.0)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert ledger.save() is None
        assert any("cost ledger" in str(w.message) for w in caught)
        # Persistence is disabled for this instance, but the in-memory
        # history still predicts and further saves stay silent no-ops.
        assert ledger.directory is None
        assert ledger.predict(point, run_fingerprint(point)) == 1.0
        assert ledger.save() is None

    def test_ledger_is_not_a_cache_entry(self, tmp_path):
        """``cache info``/``clear`` must not count or delete the
        sidecar — only the CLI's explicit ledger clear does."""
        cache = RunCache(str(tmp_path))
        ledger = CostLedger(str(tmp_path))
        point = fast_point()
        ledger.record(run_fingerprint(point), point, 1.0)
        ledger.save()
        assert cache.info().entries == 0
        assert cache.clear() == 0
        assert os.path.exists(str(tmp_path / LEDGER_FILENAME))


class TestLptOrdering:
    def test_longest_predicted_first_stable_ties(self):
        points = [fast_point(seed=i) for i in range(4)]
        todo = [(run_fingerprint(p), p) for p in points]
        costs = {todo[0][0]: 1.0, todo[1][0]: 5.0,
                 todo[2][0]: 1.0, todo[3][0]: 3.0}
        ordered = order_lpt(todo, lambda fp, point: costs[fp])
        assert [costs[fp] for fp, _ in ordered] == [5.0, 3.0, 1.0, 1.0]
        # Equal-cost points keep spec order (seed 0 before seed 2).
        assert [p.seed for _, p in ordered] == [1, 3, 0, 2]


class TestSchedulingByteIdentity:
    """LPT + stealing vs FIFO: identical merged results on every path."""

    POINTS = None

    @classmethod
    def points(cls):
        if cls.POINTS is None:
            cls.POINTS = [
                fast_point("taobench", sku="SKU1"),
                fast_point("feedsim", sku="SKU2"),
                fast_point("djangobench", sku="SKU1"),
                fast_point("taobench", sku="SKU3"),
                fast_point("mediawiki", sku="SKU2"),
            ]
        return cls.POINTS

    @pytest.fixture(scope="class")
    def fifo_reference(self):
        executor = SweepExecutor(
            max_workers=1, cache=None, use_cache=False, schedule="fifo"
        )
        return sweep_bytes(executor.run(self.points()))

    def test_inproc_lpt_matches_fifo(self, fifo_reference):
        executor = SweepExecutor(
            max_workers=1, cache=None, use_cache=False, schedule="lpt"
        )
        assert sweep_bytes(executor.run(self.points())) == fifo_reference

    def test_cold_pool_lpt_matches_fifo(self, fifo_reference):
        executor = SweepExecutor(
            max_workers=3, cache=None, use_cache=False,
            schedule="lpt", warm_pool=False,
        )
        reports = executor.run(self.points())
        assert executor.last_stats.pool_mode == "cold"
        assert sweep_bytes(reports) == fifo_reference

    def test_warm_pool_lpt_matches_fifo(self, fifo_reference):
        shutdown_warm_pool()
        try:
            executor = SweepExecutor(
                max_workers=3, cache=None, use_cache=False,
                schedule="lpt", warm_pool=True,
            )
            reports = executor.run(self.points())
            assert executor.last_stats.pool_mode == "warm"
            assert sweep_bytes(reports) == fifo_reference
        finally:
            shutdown_warm_pool()

    def test_warm_ledger_does_not_change_bytes(self, tmp_path,
                                               fifo_reference):
        """A sweep scheduled from recorded history (not the seed
        table) still merges to the same bytes."""
        ledger = CostLedger(str(tmp_path))
        for point in self.points():
            ledger.record(
                run_fingerprint(point), point,
                2.0 if point.benchmark == "djangobench" else 0.2,
            )
        executor = SweepExecutor(
            max_workers=1, cache=None, use_cache=False,
            schedule="lpt", ledger=ledger,
        )
        assert sweep_bytes(executor.run(self.points())) == fifo_reference

    def test_invalid_schedule_rejected(self):
        with pytest.raises(ValueError, match="schedule"):
            SweepExecutor(max_workers=1, schedule="random")


class TestQueueAwareStealing:
    def test_idle_worker_steals_affinity_bound_head(self):
        """Two workers, one affine: the second worker takes the
        affine-bound head instead of idling, and the steal is
        counted."""
        pool = WarmPool()
        try:
            warmup = fast_point(seed=1)
            pool.run_points(
                [(run_fingerprint(warmup), warmup)], workers=1
            )
            assert pool.alive_count() == 1
            todo = [
                (run_fingerprint(p), p)
                for p in (fast_point(seed=2), fast_point(seed=3))
            ]
            completed, lost, _, run = pool.run_points(
                todo, workers=2, predict=lambda fp, point: 1.0
            )
            assert not lost and len(completed) == 2
            assert run.steals >= 1
        finally:
            pool.close()

    def test_no_steals_without_cost_model(self):
        pool = WarmPool()
        try:
            todo = [
                (run_fingerprint(p), p)
                for p in (fast_point(seed=4), fast_point(seed=5))
            ]
            _, _, _, run = pool.run_points(todo, workers=2)
            assert run.steals == 0
        finally:
            pool.close()


class TestAutoShardPlan:
    @staticmethod
    def imbalanced():
        return [
            RunPoint(benchmark="aibench", measure_seconds=1.0,
                     warmup_seconds=0.2),
            fast_point("djangobench", seed=1),
            fast_point("djangobench", seed=2),
        ]

    def test_plan_is_pure_function_of_inputs(self, tmp_path):
        ledger = CostLedger(str(tmp_path))
        points = self.imbalanced()
        first = plan_auto_shards(points, 4, ledger.predict)
        again = plan_auto_shards(points, 4, ledger.predict)
        assert first == again
        assert first  # the aibench straggler got expanded
        (point, shards), = first.items()
        assert point.benchmark == "aibench" and 2 <= shards <= 4

    def test_different_worker_counts_record_different_plans(self):
        ledger = CostLedger(None)
        points = self.imbalanced()
        two = plan_auto_shards(points, 2, ledger.predict)
        eight = plan_auto_shards(points, 8, ledger.predict)
        assert next(iter(two.values())) < next(iter(eight.values()))
        assert plan_auto_shards(points, 1, ledger.predict) == {}

    def test_only_plain_points_are_eligible(self):
        ledger = CostLedger(None)
        explicit = RunPoint(benchmark="aibench", measure_seconds=1.0,
                            warmup_seconds=0.2, shards=2)
        assert not shardable(explicit)
        plan = plan_auto_shards(
            [explicit, fast_point("djangobench")], 4, ledger.predict
        )
        assert explicit not in plan

    def test_balanced_sweep_plans_nothing(self):
        ledger = CostLedger(None)
        points = [fast_point("djangobench", seed=i) for i in range(4)]
        assert plan_auto_shards(points, 4, ledger.predict) == {}

    def test_executor_records_replayable_plan(self, tmp_path):
        """Same specs + same ledger snapshot → same recorded plan and
        byte-identical reports; the plan rides in SweepStats."""
        points = self.imbalanced()

        def run_once():
            executor = SweepExecutor(
                max_workers=2, cache=None, use_cache=False,
                auto_shard=True, ledger=CostLedger(str(tmp_path)),
            )
            result = executor.run_sweep(points)
            return sweep_bytes(result.reports), executor.last_stats

        first, first_stats = run_once()
        again, again_stats = run_once()
        assert first_stats.auto_sharded == 1
        assert first_stats.auto_shard_plan == again_stats.auto_shard_plan
        assert first == again
        row = first_stats.auto_shard_plan[0]
        assert row["workload"] == "aibench" and row["workers"] == 2
        assert row["shards"] >= 2 and row["predicted_s"] > 0
        # The expanded parent merged like an explicit shards=N run.
        merged = json.loads(first[0])
        assert merged["system"]["shards"] == row["shards"]
        assert "auto_shard_plan" in first_stats.as_dict()

    def test_cost_class_groups_runs_correctly(self):
        a = fast_point(sku="SKU1", seed=1)
        b = fast_point(sku="SKU4", seed=9, kernel="6.4")
        assert cost_class(a) == cost_class(b)  # SKU/seed/kernel-free
        assert cost_class(a) != cost_class(fast_point(faults="blackout"))
        assert cost_class(a) != cost_class(
            fast_point(measure_seconds=0.7)
        )


class TestAutoWorkersLimits:
    def test_respects_sched_affinity(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1},
                            raising=False)
        monkeypatch.setattr(
            "repro.exec.executor._cgroup_cpu_quota", lambda: None
        )
        assert auto_workers() == 2

    def test_cgroup_quota_clamps_affinity(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity",
                            lambda pid: set(range(8)), raising=False)
        monkeypatch.setattr(
            "repro.exec.executor._cgroup_cpu_quota", lambda: 3
        )
        assert auto_workers() == 3

    def test_cgroup_cpu_max_parsing(self, tmp_path):
        path = tmp_path / "cpu.max"
        path.write_text("150000 100000\n")
        assert _cgroup_cpu_quota(str(path)) == 2
        path.write_text("max 100000\n")
        assert _cgroup_cpu_quota(str(path)) is None
        path.write_text("garbage\n")
        assert _cgroup_cpu_quota(str(path)) is None
        assert _cgroup_cpu_quota(str(tmp_path / "missing")) is None

    def test_never_below_one(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0},
                            raising=False)
        monkeypatch.setattr(
            "repro.exec.executor._cgroup_cpu_quota", lambda: 1
        )
        assert auto_workers() == 1

    def test_falls_back_to_cpu_count_without_affinity(self, monkeypatch):
        # macOS/Windows: os.sched_getaffinity does not exist at all.
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 6)
        monkeypatch.setattr(
            "repro.exec.executor._cgroup_cpu_quota", lambda: None
        )
        assert auto_workers() == 6

    def test_cpu_count_none_means_one_worker(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        monkeypatch.setattr(
            "repro.exec.executor._cgroup_cpu_quota", lambda: None
        )
        assert auto_workers() == 1

    def test_quota_probe_is_linux_only(self, monkeypatch):
        # On a non-Linux platform the cgroup pseudo-file is never
        # consulted, even if a same-named path would parse.
        import repro.exec.executor as executor_mod

        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        monkeypatch.setattr(executor_mod.sys, "platform", "darwin")

        def boom():
            raise AssertionError("cgroup probe ran on a non-Linux platform")

        monkeypatch.setattr(
            "repro.exec.executor._cgroup_cpu_quota", boom
        )
        assert auto_workers() == 8


class TestProgressEta:
    def test_cold_ledger_keeps_plain_counts(self):
        executor = SweepExecutor(
            max_workers=1, cache=None, use_cache=False,
            ledger=CostLedger(None),
        )
        seen = []
        executor.run(
            [fast_point(seed=21), fast_point("feedsim", seed=21)],
            on_point=lambda p, r: seen.append(executor.progress()),
        )
        assert [s["done"] for s in seen] == [1, 2]
        assert all(s["total"] == 2 for s in seen)
        assert all(s["eta_seconds"] is None for s in seen)

    def test_warm_ledger_produces_eta(self):
        points = [fast_point(seed=22), fast_point("feedsim", seed=22)]
        ledger = CostLedger(None)
        for point in points:
            ledger.record(run_fingerprint(point), point, 0.5)
        executor = SweepExecutor(
            max_workers=1, cache=None, use_cache=False, ledger=ledger
        )
        seen = []
        executor.run(
            points, on_point=lambda p, r: seen.append(executor.progress())
        )
        # After the first of two 0.5s-predicted points, ~0.5s remains;
        # after the last, the ETA has drained to zero.
        assert seen[0]["eta_seconds"] == pytest.approx(0.5)
        assert seen[-1]["eta_seconds"] == pytest.approx(0.0)

    def test_ledger_records_during_sweeps(self, tmp_path):
        cache = RunCache(str(tmp_path))
        executor = SweepExecutor(max_workers=1, cache=cache)
        executor.run([fast_point(seed=23)])
        assert executor.last_stats.ledger_recorded == 1
        assert os.path.exists(str(tmp_path / LEDGER_FILENAME))
        # A fully cached rerun records nothing new.
        rerun = SweepExecutor(max_workers=1, cache=RunCache(str(tmp_path)))
        rerun.run([fast_point(seed=23)])
        assert rerun.last_stats.ledger_recorded == 0
