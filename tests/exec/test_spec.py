"""Tests for sweep grid specs and content fingerprints."""

import pytest

from repro.exec.spec import (
    RunPoint,
    code_fingerprint,
    dedupe,
    expand_grid,
    model_fingerprint,
    run_fingerprint,
)


class TestRunPoint:
    def test_dict_round_trip(self):
        point = RunPoint(
            benchmark="taobench",
            sku="SKU4",
            kernel="6.4",
            seed=11,
            variant=":prod",
            measure_seconds=0.75,
        )
        assert RunPoint.from_dict(point.as_dict()) == point

    def test_workload_name_includes_variant(self):
        assert RunPoint(benchmark="taobench").workload_name == "taobench"
        assert (
            RunPoint(benchmark="taobench", variant=":prod").workload_name
            == "taobench:prod"
        )

    def test_run_config_carries_everything(self):
        point = RunPoint(
            benchmark="feedsim",
            sku="SKU3",
            kernel="6.4",
            seed=3,
            measure_seconds=2.5,
            warmup_seconds=0.25,
            load_scale=1.5,
            batch=2,
        )
        config = point.run_config()
        assert config.sku_name == "SKU3"
        assert config.kernel_version == "6.4"
        assert config.seed == 3
        assert config.measure_seconds == 2.5
        assert config.warmup_seconds == 0.25
        assert config.load_scale == 1.5
        assert config.batch == 2

    def test_hashable_and_frozen(self):
        point = RunPoint(benchmark="taobench")
        assert point in {point}
        with pytest.raises(Exception):
            point.sku = "SKU4"


class TestExpandGrid:
    def test_count_and_order(self):
        points = expand_grid(
            benchmarks=["a", "b"],
            skus=["SKU1", "SKU2"],
            kernels=["6.4", "6.9"],
            seeds=[1, 2],
        )
        assert len(points) == 2 * 2 * 2 * 2
        # SKU outermost: the first half is all SKU1.
        assert all(p.sku == "SKU1" for p in points[:8])
        assert all(p.sku == "SKU2" for p in points[8:])
        # Benchmark innermost: adjacent points alternate benchmarks.
        assert [p.benchmark for p in points[:4]] == ["a", "b", "a", "b"]

    def test_forwards_window(self):
        (point,) = expand_grid(
            ["a"], ["SKU1"], measure_seconds=3.0, warmup_seconds=0.1
        )
        assert point.measure_seconds == 3.0
        assert point.warmup_seconds == 0.1


class TestFingerprints:
    def test_deterministic(self):
        point = RunPoint(benchmark="taobench")
        assert run_fingerprint(point) == run_fingerprint(point)

    def test_sensitive_to_every_field(self):
        base = RunPoint(benchmark="taobench")
        variants = [
            RunPoint(benchmark="feedsim"),
            RunPoint(benchmark="taobench", sku="SKU4"),
            RunPoint(benchmark="taobench", kernel="6.4"),
            RunPoint(benchmark="taobench", seed=8),
            RunPoint(benchmark="taobench", variant=":prod"),
            RunPoint(benchmark="taobench", measure_seconds=2.0),
        ]
        fingerprints = {run_fingerprint(p) for p in [base] + variants}
        assert len(fingerprints) == len(variants) + 1

    def test_model_and_code_fingerprints_are_short_hex(self):
        for fp in (model_fingerprint(), code_fingerprint()):
            assert len(fp) == 16
            int(fp, 16)  # valid hex


class TestDedupe:
    def test_preserves_first_seen_order(self):
        a = RunPoint(benchmark="a")
        b = RunPoint(benchmark="b")
        assert dedupe([a, b, a, b, a]) == [a, b]

    def test_empty(self):
        assert dedupe([]) == []
