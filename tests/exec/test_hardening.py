"""Executor hardening: timeouts, worker-crash recovery, partial resume,
and graceful cache degradation.

These cover the **cold** pool path (``warm_pool=False``) — the
fallback when ``DCPERF_WARM_POOL=0``.  The warm path's equivalents
(per-worker kill-and-respawn) live in ``test_workerpool.py``."""

import json
import os
import stat

import pytest

from repro.exec.cache import RunCache, cache_from_env
from repro.exec.executor import SweepExecutor, _run_point_payload
from repro.exec.spec import RunPoint, run_fingerprint

FAST = dict(measure_seconds=0.5, warmup_seconds=0.2)


def fast_point(benchmark="taobench", **kwargs):
    return RunPoint(benchmark=benchmark, **{**FAST, **kwargs})


class TestPointTimeout:
    def test_rejects_non_positive_timeout(self):
        with pytest.raises(ValueError):
            SweepExecutor(point_timeout_s=0)
        with pytest.raises(ValueError):
            SweepExecutor(point_timeout_s=-1.0)

    def test_timed_out_points_recovered_in_process(self, monkeypatch):
        # The env var propagates into pool workers (a monkeypatch would
        # not); the recovery re-run happens in-process where the same
        # env var applies, so drop it before the executor falls back.
        # Two distinct points are needed: a one-point grid clamps the
        # worker count to 1 and takes the serial (unpooled) path.
        monkeypatch.setenv("DCPERF_FAULT_POINT_DELAY", "5.0")
        executor = SweepExecutor(
            max_workers=2,
            cache=None,
            use_cache=False,
            point_timeout_s=0.5,
            warm_pool=False,
        )
        points = [fast_point(), fast_point("feedsim")]

        original = SweepExecutor._run_pooled

        def pooled_then_clear_delay(self, todo, workers):
            result = original(self, todo, workers)
            os.environ.pop("DCPERF_FAULT_POINT_DELAY", None)
            return result

        monkeypatch.setattr(
            SweepExecutor, "_run_pooled", pooled_then_clear_delay
        )
        reports = executor.run(points)
        stats = executor.last_stats
        assert stats.timeouts == 2
        assert stats.recovered == 2
        assert stats.pool_mode == "cold"
        assert [r.benchmark for r in reports] == ["taobench", "feedsim"]
        assert all(r.metric_value > 0 for r in reports)

    def test_no_timeout_no_recovery(self):
        executor = SweepExecutor(max_workers=2, cache=None, use_cache=False)
        executor.run([fast_point()])
        stats = executor.last_stats
        assert stats.timeouts == 0
        assert stats.recovered == 0


class TestWorkerCrashRecovery:
    def test_broken_pool_points_rerun_in_process(self, monkeypatch):
        """When the pool breaks, every lost point is recovered in-process
        and the sweep still returns a full, correct result set."""

        def broken_pool(self, todo, workers):
            return {}, list(todo), 0

        monkeypatch.setattr(SweepExecutor, "_run_pooled", broken_pool)
        executor = SweepExecutor(
            max_workers=2, cache=None, use_cache=False, warm_pool=False
        )
        points = [fast_point(), fast_point("feedsim")]
        reports = executor.run(points)
        assert executor.last_stats.recovered == 2
        assert [r.benchmark for r in reports] == ["taobench", "feedsim"]
        assert all(r.metric_value > 0 for r in reports)

    def test_recovered_reports_match_serial(self, monkeypatch):
        point = fast_point()
        serial = SweepExecutor(
            max_workers=1, cache=None, use_cache=False
        ).run([point])[0]

        def broken_pool(self, todo, workers):
            return {}, list(todo), 0

        monkeypatch.setattr(SweepExecutor, "_run_pooled", broken_pool)
        recovered = SweepExecutor(
            max_workers=2, cache=None, use_cache=False, warm_pool=False
        ).run([point])[0]
        assert json.dumps(recovered.as_dict(), sort_keys=True) == json.dumps(
            serial.as_dict(), sort_keys=True
        )

    def test_app_level_exception_still_propagates(self):
        executor = SweepExecutor(max_workers=2, cache=None, use_cache=False)
        with pytest.raises(Exception):
            executor.run([RunPoint(benchmark="no_such_benchmark", **FAST)])


class TestPartialResume:
    def test_finished_points_cached_incrementally(self, tmp_path, monkeypatch):
        """A sweep that dies mid-way must keep its finished points: the
        cache write happens per point, not in bulk at the end."""
        cache = RunCache(str(tmp_path))
        executor = SweepExecutor(max_workers=1, cache=cache)
        points = [fast_point(), fast_point("feedsim")]

        # Kill the sweep after the first point completes.
        calls = []
        original = _run_point_payload

        def run_then_die(point):
            if calls:
                raise KeyboardInterrupt("sweep killed mid-way")
            calls.append(point)
            return original(point)

        monkeypatch.setattr(
            "repro.exec.executor._run_point_payload", run_then_die
        )
        with pytest.raises(KeyboardInterrupt):
            executor.run(points)

        # The first point survived on disk...
        assert cache.get(run_fingerprint(points[0])) is not None
        # ...so the restart only re-runs the second.
        monkeypatch.undo()
        resumed = SweepExecutor(max_workers=1, cache=RunCache(str(tmp_path)))
        reports = resumed.run(points)
        assert resumed.last_stats.cache_hits == 1
        assert resumed.last_stats.executed == 1
        assert [r.benchmark for r in reports] == ["taobench", "feedsim"]

    def test_resumed_reports_match_uninterrupted(self, tmp_path):
        points = [fast_point(), fast_point("feedsim")]
        clean = SweepExecutor(
            max_workers=1, cache=None, use_cache=False
        ).run(points)
        resumed = SweepExecutor(
            max_workers=1, cache=RunCache(str(tmp_path))
        ).run(points)
        assert [r.as_dict() for r in clean] == [r.as_dict() for r in resumed]


class TestCacheGracefulDegrade:
    def test_put_to_impossible_dir_disables_cache(self, tmp_path):
        """A cache directory blocked by a plain file degrades to a
        warned no-op — works even as root, where chmod is advisory."""
        blocker = tmp_path / "file-not-dir"
        blocker.write_text("occupied")
        cache = RunCache(str(blocker / "sub"))
        point = fast_point()
        with pytest.warns(RuntimeWarning, match="caching disabled"):
            assert cache.put("deadbeef", point, {"x": 1}) is None
        assert cache.disabled
        # Subsequent operations are silent no-ops, not repeat warnings.
        assert cache.put("deadbeef", point, {"x": 1}) is None
        assert cache.get("deadbeef") is None

    def test_put_to_unwritable_dir_disables_cache(self, tmp_path):
        target = tmp_path / "ro"
        target.mkdir()
        os.chmod(target, stat.S_IRUSR | stat.S_IXUSR)
        if os.access(target, os.W_OK):  # running as root: chmod is moot
            pytest.skip("cannot create an unwritable directory here")
        cache = RunCache(str(target))
        point = fast_point()
        with pytest.warns(RuntimeWarning, match="caching disabled"):
            path = cache.put("deadbeef", point, {"x": 1})
        assert path is None
        assert cache.disabled
        # Subsequent operations are silent no-ops, not repeat warnings.
        assert cache.put("deadbeef", point, {"x": 1}) is None
        assert cache.get("deadbeef") is None
        os.chmod(target, stat.S_IRWXU)

    def test_disabled_cache_does_not_sink_sweep(self, tmp_path):
        cache = RunCache(str(tmp_path))
        cache.disabled = True
        executor = SweepExecutor(max_workers=1, cache=cache)
        reports = executor.run([fast_point()])
        assert len(reports) == 1
        assert reports[0].metric_value > 0

    def test_cache_from_env_degrades_on_bad_dir(self, monkeypatch, tmp_path):
        blocker = tmp_path / "file-not-dir"
        blocker.write_text("occupied")
        monkeypatch.setenv("DCPERF_CACHE_DIR", str(blocker / "sub"))
        with pytest.warns(RuntimeWarning, match="caching disabled"):
            assert cache_from_env() is None

    def test_cache_from_env_disabled_flag(self, monkeypatch):
        monkeypatch.setenv("DCPERF_CACHE", "0")
        assert cache_from_env() is None
