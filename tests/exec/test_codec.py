"""Binary report codec: round-trip fidelity against the dict codec.

The warm pool ships every pooled result through
``dict_to_bytes``/``dict_from_bytes``, so these tests are the
byte-identity gate for that transport: every golden report must decode
to exactly the payload the lossless dict codec produced, floats
bit-exact, with type fidelity (ints stay ints, floats stay floats).
"""

import json
import math
import os

import pytest

from repro.exec.executor import _run_point_payload
from repro.exec.serialize import (
    BINARY_MAGIC,
    dict_from_bytes,
    dict_to_bytes,
    report_from_bytes,
    report_from_dict,
    report_to_bytes,
    report_to_dict,
)
from repro.exec.spec import RunPoint

GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.dirname(__file__)), "data", "golden_reports.json"
)


def _golden_cases():
    with open(GOLDEN_PATH) as fh:
        goldens = json.load(fh)
    return sorted(goldens.items())


def _typed(value):
    """Value tree annotated with JSON-semantic types.

    ``bool`` vs ``int`` vs ``float`` must be preserved, but subclasses
    (e.g. ``np.float64``, which some workload extras carry) count as
    their base scalar — the JSON cache path normalizes them the same
    way, and their canonical JSON text is identical.
    """
    if isinstance(value, dict):
        return {k: _typed(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_typed(v) for v in value]
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, int):
        return ("int", value)
    if isinstance(value, float):
        return ("float", value)
    return (type(value).__name__, value)


class TestGoldenRoundTrips:
    """Satellite: every golden report survives the binary codec."""

    @pytest.mark.parametrize(
        "case,entry", _golden_cases(), ids=[c for c, _ in _golden_cases()]
    )
    def test_golden_payload_round_trips(self, case, entry):
        point = RunPoint.from_dict(entry["point"])
        payload = _run_point_payload(point)
        decoded = dict_from_bytes(dict_to_bytes(payload))
        assert decoded == payload
        # Equality alone tolerates 1 == 1.0; the canonical JSON and the
        # typed tree do not.
        assert json.dumps(decoded, sort_keys=True) == json.dumps(
            payload, sort_keys=True
        )
        assert _typed(decoded) == _typed(payload)

    def test_report_level_api_round_trips(self):
        point = RunPoint(
            benchmark="taobench", measure_seconds=0.5, warmup_seconds=0.2
        )
        report = report_from_dict(_run_point_payload(point))
        via_bytes = report_from_bytes(report_to_bytes(report))
        assert via_bytes.as_dict() == report.as_dict()
        assert report_to_dict(via_bytes) == report_to_dict(report)


class TestValueFidelity:
    def test_scalar_round_trips(self):
        payload = {
            "none": None,
            "true": True,
            "false": False,
            "zero": 0,
            "neg": -12345,
            "big": 2**100,
            "neg_big": -(2**100),
            "pi": math.pi,
            "tiny": 5e-324,
            "unicode": "héllo ☃  ",
            "empty_str": "",
        }
        assert dict_from_bytes(dict_to_bytes(payload)) == payload
        assert _typed(dict_from_bytes(dict_to_bytes(payload))) == _typed(payload)

    def test_float_bit_exactness(self):
        values = [0.1, 1 / 3, 1e300, 5e-324, -0.0, 2.0**53 + 1.0]
        decoded = dict_from_bytes(dict_to_bytes({"v": values}))["v"]
        for got, want in zip(decoded, values):
            assert math.copysign(1.0, got) == math.copysign(1.0, want)
            assert got.hex() == want.hex()

    def test_non_finite_floats_round_trip(self):
        decoded = dict_from_bytes(
            dict_to_bytes({"v": [float("inf"), float("-inf"), float("nan")]})
        )["v"]
        assert decoded[0] == float("inf")
        assert decoded[1] == float("-inf")
        assert math.isnan(decoded[2])

    def test_empty_timeline_and_hooks(self):
        """The edge shape of a minimal report: no samples, no hooks."""
        payload = {
            "benchmark": "x",
            "metric_name": "rps",
            "metric_value": 1.5,
            "result": {"timeline": [], "extra": {}},
            "hooks": {},
            "score": None,
        }
        decoded = dict_from_bytes(dict_to_bytes(payload))
        assert decoded == payload
        assert decoded["result"]["timeline"] == []
        assert decoded["hooks"] == {}

    def test_nested_structures(self):
        payload = {"a": [{"b": [[1, 2.5], []]}, {}], "c": {"d": {"e": []}}}
        assert dict_from_bytes(dict_to_bytes(payload)) == payload


class TestFraming:
    def test_magic_prefix(self):
        data = dict_to_bytes({})
        assert data.startswith(BINARY_MAGIC)

    def test_rejects_bad_magic(self):
        with pytest.raises(ValueError, match="bad magic"):
            dict_from_bytes(b"JSON" + dict_to_bytes({})[4:])

    def test_rejects_trailing_bytes(self):
        with pytest.raises(ValueError, match="trailing"):
            dict_from_bytes(dict_to_bytes({}) + b"\x00")

    def test_rejects_non_dict_root(self):
        from repro.exec.serialize import _encode_value

        out = bytearray(BINARY_MAGIC)
        _encode_value(out, [1, 2, 3])
        with pytest.raises(ValueError, match="did not decode to a dict"):
            dict_from_bytes(bytes(out))

    def test_rejects_unencodable_types(self):
        with pytest.raises(TypeError, match="cannot encode"):
            dict_to_bytes({"x": object()})
        with pytest.raises(TypeError, match="str dict keys"):
            dict_to_bytes({1: "x"})

    def test_binary_smaller_than_json(self):
        """Sanity: the compact form actually is compact for a report."""
        point = RunPoint(
            benchmark="taobench", measure_seconds=0.5, warmup_seconds=0.2
        )
        payload = _run_point_payload(point)
        assert len(dict_to_bytes(payload)) < len(json.dumps(payload).encode())
