"""LsmTree: flush rotation, compaction scheduling, write stalls, reads."""

import pytest

from repro.cachelib.lru import LruCache
from repro.hw.blockdev import BlockDevice, BlockDeviceSpec
from repro.sim.engine import Environment
from repro.storage.lsm import LsmConfig, LsmTree

FAST_SPEC = BlockDeviceSpec(
    name="toy",
    queue_depth=8,
    seq_read_bps=1e9,
    rand_read_bps=5e8,
    seq_write_bps=1e9,
    rand_write_bps=5e8,
    latency_s=1e-6,
)


def make_tree(config=None, on_stall=None, compaction_cpu=None, io_scale=1):
    env = Environment()
    device = BlockDevice(env, FAST_SPEC)
    cache = LruCache(64 * 1024, clock=lambda: env.now)
    tree = LsmTree(
        env,
        device,
        cache,
        config=config or LsmConfig(),
        io_scale=io_scale,
        compaction_cpu=compaction_cpu,
        on_stall=on_stall,
    )
    return env, device, tree


def drive(env, gen):
    """Run one generator to completion in the sim; return its value."""
    out = {}

    def proc():
        out["value"] = yield from gen

    env.process(proc())
    env.run()
    return out["value"]


def assert_level_invariants(tree):
    """Sorted levels hold non-overlapping runs in ascending key order."""
    for level in range(1, len(tree.levels)):
        tables = tree.levels[level]
        for a, b in zip(tables, tables[1:]):
            assert a.max_key < b.min_key


class TestFlush:
    def test_memtable_rotates_at_threshold(self):
        config = LsmConfig(memtable_bytes=300, l0_compaction_trigger=99)
        env, device, tree = make_tree(config)

        def writer():
            for key in range(3):
                yield from tree.put(key, 100)

        env.process(writer())
        env.run()
        assert tree.stats.flushes == 1
        assert len(tree.memtable) == 0
        assert len(tree.levels[0]) == 1
        assert tree.levels[0][0].data_bytes == 300
        assert tree.stats.flush_write_bytes == 300
        # Every put paid a WAL append before landing in the memtable.
        assert tree.stats.wal_bytes == 3 * (100 + config.wal_record_overhead)
        assert device.stats.writes == 4  # 3 WAL appends + 1 flush

    def test_io_scale_multiplies_device_bytes_only(self):
        """Batch semantics: device transfers scale, tree structure not."""
        config = LsmConfig(memtable_bytes=300, l0_compaction_trigger=99)
        env, device, tree = make_tree(config, io_scale=50)
        drive(env, tree.put(1, 100))
        assert tree.memtable.data_bytes == 100
        assert device.stats.write_bytes == (100 + config.wal_record_overhead) * 50


class TestCompactionScheduling:
    def test_l0_trigger_compacts_into_l1(self):
        config = LsmConfig(
            memtable_bytes=200,
            l0_compaction_trigger=2,
            l0_stall_trigger=8,
            base_level_bytes=100_000,
        )
        env, device, tree = make_tree(config)

        def writer():
            for key in range(4):  # 2 flushes -> trigger
                yield from tree.put(key, 100)

        env.process(writer())
        env.run()
        assert tree.stats.compactions == 1
        assert tree.levels[0] == []
        assert tree.level_bytes(1) == 400
        assert_level_invariants(tree)
        # Compaction charged the device for the merge on both sides.
        assert tree.stats.compaction_read_bytes == 400
        assert tree.stats.compaction_write_bytes == 400

    def test_over_target_sorted_level_cascades(self):
        """A sorted level past its target size is compacted into the
        next level even with L0 quiet."""
        config = LsmConfig(
            memtable_bytes=10_000,
            base_level_bytes=1000,
            level_size_multiplier=10,
            table_target_bytes=500,
        )
        env, device, tree = make_tree(config)
        tree.load_level(1, [(k, 100) for k in range(1, 21)])  # 2000 > 1000
        assert tree.level_bytes(1) > config.level_target_bytes(1)
        tree._maybe_compact()
        env.run()
        assert tree.stats.compactions >= 1
        assert tree.level_bytes(1) <= config.level_target_bytes(1)
        assert tree.level_bytes(2) > 0
        assert_level_invariants(tree)

    def test_compaction_merges_overlapping_next_level(self):
        """L0->L1 compaction rewrites the overlapping L1 key range and
        keeps newest values (the L0 versions)."""
        config = LsmConfig(
            memtable_bytes=200,
            l0_compaction_trigger=2,
            base_level_bytes=100_000,
            table_target_bytes=100_000,
        )
        env, device, tree = make_tree(config)
        tree.load_level(1, [(k, 50) for k in range(1, 5)])

        def writer():
            for key in (1, 2, 3, 4):  # overwrite with bigger values
                yield from tree.put(key, 100)

        env.process(writer())
        env.run()
        assert tree.stats.compactions == 1
        assert tree.levels[0] == []
        [table] = tree.levels[1]
        assert table.entries() == [(1, 100), (2, 100), (3, 100), (4, 100)]

    def test_compaction_cpu_hook_charged_input_bytes(self):
        charged = []
        holder = {}

        def cpu(merge_bytes):
            charged.append(merge_bytes)
            yield holder["env"].sleep(0.001)

        config = LsmConfig(memtable_bytes=200, l0_compaction_trigger=2)
        env, device, tree = make_tree(config, compaction_cpu=cpu)
        holder["env"] = env

        def writer():
            for key in range(4):
                yield from tree.put(key, 100)

        env.process(writer())
        env.run()
        assert charged == [400]  # unscaled sim bytes: 2 runs x 200B


class TestWriteStalls:
    def test_l0_backlog_stalls_writers_until_drain(self):
        stalls = []
        config = LsmConfig(
            memtable_bytes=100,
            l0_compaction_trigger=3,
            l0_stall_trigger=3,
            base_level_bytes=100_000,
        )
        env, device, tree = make_tree(config, on_stall=stalls.append)
        done = []

        def writer():
            for key in range(8):
                yield from tree.put(key, 100)
            done.append(True)

        env.process(writer())
        env.run()
        assert done == [True]  # backpressure released, writer finished
        assert tree.stats.stall_events >= 1
        assert tree.stats.stall_seconds > 0.0
        assert stalls and all(s > 0.0 for s in stalls)
        assert len(stalls) == tree.stats.stall_events
        assert pytest.approx(tree.stats.stall_seconds) == sum(stalls)
        assert tree.stats.compactions >= 1
        assert len(tree.levels[0]) < config.l0_stall_trigger

    def test_no_stalls_below_trigger(self):
        config = LsmConfig(
            memtable_bytes=100,
            l0_compaction_trigger=2,
            l0_stall_trigger=8,
        )
        env, device, tree = make_tree(config)

        def writer():
            for key in range(6):
                yield from tree.put(key, 100)

        env.process(writer())
        env.run()
        assert tree.stats.stall_events == 0


class TestReadPath:
    def test_get_from_sorted_level_and_cache(self):
        env, device, tree = make_tree(LsmConfig(memtable_bytes=10_000))
        tree.load_level(1, [(k, 100) for k in range(1, 11)])
        assert drive(env, tree.get(5)) is True
        first_reads = device.stats.reads
        assert first_reads == 1  # one block read on the cold lookup
        assert drive(env, tree.get(5)) is True  # same block, now cached
        assert device.stats.reads == first_reads
        assert tree.stats.hits == 2

    def test_get_miss_outside_key_range_touches_nothing(self):
        env, device, tree = make_tree(LsmConfig(memtable_bytes=10_000))
        tree.load_level(1, [(k, 100) for k in range(1, 11)])
        assert drive(env, tree.get(999)) is False
        assert device.stats.reads == 0

    def test_memtable_hit_is_free(self):
        env, device, tree = make_tree(LsmConfig(memtable_bytes=10_000))
        drive(env, tree.put(7, 100))
        writes = device.stats.writes  # WAL only
        assert drive(env, tree.get(7)) is True
        assert device.stats.reads == 0
        assert device.stats.writes == writes

    def test_scan_merges_newest_wins(self):
        env, device, tree = make_tree(LsmConfig(memtable_bytes=10_000))
        tree.load_level(1, [(k, 100) for k in range(1, 6)])
        drive(env, tree.put(2, 500))  # newer version in the memtable
        count, data_bytes = drive(env, tree.scan(1, 3))
        assert count == 3
        assert data_bytes == 100 + 500 + 100  # keys 1, 2(new), 3
        assert tree.stats.scans == 1
        assert tree.stats.scanned_entries == 3

    def test_load_level_validation(self):
        env, device, tree = make_tree()
        with pytest.raises(ValueError):
            tree.load_level(0, [(1, 1)])
        tree.load_level(1, [(1, 1)])
        with pytest.raises(ValueError):
            tree.load_level(1, [(2, 1)])
