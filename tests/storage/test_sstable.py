"""Memtable, SSTable metadata, and the compaction merge helpers."""

import pytest

from repro.storage.sstable import Memtable, SSTable, merge_runs, split_into_tables


class TestMemtable:
    def test_put_tracks_bytes(self):
        mt = Memtable()
        mt.put(5, 100)
        mt.put(3, 50)
        assert len(mt) == 2
        assert mt.data_bytes == 150
        assert mt.get(5) == 100
        assert mt.get(99) is None
        assert 3 in mt and 99 not in mt

    def test_overwrite_replaces_bytes(self):
        """Overwriting a key follows the new size — the memtable models
        the live image, not the append log (that's the WAL's job)."""
        mt = Memtable()
        mt.put(1, 100)
        mt.put(1, 300)
        assert len(mt) == 1
        assert mt.data_bytes == 300

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Memtable().put(1, -1)

    def test_sorted_entries_is_flush_image(self):
        mt = Memtable()
        for key in (9, 2, 7, 4):
            mt.put(key, key * 10)
        assert mt.sorted_entries() == [(2, 20), (4, 40), (7, 70), (9, 90)]

    def test_range_entries(self):
        mt = Memtable()
        for key in (1, 3, 5, 7, 9):
            mt.put(key, 10)
        assert mt.range_entries(4, 2) == [(5, 10), (7, 10)]
        assert mt.range_entries(100, 2) == []


class TestSSTable:
    def test_rejects_empty_and_unsorted(self):
        with pytest.raises(ValueError):
            SSTable(1, 0, [])
        with pytest.raises(ValueError):
            SSTable(1, 0, [(3, 10), (1, 10)])
        with pytest.raises(ValueError):
            SSTable(1, 0, [(3, 10), (3, 10)])  # duplicates banned too

    def test_metadata(self):
        t = SSTable(7, 2, [(10, 100), (20, 200), (30, 300)])
        assert len(t) == 3
        assert (t.min_key, t.max_key) == (10, 30)
        assert t.data_bytes == 600
        assert t.level == 2 and t.table_id == 7

    def test_key_position(self):
        t = SSTable(1, 0, [(10, 1), (20, 1), (30, 1)])
        assert t.key_position(20) == 1
        assert t.key_position(25) is None
        assert t.key_position(5) is None  # below range: no bisect needed
        assert t.key_position(99) is None

    def test_bloom_admits_every_key(self):
        t = SSTable(1, 0, [(k, 1) for k in range(0, 100, 3)])
        assert all(t.bloom.might_contain(k) for k in t.keys)

    def test_overlaps(self):
        t = SSTable(1, 1, [(10, 1), (30, 1)])
        assert t.overlaps(20, 40)
        assert t.overlaps(30, 30)
        assert not t.overlaps(31, 99)
        assert not t.overlaps(0, 9)

    def test_range_entries(self):
        t = SSTable(1, 0, [(10, 1), (20, 2), (30, 3)])
        assert t.range_entries(15, 5) == [(20, 2), (30, 3)]


class TestMergeHelpers:
    def test_merge_runs_newest_wins(self):
        """Input order is newest-first; a key in several runs keeps the
        newest size (obsolete versions dropped, like real compaction)."""
        newest = SSTable(2, 0, [(1, 111), (3, 333)])
        oldest = SSTable(1, 1, [(1, 100), (2, 200)])
        assert merge_runs([newest, oldest]) == [(1, 111), (2, 200), (3, 333)]

    def test_split_into_tables_respects_target(self):
        entries = [(k, 100) for k in range(10)]
        calls = iter(range(100, 200))
        tables = split_into_tables(entries, 300, lambda: next(calls), level=1)
        assert [len(t) for t in tables] == [3, 3, 3, 1]
        assert [t.table_id for t in tables] == [100, 101, 102, 103]
        assert all(t.level == 1 for t in tables)
        # No entry lost, key ranges non-overlapping and ascending.
        merged = [e for t in tables for e in t.entries()]
        assert merged == entries
        for a, b in zip(tables, tables[1:]):
            assert a.max_key < b.min_key

    def test_split_rejects_bad_target(self):
        with pytest.raises(ValueError):
            split_into_tables([(1, 1)], 0, lambda: 1, level=0)
