"""Bloom filter: determinism, no false negatives, bounded FP rate."""

import pytest

from repro.storage.bloom import BloomFilter


class TestDeterminism:
    def test_bit_array_is_process_independent(self):
        """Hashing uses crc32, never ``hash()``: the bit pattern must be
        a pure function of the keys, immune to PYTHONHASHSEED."""
        a = BloomFilter(expected_keys=100)
        b = BloomFilter(expected_keys=100)
        for key in range(100):
            a.add(key)
            b.add(key)
        assert a._bits == b._bits

    def test_known_bit_pattern_pinned(self):
        """A tiny filter's exact bits, pinned so any hash-function
        change (which would silently change every golden trace) fails
        loudly here first."""
        f = BloomFilter(expected_keys=4, bits_per_key=16)
        for key in (1, 2, 3):
            f.add(key)
        first = bytes(f._bits)
        g = BloomFilter(expected_keys=4, bits_per_key=16)
        for key in (1, 2, 3):
            g.add(key)
        assert bytes(g._bits) == first

    def test_mixed_key_types(self):
        f = BloomFilter(expected_keys=10)
        f.add("alpha")
        f.add(b"beta")
        f.add(42)
        assert f.might_contain("alpha")
        assert f.might_contain(b"beta")
        assert f.might_contain(42)


class TestGuarantees:
    def test_no_false_negatives(self):
        f = BloomFilter(expected_keys=1000, bits_per_key=10)
        keys = list(range(0, 5000, 5))
        for key in keys:
            f.add(key)
        assert all(f.might_contain(key) for key in keys)

    def test_false_positive_rate_bounded(self):
        """10 bits/key with ~7 hashes gives ~1% theoretical FP; assert
        a loose 5% bound over a large disjoint probe set."""
        f = BloomFilter(expected_keys=1000, bits_per_key=10)
        for key in range(1000):
            f.add(key)
        probes = range(10_000, 30_000)
        fp = sum(1 for key in probes if f.might_contain(key))
        assert fp / len(probes) < 0.05

    def test_fill_fraction_grows(self):
        f = BloomFilter(expected_keys=100)
        assert f.fill_fraction == 0.0
        for key in range(100):
            f.add(key)
        assert 0.0 < f.fill_fraction < 1.0
        assert f.keys_added == 100

    def test_empty_filter_rejects_everything(self):
        f = BloomFilter(expected_keys=10)
        assert not any(f.might_contain(key) for key in range(100))

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            BloomFilter(expected_keys=0)
        with pytest.raises(ValueError):
            BloomFilter(expected_keys=10, bits_per_key=0)
