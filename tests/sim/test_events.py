"""Tests for the all_of / any_of combinators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.engine import Environment
from repro.sim.events import all_of, any_of


class TestAllOf:
    def test_waits_for_slowest(self, env):
        events = [env.timeout(d, value=d) for d in (3.0, 1.0, 2.0)]
        fired = []

        def proc():
            values = yield all_of(env, events)
            fired.append((env.now, values))

        env.process(proc())
        env.run()
        assert fired == [(3.0, [3.0, 1.0, 2.0])]

    def test_empty_fires_immediately(self, env):
        result = all_of(env, [])
        assert result.triggered
        assert result.value == []

    def test_already_finished_inputs(self, env):
        first = env.timeout(1.0, value="a")
        env.run()  # first is processed
        second = env.timeout(1.0, value="b")
        caught = []

        def proc():
            values = yield all_of(env, [first, second])
            caught.append(values)

        env.process(proc())
        env.run()
        assert caught == [["a", "b"]]

    def test_failure_propagates(self, env):
        good = env.timeout(1.0)
        bad = env.event()
        caught = []

        def proc():
            try:
                yield all_of(env, [good, bad])
            except RuntimeError as exc:
                caught.append((env.now, str(exc)))

        env.process(proc())
        bad.fail(RuntimeError("leaf died"))
        env.run()
        assert caught == [(0.0, "leaf died")]

    @given(delays=st.lists(st.floats(0.0, 50.0), min_size=1, max_size=15))
    @settings(max_examples=40, deadline=None)
    def test_fires_at_max_delay(self, delays):
        env = Environment()
        events = [env.timeout(d, value=d) for d in delays]
        joined = all_of(env, events)
        env.run()
        assert joined.value == delays
        assert env.now == pytest.approx(max(delays))


class TestAnyOf:
    def test_first_wins(self, env):
        events = [env.timeout(d, value=d) for d in (3.0, 1.0, 2.0)]
        fired = []

        def proc():
            winner = yield any_of(env, events)
            fired.append((env.now, winner))

        env.process(proc())
        env.run()
        assert fired == [(1.0, (1, 1.0))]

    def test_empty_rejected(self, env):
        with pytest.raises(ValueError):
            any_of(env, [])

    def test_already_finished_input_wins_instantly(self, env):
        done = env.timeout(0.5, value="fast")
        env.run()
        slow = env.timeout(10.0)
        fired = []

        def proc():
            winner = yield any_of(env, [slow, done])
            fired.append(winner)

        env.process(proc())
        env.run(until=1.0)
        assert fired == [(1, "fast")]

    def test_failure_wins_as_exception(self, env):
        bad = env.event()
        caught = []

        def proc():
            try:
                yield any_of(env, [env.timeout(5.0), bad])
            except RuntimeError:
                caught.append(env.now)

        env.process(proc())
        bad.fail(RuntimeError("boom"))
        env.run()
        assert caught == [0.0]

    @given(delays=st.lists(st.floats(0.01, 50.0), min_size=1, max_size=15))
    @settings(max_examples=40, deadline=None)
    def test_fires_at_min_delay(self, delays):
        env = Environment()
        events = [env.timeout(d, value=d) for d in delays]
        race = any_of(env, events)
        env.run()
        index, value = race.value
        assert value == pytest.approx(min(delays))
        assert delays[index] == value
