"""Tests for deterministic RNG streams and samplers."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.rng import (
    EmpiricalDistribution,
    RngStreams,
    ZipfSampler,
    exponential,
    lognormal_from_mean_cv,
)


class TestRngStreams:
    def test_same_name_same_stream(self):
        streams = RngStreams(7)
        assert streams.stream("a") is streams.stream("a")

    def test_reproducible_across_instances(self):
        a = RngStreams(7).stream("arrivals")
        b = RngStreams(7).stream("arrivals")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_streams_independent(self):
        streams = RngStreams(7)
        a = [streams.stream("a").random() for _ in range(5)]
        b = [streams.stream("b").random() for _ in range(5)]
        assert a != b

    def test_spawn_differs_from_parent(self):
        parent = RngStreams(7)
        child = parent.spawn("tao")
        assert parent.stream("x").random() != child.stream("x").random()

    def test_different_seeds_differ(self):
        assert RngStreams(1).stream("s").random() != RngStreams(2).stream("s").random()


class TestDistributions:
    def test_exponential_mean(self):
        rng = RngStreams(3).stream("exp")
        samples = [exponential(rng, 2.0) for _ in range(20000)]
        assert sum(samples) / len(samples) == pytest.approx(2.0, rel=0.05)

    def test_exponential_invalid_mean(self):
        rng = RngStreams(3).stream("exp")
        with pytest.raises(ValueError):
            exponential(rng, 0.0)

    def test_lognormal_mean_and_positivity(self):
        rng = RngStreams(3).stream("ln")
        samples = [lognormal_from_mean_cv(rng, 150.0, 1.2) for _ in range(20000)]
        assert all(s > 0 for s in samples)
        assert sum(samples) / len(samples) == pytest.approx(150.0, rel=0.1)

    def test_lognormal_invalid_params(self):
        rng = RngStreams(3).stream("ln")
        with pytest.raises(ValueError):
            lognormal_from_mean_cv(rng, -1.0, 1.0)
        with pytest.raises(ValueError):
            lognormal_from_mean_cv(rng, 1.0, 0.0)


class TestZipfSampler:
    def test_rank_one_most_popular(self):
        zipf = ZipfSampler(1000, 0.99)
        rng = RngStreams(5).stream("zipf")
        counts = {}
        for _ in range(20000):
            rank = zipf.sample(rng)
            counts[rank] = counts.get(rank, 0) + 1
        assert counts[1] == max(counts.values())

    def test_samples_in_range(self):
        zipf = ZipfSampler(50, 1.1)
        rng = RngStreams(5).stream("zipf")
        assert all(1 <= zipf.sample(rng) <= 50 for _ in range(2000))

    def test_hit_fraction_monotone(self):
        zipf = ZipfSampler(10000, 0.99)
        fractions = [zipf.hit_fraction(k) for k in (1, 10, 100, 1000, 10000)]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_hit_fraction_bounds(self):
        zipf = ZipfSampler(100, 0.9)
        assert zipf.hit_fraction(0) == 0.0
        assert zipf.hit_fraction(200) == 1.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(10, -0.5)

    @given(n=st.integers(1, 500), s=st.floats(0.0, 2.0))
    @settings(max_examples=30, deadline=None)
    def test_cdf_is_valid(self, n, s):
        zipf = ZipfSampler(n, s)
        cdf = zipf._cdf
        assert cdf[-1] == pytest.approx(1.0)
        assert all(b >= a for a, b in zip(cdf, cdf[1:]))


class TestEmpiricalDistribution:
    def test_sampling_respects_weights(self):
        dist = EmpiricalDistribution([10.0, 20.0], [0.9, 0.1])
        rng = RngStreams(9).stream("emp")
        samples = [dist.sample(rng) for _ in range(5000)]
        share_10 = samples.count(10.0) / len(samples)
        assert share_10 == pytest.approx(0.9, abs=0.03)

    def test_mean(self):
        dist = EmpiricalDistribution([10.0, 20.0], [0.5, 0.5])
        assert dist.mean() == pytest.approx(15.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution([], [])
        with pytest.raises(ValueError):
            EmpiricalDistribution([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            EmpiricalDistribution([1.0], [-1.0])
        with pytest.raises(ValueError):
            EmpiricalDistribution([1.0, 2.0], [0.0, 0.0])


class TestExponentialBatch:
    def test_matches_sequential_draw_order(self):
        from repro.sim.rng import exponential_batch

        a = RngStreams(21).stream("arrivals")
        b = RngStreams(21).stream("arrivals")
        batched = exponential_batch(a, 120.0, 64)
        sequential = [b.expovariate(120.0) for _ in range(64)]
        assert batched == sequential
        # The streams stay aligned afterwards, so a workload mixing
        # batched and single draws keeps its trace.
        assert a.random() == b.random()

    def test_validation(self):
        from repro.sim.rng import exponential_batch

        rng = RngStreams(1).stream("x")
        with pytest.raises(ValueError):
            exponential_batch(rng, 0.0, 10)
        with pytest.raises(ValueError):
            exponential_batch(rng, 10.0, 0)


class TestLognormalSampler:
    def test_draw_identical_to_function_form(self):
        from repro.sim.rng import LognormalSampler

        a = RngStreams(9).stream("sizes")
        b = RngStreams(9).stream("sizes")
        sampler = LognormalSampler(150.0, 1.2)
        via_sampler = [sampler.sample(a) for _ in range(200)]
        via_function = [lognormal_from_mean_cv(b, 150.0, 1.2) for _ in range(200)]
        assert via_sampler == via_function
        assert a.random() == b.random()  # streams stay aligned

    def test_batch_matches_sequential(self):
        from repro.sim.rng import LognormalSampler

        a = RngStreams(3).stream("x")
        b = RngStreams(3).stream("x")
        sampler = LognormalSampler(1.0, 0.5)
        assert sampler.sample_batch(a, 64) == [sampler.sample(b) for _ in range(64)]

    def test_parameters_match_closed_form(self):
        from repro.sim.rng import LognormalSampler

        sampler = LognormalSampler(150.0, 1.2)
        sigma2 = math.log(1.0 + 1.2 * 1.2)
        assert sampler.sigma == pytest.approx(math.sqrt(sigma2))
        assert sampler.mu == pytest.approx(math.log(150.0) - sigma2 / 2.0)

    def test_factory_memoizes(self):
        from repro.sim.rng import lognormal_sampler

        assert lognormal_sampler(2.0, 0.7) is lognormal_sampler(2.0, 0.7)
        assert lognormal_sampler(2.0, 0.7) is not lognormal_sampler(2.0, 0.8)

    def test_validation(self):
        from repro.sim.rng import LognormalSampler

        with pytest.raises(ValueError):
            LognormalSampler(0.0, 1.0)
        with pytest.raises(ValueError):
            LognormalSampler(1.0, -1.0)
        with pytest.raises(ValueError):
            LognormalSampler(1.0, 1.0).sample_batch(RngStreams(1).stream("x"), 0)


class TestWeightedChoice:
    def test_identical_to_random_choices(self):
        from repro.sim.rng import WeightedChoice

        names = ["page", "talk", "login", "edit"]
        weights = [0.70, 0.12, 0.10, 0.08]
        a = RngStreams(5).stream("endpoints")
        b = RngStreams(5).stream("endpoints")
        mix = WeightedChoice(names, weights)
        via_mix = [mix.sample(a) for _ in range(500)]
        via_choices = [b.choices(names, weights=weights)[0] for _ in range(500)]
        assert via_mix == via_choices
        assert a.random() == b.random()  # one draw per sample, aligned

    def test_validation(self):
        from repro.sim.rng import WeightedChoice

        with pytest.raises(ValueError):
            WeightedChoice([], [])
        with pytest.raises(ValueError):
            WeightedChoice(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            WeightedChoice(["a", "b"], [0.0, 0.0])


class TestSamplerFastPaths:
    def test_zipf_bisect_matches_linear_scan(self):
        zipf = ZipfSampler(500, 0.99)
        a = RngStreams(11).stream("keys")
        b = RngStreams(11).stream("keys")
        for _ in range(300):
            rank = zipf.sample(a)
            # Reference: the leftmost index whose CDF value is >= u.
            u = b.random()
            expected = next(
                i for i, c in enumerate(zipf._cdf) if c >= u
            ) + 1
            assert rank == expected

    def test_zipf_cdf_memoized_across_instances(self):
        assert ZipfSampler(1000, 0.99)._cdf is ZipfSampler(1000, 0.99)._cdf
        assert ZipfSampler(1000, 0.99)._cdf is not ZipfSampler(1000, 0.8)._cdf

    def test_empirical_bisect_matches_linear_scan(self):
        dist = EmpiricalDistribution([1.0, 2.0, 3.0, 4.0], [0.1, 0.4, 0.4, 0.1])
        a = RngStreams(13).stream("sizes")
        b = RngStreams(13).stream("sizes")
        for _ in range(300):
            value = dist.sample(a)
            u = b.random()
            expected = dist.values[
                next(i for i, c in enumerate(dist._cdf) if c >= u)
            ]
            assert value == expected
