"""Regression tests for the sim-engine fast path.

Pins the behaviors the allocation-free rewrite must preserve: strict
interrupt list discipline (including interrupting a process already
scheduled to resume), sentinel-free bounded runs, freelist recycling,
and cooperative ``stop()``.
"""

import pytest

from repro.sim.engine import (
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


@pytest.fixture
def env():
    return Environment()


class TestInterruptDiscipline:
    def test_interrupt_while_scheduled_to_resume(self, env):
        """Interrupting a process whose resume is already queued.

        The waiter yields an event that has *already been processed*,
        so its resumption rides a pooled queue entry rather than an
        event subscription.  The interrupt must strictly unsubscribe
        from that entry (no double resume, no swallowed ValueError) and
        deliver instead.
        """
        outcomes = []
        ev = Event(env)
        ev.succeed(42)

        def waiter():
            try:
                value = yield ev
            except Interrupt as intr:
                outcomes.append(("interrupted", intr.cause))
                return
            outcomes.append(("value", value))

        proc = env.process(waiter())

        def interrupter():
            proc.interrupt("bump")
            return
            yield  # pragma: no cover - makes this a generator

        env.process(interrupter())
        env.run()
        assert outcomes == [("interrupted", "bump")]

    def test_queued_interrupts_deliver_in_order(self, env):
        causes = []

        def stubborn():
            while True:
                try:
                    yield env.timeout(10.0)
                except Interrupt as intr:
                    causes.append(intr.cause)
                    if len(causes) >= 2:
                        return

        proc = env.process(stubborn())

        def interrupter():
            proc.interrupt("first")
            proc.interrupt("second")
            return
            yield  # pragma: no cover

        env.process(interrupter())
        env.run()
        assert causes == ["first", "second"]
        assert proc.value is None  # returned via the second interrupt

    def test_interrupt_finished_process_raises(self, env):
        def quick():
            return 7
            yield  # pragma: no cover

        proc = env.process(quick())
        env.run()
        assert proc.value == 7
        with pytest.raises(SimulationError):
            proc.interrupt()

    def test_interrupt_then_finish_drops_late_delivery(self, env):
        """A first interrupt that makes the process return quietly
        swallows a second, already-queued interrupt."""
        def once():
            try:
                yield env.timeout(5.0)
            except Interrupt:
                return "done"

        proc = env.process(once())

        def interrupter():
            proc.interrupt("a")
            proc.interrupt("b")
            return
            yield  # pragma: no cover

        env.process(interrupter())
        env.run()
        assert proc.value == "done"


class TestBoundedRun:
    def test_clock_lands_exactly_on_until(self, env):
        # Empty queue: a bounded run still advances the clock.
        env.run(until=1.5)
        assert env.now == 1.5

    def test_repeated_bounded_runs_compose(self, env):
        ticks = []

        def ticker():
            while True:
                yield env.sleep(0.4)
                ticks.append(env.now)

        env.process(ticker())
        env.run(until=1.0)
        assert env.now == 1.0
        first = len(ticks)
        env.run(until=2.0)
        assert env.now == 2.0
        assert len(ticks) > first
        # No event lost or duplicated across the boundary.
        assert ticks == sorted(ticks)
        assert len(ticks) == len(set(ticks))

    def test_timeout_at_bound_scheduled_before_run_fires(self, env):
        fired = []
        # Created before run(): its sequence number is below the bound,
        # so it fires even though it lands exactly at ``until``.
        timeout = env.timeout(1.0)

        def waiter():
            yield timeout
            fired.append(env.now)

        env.process(waiter())
        env.run(until=1.0)
        assert fired == [1.0]

    def test_event_scheduled_at_bound_during_run_defers(self, env):
        """The sentinel tie-break survives: an event landing exactly at
        the bound but scheduled *during* the run waits for the next
        run call."""
        fired = []

        def late():
            yield env.timeout(0.5)
            yield env.timeout(0.5)  # scheduled mid-run, due exactly at 1.0
            fired.append(env.now)

        env.process(late())
        env.run(until=1.0)
        assert fired == []
        env.run(until=1.0)
        assert fired == [1.0]

    def test_until_before_now_rejected(self, env):
        env.run(until=2.0)
        with pytest.raises(ValueError):
            env.run(until=1.0)


class TestFreelists:
    def test_sleep_entries_recycle(self, env):
        def sleeper():
            for _ in range(1000):
                yield env.sleep(0.001)

        env.process(sleeper())
        env.run()
        # 1000 sleeps park at most a couple of pooled timeouts: the
        # same object cycles through the queue instead of 1000 fresh
        # Timeout allocations.
        assert 1 <= len(env._timeout_pool) <= 4

    def test_resume_entries_recycle(self, env):
        done = Event(env)
        done.succeed("x")

        def joiner():
            for _ in range(500):
                value = yield done  # already processed -> pooled resume
                assert value == "x"

        env.process(joiner())
        env.run()
        assert 1 <= len(env._resume_pool) <= 4

    def test_sleep_rejects_negative_delay(self, env):
        with pytest.raises(ValueError):
            env.sleep(-0.1)


class TestStop:
    def test_stop_ends_run_early_and_is_resumable(self, env):
        seen = []

        def ticker():
            while True:
                yield env.sleep(0.1)
                seen.append(env.now)
                if len(seen) == 3:
                    env.stop()

        env.process(ticker())
        env.run(until=10.0)
        assert len(seen) == 3
        assert env.now == pytest.approx(0.3)
        # The flag clears on the next run; the simulation continues.
        # The tick at exactly 0.5 is scheduled mid-run, so the bound
        # tie-break defers it: only 0.4 lands in this window.
        env.run(until=0.5)
        assert env.now == 0.5
        assert len(seen) == 4


class TestTwoQueueMerge:
    """At-``now`` entries ride a deque, future entries the heap; the run
    loop must still process everything in global ``(time, seq)`` order."""

    def test_same_timestamp_interleave_follows_seq_order(self, env):
        order = []

        def tag(label):
            return lambda event: order.append(label)

        # Alternate heap-side (zero-delay timeout) and deque-side
        # (succeed) entries at the same timestamp.
        env.timeout(0.0).callbacks.append(tag("t1"))
        Event(env).succeed().callbacks.append(tag("e1"))
        env.timeout(0.0).callbacks.append(tag("t2"))
        Event(env).succeed().callbacks.append(tag("e2"))
        env.run()
        assert order == ["t1", "e1", "t2", "e2"]

    def test_peek_and_step_see_deque_entries(self, env):
        fired = []
        env.timeout(1.0).callbacks.append(lambda e: fired.append("late"))
        assert env.peek() == 1.0
        Event(env).succeed().callbacks.append(lambda e: fired.append("now"))
        # The succeeded event is scheduled at time 0 on the deque and
        # must win over the future-dated heap entry.
        assert env.peek() == 0.0
        env.step()
        assert fired == ["now"]
        env.step()
        assert fired == ["now", "late"]

    def test_succeed_at_bound_defers_to_next_run(self, env):
        fired = []
        ev = Event(env)
        ev.callbacks.append(lambda e: fired.append(env.now))

        def succeeder():
            yield env.sleep(1.0)
            ev.succeed()

        env.process(succeeder())
        # The succeed lands at exactly the bound with a mid-run sequence
        # number, so the tie-break defers it (deque push-back path).
        env.run(until=1.0)
        assert fired == []
        env.run(until=2.0)
        assert fired == [1.0]
