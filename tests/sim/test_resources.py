"""Tests for stores, priority stores, and counted resources."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import Environment
from repro.sim.resources import PriorityStore, Resource, Store, UtilizationMeter


class TestStore:
    def test_put_then_get_fifo(self, env):
        store = Store(env)
        received = []

        def consumer():
            for _ in range(3):
                item = yield store.get()
                received.append(item)

        env.process(consumer())
        for item in ("a", "b", "c"):
            store.put(item)
        env.run()
        assert received == ["a", "b", "c"]

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        received = []

        def consumer():
            item = yield store.get()
            received.append((env.now, item))

        def producer():
            yield env.timeout(5.0)
            yield store.put("x")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert received == [(5.0, "x")]

    def test_bounded_capacity_blocks_put(self, env):
        store = Store(env, capacity=1)
        done = []

        def producer():
            yield store.put(1)
            yield store.put(2)  # blocks until the first is consumed
            done.append(env.now)

        def consumer():
            yield env.timeout(3.0)
            yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        assert done == [3.0]

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    def test_len(self, env):
        store = Store(env)
        store.put("a")
        store.put("b")
        env.run()
        assert len(store) == 2


class TestPriorityStore:
    def test_lowest_first(self, env):
        store = PriorityStore(env)
        received = []

        def consumer():
            for _ in range(3):
                item = yield store.get()
                received.append(item)

        for priority in (5, 1, 3):
            store.put((priority, f"job{priority}"))
        env.process(consumer())
        env.run()
        assert [p for p, _ in received] == [1, 3, 5]


class TestResource:
    def test_grants_up_to_capacity(self, env):
        resource = Resource(env, capacity=2)
        granted = []

        def worker(i):
            req = resource.request()
            yield req
            granted.append((i, env.now))
            yield env.timeout(10.0)
            resource.release(req)

        for i in range(3):
            env.process(worker(i))
        env.run(until=5.0)
        assert len(granted) == 2
        assert resource.queue_length == 1

    def test_fifo_waiters(self, env):
        resource = Resource(env, capacity=1)
        order = []

        def worker(i):
            req = resource.request()
            yield req
            order.append(i)
            yield env.timeout(1.0)
            resource.release(req)

        for i in range(4):
            env.process(worker(i))
        env.run()
        assert order == [0, 1, 2, 3]

    def test_release_wrong_resource_raises(self, env):
        r1 = Resource(env)
        r2 = Resource(env)
        req = r1.request()
        env.run()
        with pytest.raises(ValueError):
            r2.release(req)

    def test_double_release_raises(self, env):
        resource = Resource(env)
        req = resource.request()
        env.run()
        resource.release(req)
        with pytest.raises(RuntimeError):
            resource.release(req)

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    @given(capacity=st.integers(1, 8), jobs=st.integers(1, 40))
    def test_count_never_exceeds_capacity(self, capacity, jobs):
        env = Environment()
        resource = Resource(env, capacity=capacity)
        peak = [0]

        def worker(duration):
            req = resource.request()
            yield req
            peak[0] = max(peak[0], resource.count)
            yield env.timeout(duration)
            resource.release(req)

        for i in range(jobs):
            env.process(worker(0.5 + (i % 3) * 0.25))
        env.run()
        assert peak[0] <= capacity
        assert resource.count == 0
        assert resource.queue_length == 0


class TestUtilizationMeter:
    def test_fully_busy(self, env):
        resource = Resource(env, capacity=1)
        meter = UtilizationMeter(env, resource)

        def worker():
            req = resource.request()
            yield req
            meter.mark()
            yield env.timeout(10.0)
            resource.release(req)
            meter.mark()

        env.process(worker())
        env.run()
        assert meter.utilization() == pytest.approx(1.0)

    def test_idle(self, env):
        resource = Resource(env, capacity=2)
        meter = UtilizationMeter(env, resource)
        env.timeout(10.0)
        env.run()
        assert meter.utilization() == 0.0
