"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import (
    Environment,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)


class TestEvent:
    def test_starts_pending(self, env):
        event = env.event()
        assert not event.triggered
        assert not event.processed

    def test_succeed_carries_value(self, env):
        event = env.event()
        event.succeed(42)
        assert event.triggered
        assert event.value == 42

    def test_succeed_twice_raises(self, env):
        event = env.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_value_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            env.event().value

    def test_fail_requires_exception(self, env):
        with pytest.raises(TypeError):
            env.event().fail("not an exception")


class TestTimeout:
    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            Timeout(env, -1.0)

    def test_fires_at_scheduled_time(self, env):
        fired = []
        t = env.timeout(5.0, value="done")
        t.callbacks.append(lambda e: fired.append(env.now))
        env.run()
        assert fired == [5.0]

    def test_zero_delay_fires_immediately(self, env):
        t = env.timeout(0.0)
        env.run()
        assert t.processed


class TestProcess:
    def test_sequential_timeouts(self, env):
        trace = []

        def proc():
            yield env.timeout(1.0)
            trace.append(env.now)
            yield env.timeout(2.0)
            trace.append(env.now)

        env.process(proc())
        env.run()
        assert trace == [1.0, 3.0]

    def test_return_value_becomes_event_value(self, env):
        def proc():
            yield env.timeout(1.0)
            return "result"

        p = env.process(proc())
        env.run()
        assert p.value == "result"

    def test_process_waits_on_process(self, env):
        def inner():
            yield env.timeout(2.0)
            return 10

        def outer():
            value = yield env.process(inner())
            return value + 1

        p = env.process(outer())
        env.run()
        assert p.value == 11

    def test_yielding_processed_event_resumes(self, env):
        """Joining on an already-finished event must not error."""
        done = []

        def fast():
            yield env.timeout(1.0)

        def joiner(events):
            for e in events:
                yield e
            done.append(env.now)

        events = [env.process(fast()) for _ in range(3)]
        env.process(joiner(events))
        env.run()
        assert done == [1.0]

    def test_failed_event_raises_in_process(self, env):
        caught = []

        def proc(event):
            try:
                yield event
            except RuntimeError as exc:
                caught.append(str(exc))

        event = env.event()
        env.process(proc(event))
        event.fail(RuntimeError("boom"))
        env.run()
        assert caught == ["boom"]

    def test_interrupt(self, env):
        trace = []

        def sleeper():
            try:
                yield env.timeout(100.0)
            except Interrupt as interrupt:
                trace.append((env.now, interrupt.cause))

        def interrupter(target):
            yield env.timeout(3.0)
            target.interrupt("wakeup")

        target = env.process(sleeper())
        env.process(interrupter(target))
        env.run()
        assert trace == [(3.0, "wakeup")]

    def test_non_event_yield_raises(self, env):
        def proc():
            yield 42

        env.process(proc())
        with pytest.raises(SimulationError):
            env.run()

    def test_requires_generator(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)


class TestEnvironment:
    def test_run_until_stops_clock(self, env):
        env.timeout(10.0)
        env.run(until=4.0)
        assert env.now == 4.0

    def test_run_until_past_raises(self, env):
        env.timeout(1.0)
        env.run()
        with pytest.raises(ValueError):
            env.run(until=0.5)

    def test_step_empty_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()

    def test_peek(self, env):
        assert env.peek() == float("inf")
        env.timeout(7.0)
        assert env.peek() == 7.0

    def test_same_time_events_fire_in_schedule_order(self, env):
        order = []
        for i in range(10):
            t = env.timeout(1.0, value=i)
            t.callbacks.append(lambda e: order.append(e.value))
        env.run()
        assert order == list(range(10))

    @given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0),
                           min_size=1, max_size=30))
    def test_events_fire_in_time_order(self, delays):
        env = Environment()
        fired = []
        for d in delays:
            t = env.timeout(d)
            t.callbacks.append(lambda e, d=d: fired.append(env.now))
        env.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    def test_determinism(self):
        """Two identical simulations produce identical traces."""

        def build():
            env = Environment()
            trace = []

            def proc(name, delay):
                for _ in range(3):
                    yield env.timeout(delay)
                    trace.append((name, env.now))

            env.process(proc("a", 1.5))
            env.process(proc("b", 2.0))
            env.run()
            return trace

        assert build() == build()
