"""Tests for the cache hierarchy model."""

import pytest

from repro.hw.cache import (
    CacheHierarchy,
    CacheLevel,
    arm_hierarchy,
    standard_x86_hierarchy,
)


class TestCacheLevel:
    def test_validation(self):
        with pytest.raises(ValueError):
            CacheLevel("L1I", size_kb=0)
        with pytest.raises(ValueError):
            CacheLevel("L1I", size_kb=32, line_bytes=0)


class TestCacheHierarchy:
    def test_standard_x86(self):
        h = standard_x86_hierarchy()
        assert h.l1i.size_kb == 32
        assert h.llc.shared
        assert h.replacement_quality == 1.0

    def test_llc_share_divides_by_cores(self):
        h = standard_x86_hierarchy(llc_mb_total=32)
        assert h.llc_share_kb(1) == 32 * 1024
        assert h.llc_share_kb(32) == 1024

    def test_llc_share_private(self):
        h = CacheHierarchy(
            l1i=CacheLevel("L1I", 32),
            l1d=CacheLevel("L1D", 32),
            l2=CacheLevel("L2", 1024),
            llc=CacheLevel("LLC", 2048, shared=False),
        )
        assert h.llc_share_kb(16) == 2048

    def test_llc_share_invalid_cores(self):
        with pytest.raises(ValueError):
            standard_x86_hierarchy().llc_share_kb(0)

    def test_with_replacement_quality(self):
        h = standard_x86_hierarchy()
        improved = h.with_replacement_quality(1.5)
        assert improved.replacement_quality == 1.5
        assert h.replacement_quality == 1.0  # original untouched
        assert improved.l1i == h.l1i

    def test_invalid_quality(self):
        with pytest.raises(ValueError):
            standard_x86_hierarchy().with_replacement_quality(0.0)

    def test_arm_hierarchy_l1i_required(self):
        h = arm_hierarchy(l1i_kb=128)
        assert h.l1i.size_kb == 128
