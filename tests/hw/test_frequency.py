"""Tests for the DVFS model."""

import pytest
from hypothesis import given, strategies as st

from repro.hw.frequency import FrequencyModel


class TestFrequencyModel:
    def setup_method(self):
        self.model = FrequencyModel()

    def test_idle_kernel_free_hits_turbo(self):
        freq = self.model.effective_ghz(1.7, 2.2, cpu_util=1.0, kernel_frac=0.0)
        assert freq == pytest.approx(2.2)

    def test_kernel_time_lowers_frequency(self):
        busy = self.model.effective_ghz(1.7, 2.2, cpu_util=1.0, kernel_frac=0.0)
        kernelish = self.model.effective_ghz(1.7, 2.2, cpu_util=1.0, kernel_frac=0.3)
        assert kernelish < busy

    def test_vector_intensity_lowers_frequency(self):
        scalar = self.model.effective_ghz(1.7, 2.2, 1.0, 0.0, vector_intensity=0.0)
        vector = self.model.effective_ghz(1.7, 2.2, 1.0, 0.0, vector_intensity=0.6)
        assert vector < scalar

    def test_never_below_base(self):
        freq = self.model.effective_ghz(
            1.7, 2.2, cpu_util=0.1, kernel_frac=1.0, vector_intensity=1.0
        )
        assert freq == pytest.approx(1.7)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            self.model.effective_ghz(1.7, 2.2, cpu_util=1.5, kernel_frac=0.0)
        with pytest.raises(ValueError):
            self.model.effective_ghz(1.7, 2.2, cpu_util=0.5, kernel_frac=-0.1)
        with pytest.raises(ValueError):
            self.model.effective_ghz(1.7, 2.2, 0.5, 0.0, vector_intensity=2.0)

    @given(
        util=st.floats(0.0, 1.0),
        kernel=st.floats(0.0, 1.0),
        vector=st.floats(0.0, 1.0),
    )
    def test_frequency_within_envelope(self, util, kernel, vector):
        freq = FrequencyModel().effective_ghz(1.7, 2.2, util, kernel, vector)
        assert 1.7 <= freq <= 2.2
