"""Tests for the TCO / Perf-per-dollar model."""

import pytest
from hypothesis import given, strategies as st

from repro.hw.tco import (
    CostEffectiveness,
    TcoModel,
    budgeted_power_w,
    evaluate_cost_effectiveness,
)


def model(**overrides):
    params = dict(server_price_usd=8000.0)
    params.update(overrides)
    return TcoModel(**params)


class TestTcoModel:
    def test_capex_amortization(self):
        assert model(amortization_years=4.0).capex_per_year() == pytest.approx(2000.0)

    def test_opex_components_positive(self):
        opex = model().opex_per_year(average_power_w=300.0, budgeted_power_w=360.0)
        # Energy: 300W * 1.25 PUE * 8766h = 3287 kWh * $0.08 = ~$263.
        # Provisioning: 360W * $2 = $720.  Maintenance: $400.
        assert opex == pytest.approx(263 + 720 + 400, rel=0.02)

    def test_tco_is_sum(self):
        m = model()
        assert m.tco_per_year(300.0, 360.0) == pytest.approx(
            m.capex_per_year() + m.opex_per_year(300.0, 360.0)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            model(server_price_usd=0.0)
        with pytest.raises(ValueError):
            model(power_overhead_pue=0.9)
        with pytest.raises(ValueError):
            model().opex_per_year(400.0, 300.0)  # budget below average

    @given(
        avg=st.floats(10.0, 500.0),
        extra=st.floats(0.0, 300.0),
    )
    def test_opex_monotone_in_power(self, avg, extra):
        m = model()
        low = m.opex_per_year(avg, avg + extra)
        high = m.opex_per_year(avg + 10.0, avg + extra + 10.0)
        assert high > low


class TestBudgetedPower:
    def test_below_designed(self):
        assert budgeted_power_w(400.0, 0.9) == pytest.approx(360.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            budgeted_power_w(0.0)
        with pytest.raises(ValueError):
            budgeted_power_w(400.0, 1.5)


class TestCostEffectiveness:
    def test_metrics(self):
        record = CostEffectiveness(
            sku="SKU2", performance=1000.0, average_power_w=250.0,
            tco_per_year_usd=4000.0,
        )
        assert record.perf_per_watt == pytest.approx(4.0)
        assert record.perf_per_dollar == pytest.approx(0.25)

    def test_normalization(self):
        base = CostEffectiveness("SKU1", 1000.0, 250.0, 4000.0)
        other = CostEffectiveness("SKU2", 2000.0, 400.0, 6000.0)
        norm = other.normalized_to(base)
        assert norm["perf"] == pytest.approx(2.0)
        assert norm["perf_per_watt"] == pytest.approx((2000 / 400) / (1000 / 250))

    def test_perf_watt_and_perf_dollar_can_disagree(self):
        """The Section 2.3 trade-off: CPU X wins Perf/Watt while CPU Y
        wins Perf/$ — cheap-but-hungry vs efficient-but-expensive."""
        tco_cheap = TcoModel(server_price_usd=4000.0)
        tco_premium = TcoModel(server_price_usd=16000.0)
        cpu_y = evaluate_cost_effectiveness(
            "cpu-y", performance=1000.0, average_power_w=400.0,
            designed_power_w=500.0, tco_model=tco_cheap,
        )
        cpu_x = evaluate_cost_effectiveness(
            "cpu-x", performance=1100.0, average_power_w=220.0,
            designed_power_w=280.0, tco_model=tco_premium,
        )
        assert cpu_x.perf_per_watt > cpu_y.perf_per_watt
        assert cpu_y.perf_per_dollar > cpu_x.perf_per_dollar

    def test_evaluate_validation(self):
        with pytest.raises(ValueError):
            evaluate_cost_effectiveness(
                "x", performance=0.0, average_power_w=100.0,
                designed_power_w=200.0, tco_model=model(),
            )
