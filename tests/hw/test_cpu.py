"""Tests for the CPU model."""

import pytest

from repro.hw.cache import standard_x86_hierarchy
from repro.hw.cpu import CpuModel


def make_cpu(**overrides):
    params = dict(
        name="test-cpu",
        arch="x86",
        physical_cores=18,
        smt=2,
        pipeline_width=4,
        base_freq_ghz=1.8,
        max_freq_ghz=2.1,
        caches=standard_x86_hierarchy(),
    )
    params.update(overrides)
    return CpuModel(**params)


class TestCpuModel:
    def test_logical_cores(self):
        assert make_cpu().logical_cores == 36
        assert make_cpu(smt=1).logical_cores == 18

    def test_smt_throughput_factor(self):
        assert make_cpu(smt=1).smt_throughput_factor == 1.0
        assert make_cpu(smt=2).smt_throughput_factor == pytest.approx(1.30)

    def test_arch_validation(self):
        with pytest.raises(ValueError):
            make_cpu(arch="riscv")

    def test_freq_ordering_validation(self):
        with pytest.raises(ValueError):
            make_cpu(base_freq_ghz=2.5, max_freq_ghz=2.1)

    def test_smt_validation(self):
        with pytest.raises(ValueError):
            make_cpu(smt=3)

    def test_frontend_multiplier_validation(self):
        with pytest.raises(ValueError):
            make_cpu(frontend_penalty_multiplier=0.5)
        assert make_cpu(frontend_penalty_multiplier=5.0).frontend_penalty_multiplier == 5.0

    def test_core_count_validation(self):
        with pytest.raises(ValueError):
            make_cpu(physical_cores=0)
