"""Tests for the SKU registry (Tables 3 and 4)."""

import pytest

from repro.hw.sku import SKU_REGISTRY, get_sku, list_skus


class TestTable3:
    """The paper-published x86 SKU parameters must match Table 3."""

    @pytest.mark.parametrize(
        "name,logical,ram,net,storage,year",
        [
            ("SKU1", 36, 64, 12.5, "256GB SATA", 2018),
            ("SKU2", 52, 64, 25.0, "512GB NVMe", 2021),
            ("SKU3", 72, 64, 25.0, "512GB NVMe", 2022),
            ("SKU4", 176, 256, 50.0, "1TB NVMe", 2023),
        ],
    )
    def test_published_specs(self, name, logical, ram, net, storage, year):
        sku = get_sku(name)
        assert sku.logical_cores == logical
        assert sku.memory.capacity_gb == ram
        assert sku.network_gbps == net
        assert sku.storage == storage
        assert sku.year == year


class TestTable4:
    def test_arm_l1i_ratio_is_4x(self):
        a = get_sku("SKU-A")
        b = get_sku("SKU-B")
        assert a.cpu.caches.l1i.size_kb / b.cpu.caches.l1i.size_kb == pytest.approx(4.0)

    def test_arm_core_counts_and_power(self):
        a, b = get_sku("SKU-A"), get_sku("SKU-B")
        assert a.logical_cores == 72
        assert b.logical_cores == 160
        assert a.designed_power_w == 175
        assert b.designed_power_w == 275

    def test_arm_has_no_smt(self):
        assert get_sku("SKU-A").cpu.smt == 1
        assert get_sku("SKU-B").cpu.smt == 1


class TestRegistry:
    def test_unknown_sku_raises_with_known_names(self):
        with pytest.raises(KeyError, match="SKU1"):
            get_sku("SKU99")

    def test_list_skus_filter(self):
        arm = list_skus(category="arm-candidate")
        assert {s.name for s in arm} == {"SKU-A", "SKU-B"}
        assert len(list_skus()) == len(SKU_REGISTRY)

    def test_spec_row_fields(self):
        row = get_sku("SKU1").spec_row()
        assert row["sku"] == "SKU1"
        assert row["logical_cores"] == 36

    def test_sku_384_exists_for_kernel_study(self):
        sku = get_sku("SKU-384")
        assert sku.logical_cores == 384
        assert sku.category == "future"
