"""Tests for the power model."""

import pytest
from hypothesis import given, strategies as st

from repro.hw.power import PowerBreakdown, PowerModel


class TestPowerBreakdown:
    def test_total_and_watts(self):
        b = PowerBreakdown(core=0.35, soc=0.25, dram=0.10, other=0.15)
        assert b.total == pytest.approx(0.85)
        assert b.watts(400.0) == pytest.approx(340.0)

    def test_as_dict(self):
        b = PowerBreakdown(core=0.3, soc=0.2, dram=0.1, other=0.1)
        d = b.as_dict()
        assert d["total"] == pytest.approx(0.7)
        assert set(d) == {"core", "soc", "dram", "other", "total"}


class TestPowerModel:
    def setup_method(self):
        self.model = PowerModel()

    def test_idle_floor(self):
        b = self.model.breakdown(
            cpu_util=0.0, freq_rel=1.0, retiring_frac=0.0,
            membw_frac=0.0, network_util=0.0, platform_activity=0.0,
        )
        assert b.core == pytest.approx(self.model.core_idle)
        assert b.dram == pytest.approx(self.model.dram_idle)

    def test_utilization_raises_core_power(self):
        low = self.model.breakdown(0.2, 0.9, 0.3, 0.2, 0.1, 0.0)
        high = self.model.breakdown(0.9, 0.9, 0.3, 0.2, 0.1, 0.0)
        assert high.core > low.core

    def test_bandwidth_raises_dram_and_soc(self):
        low = self.model.breakdown(0.9, 0.9, 0.3, 0.1, 0.1, 0.0)
        high = self.model.breakdown(0.9, 0.9, 0.3, 0.7, 0.1, 0.0)
        assert high.dram > low.dram
        assert high.soc > low.soc

    def test_retiring_raises_core_power(self):
        """Stalled cores clock-gate: mcf draws less than deepsjeng."""
        stalled = self.model.breakdown(1.0, 0.9, 0.17, 0.5, 0.0, 0.3)
        retiring = self.model.breakdown(1.0, 0.9, 0.55, 0.1, 0.0, 0.3)
        assert retiring.core > stalled.core

    def test_input_validation(self):
        with pytest.raises(ValueError):
            self.model.breakdown(1.5, 0.9, 0.3, 0.1, 0.1, 0.0)
        with pytest.raises(ValueError):
            self.model.breakdown(0.9, 0.0, 0.3, 0.1, 0.1, 0.0)
        with pytest.raises(ValueError):
            self.model.breakdown(0.9, 0.9, 0.3, 0.1, 0.1, 1.5)

    @given(
        util=st.floats(0.0, 1.0),
        freq=st.floats(0.1, 1.0),
        ret=st.floats(0.0, 1.0),
        bw=st.floats(0.0, 1.0),
        net=st.floats(0.0, 1.0),
        plat=st.floats(0.0, 1.0),
    )
    def test_total_is_plausible_fraction(self, util, freq, ret, bw, net, plat):
        b = PowerModel().breakdown(util, freq, ret, bw, net, plat)
        assert 0.0 < b.total <= 1.0 + 1e-9
        assert b.core > 0 and b.soc > 0 and b.dram > 0 and b.other > 0
