"""Tests for the memory-system model."""

import pytest
from hypothesis import given, strategies as st

from repro.hw.memory import MemorySystem


class TestMemorySystem:
    def test_validation(self):
        with pytest.raises(ValueError):
            MemorySystem(capacity_gb=0, peak_bw_gbps=100)
        with pytest.raises(ValueError):
            MemorySystem(capacity_gb=64, peak_bw_gbps=0)
        with pytest.raises(ValueError):
            MemorySystem(capacity_gb=64, peak_bw_gbps=100, latency_ns=0)

    def test_latency_cycles(self):
        mem = MemorySystem(capacity_gb=64, peak_bw_gbps=100, latency_ns=90)
        assert mem.latency_cycles(2.0) == pytest.approx(180.0)
        with pytest.raises(ValueError):
            mem.latency_cycles(0.0)

    def test_bandwidth_pressure(self):
        mem = MemorySystem(capacity_gb=64, peak_bw_gbps=100)
        assert mem.bandwidth_pressure(50) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            mem.bandwidth_pressure(-1)

    def test_effective_latency_unloaded(self):
        mem = MemorySystem(capacity_gb=64, peak_bw_gbps=100, latency_ns=90)
        assert mem.effective_latency_ns(0.0) == pytest.approx(90.0)

    @given(demand=st.floats(min_value=0.0, max_value=300.0))
    def test_effective_latency_monotone_and_bounded(self, demand):
        mem = MemorySystem(capacity_gb=64, peak_bw_gbps=100, latency_ns=90)
        latency = mem.effective_latency_ns(demand)
        assert latency >= 90.0
        # Capped inflation: never beyond the rho=0.95 ceiling.
        assert latency <= 90.0 / (1.0 - 0.95 * 0.7) + 1e-9

    def test_effective_latency_increases_with_demand(self):
        mem = MemorySystem(capacity_gb=64, peak_bw_gbps=100, latency_ns=90)
        lat = [mem.effective_latency_ns(d) for d in (0, 25, 50, 75, 95)]
        assert lat == sorted(lat)
