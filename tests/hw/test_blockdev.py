"""Simulated block device: service times, queueing, fault channel."""

import pytest

from repro.hw.blockdev import (
    NVME_FLASH,
    SATA_SSD,
    BlockDevice,
    BlockDeviceSpec,
    device_spec_for,
)
from repro.sim.engine import Environment


def run_io(device, makers):
    """Spawn one process per I/O generator factory; return service times."""
    services = []

    def proc(make):
        service = yield from make()
        services.append(service)

    for make in makers:
        device.env.process(proc(make))
    device.env.run()
    return services


class TestSpec:
    def test_service_time_composition(self):
        spec = BlockDeviceSpec(
            name="toy",
            queue_depth=2,
            seq_read_bps=100.0,
            rand_read_bps=50.0,
            seq_write_bps=80.0,
            rand_write_bps=40.0,
            latency_s=0.5,
        )
        assert spec.service_seconds(100, read=True, sequential=True) == 0.5 + 1.0
        assert spec.service_seconds(100, read=True, sequential=False) == 0.5 + 2.0
        assert spec.service_seconds(80, read=False, sequential=True) == 0.5 + 1.0
        assert spec.service_seconds(0, read=False, sequential=False) == 0.5

    def test_sequential_faster_than_random(self):
        for spec in (SATA_SSD, NVME_FLASH):
            assert spec.service_seconds(1e6, True, True) < spec.service_seconds(
                1e6, True, False
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockDeviceSpec("bad", 0, 1.0, 1.0, 1.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            BlockDeviceSpec("bad", 1, 0.0, 1.0, 1.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            BlockDeviceSpec("bad", 1, 1.0, 1.0, 1.0, 1.0, -0.1)
        with pytest.raises(ValueError):
            SATA_SSD.service_seconds(-1, True, True)

    def test_device_spec_for_sku_storage_strings(self):
        assert device_spec_for("1TB NVMe") is NVME_FLASH
        assert device_spec_for("512GB NVMe Gen4") is NVME_FLASH
        assert device_spec_for("256GB SATA") is SATA_SSD
        assert device_spec_for("spinning rust") is SATA_SSD


class TestDevice:
    def _toy_device(self, queue_depth=1):
        env = Environment()
        spec = BlockDeviceSpec(
            name="toy",
            queue_depth=queue_depth,
            seq_read_bps=1000.0,
            rand_read_bps=500.0,
            seq_write_bps=1000.0,
            rand_write_bps=500.0,
            latency_s=0.1,
        )
        return env, BlockDevice(env, spec)

    def test_single_io_accounting(self):
        env, device = self._toy_device()
        services = run_io(device, [lambda: device.read(500, sequential=True)])
        assert services == [pytest.approx(0.6)]  # 0.1 + 500/1000
        assert env.now == pytest.approx(0.6)
        assert device.stats.reads == 1
        assert device.stats.read_bytes == 500
        assert device.stats.wait_seconds == 0.0
        assert device.stats.busy_seconds == pytest.approx(0.6)

    def test_queue_depth_contention(self):
        """Two ops on a depth-1 device serialize: the second op's wall
        time includes the first op's full service as queue wait."""
        env, device = self._toy_device(queue_depth=1)
        run_io(
            device,
            [
                lambda: device.write(400, sequential=True),
                lambda: device.write(400, sequential=True),
            ],
        )
        assert env.now == pytest.approx(1.0)  # 2 x (0.1 + 0.4), serialized
        assert device.stats.wait_seconds == pytest.approx(0.5)
        device.settle()
        # One op in service the whole sim, plus one queued half of it.
        assert device.stats.mean_queue_depth(env.now) == pytest.approx(1.5)
        assert device.stats.utilization(env.now, 1) == pytest.approx(1.0)

    def test_depth_two_runs_concurrently(self):
        env, device = self._toy_device(queue_depth=2)
        run_io(
            device,
            [
                lambda: device.write(400, sequential=True),
                lambda: device.write(400, sequential=True),
            ],
        )
        assert env.now == pytest.approx(0.5)
        assert device.stats.wait_seconds == 0.0

    def test_fault_slowdown_scales_service(self):
        env, device = self._toy_device()
        device.fault_slowdown = 2.0
        services = run_io(device, [lambda: device.read(500, sequential=True)])
        assert services == [pytest.approx(1.2)]
        assert env.now == pytest.approx(1.2)

    def test_reset_stats_opens_fresh_window(self):
        env, device = self._toy_device()
        run_io(device, [lambda: device.read(500, sequential=True)])
        device.reset_stats()
        assert device.stats.ops == 0
        assert device.stats.window_start == pytest.approx(0.6)
        assert device.stats.mean_queue_depth(env.now) == 0.0
        assert device.stats.utilization(env.now, 1) == 0.0
