"""Tests for the two web benchmarks (MediaWiki, DjangoBench)."""

import pytest

from repro.workloads.base import RunConfig
from repro.workloads.djangobench import DjangoBench
from repro.workloads.mediawiki import MediaWiki


@pytest.fixture(scope="module")
def mw_result():
    return MediaWiki().run(
        RunConfig(sku_name="SKU2", warmup_seconds=0.3, measure_seconds=0.8)
    )


@pytest.fixture(scope="module")
def django_result():
    return DjangoBench().run(
        RunConfig(sku_name="SKU2", warmup_seconds=0.3, measure_seconds=0.8)
    )


class TestMediaWiki:
    def test_runs_saturated(self, mw_result):
        """Section 3.2: pushes CPU utilization above 90%."""
        assert mw_result.cpu_util > 0.90

    def test_throughput_order_of_magnitude(self, mw_result):
        """Table 1: per-server RPS N(100-1K) for web."""
        assert 100 < mw_result.throughput_rps < 3000

    def test_page_cache_gets_hits(self, mw_result):
        assert mw_result.extra["page_cache_hit_rate"] > 0.3

    def test_latency_distribution_reported(self, mw_result):
        assert mw_result.latency["count"] > 50
        assert mw_result.latency["p95"] >= mw_result.latency["p50"]

    def test_big_code_footprint_shows_in_l1i(self, mw_result):
        """Figure 8: web workloads have high L1I MPKI."""
        assert mw_result.steady.misses.l1i_mpki > 20


class TestDjangoBench:
    def test_runs_saturated(self, django_result):
        assert django_result.cpu_util > 0.88

    def test_worker_per_core_model(self, django_result):
        assert django_result.extra["worker_processes"] == 52

    def test_throughput_positive(self, django_result):
        assert 100 < django_result.throughput_rps < 3000

    def test_object_cache_hits(self, django_result):
        assert django_result.extra["object_cache_hit_rate"] > 0.3


class TestWebScaling:
    def test_mediawiki_scales_sublinearly_with_cores(self):
        """The serialized instance slice caps many-core gains
        (Figure 2: production gains < core-count ratio)."""
        quick = lambda sku: RunConfig(
            sku_name=sku, warmup_seconds=0.3, measure_seconds=0.8
        )
        small = MediaWiki().run(quick("SKU1"))
        large = MediaWiki().run(quick("SKU4"))
        ratio = large.throughput_rps / small.throughput_rps
        core_ratio = 176 / 36
        assert 2.0 < ratio < core_ratio * 1.45


class TestPerEndpointLatency:
    def test_mediawiki_reports_endpoints(self, mw_result):
        for endpoint in ("page", "talk", "login", "edit"):
            assert f"p95_{endpoint}_seconds" in mw_result.extra

    def test_edit_slower_than_login(self, mw_result):
        """The edit endpoint does 2.2x the work plus 3 DB trips."""
        assert (
            mw_result.extra["p95_edit_seconds"]
            > mw_result.extra["p95_login_seconds"]
        )

    def test_django_seen_is_cheapest(self, django_result):
        """The 'seen' endpoint is a 0.3x-weight write-ack."""
        seen = django_result.extra["p95_seen_seconds"]
        feed = django_result.extra["p95_feed_seconds"]
        assert seen < feed
