"""Memoized setup phases must be invisible in results.

TaoBench memoizes its cache pre-warm; FeedSim applies the same pattern
to its SLO-search operating point.  Either memo replaying instead of
recomputing must leave the report byte-identical.
"""

from repro.exec.executor import execute_point
from repro.exec.spec import RunPoint
from repro.workloads import feedsim, taobench


def _point(seed=11, benchmark="taobench"):
    return RunPoint(
        benchmark=benchmark,
        sku="SKU2",
        seed=seed,
        measure_seconds=0.05,
        warmup_seconds=0.02,
        early_stop=False,
    )


class TestWarmMemo:
    def test_memo_hit_is_byte_identical(self):
        taobench._WARM_MEMO.clear()
        first = execute_point(_point())   # records the fill
        assert taobench._WARM_MEMO
        second = execute_point(_point())  # replays it
        assert first.metric_value == second.metric_value
        assert first.as_dict() == second.as_dict()

    def test_different_seed_is_a_different_fill(self):
        taobench._WARM_MEMO.clear()
        execute_point(_point(seed=11))
        execute_point(_point(seed=12))  # different size-stream state
        assert len(taobench._WARM_MEMO) == 2


class TestFeedsimSearchMemo:
    def test_memo_hit_is_byte_identical(self):
        feedsim._SEARCH_MEMO.clear()
        first = execute_point(_point(benchmark="feedsim"))
        assert feedsim._SEARCH_MEMO  # search recorded
        second = execute_point(_point(benchmark="feedsim"))
        assert first.metric_value == second.metric_value
        assert first.as_dict() == second.as_dict()

    def test_different_seed_is_a_different_search(self):
        feedsim._SEARCH_MEMO.clear()
        execute_point(_point(seed=11, benchmark="feedsim"))
        execute_point(_point(seed=12, benchmark="feedsim"))
        assert len(feedsim._SEARCH_MEMO) == 2

    def test_custom_characteristics_bypass_the_memo(self):
        """Only module-persistent registry profiles are safe memo keys;
        a caller-built profile object must never populate the memo."""
        import dataclasses

        from repro.workloads.base import RunConfig
        from repro.workloads.profiles import BENCHMARK_PROFILES

        feedsim._SEARCH_MEMO.clear()
        chars = dataclasses.replace(BENCHMARK_PROFILES["feedsim"])
        wl = feedsim.FeedSim(chars=chars)
        assert wl._memo_key(RunConfig()) is None
        assert feedsim._SEARCH_MEMO == {}
