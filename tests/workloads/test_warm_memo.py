"""The memoized TaoBench pre-warm must be invisible in results."""

from repro.exec.executor import execute_point
from repro.exec.spec import RunPoint
from repro.workloads import taobench


def _point(seed=11):
    return RunPoint(
        benchmark="taobench",
        sku="SKU2",
        seed=seed,
        measure_seconds=0.05,
        warmup_seconds=0.02,
        early_stop=False,
    )


class TestWarmMemo:
    def test_memo_hit_is_byte_identical(self):
        taobench._WARM_MEMO.clear()
        first = execute_point(_point())   # records the fill
        assert taobench._WARM_MEMO
        second = execute_point(_point())  # replays it
        assert first.metric_value == second.metric_value
        assert first.as_dict() == second.as_dict()

    def test_different_seed_is_a_different_fill(self):
        taobench._WARM_MEMO.clear()
        execute_point(_point(seed=11))
        execute_point(_point(seed=12))  # different size-stream state
        assert len(taobench._WARM_MEMO) == 2
