"""Tests for the AIBench extension workload."""

import numpy as np
import pytest

from repro.workloads.aibench import (
    AIBENCH_SLO,
    AiBench,
    DlrmConfig,
    MiniDlrm,
    make_inference_batch,
)
from repro.workloads.base import RunConfig
from repro.workloads.registry import extension_benchmarks, get_workload


class TestMiniDlrm:
    def test_probabilities_in_range(self):
        model = MiniDlrm()
        dense, sparse = make_inference_batch(50)
        probabilities = model.infer(dense, sparse)
        assert probabilities.shape == (50,)
        assert np.all((probabilities > 0) & (probabilities < 1))

    def test_deterministic(self):
        dense, sparse = make_inference_batch(10)
        a = MiniDlrm(seed=11).infer(dense, sparse)
        b = MiniDlrm(seed=11).infer(dense, sparse)
        assert np.array_equal(a, b)

    def test_different_inputs_different_outputs(self):
        model = MiniDlrm()
        d1, s1 = make_inference_batch(10, seed=1)
        d2, s2 = make_inference_batch(10, seed=2)
        assert not np.array_equal(model.infer(d1, s1), model.infer(d2, s2))

    def test_sparse_features_matter(self):
        """Embeddings contribute: shuffling sparse ids changes scores."""
        model = MiniDlrm()
        dense, sparse = make_inference_batch(10)
        shuffled = (sparse + 7) % model.config.rows_per_table
        assert not np.array_equal(
            model.infer(dense, sparse), model.infer(dense, shuffled)
        )

    def test_input_validation(self):
        model = MiniDlrm()
        dense, sparse = make_inference_batch(4)
        with pytest.raises(ValueError):
            model.infer(dense[:, :5], sparse)
        with pytest.raises(ValueError):
            model.infer(dense, sparse[:, :3])
        with pytest.raises(ValueError):
            model.infer(dense, sparse + 10_000)

    def test_custom_config(self):
        config = DlrmConfig(num_tables=3, rows_per_table=50, embedding_dim=4)
        model = MiniDlrm(config=config)
        dense, sparse = make_inference_batch(5, config=config)
        assert model.infer(dense, sparse).shape == (5,)


class TestAiBenchWorkload:
    @pytest.fixture(scope="class")
    def result(self):
        return AiBench().run(
            RunConfig(sku_name="SKU2", warmup_seconds=0.3, measure_seconds=1.0)
        )

    def test_slo_met_at_operating_point(self, result):
        assert result.extra["slo_p99_seconds"] <= AIBENCH_SLO.latency_seconds

    def test_memory_bandwidth_bound(self, result):
        """The DLRM signature: embedding gathers saturate DRAM."""
        assert result.steady.memory_bandwidth_fraction > 0.7

    def test_low_ipc_high_vector(self, result):
        assert result.steady.ipc_per_physical_core < 1.0
        assert result.steady.effective_freq_ghz < 2.05  # vector throttle

    def test_validation_layer_ran(self, result):
        assert 0.0 < result.extra["validation_mean_ctr"] < 1.0

    def test_scales_with_cores_until_bandwidth(self):
        quick = lambda sku: RunConfig(
            sku_name=sku, warmup_seconds=0.3, measure_seconds=0.8
        )
        sku1 = AiBench().run(quick("SKU1"))
        sku4 = AiBench().run(quick("SKU4"))
        assert sku4.throughput_rps > 2.0 * sku1.throughput_rps

    def test_registered_as_extension(self):
        assert "aibench" in extension_benchmarks()
        workload = get_workload("aibench")
        assert workload.category == "ai-inference"

    def test_not_in_default_suite(self):
        from repro.workloads.registry import dcperf_benchmarks

        assert "aibench" not in dcperf_benchmarks()
