"""Tests for the workload registry and production counterparts."""

import pytest

from repro.workloads.base import RunConfig
from repro.workloads.registry import (
    dcperf_benchmarks,
    get_workload,
    production_counterparts,
)
from repro.workloads.production import production_workload


class TestRegistry:
    def test_all_benchmarks_constructible(self):
        for name in dcperf_benchmarks():
            workload = get_workload(name)
            assert workload.name.startswith(name.split(":")[0]) or True
            assert workload.characteristics is not None

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            get_workload("nope")

    def test_production_names(self):
        assert "taobench:prod" in production_counterparts()

    def test_prod_variant_resolves(self):
        workload = get_workload("taobench:prod")
        assert workload.characteristics.name == "cache-prod"


class TestProductionCounterparts:
    @pytest.mark.parametrize("bench", [
        "taobench", "feedsim", "djangobench", "mediawiki",
        "sparkbench", "videotranscode",
    ])
    def test_counterpart_exists(self, bench):
        workload = production_workload(bench)
        assert workload.characteristics.name.endswith("-prod")

    def test_unknown_counterpart(self):
        with pytest.raises(KeyError):
            production_workload("nope")

    def test_prod_twin_runs_same_structure(self, quick_config):
        """The counterpart is runnable with the same interface and
        lands in the same order of magnitude."""
        bench = get_workload("mediawiki").run(quick_config)
        prod = get_workload("mediawiki:prod").run(quick_config)
        ratio = prod.throughput_rps / bench.throughput_rps
        assert 0.3 < ratio < 3.0
