"""Tests for TaoBench."""

import pytest

from repro.workloads.base import RunConfig
from repro.workloads.taobench import TaoBench, expected_hit_rate


@pytest.fixture(scope="module")
def result():
    return TaoBench().run(
        RunConfig(sku_name="SKU2", warmup_seconds=0.3, measure_seconds=0.8)
    )


class TestTaoBench:
    def test_throughput_order_of_magnitude(self, result):
        """Table 1: per-server RPS N(1M) for caching."""
        assert 3e5 < result.throughput_rps < 5e6

    def test_hit_rate_in_tao_regime(self, result):
        assert 0.80 < result.extra["cache_hit_rate"] < 0.99

    def test_hit_rate_matches_analytic_estimate(self, result):
        assert result.extra["cache_hit_rate"] == pytest.approx(
            expected_hit_rate(), abs=0.06
        )

    def test_utilization_matches_paper(self, result):
        """Figure 9: TaoBench runs at ~86%, not saturation."""
        assert 0.70 < result.cpu_util < 0.97

    def test_kernel_share_high(self, result):
        """Figure 9: ~30% of cycles in the kernel."""
        assert result.kernel_util / result.cpu_util > 0.20

    def test_steady_state_attached(self, result):
        assert result.steady is not None
        assert result.steady.misses.l1i_mpki > 30  # switch-driven misses

    def test_kernel_64_hurts_384_core_sku(self):
        """The Section 5.3 anomaly, smoke-sized."""
        cfg = lambda k: RunConfig(
            sku_name="SKU-384", kernel_version=k,
            warmup_seconds=0.2, measure_seconds=0.5, load_scale=1.4,
        )
        old = TaoBench().run(cfg("6.4"))
        new = TaoBench().run(cfg("6.9"))
        assert new.throughput_rps > 1.3 * old.throughput_rps

    def test_kernels_equivalent_on_small_sku(self):
        cfg = lambda k: RunConfig(
            sku_name="SKU2", kernel_version=k,
            warmup_seconds=0.2, measure_seconds=0.5,
        )
        old = TaoBench().run(cfg("6.4"))
        new = TaoBench().run(cfg("6.9"))
        assert new.throughput_rps == pytest.approx(old.throughput_rps, rel=0.08)


class TestWritePath:
    def test_writes_occur_at_tao_fraction(self, result):
        total = result.latency["count"]
        writes = result.extra["writes"]
        assert writes > 0
        assert writes / total < 0.04  # ~1% of requests

    def test_write_invalidate_does_not_tank_hit_rate(self, result):
        """Write-invalidate on 1% of traffic leaves the read hit rate
        in the TAO regime."""
        assert result.extra["cache_hit_rate"] > 0.80
