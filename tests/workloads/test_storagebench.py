"""StorageBench: suite integration, iostat reporting, fault contrast."""

import pytest

from repro.core.benchmark import Benchmark
from repro.core.suite import FLEET_POWER_WEIGHTS
from repro.workloads.base import RunConfig
from repro.workloads.registry import dcperf_benchmarks, get_workload
from repro.workloads.scenarios import apply_fault_scenario
from repro.workloads.storagebench import DEFAULT_BATCH, StorageBench


def _config(**overrides):
    base = dict(
        sku_name="SKU2", seed=11, warmup_seconds=0.2, measure_seconds=0.5
    )
    base.update(overrides)
    return RunConfig(**base)


@pytest.fixture(scope="module")
def plain_report():
    return Benchmark.by_name("storagebench").run(_config())


@pytest.fixture(scope="module")
def degraded_report():
    config = apply_fault_scenario(_config(), "disk_degraded")
    return Benchmark.by_name("storagebench").run(config)


class TestSuiteIntegration:
    def test_registered(self):
        assert "storagebench" in dcperf_benchmarks()
        wl = get_workload("storagebench")
        assert isinstance(wl, StorageBench)
        assert wl.category == "storage"

    def test_scored_in_geomean(self):
        assert "storagebench" in FLEET_POWER_WEIGHTS
        assert sum(FLEET_POWER_WEIGHTS.values()) == pytest.approx(1.0)

    def test_batch_default_applied(self, plain_report):
        """A batch=1 config is promoted to the workload default; the
        WAL byte counters carry the production-scale multiplier."""
        extra = plain_report.result.extra
        # Per-put WAL bytes >= batch * (min value + framing overhead).
        assert extra["io_wal_bytes"] >= extra["lsm_puts"] * DEFAULT_BATCH * 64


class TestReporting:
    def test_engine_activity_in_window(self, plain_report):
        extra = plain_report.result.extra
        assert extra["lsm_gets"] > 0
        assert extra["lsm_puts"] > 0
        assert extra["io_flushes"] >= 1
        assert extra["io_reads"] > 0
        assert 0.0 < extra["lsm_hit_rate"] <= 1.0
        assert extra["lsm_table_count"] > 0
        assert plain_report.metric_value > 0

    def test_iostat_hook_enabled_and_populated(self, plain_report):
        iostat = plain_report.hook_sections["iostat"]
        assert iostat["enabled"] is True
        assert iostat["device"] == _config().sku.storage
        assert iostat["reads"] > 0
        assert iostat["writes"] > 0
        assert iostat["wal_mb"] > 0
        assert iostat["flushes"] >= 1
        assert 0.0 < iostat["device_util_pct"] <= 100.0
        assert 0.0 <= iostat["block_cache_hit_rate"] <= 1.0

    def test_iostat_disabled_for_deviceless_workload(self):
        report = Benchmark.by_name("taobench").run(
            _config(measure_seconds=0.3, warmup_seconds=0.1)
        )
        assert report.hook_sections["iostat"] == {"enabled": False}


class TestDiskDegradedContrast:
    """The fault channel must be visible in foreground behavior: a
    slower device backs up L0, stalls writers, and inflates p99."""

    def test_degraded_device_stalls_writers(self, plain_report, degraded_report):
        plain = plain_report.result.extra
        degraded = degraded_report.result.extra
        assert degraded["io_stall_events"] > plain["io_stall_events"]
        assert degraded["io_stall_seconds"] > plain["io_stall_seconds"]
        assert degraded["io_stall_p99_s"] > 0.0

    def test_degraded_p99_inflates(self, plain_report, degraded_report):
        plain_p99 = plain_report.result.latency["p99"]
        degraded_p99 = degraded_report.result.latency["p99"]
        assert degraded_p99 > plain_p99 * 1.5

    def test_iostat_shows_the_contrast(self, plain_report, degraded_report):
        plain = plain_report.hook_sections["iostat"]
        degraded = degraded_report.hook_sections["iostat"]
        assert degraded["stall_seconds"] > plain["stall_seconds"]
        assert degraded["device_util_pct"] > plain["device_util_pct"]
