"""Tests for the region-failover spike scenario."""

import pytest

from repro.workloads.base import RunConfig
from repro.workloads.mediawiki import MediaWiki
from repro.workloads.scenarios import run_failover_spike
from repro.workloads.taobench import TaoBench


@pytest.fixture(scope="module")
def tao_outcome():
    return run_failover_spike(
        TaoBench(),
        RunConfig(sku_name="SKU2", warmup_seconds=0.3, measure_seconds=0.8),
        regions=3,
    )


class TestFailoverSpike:
    def test_spike_multiplier(self, tao_outcome):
        assert tao_outcome.spike_multiplier == pytest.approx(1.5)

    def test_spike_raises_power(self, tao_outcome):
        assert tao_outcome.spiked.power_watts > tao_outcome.normal.power_watts
        assert tao_outcome.spiked.cpu_util > tao_outcome.normal.cpu_util

    def test_spike_power_within_budget(self, tao_outcome):
        """The Section 2.3 design point: budgeted power covers the
        failover spike — that is what it is budgeted FOR."""
        assert tao_outcome.within_power_budget
        assert tao_outcome.power_headroom_w > 0

    def test_latency_degrades_under_spike(self, tao_outcome):
        assert tao_outcome.latency_inflation > 0.0

    def test_gain_limited_by_saturation(self, tao_outcome):
        """A +50% spike cannot be served by a server already at ~90%
        utilization: throughput moves far less than the spike — and can
        even dip slightly as SMT interference and scheduler overhead
        bite at full occupancy (overload degradation)."""
        assert -0.15 < tao_outcome.throughput_gain < 0.15

    def test_saturated_web_gains_nothing(self):
        """MediaWiki already runs saturated: the spike adds queueing,
        not throughput."""
        outcome = run_failover_spike(
            MediaWiki(),
            RunConfig(sku_name="SKU2", warmup_seconds=0.3, measure_seconds=0.8),
        )
        assert outcome.throughput_gain < 0.10

    def test_regions_validation(self):
        with pytest.raises(ValueError):
            run_failover_spike(TaoBench(), regions=1)
