"""Tests for the CloudSuite comparator models (Section 4.6)."""

import pytest

from repro.workloads.base import RunConfig
from repro.workloads.cloudsuite import (
    ALS_PARTITIONS,
    CloudSuiteDataCaching,
    CloudSuiteInMemoryAnalytics,
    CloudSuiteWebServing,
    run_mini_als,
)


class TestDataCaching:
    def test_throughput_saturates_while_cpu_climbs(self):
        """Figure 13a: adding client threads mostly adds spin."""
        quick = lambda t: CloudSuiteDataCaching(client_threads_per_core=t).run(
            RunConfig(sku_name="SKU-A", measure_seconds=0.5)
        )
        low = quick(0.3)
        high = quick(3.0)
        assert high.cpu_util > 2.0 * low.cpu_util
        assert high.throughput_rps < 1.6 * low.throughput_rps

    def test_176_core_sku_degrades_at_high_threads(self):
        """Figure 13a: on SKU4, more threads *reduce* throughput."""
        quick = lambda t: CloudSuiteDataCaching(client_threads_per_core=t).run(
            RunConfig(sku_name="SKU4", measure_seconds=0.5)
        )
        moderate = quick(0.5)
        oversubscribed = quick(6.0)
        assert oversubscribed.throughput_rps < moderate.throughput_rps

    def test_instance_cap(self):
        result = CloudSuiteDataCaching().run(
            RunConfig(sku_name="SKU2", measure_seconds=0.4)
        )
        assert result.extra["instances"] == 5  # segfaults beyond five

    def test_validation(self):
        with pytest.raises(ValueError):
            CloudSuiteDataCaching(client_threads_per_core=0)


class TestWebServing:
    def test_goodput_flattens_past_db_capacity(self):
        quick = lambda n: CloudSuiteWebServing(load_scale_factor=n).run(
            RunConfig(sku_name="SKU4", measure_seconds=2.0)
        )
        at_100 = quick(100)
        at_300 = quick(300)
        # Offered tripled; goodput must not even double.
        assert at_300.throughput_rps < 2.0 * at_100.throughput_rps
        # While CPU keeps climbing.
        assert at_300.cpu_util > 1.5 * at_100.cpu_util

    def test_errors_appear_under_overload(self):
        overloaded = CloudSuiteWebServing(load_scale_factor=300).run(
            RunConfig(sku_name="SKU4", measure_seconds=2.5)
        )
        assert overloaded.extra["errors_per_second"] > 0

    def test_no_errors_at_light_load(self):
        light = CloudSuiteWebServing(load_scale_factor=40).run(
            RunConfig(sku_name="SKU4", measure_seconds=2.0)
        )
        assert light.extra["errors_per_second"] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CloudSuiteWebServing(load_scale_factor=0)


class TestInMemoryAnalytics:
    def test_cpu_pinned_low_on_many_core(self):
        """Figure 13c: ~20% utilization on the 176-core SKU."""
        result = CloudSuiteInMemoryAnalytics().run(RunConfig(sku_name="SKU4"))
        assert result.cpu_util < 0.30

    def test_partition_bound_parallelism(self):
        result = CloudSuiteInMemoryAnalytics().run(RunConfig(sku_name="SKU4"))
        assert result.scaling_efficiency == pytest.approx(
            ALS_PARTITIONS / 176, rel=0.01
        )

    def test_timeline_produced(self):
        workload = CloudSuiteInMemoryAnalytics()
        timeline = workload.utilization_timeline(RunConfig(sku_name="SKU4"))
        assert len(timeline) > 10
        times = [t for t, _ in timeline]
        assert times == sorted(times)


class TestMiniAls:
    def test_als_converges(self):
        result = run_mini_als(iterations=4)
        assert result.improved
        assert result.rmse_end < 0.5 * result.rmse_start

    def test_als_deterministic(self):
        a = run_mini_als(seed=3)
        b = run_mini_als(seed=3)
        assert a.rmse_end == b.rmse_end
