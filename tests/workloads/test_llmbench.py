"""LlmBench: the token-serving workload family end to end."""

import pytest

from repro.core.benchmark import Benchmark
from repro.core.suite import FLEET_POWER_WEIGHTS
from repro.llm.engine import EngineParams
from repro.workloads.base import RunConfig
from repro.workloads.llmbench import LlmBench
from repro.workloads.registry import (
    extension_benchmarks,
    get_workload,
    llm_serving_benchmarks,
)
from repro.workloads.scenarios import apply_fault_scenario

_FAST = dict(measure_seconds=0.6, warmup_seconds=0.2)


class TestRegistration:
    def test_bare_name_is_chat_alias(self):
        wl = get_workload("llmbench")
        assert isinstance(wl, LlmBench)
        assert wl.mix.name == "chat"
        assert wl.name == "llmbench"

    @pytest.mark.parametrize(
        "mix", ["chat", "codegen", "rag_summarize", "long_reasoning"]
    )
    def test_every_mix_registered(self, mix):
        wl = get_workload(f"llmbench-{mix}")
        assert wl.mix.name == mix
        assert wl.name == f"llmbench-{mix}"

    def test_scored_mixes_carry_fleet_weight(self):
        for name in llm_serving_benchmarks():
            assert name in FLEET_POWER_WEIGHTS

    def test_unscored_mixes_are_extensions(self):
        ext = extension_benchmarks()
        assert "llmbench" in ext
        assert "llmbench-long_reasoning" in ext
        assert "llmbench-chat" not in ext

    def test_category_and_metric(self):
        wl = get_workload("llmbench-chat")
        assert wl.category == "ai-inference"
        assert wl.metric_name == "turns/s"


class TestRun:
    def test_run_produces_serving_extras(self):
        result = LlmBench("chat").run(RunConfig(**_FAST))
        extra = result.extra
        assert result.throughput_rps > 0
        assert extra["llm_replicas"] >= 1
        assert extra["llm_turns_completed"] > 0
        assert extra["llm_decoded_tokens"] > 0
        assert extra["llm_tokens_per_second"] > 0
        assert extra["llm_ttft_p99_s"] > extra["llm_ttft_p50_s"] > 0
        assert extra["llm_itl_p99_s"] >= extra["llm_itl_p50_s"] > 0
        assert 0.0 <= extra["llm_prefix_hit_rate"] <= 1.0
        assert extra["llm_kv_peak_bytes"] <= (
            extra["llm_kv_budget_bytes"] + extra["llm_kv_overflow_tokens"]
            * extra["llm_kv_bytes_per_token"]
        )

    def test_fixed_seed_replay_identical(self):
        a = LlmBench("chat").run(RunConfig(**_FAST))
        b = LlmBench("chat").run(RunConfig(**_FAST))
        assert a.as_dict() == b.as_dict()

    def test_seed_changes_results(self):
        a = LlmBench("chat").run(RunConfig(**_FAST))
        b = LlmBench("chat").run(RunConfig(seed=8, **_FAST))
        assert a.extra["llm_decoded_tokens"] != b.extra["llm_decoded_tokens"]

    def test_mixes_have_distinct_shapes(self):
        chat = LlmBench("chat").run(RunConfig(**_FAST))
        rag = LlmBench("rag_summarize").run(RunConfig(**_FAST))
        # RAG stuffs ~6x the prompt tokens per turn, so its per-turn
        # throughput lands well below chat's.
        assert rag.throughput_rps < chat.throughput_rps
        chat_prefill_per_turn = (
            chat.extra["llm_prefill_tokens"] / chat.extra["llm_turns_completed"]
        )
        rag_prefill_per_turn = (
            rag.extra["llm_prefill_tokens"] / rag.extra["llm_turns_completed"]
        )
        assert rag_prefill_per_turn > 2 * chat_prefill_per_turn

    def test_long_reasoning_pressures_kv(self):
        result = LlmBench("long_reasoning").run(RunConfig(**_FAST))
        extra = result.extra
        budget_tokens = (
            extra["llm_kv_budget_bytes"] / extra["llm_kv_bytes_per_token"]
        )
        assert extra["llm_kv_peak_tokens"] >= 0.9 * budget_tokens

    def test_tiny_kv_budget_queues_and_evicts(self):
        params = EngineParams(kv_budget_bytes=600.0 * 160_000.0)
        result = LlmBench("chat", params=params).run(RunConfig(**_FAST))
        extra = result.extra
        assert extra["llm_kv_preemptions"] > 0
        assert extra["llm_kv_admission_blocked"] > 0

    def test_load_scale_moves_throughput(self):
        low = LlmBench("chat").run(RunConfig(load_scale=0.3, **_FAST))
        high = LlmBench("chat").run(RunConfig(load_scale=1.0, **_FAST))
        assert low.throughput_rps < high.throughput_rps


class TestSloIntegration:
    def test_overload_shed_sheds_turns(self):
        config = apply_fault_scenario(
            RunConfig(measure_seconds=1.2, warmup_seconds=0.3),
            "overload_shed",
        )
        result = LlmBench("chat").run(config)
        extra = result.extra
        assert extra["slo_windows"] >= 1
        assert extra["slo_shed"] > 0 or extra["slo_drop_probability"] > 0
        # Token-level SLO signals travel alongside the control plane.
        assert extra["slo_ttft_p99_s"] > 0
        assert extra["slo_itl_p99_s"] > 0

    def test_report_slo_section_carries_token_percentiles(self):
        bench = Benchmark.by_name("llmbench-chat")
        config = apply_fault_scenario(
            RunConfig(measure_seconds=1.2, warmup_seconds=0.3),
            "overload_shed",
        )
        report = bench.run(config)
        section = report.hook_sections["slo_control"]
        assert section["enabled"]
        assert section["ttft_p99_ms"] > 0
        assert section["itl_p99_ms"] > 0

    def test_clean_run_has_no_slo_keys(self):
        result = LlmBench("chat").run(RunConfig(**_FAST))
        assert "slo_ttft_p99_s" not in result.extra


class TestReport:
    def test_llm_serving_hook_section(self):
        report = Benchmark.by_name("llmbench-chat").run(RunConfig(**_FAST))
        section = report.hook_sections["llm_serving"]
        assert section["enabled"]
        assert section["tokens_per_second"] > 0
        assert section["ttft_p99_ms"] >= section["ttft_p50_ms"] > 0
        assert 0 <= section["kv_peak_util_pct"] <= 200
        assert section["turns_completed"] > 0

    def test_non_serving_workload_section_disabled(self):
        report = Benchmark.by_name("taobench").run(RunConfig(**_FAST))
        assert report.hook_sections["llm_serving"] == {"enabled": False}

    def test_metric_is_turns_per_second(self):
        report = Benchmark.by_name("llmbench-chat").run(RunConfig(**_FAST))
        assert report.metric_name == "turns/s"
        assert report.metric_value == report.result.throughput_rps
