"""Tests for the shared execution harness."""

import pytest

from repro.oskernel.kernel import KERNEL_6_9
from repro.hw.sku import get_sku
from repro.loadgen.generators import Request
from repro.workloads.base import RunConfig
from repro.workloads.profiles import BENCHMARK_PROFILES
from repro.workloads.runner import (
    BenchmarkHarness,
    InstanceSet,
    ServerModel,
    ThreadPool,
)


@pytest.fixture
def chars():
    return BENCHMARK_PROFILES["mediawiki"]


class TestServerModel:
    def test_rates_positive_and_consistent(self, chars):
        model = ServerModel(get_sku("SKU2"), KERNEL_6_9, chars)
        assert model.per_logical_ips > 1e8
        assert model.server_ips == pytest.approx(
            model.per_logical_ips * 52
        )

    def test_service_seconds(self, chars):
        model = ServerModel(get_sku("SKU2"), KERNEL_6_9, chars)
        assert model.service_seconds(model.per_logical_ips) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            model.service_seconds(-1.0)

    def test_capacity_rps(self, chars):
        model = ServerModel(get_sku("SKU2"), KERNEL_6_9, chars)
        expected = model.server_ips / chars.instructions_per_request
        assert model.capacity_rps() == pytest.approx(expected)

    def test_bigger_sku_more_capacity(self, chars):
        small = ServerModel(get_sku("SKU1"), KERNEL_6_9, chars)
        large = ServerModel(get_sku("SKU4"), KERNEL_6_9, chars)
        assert large.capacity_rps() > 2 * small.capacity_rps()

    def test_steady_state_clamps(self, chars):
        model = ServerModel(get_sku("SKU2"), KERNEL_6_9, chars)
        state = model.steady_state(cpu_util=1.7, scaling_efficiency=2.0)
        assert state.cpu_util == 1.0


class TestThreadPool:
    def test_bounded_concurrency(self, env):
        pool = ThreadPool(env, "p", num_threads=2)
        running = [0]
        peak = [0]

        def work():
            running[0] += 1
            peak[0] = max(peak[0], running[0])
            yield env.timeout(1.0)
            running[0] -= 1

        events = [pool.submit(work) for _ in range(6)]
        env.run()
        assert peak[0] == 2
        assert pool.completed == 6
        assert all(e.processed for e in events)

    def test_exception_propagates_to_waiter(self, env):
        pool = ThreadPool(env, "p", num_threads=1)
        caught = []

        def bad():
            yield env.timeout(0.1)
            raise RuntimeError("task failed")

        def waiter():
            try:
                yield pool.submit(bad)
            except RuntimeError as exc:
                caught.append(str(exc))

        env.process(waiter())
        env.run()
        assert caught == ["task failed"]

    def test_worker_survives_exception(self, env):
        """A failing item must not kill the worker."""
        pool = ThreadPool(env, "p", num_threads=1)

        def bad():
            raise RuntimeError("boom")
            yield  # pragma: no cover

        def good():
            yield env.timeout(0.1)

        first = pool.submit(bad)
        second = pool.submit(good)
        # Swallow the failure so it doesn't surface as unhandled.
        def waiter():
            try:
                yield first
            except RuntimeError:
                pass
            yield second

        env.process(waiter())
        env.run()
        assert pool.completed == 1

    def test_validation(self, env):
        with pytest.raises(ValueError):
            ThreadPool(env, "p", num_threads=0)


class TestInstanceSet:
    def test_instance_count_scales_with_cores(self, chars):
        def count(sku):
            harness = BenchmarkHarness(RunConfig(sku_name=sku), chars)
            return InstanceSet(harness).num_instances

        assert count("SKU1") == 1
        assert count("SKU2") == 2   # ceil(52/36)
        assert count("SKU4") == 5   # ceil(176/36)

    def test_round_robin_pick(self, chars):
        harness = BenchmarkHarness(RunConfig(sku_name="SKU4"), chars)
        instances = InstanceSet(harness)
        picks = [instances.pick() for _ in range(10)]
        assert picks[:5] == [0, 1, 2, 3, 4]
        assert picks[5] == 0

    def test_pick_counter_stays_bounded(self, chars):
        """Regression: the round-robin cursor must wrap at increment,
        not grow without bound over long simulations."""
        harness = BenchmarkHarness(RunConfig(sku_name="SKU4"), chars)
        instances = InstanceSet(harness)
        n = instances.num_instances
        picks = [instances.pick() for _ in range(7 * n + 3)]
        assert picks == [i % n for i in range(7 * n + 3)]
        assert 0 <= instances._next < n

    def test_serial_seconds_is_ipc_blind(self, chars):
        """The serialized slice runs at frequency speed, not IPC speed:
        the same instructions take similar time on SKU1 and SKU4
        (unlike the parallel part, which is much faster on SKU4)."""
        h1 = BenchmarkHarness(RunConfig(sku_name="SKU1"), chars)
        h4 = BenchmarkHarness(RunConfig(sku_name="SKU4"), chars)
        serial_1 = InstanceSet(h1).serial_seconds(1e6)
        serial_4 = InstanceSet(h4).serial_seconds(1e6)
        assert serial_4 / serial_1 < 1.4  # only the frequency ratio
        parallel_1 = h1.server.service_seconds(1e6)
        parallel_4 = h4.server.service_seconds(1e6)
        assert parallel_1 / parallel_4 > serial_1 / serial_4


class TestBenchmarkHarness:
    def test_open_loop_end_to_end(self, chars):
        config = RunConfig(
            sku_name="SKU2", warmup_seconds=0.2, measure_seconds=0.5
        )
        harness = BenchmarkHarness(config, chars)

        def handler(request: Request):
            yield from harness.burst(chars.instructions_per_request)

        result = harness.run_open_loop(handler, offered_rps=100.0)
        assert 50 < result.throughput_rps < 150
        assert 0 < result.cpu_util <= 1.0
        assert result.steady is not None
        assert result.latency["count"] > 10

    def test_burst_respects_kernel_fraction(self, chars):
        config = RunConfig(sku_name="SKU2", measure_seconds=0.5)
        harness = BenchmarkHarness(config, chars)

        def handler(request: Request):
            yield from harness.burst(1e8, kernel_frac=0.5)

        harness.run_open_loop(handler, offered_rps=50.0)
        stats = harness.scheduler.stats
        assert stats.kernel_seconds > 0
