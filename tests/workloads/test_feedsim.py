"""Tests for FeedSim."""

import pytest

from repro.loadgen.slo import SLO
from repro.workloads.base import RunConfig
from repro.workloads.feedsim import FEEDSIM_SLO, FeedSim


@pytest.fixture(scope="module")
def result():
    return FeedSim().run(
        RunConfig(sku_name="SKU2", warmup_seconds=0.5, measure_seconds=1.5)
    )


class TestFeedSim:
    def test_slo_definition_matches_paper(self):
        assert FEEDSIM_SLO == SLO(percentile=95.0, latency_seconds=0.5)

    def test_operating_point_meets_slo(self, result):
        assert result.extra["slo_met"] == 1.0
        assert result.extra["slo_p95_seconds"] <= 0.5

    def test_slo_binds_before_saturation(self, result):
        """Figure 9: ranking runs at 50-75% CPU, not 100%."""
        assert 0.40 < result.cpu_util < 0.90

    def test_throughput_order_of_magnitude(self, result):
        """Table 1: per-server RPS N(100) for ranking."""
        assert 20 < result.throughput_rps < 1000

    def test_search_used_multiple_probes(self, result):
        assert result.extra["slo_probes"] >= 3

    def test_faster_sku_higher_slo_throughput(self):
        quick = lambda sku: RunConfig(
            sku_name=sku, warmup_seconds=0.3, measure_seconds=1.0
        )
        small = FeedSim().run(quick("SKU1"))
        large = FeedSim().run(quick("SKU4"))
        assert large.throughput_rps > 2.5 * small.throughput_rps
