"""Tests for SparkBench."""

import pytest

from repro.workloads.base import RunConfig
from repro.workloads.sparkbench import SparkBench


@pytest.fixture(scope="module")
def result():
    return SparkBench().run(RunConfig(sku_name="SKU2"))


class TestStages:
    def test_three_stages_reported(self, result):
        for stage in ("stage1_seconds", "stage2_seconds", "stage3_seconds"):
            assert result.latency[stage] > 0

    def test_io_stages_dominated_by_network(self, result):
        """Stages 1-2 are I/O-intensive: their combined time exceeds
        what CPU alone would need."""
        s12 = result.latency["stage1_seconds"] + result.latency["stage2_seconds"]
        assert s12 > result.latency["stage3_seconds"]

    def test_total_time_is_sum(self, result):
        total = (
            result.latency["stage1_seconds"]
            + result.latency["stage2_seconds"]
            + result.latency["stage3_seconds"]
        )
        assert result.extra["total_query_seconds"] == pytest.approx(total)

    def test_utilization_matches_paper(self, result):
        """Figure 9: SparkBench at 60-80% CPU."""
        assert 0.45 < result.cpu_util < 0.90


class TestCorrectnessLayer:
    def test_real_query_ran(self, result):
        assert result.extra["validation_groups"] > 0
        assert result.extra["validation_joined_rows"] > 0

    def test_validate_query_deterministic(self):
        bench = SparkBench()
        a = bench.validate_query(seed=5)
        b = bench.validate_query(seed=5)
        assert a.rows == b.rows


class TestScaling:
    def test_faster_network_speeds_io_stages(self):
        small = SparkBench().run(RunConfig(sku_name="SKU1"))   # 12.5 Gbps
        large = SparkBench().run(RunConfig(sku_name="SKU4"))   # 50 Gbps
        assert large.latency["stage1_seconds"] < small.latency["stage1_seconds"]

    def test_stage3_tracks_cpu_not_network(self):
        """SKU3 and SKU2 share a 25 Gbps NIC but differ in CPU."""
        sku2 = SparkBench().run(RunConfig(sku_name="SKU2"))
        sku3 = SparkBench().run(RunConfig(sku_name="SKU3"))
        assert sku3.extra["stage3_seconds"] < sku2.extra["stage3_seconds"]
        # I/O floor identical NICs: stage-1 times are comparable.
        assert sku3.latency["stage1_seconds"] == pytest.approx(
            sku2.latency["stage1_seconds"], rel=0.35
        )


class TestStorageLayer:
    def test_compression_ratio_measured(self, result):
        """The dataset's on-disk form is real encoded+compressed bytes."""
        assert result.extra["validation_compression_ratio"] > 1.3

    def test_validate_storage_deterministic(self):
        bench = SparkBench()
        assert bench.validate_storage(seed=4) == bench.validate_storage(seed=4)
