"""Tests for VideoTranscodeBench and the SPEC comparator suites."""

import pytest

from repro.workloads.base import RunConfig
from repro.workloads.spec import (
    SPEC2006_PROFILES,
    get_spec_benchmark,
    spec2006_suite,
    spec2017_suite,
)
from repro.workloads.videotranscode import QUALITY_PRESETS, VideoTranscodeBench


class TestVideoTranscode:
    @pytest.fixture(scope="class")
    def result(self):
        return VideoTranscodeBench().run(
            RunConfig(sku_name="SKU2", warmup_seconds=0.3, measure_seconds=0.8)
        )

    def test_embarrassingly_parallel_saturates(self, result):
        """Section 3.2: pushes CPU utilization above 95%."""
        assert result.cpu_util > 0.93

    def test_frames_encoded(self, result):
        assert result.extra["frames_encoded"] > 100

    def test_quality_presets_change_throughput(self):
        quick = RunConfig(sku_name="SKU2", warmup_seconds=0.2, measure_seconds=0.6)
        fast = VideoTranscodeBench(quality=1).run(quick)
        slow = VideoTranscodeBench(quality=3).run(quick)
        assert fast.throughput_rps > 1.5 * slow.throughput_rps

    def test_quality_presets_change_power_profile(self):
        """Figure 10's VideoBench1-3 power differences come from
        vector intensity."""
        quick = RunConfig(sku_name="SKU2", warmup_seconds=0.2, measure_seconds=0.6)
        fast = VideoTranscodeBench(quality=1).run(quick)
        slow = VideoTranscodeBench(quality=3).run(quick)
        assert slow.steady.effective_freq_ghz < fast.steady.effective_freq_ghz

    def test_invalid_quality(self):
        with pytest.raises(ValueError):
            VideoTranscodeBench(quality=9)

    def test_presets_cover_paper_settings(self):
        assert set(QUALITY_PRESETS) == {1, 2, 3}


class TestSpecSuites:
    def test_baseline_score_is_one(self):
        assert spec2017_suite().score("SKU1") == pytest.approx(1.0)
        assert spec2006_suite().score("SKU1") == pytest.approx(1.0)

    def test_spec_overestimates_many_core(self):
        """Figure 2's core claim: SPEC scales superlinearly vs
        production on the 176-core SKU."""
        s17 = spec2017_suite().score("SKU4")
        core_ratio = 176 / 36
        assert s17 > core_ratio  # per-core gain > 1 for SPEC

    def test_spec2017_scales_above_spec2006(self):
        assert spec2017_suite().score("SKU4") > spec2006_suite().score("SKU4")

    def test_spec_benchmark_run_interface(self):
        bench = get_spec_benchmark("505.mcf")
        result = bench.run(RunConfig(sku_name="SKU2"))
        assert result.cpu_util == 1.0
        assert result.scaling_efficiency == 1.0
        assert result.throughput_rps > 0

    def test_unknown_spec_benchmark(self):
        with pytest.raises(KeyError):
            get_spec_benchmark("999.nope")

    def test_spec2006_subset_size(self):
        assert len(SPEC2006_PROFILES) == 10

    def test_mcf_is_memory_bound(self):
        from repro.hw.sku import get_sku
        state = get_spec_benchmark("505.mcf").steady_state(get_sku("SKU2"))
        assert state.tmam.backend > 0.45
        assert state.memory_bandwidth_gbps > 50

    def test_suite_average_power(self):
        watts = spec2017_suite().average_power_watts("SKU2")
        assert 200 < watts < 400  # sensible fraction of the 400W envelope
