"""Convergence monitor and early-termination semantics."""

import pytest

from repro.exec.executor import execute_point
from repro.exec.spec import RunPoint
from repro.sim.engine import Environment
from repro.workloads.runner import ConvergenceMonitor, ThreadPool


class TestConvergenceMonitor:
    def test_converges_on_stable_latencies(self):
        env = Environment()
        monitor = ConvergenceMonitor(env, window=10, windows=3)
        needed = 10 * 3  # first moment every window is closed
        for _ in range(needed):
            monitor.on_complete(0.005)
        assert monitor.converged_at == env.now
        assert monitor.windows_closed == 3
        assert env._stopped

    def test_does_not_converge_on_trending_latencies(self):
        env = Environment()
        monitor = ConvergenceMonitor(env, window=10, windows=3)
        latency = 0.001
        for _ in range(500):
            monitor.on_complete(latency)
            latency *= 1.01  # 1% growth per request: never steady
        assert monitor.converged_at is None
        assert not env._stopped

    def test_errors_do_not_count_toward_windows(self):
        env = Environment()
        monitor = ConvergenceMonitor(env, window=10, windows=3)
        for _ in range(1000):
            monitor.on_complete(None)
        assert monitor.windows_closed == 0
        for _ in range(30):
            monitor.on_complete(0.002)
        assert monitor.converged_at is not None

    def test_window_boundary_is_completion_counted(self):
        env = Environment()
        monitor = ConvergenceMonitor(env, window=10, windows=3)
        for _ in range(29):
            monitor.on_complete(0.005)
        assert monitor.converged_at is None  # one short of the 3rd window
        monitor.on_complete(0.005)
        assert monitor.converged_at is not None

    def test_parameter_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            ConvergenceMonitor(env, window=0)
        with pytest.raises(ValueError):
            ConvergenceMonitor(env, windows=1)
        with pytest.raises(ValueError):
            ConvergenceMonitor(env, threshold=0.0)


class TestEarlyStopRuns:
    def test_early_stop_is_deterministic(self):
        point = RunPoint(
            benchmark="taobench",
            measure_seconds=3.0,
            warmup_seconds=0.3,
            early_stop=True,
        )
        first = execute_point(point).as_dict()
        second = execute_point(point).as_dict()
        assert first == second
        extra = first["result"]["extra"]
        assert extra["early_stopped"] == 1.0
        assert 0.0 < extra["measured_seconds"] < 3.0

    def test_early_stop_metric_close_to_full_window(self):
        full = execute_point(
            RunPoint(benchmark="taobench", measure_seconds=3.0,
                     warmup_seconds=0.3)
        )
        fast = execute_point(
            RunPoint(benchmark="taobench", measure_seconds=3.0,
                     warmup_seconds=0.3, early_stop=True)
        )
        assert fast.metric_value == pytest.approx(
            full.metric_value, rel=0.05
        )

    def test_disabled_early_stop_adds_no_extra_keys(self):
        report = execute_point(
            RunPoint(benchmark="taobench", measure_seconds=0.5,
                     warmup_seconds=0.2, early_stop=False)
        )
        extra = report.as_dict()["result"]["extra"]
        assert "early_stopped" not in extra
        assert "measured_seconds" not in extra

    def test_fault_runs_never_stop_early(self):
        report = execute_point(
            RunPoint(benchmark="taobench", measure_seconds=0.5,
                     warmup_seconds=0.2, faults="brownout",
                     early_stop=True)
        )
        extra = report.as_dict()["result"]["extra"]
        # The monitor is skipped entirely under fault injection.
        assert "early_stopped" not in extra

    def test_early_stop_changes_cache_fingerprint(self):
        from repro.exec.spec import run_fingerprint

        base = RunPoint(benchmark="taobench")
        fast = RunPoint(benchmark="taobench", early_stop=True)
        assert run_fingerprint(base) != run_fingerprint(fast)


class TestDockThreadPool:
    def test_fifo_completion_and_queue_depth(self):
        env = Environment()
        pool = ThreadPool(env, "p", num_threads=2)
        order = []

        def work(tag, delay):
            def item():
                yield env.sleep(delay)
                order.append(tag)
            return item

        def driver():
            events = [
                pool.submit(work("a", 0.3)),
                pool.submit(work("b", 0.1)),
                pool.submit(work("c", 0.1)),
            ]
            # Two workers busy, one item backlogged.
            assert pool.queue_depth == 1
            for ev in events:
                if not ev.processed:
                    yield ev

        env.process(driver())
        env.run()
        assert sorted(order) == ["a", "b", "c"]
        assert pool.completed == 3
        assert pool.queue_depth == 0

    def test_worker_error_propagates_to_waiter(self):
        env = Environment()
        pool = ThreadPool(env, "p", num_threads=1)
        caught = []

        def bad():
            yield env.sleep(0.01)
            raise RuntimeError("boom")

        def driver():
            try:
                yield pool.submit(bad)
            except RuntimeError as exc:
                caught.append(str(exc))

        env.process(driver())
        env.run()
        assert caught == ["boom"]
        # The worker survives a failed item and keeps serving.
        done = []

        def good():
            yield env.sleep(0.01)
            done.append(True)

        def driver2():
            yield pool.submit(good)

        env.process(driver2())
        env.run()
        assert done == [True]

    def test_idle_handoff_reuses_workers(self):
        env = Environment()
        pool = ThreadPool(env, "p", num_threads=4)

        def item():
            yield env.sleep(0.001)

        def driver():
            for _ in range(100):
                yield pool.submit(item)

        env.process(driver())
        env.run()
        assert pool.completed == 100
        # Sequential submits always find an idle worker: nothing ever
        # sat in the backlog.
        assert pool.queue_depth == 0
