"""Tests for calibrated workload profiles (Table 1 consistency)."""

import pytest

from repro.workloads.profiles import (
    BENCHMARK_PROFILES,
    BENCHMARK_TO_PRODUCTION,
    PRODUCTION_PROFILES,
    SPEC2017_PROFILES,
    get_profile,
)
from repro.workloads.targets import TABLE1_STRUCTURE


class TestRegistries:
    def test_all_benchmarks_present(self):
        assert set(BENCHMARK_PROFILES) == {
            "taobench", "feedsim", "djangobench", "mediawiki",
            "sparkbench", "videotranscode", "storagebench", "llmbench",
        }

    def test_each_benchmark_has_production_twin(self):
        for bench, prod in BENCHMARK_TO_PRODUCTION.items():
            assert bench in BENCHMARK_PROFILES
            assert prod in PRODUCTION_PROFILES

    def test_spec2017_covers_ten_components(self):
        assert len(SPEC2017_PROFILES) == 10

    def test_get_profile_lookup(self):
        assert get_profile("taobench").name == "taobench"
        assert get_profile("cache-prod").name == "cache-prod"
        assert get_profile("505.mcf").name == "505.mcf"
        with pytest.raises(KeyError):
            get_profile("nope")


class TestTable1Consistency:
    """Workload structure must match Table 1's orders of magnitude."""

    @pytest.mark.parametrize("category", list(TABLE1_STRUCTURE))
    def test_thread_core_ratio(self, category):
        spec = TABLE1_STRUCTURE[category]
        for bench in spec["benchmarks"]:
            chars = BENCHMARK_PROFILES[bench]
            expected = spec["thread_core_ratio"]
            assert expected / 10 <= chars.thread_core_ratio <= expected * 10

    @pytest.mark.parametrize("category", list(TABLE1_STRUCTURE))
    def test_rpc_fanout(self, category):
        spec = TABLE1_STRUCTURE[category]
        for bench in spec["benchmarks"]:
            chars = BENCHMARK_PROFILES[bench]
            expected = spec["rpc_fanout"]
            if expected == 0:
                assert chars.rpc_fanout == 0
            else:
                assert expected / 10 <= chars.rpc_fanout <= expected * 10

    def test_caching_requests_are_tiny_web_requests_are_huge(self):
        tao = BENCHMARK_PROFILES["taobench"].instructions_per_request
        web = BENCHMARK_PROFILES["mediawiki"].instructions_per_request
        assert web / tao > 1000

    def test_video_has_no_fanout(self):
        assert BENCHMARK_PROFILES["videotranscode"].rpc_fanout == 0


class TestFidelityShape:
    """Paper-reported qualitative relationships between profiles."""

    def test_web_has_biggest_code_footprints(self):
        web = min(
            BENCHMARK_PROFILES["mediawiki"].code_footprint_kb,
            BENCHMARK_PROFILES["djangobench"].code_footprint_kb,
        )
        others = max(
            BENCHMARK_PROFILES["feedsim"].code_footprint_kb,
            BENCHMARK_PROFILES["sparkbench"].code_footprint_kb,
        )
        assert web > others

    def test_caching_has_highest_switch_rate(self):
        tao = BENCHMARK_PROFILES["taobench"].switches_per_kinstr
        for name, chars in BENCHMARK_PROFILES.items():
            if name != "taobench":
                assert tao > chars.switches_per_kinstr

    def test_caching_has_highest_kernel_share(self):
        tao = BENCHMARK_PROFILES["taobench"].kernel_frac
        assert tao > 0.25
        assert BENCHMARK_PROFILES["videotranscode"].kernel_frac < 0.1

    def test_spec_kernel_share_negligible(self):
        for chars in SPEC2017_PROFILES.values():
            assert chars.kernel_frac < 0.02

    def test_taobench_tax_lighter_on_compression_than_production(self):
        """The Figure 12 finding the paper flags as future work."""
        tao = BENCHMARK_PROFILES["taobench"].tax_profile
        prod = PRODUCTION_PROFILES["cache-prod"].tax_profile
        assert tao.share("compression") < 0.5 * prod.share("compression")
        assert tao.share("serialization") < 0.5 * prod.share("serialization")

    def test_tax_fractions_match_accelerometer_range(self):
        """Meta reports 18-82% tax depending on the application."""
        for name, chars in BENCHMARK_PROFILES.items():
            if name == "videotranscode":
                continue  # pure-compute media has no modeled tax
            assert 0.18 <= chars.tax_profile.tax_fraction <= 0.90
