"""Tests for suite variants and package metadata."""

import pytest

import repro
from repro.core.suite import DCPerfSuite


class TestPackage:
    def test_version(self):
        assert repro.__version__ == "0.1.0"


class TestProductionVariantSuite:
    @pytest.fixture(scope="class")
    def prod_suite(self):
        return DCPerfSuite(
            benchmark_names=["taobench"], variant=":prod", measure_seconds=0.5
        )

    def test_baseline_scores_one(self, prod_suite):
        report = prod_suite.run("SKU1")
        assert report.scores["taobench"] == pytest.approx(1.0)

    def test_runs_production_profile(self, prod_suite):
        report = prod_suite.run("SKU2")
        assert report.reports["taobench"].result.workload == "cache-prod"
        assert report.scores["taobench"] > 1.0

    def test_production_score_weighting(self, prod_suite):
        report = prod_suite.run("SKU2")
        weighted = prod_suite.production_score(report)
        # Single benchmark: weighted geomean equals its score.
        assert weighted == pytest.approx(report.scores["taobench"])


class TestKernelParameterizedSuite:
    def test_suite_respects_kernel(self):
        suite_old = DCPerfSuite(benchmark_names=["taobench"], measure_seconds=0.5)
        suite_new = DCPerfSuite(benchmark_names=["taobench"], measure_seconds=0.5)
        old = suite_old.run("SKU-384", kernel="6.4")
        new = suite_new.run("SKU-384", kernel="6.9")
        assert old.kernel == "6.4"
        assert new.kernel == "6.9"
        assert (
            new.reports["taobench"].metric_value
            > 1.1 * old.reports["taobench"].metric_value
        )
