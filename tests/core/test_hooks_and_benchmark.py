"""Tests for hooks, the benchmark wrapper, and reporting."""

import json
import os

import pytest

from repro.core.benchmark import Benchmark
from repro.core.errors import BenchmarkNotFoundError, HookError
from repro.core.hooks import (
    CopyMoveHook,
    Hook,
    HookRegistry,
    RunContext,
    default_hooks,
)
from repro.core.report import format_table, load_json_report, write_json_report, system_info
from repro.workloads.base import RunConfig


@pytest.fixture(scope="module")
def taobench_report():
    bench = Benchmark.by_name("taobench")
    return bench.run(
        RunConfig(sku_name="SKU2", warmup_seconds=0.3, measure_seconds=0.6)
    )


class TestHookRegistry:
    def test_default_hooks_cover_section_31(self):
        names = set(default_hooks().names())
        assert {"cpu_util", "memstat", "netstat", "cpufreq", "power",
                "topdown", "uarch"} <= names

    def test_duplicate_registration_rejected(self):
        registry = default_hooks()
        with pytest.raises(HookError):
            registry.register(registry._hooks["power"])

    def test_unregister(self):
        registry = default_hooks()
        registry.unregister("power")
        assert "power" not in registry.names()
        with pytest.raises(HookError):
            registry.unregister("power")

    def test_custom_hook_extensibility(self, taobench_report):
        """Section 3.1: new hooks can be added without touching core."""

        class CountingHook(Hook):
            name = "counting"

            def __init__(self):
                self.before = 0

            def before_run(self, ctx):
                self.before += 1

            def after_run(self, ctx, result):
                return {"throughput": result.throughput_rps}

        registry = HookRegistry([CountingHook()])
        bench = Benchmark.by_name("taobench")
        report = bench.run(
            RunConfig(sku_name="SKU2", warmup_seconds=0.2, measure_seconds=0.4),
            hooks=registry,
        )
        assert "counting" in report.hook_sections
        assert report.hook_sections["counting"]["throughput"] > 0

    def test_failing_hook_is_non_fatal(self):
        """A broken monitoring plugin must not lose the benchmark
        result: its section is marked failed, the rest still report."""

        class ExplodingHook(Hook):
            name = "exploding"

            def after_run(self, ctx, result):
                raise RuntimeError("monitoring backend unreachable")

        class FineHook(Hook):
            name = "fine"

            def after_run(self, ctx, result):
                return {"ok": True}

        registry = HookRegistry([ExplodingHook(), FineHook()])
        bench = Benchmark.by_name("taobench")
        report = bench.run(
            RunConfig(sku_name="SKU2", warmup_seconds=0.2, measure_seconds=0.4),
            hooks=registry,
        )
        assert report.metric_value > 0
        failed = report.hook_sections["exploding"]
        assert failed["hook_failed"] is True
        assert "monitoring backend unreachable" in failed["error"]
        assert report.hook_sections["fine"] == {"ok": True}


class TestBuiltinHookSections(object):
    def test_cpu_util_section(self, taobench_report):
        section = taobench_report.hook_sections["cpu_util"]
        assert 0 < section["total_pct"] <= 100
        assert section["sys_pct"] <= section["total_pct"]

    def test_power_section(self, taobench_report):
        section = taobench_report.hook_sections["power"]
        assert 0 < section["watts"] < 400
        assert section["breakdown_pct"]["total"] < 100

    def test_topdown_section_sums_to_100(self, taobench_report):
        section = taobench_report.hook_sections["topdown"]
        total = sum(
            v for k, v in section.items()
        )
        assert total == pytest.approx(100.0, abs=0.1)

    def test_uarch_section(self, taobench_report):
        section = taobench_report.hook_sections["uarch"]
        assert section["l1i_mpki"] > 0
        assert section["ipc_per_physical_core"] > 0

    def test_copymove_hook_writes_file(self, tmp_path, taobench_report):
        hook = CopyMoveHook(destination=str(tmp_path))
        ctx = RunContext(benchmark="taobench", config=RunConfig(sku_name="SKU2"))
        section = hook.after_run(ctx, taobench_report.result)
        assert len(section["copied"]) == 1
        assert os.path.exists(section["copied"][0])
        with open(section["copied"][0]) as fh:
            payload = json.load(fh)
        assert payload["workload"] == "taobench"


class TestBenchmark:
    def test_by_name_unknown(self):
        with pytest.raises(BenchmarkNotFoundError):
            Benchmark.by_name("nope")

    def test_install_reports_description(self):
        bench = Benchmark.by_name("sparkbench")
        description = bench.install()
        assert bench.installed
        assert description["category"] == "bigdata"
        assert description["dataset_groups"] > 0

    def test_report_shape(self, taobench_report):
        payload = taobench_report.as_dict()
        assert payload["benchmark"] == "taobench"
        assert payload["metric_value"] > 0
        assert payload["system"]["sku"] == "SKU2"
        assert "hooks" in payload


class TestReporting:
    def test_system_info_fields(self):
        info = system_info(RunConfig(sku_name="SKU4", kernel_version="6.4"))
        assert info["logical_cores"] == 176
        assert info["kernel_version"] == "6.4"

    def test_json_roundtrip(self, tmp_path, taobench_report):
        path = str(tmp_path / "sub" / "report.json")
        write_json_report(taobench_report.as_dict(), path)
        loaded = load_json_report(path)
        assert loaded["benchmark"] == "taobench"

    def test_format_table(self):
        text = format_table(["a", "b"], [["x", 1.234], ["y", 5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0]
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "extra"]])


class TestIoStatHook:
    def _result(self, extra):
        from repro.workloads.base import WorkloadResult

        return WorkloadResult(
            workload="w", sku="SKU2", kernel="6.9", throughput_rps=1.0,
            latency={}, cpu_util=0.5, kernel_util=0.1,
            scaling_efficiency=1.0, extra=extra,
        )

    def test_registered_by_default(self):
        assert "iostat" in default_hooks().names()

    def test_disabled_without_device_counters(self, taobench_report):
        """Device-less workloads keep the report shape with a stub
        section instead of zero-filled noise."""
        from repro.core.hooks import IoStatHook

        ctx = RunContext(benchmark="w", config=RunConfig(sku_name="SKU2"))
        section = IoStatHook().after_run(ctx, self._result({}))
        assert section == {"enabled": False}
        assert taobench_report.hook_sections["iostat"] == {"enabled": False}

    def test_derived_fields(self):
        from repro.core.hooks import IoStatHook

        config = RunConfig(sku_name="SKU2")
        ctx = RunContext(benchmark="w", config=config)
        extra = {
            "io_reads": 30.0,
            "io_writes": 10.0,
            "io_read_bytes": 3e6,
            "io_write_bytes": 1e6,
            "io_queue_wait_s": 0.2,
            "io_mean_queue_depth": 1.5,
            "io_device_util": 0.25,
            "io_compaction_bytes": 2e6,
            "io_compactions": 2.0,
            "io_flushes": 4.0,
            "io_wal_bytes": 5e5,
            "io_cache_hit_rate": 0.8,
            "io_bloom_fp_rate": 0.01,
            "io_stall_seconds": 0.5,
            "io_stall_events": 3.0,
            "io_stall_p99_s": 0.08,
        }
        section = IoStatHook().after_run(ctx, self._result(extra))
        assert section["enabled"] is True
        assert section["device"] == config.sku.storage
        assert section["read_mb"] == pytest.approx(3.0)
        assert section["write_mb"] == pytest.approx(1.0)
        # 0.2s of wait across 40 ops = 5ms/op.
        assert section["queue_wait_ms_per_op"] == pytest.approx(5.0)
        assert section["device_util_pct"] == pytest.approx(25.0)
        assert section["compaction_mb"] == pytest.approx(2.0)
        assert section["stall_p99_ms"] == pytest.approx(80.0)

    def test_zero_ops_avoids_division(self):
        from repro.core.hooks import IoStatHook

        ctx = RunContext(benchmark="w", config=RunConfig(sku_name="SKU2"))
        extra = {"io_reads": 0.0, "io_writes": 0.0}
        section = IoStatHook().after_run(ctx, self._result(extra))
        assert section["queue_wait_ms_per_op"] == 0.0


class TestTimelineHook:
    def test_series_summarized(self, taobench_report):
        section = taobench_report.hook_sections["timeline"]
        assert section["samples"] > 0
        assert 0.0 <= section["util_min"] <= section["util_mean"] <= section[
            "util_max"
        ] <= 1.0
        assert len(section["series"]) == section["samples"]

    def test_empty_timeline(self):
        from repro.core.hooks import TimelineHook
        from repro.workloads.base import WorkloadResult

        result = WorkloadResult(
            workload="w", sku="SKU1", kernel="6.9", throughput_rps=1.0,
            latency={}, cpu_util=0.5, kernel_util=0.1,
            scaling_efficiency=1.0,
        )
        ctx = RunContext(benchmark="w", config=RunConfig(sku_name="SKU1"))
        assert TimelineHook().after_run(ctx, result) == {"samples": 0}
