"""Tests for score normalization and aggregation."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.scoring import (
    ScoreBoard,
    geometric_mean,
    weighted_geometric_mean,
)


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single_value(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(values=st.lists(st.floats(0.01, 100.0), min_size=1, max_size=20))
    def test_between_min_and_max(self, values):
        g = geometric_mean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9

    @given(
        values=st.lists(st.floats(0.01, 100.0), min_size=1, max_size=20),
        scale=st.floats(0.1, 10.0),
    )
    def test_scale_invariance(self, values, scale):
        scaled = geometric_mean([v * scale for v in values])
        assert scaled == pytest.approx(geometric_mean(values) * scale, rel=1e-6)


class TestWeightedGeometricMean:
    def test_equal_weights_match_plain(self):
        values = {"a": 2.0, "b": 8.0}
        weighted = weighted_geometric_mean(values, {"a": 1.0, "b": 1.0})
        assert weighted == pytest.approx(geometric_mean(values.values()))

    def test_heavy_weight_pulls_toward_value(self):
        values = {"a": 1.0, "b": 16.0}
        toward_b = weighted_geometric_mean(values, {"a": 1.0, "b": 9.0})
        assert toward_b > geometric_mean(values.values())

    def test_missing_weight_defaults_to_one(self):
        values = {"a": 4.0, "b": 4.0}
        assert weighted_geometric_mean(values, {}) == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_geometric_mean({}, {})
        with pytest.raises(ValueError):
            weighted_geometric_mean({"a": -1.0}, {"a": 1.0})


class TestScoreBoard:
    def test_score_normalizes_against_baseline(self):
        board = ScoreBoard()
        board.register_baseline("bench", 100.0)
        assert board.score("bench", 150.0) == pytest.approx(1.5)

    def test_missing_baseline_raises(self):
        with pytest.raises(KeyError, match="SKU1"):
            ScoreBoard().score("bench", 10.0)

    def test_has_baseline(self):
        board = ScoreBoard()
        assert not board.has_baseline("x")
        board.register_baseline("x", 1.0)
        assert board.has_baseline("x")

    def test_invalid_values(self):
        board = ScoreBoard()
        with pytest.raises(ValueError):
            board.register_baseline("x", 0.0)
        board.register_baseline("x", 1.0)
        with pytest.raises(ValueError):
            board.score("x", -1.0)

    def test_suite_score(self):
        board = ScoreBoard()
        assert board.suite_score({"a": 2.0, "b": 8.0}) == pytest.approx(4.0)
        weighted = board.suite_score({"a": 2.0, "b": 8.0}, weights={"b": 3.0})
        assert weighted > 4.0
