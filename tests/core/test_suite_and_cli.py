"""Tests for suite orchestration and the CLI."""

import json

import pytest

from repro.core.cli import main
from repro.core.suite import DCPerfSuite, FLEET_POWER_WEIGHTS


class TestSuite:
    @pytest.fixture(scope="class")
    def small_suite(self):
        return DCPerfSuite(
            benchmark_names=["taobench", "videotranscode"],
            measure_seconds=0.5,
        )

    def test_baseline_sku_scores_one(self, small_suite):
        report = small_suite.run("SKU1")
        for score in report.scores.values():
            assert score == pytest.approx(1.0)
        assert report.overall_score == pytest.approx(1.0)

    def test_other_sku_scores_relative(self, small_suite):
        report = small_suite.run("SKU2")
        for score in report.scores.values():
            assert score > 1.0
        assert report.overall_score > 1.0

    def test_perf_per_watt_reported(self, small_suite):
        report = small_suite.run("SKU2")
        assert all(v > 0 for v in report.perf_per_watt.values())

    def test_production_weighting(self, small_suite):
        report = small_suite.run("SKU2")
        weighted = small_suite.production_score(report)
        assert weighted > 0

    def test_fleet_weights_sum_to_one(self):
        assert sum(FLEET_POWER_WEIGHTS.values()) == pytest.approx(1.0)

    def test_default_suite_scores_llm_mixes(self):
        from repro.workloads.registry import (
            dcperf_benchmarks,
            llm_serving_benchmarks,
        )

        suite = DCPerfSuite()
        assert suite.benchmark_names == (
            dcperf_benchmarks() + llm_serving_benchmarks()
        )
        assert "llmbench-chat" in suite.benchmark_names
        assert "llmbench-codegen" in suite.benchmark_names

    def test_prod_suite_skips_llm_mixes(self):
        from repro.workloads.registry import dcperf_benchmarks

        suite = DCPerfSuite(variant=":prod")
        assert suite.benchmark_names == dcperf_benchmarks()

    def test_llm_mix_scores_against_baseline(self):
        suite = DCPerfSuite(
            benchmark_names=["llmbench-chat"], measure_seconds=0.5
        )
        report = suite.run("SKU2")
        assert report.scores["llmbench-chat"] > 0

    def test_report_serializable(self, small_suite):
        report = small_suite.run("SKU1")
        payload = report.as_dict()
        json.dumps(payload, default=str)  # must not raise


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "taobench" in out
        assert "mediawiki" in out

    def test_skus(self, capsys):
        assert main(["skus"]) == 0
        out = capsys.readouterr().out
        assert "SKU4" in out
        assert "176" in out

    def test_install(self, capsys):
        assert main(["install", "-b", "taobench"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["category"] == "caching"

    def test_run_json(self, tmp_path, capsys):
        path = str(tmp_path / "out.json")
        code = main([
            "run", "-b", "videotranscode", "--sku", "SKU2",
            "--measure-seconds", "0.5", "--json", path,
        ])
        assert code == 0
        with open(path) as fh:
            payload = json.load(fh)
        assert payload["benchmark"] == "videotranscode"

    def test_microbench(self, capsys):
        assert main(["microbench"]) == 0
        out = capsys.readouterr().out
        assert "rpc_roundtrip" in out

    def test_run_sharded(self, capsys, monkeypatch):
        monkeypatch.setenv("DCPERF_CACHE", "0")
        code = main([
            "run", "-b", "taobench", "--measure-seconds", "0.5",
            "--no-early-stop", "--shards", "2",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["system"]["shards"] == 2
        sharding = payload["hooks"]["sharding"]
        assert sharding["role"] == "merged"
        assert len(sharding["shard_seeds"]) == 2

    def test_run_rejects_bad_shards(self, capsys):
        assert main(["run", "-b", "taobench", "--shards", "0"]) == 2

    def test_workloads_list(self, capsys):
        assert main(["workloads", "list"]) == 0
        out = capsys.readouterr().out
        assert "llmbench-chat" in out
        assert "llmbench-long_reasoning" in out
        assert "scored" in out and "unscored" in out
        # Every scored suite entry is labeled as such.
        for line in out.splitlines():
            if line.startswith("llmbench-chat ") or line.startswith(
                "taobench "
            ):
                assert " scored" in line
            if line.startswith("aibench ") or line.startswith(
                "llmbench-rag"
            ):
                assert "unscored" in line

    def test_run_catalog_shorthand(self, capsys):
        code = main([
            "run", "-b", "llmbench", "--catalog", "codegen",
            "--measure-seconds", "0.5",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["benchmark"] == "llmbench-codegen"
        assert payload["hooks"]["llm_serving"]["enabled"]

    def test_run_catalog_rejects_non_llm_benchmark(self, capsys):
        assert main(["run", "-b", "taobench", "--catalog", "chat"]) == 2

    def test_cache_info_reports_schema_counts(self, tmp_path, capsys):
        from repro.exec.cache import RunCache
        from repro.exec.spec import CACHE_SCHEMA_VERSION, RunPoint

        cache = RunCache(str(tmp_path))
        cache.put("a" * 8, RunPoint(benchmark="taobench"), {"x": 1})
        (tmp_path / ("b" * 8 + ".json")).write_text(
            json.dumps({"fingerprint": "b" * 8, "schema": 4, "report": {}})
        )
        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert f"schema {CACHE_SCHEMA_VERSION}: 1 (current)" in out
        assert "schema 4: 1" in out

        assert (
            main(["cache", "clear", "--stale", "--cache-dir", str(tmp_path)])
            == 0
        )
        assert "removed 1 stale" in capsys.readouterr().out
        assert cache.info().entries == 1
