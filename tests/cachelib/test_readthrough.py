"""Tests for read-through vs look-aside cache policies."""

import pytest

from repro.cachelib.memcached import MemcachedServer
from repro.cachelib.readthrough import LookAsideCache, ReadThroughCache


def backend(key: str) -> bytes:
    return f"db:{key}".encode()


class TestReadThrough:
    def test_always_returns_value(self):
        cache = ReadThroughCache(MemcachedServer(), backend)
        value, hit = cache.get("k1")
        assert value == b"db:k1"
        assert not hit
        value, hit = cache.get("k1")
        assert hit

    def test_miss_fills_cache(self):
        server = MemcachedServer()
        cache = ReadThroughCache(server, backend)
        cache.get("k1")
        assert server.get("k1") == b"db:k1"

    def test_dispatch_stats(self):
        cache = ReadThroughCache(MemcachedServer(), backend)
        cache.get("a")
        cache.get("a")
        cache.get("b")
        assert cache.stats.fast_path == 1
        assert cache.stats.slow_path == 2
        assert cache.stats.hit_rate == pytest.approx(1 / 3)

    def test_invalidate(self):
        cache = ReadThroughCache(MemcachedServer(), backend)
        cache.get("k")
        assert cache.invalidate("k")
        _, hit = cache.get("k")
        assert not hit

    def test_ttl_passthrough(self):
        clock = [0.0]
        server = MemcachedServer(clock=lambda: clock[0])
        cache = ReadThroughCache(server, backend, ttl_seconds=5.0)
        cache.get("k")
        clock[0] = 6.0
        _, hit = cache.get("k")
        assert not hit


class TestLookAside:
    def test_miss_returns_none(self):
        """The architectural difference: clients own the miss path."""
        cache = LookAsideCache(MemcachedServer())
        assert cache.get("k") is None
        cache.fill("k", b"v")
        assert cache.get("k") == b"v"

    def test_stats(self):
        cache = LookAsideCache(MemcachedServer())
        cache.get("k")
        cache.fill("k", b"v")
        cache.get("k")
        assert cache.stats.slow_path == 1
        assert cache.stats.fast_path == 1
