"""Tests for the Memcached server model."""

import pytest

from repro.cachelib.memcached import MAX_VALUE_BYTES, MemcachedError, MemcachedServer


class TestCommands:
    def test_get_set_delete(self):
        server = MemcachedServer()
        server.set("key", b"value")
        assert server.get("key") == b"value"
        assert server.delete("key")
        assert server.get("key") is None

    def test_get_multi(self):
        server = MemcachedServer()
        server.set("a", b"1")
        server.set("b", b"2")
        out = server.get_multi(["a", "b", "c"])
        assert out == {"a": b"1", "b": b"2"}

    def test_flush_all(self):
        server = MemcachedServer()
        server.set("a", b"1")
        server.flush_all()
        assert server.get("a") is None

    def test_stats_shape(self):
        server = MemcachedServer()
        server.set("a", b"1")
        server.get("a")
        server.get("b")
        stats = server.stats()
        assert stats["get_hits"] == 1
        assert stats["get_misses"] == 1
        assert stats["curr_items"] == 1
        assert stats["cmd_set"] == 1


class TestLimits:
    def test_key_length_limit(self):
        server = MemcachedServer()
        with pytest.raises(MemcachedError):
            server.get("k" * 251)

    def test_key_whitespace_rejected(self):
        with pytest.raises(MemcachedError):
            MemcachedServer().get("bad key")

    def test_empty_key_rejected(self):
        with pytest.raises(MemcachedError):
            MemcachedServer().get("")

    def test_value_size_limit(self):
        server = MemcachedServer(capacity_bytes=4 * 1024 * 1024)
        with pytest.raises(MemcachedError):
            server.set("k", b"x" * (MAX_VALUE_BYTES + 1))
