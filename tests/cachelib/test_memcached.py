"""Tests for the Memcached server model."""

import pytest

from repro.cachelib.memcached import MAX_VALUE_BYTES, MemcachedError, MemcachedServer


class TestCommands:
    def test_get_set_delete(self):
        server = MemcachedServer()
        server.set("key", b"value")
        assert server.get("key") == b"value"
        assert server.delete("key")
        assert server.get("key") is None

    def test_get_multi(self):
        server = MemcachedServer()
        server.set("a", b"1")
        server.set("b", b"2")
        out = server.get_multi(["a", "b", "c"])
        assert out == {"a": b"1", "b": b"2"}

    def test_flush_all(self):
        server = MemcachedServer()
        server.set("a", b"1")
        server.flush_all()
        assert server.get("a") is None

    def test_stats_shape(self):
        server = MemcachedServer()
        server.set("a", b"1")
        server.get("a")
        server.get("b")
        stats = server.stats()
        assert stats["get_hits"] == 1
        assert stats["get_misses"] == 1
        assert stats["curr_items"] == 1
        assert stats["cmd_set"] == 1


class TestLimits:
    def test_key_length_limit(self):
        server = MemcachedServer()
        with pytest.raises(MemcachedError):
            server.get("k" * 251)

    def test_key_whitespace_rejected(self):
        with pytest.raises(MemcachedError):
            MemcachedServer().get("bad key")

    def test_empty_key_rejected(self):
        with pytest.raises(MemcachedError):
            MemcachedServer().get("")

    def test_value_size_limit(self):
        server = MemcachedServer(capacity_bytes=4 * 1024 * 1024)
        with pytest.raises(MemcachedError):
            server.set("k", b"x" * (MAX_VALUE_BYTES + 1))


class TestValidationFastPath:
    """The memoized/ASCII-fast-path validation must preserve every
    rejection the per-character scan performed."""

    def test_oversized_key_rejected_every_time(self):
        server = MemcachedServer()
        for _ in range(3):  # invalid keys must never enter the memo
            with pytest.raises(MemcachedError):
                server.get("k" * 251)

    def test_key_length_is_counted_in_bytes(self):
        # 126 two-byte UTF-8 chars = 252 wire bytes > 250, even though
        # the character count (126) is under the limit.
        server = MemcachedServer()
        with pytest.raises(MemcachedError):
            server.get("é" * 126)
        # 125 of them (250 bytes) is exactly at the limit: accepted.
        assert server.get("é" * 125) is None

    def test_unicode_whitespace_rejected(self):
        server = MemcachedServer()
        for key in ("a b", "a b", " "):
            with pytest.raises(MemcachedError):
                server.get(key)

    def test_ascii_control_whitespace_rejected(self):
        server = MemcachedServer()
        for ws in "\t\n\v\f\r\x1c\x1d\x1e\x1f ":
            with pytest.raises(MemcachedError):
                server.get(f"a{ws}b")

    def test_max_length_ascii_key_accepted(self):
        server = MemcachedServer()
        key = "k" * 250
        server.set(key, b"v")
        assert server.get(key) == b"v"

    def test_memo_correct_after_delete(self):
        server = MemcachedServer()
        server.set("k", b"v")
        assert server.delete("k")
        # The key is still *valid* (validity is a property of the
        # string, not of cache residency) and behaves as a miss.
        assert server.get("k") is None
        server.set("k", b"v2")
        assert server.get("k") == b"v2"

    def test_memo_correct_after_flush_all(self):
        server = MemcachedServer()
        server.set("a", b"1")
        server.set("b", b"2")
        server.flush_all()
        assert server.get("a") is None
        server.set("a", b"3")
        assert server.get("a") == b"3"
        # And invalid keys still raise after a flush.
        with pytest.raises(MemcachedError):
            server.get("bad key")


class TestFlushAndWarm:
    def test_flush_all_preserves_counters(self):
        server = MemcachedServer()
        server.set("a", b"1")
        server.get("a")
        server.get("missing")
        server.flush_all()
        stats = server.stats()
        assert stats["get_hits"] == 1
        assert stats["get_misses"] == 1
        assert stats["cmd_set"] == 1
        assert stats["curr_items"] == 0
        assert stats["bytes"] == 0

    def test_flush_all_drops_expired_entries(self):
        clock = [0.0]
        server = MemcachedServer(clock=lambda: clock[0])
        server.set("a", b"1", ttl_seconds=1.0)
        clock[0] = 2.0
        server.flush_all()
        assert len(server.cache) == 0
        assert server.cache.used_bytes == 0

    def test_warm_matches_individual_sets(self):
        items = [(f"k{i}", bytes([i]) * (i + 1)) for i in range(20)]
        via_sets = MemcachedServer()
        for key, value in items:
            via_sets.set(key, value)
        via_warm = MemcachedServer()
        via_warm.warm(items)
        assert via_warm.cache.items_snapshot() == via_sets.cache.items_snapshot()
        assert via_warm.cache.used_bytes == via_sets.cache.used_bytes
        assert via_warm.stats() == via_sets.stats()
