"""Tests for the byte-bounded LRU cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cachelib.lru import LruCache


class TestBasics:
    def test_get_miss(self):
        cache = LruCache(100)
        assert cache.get("missing") is None
        assert cache.stats.misses == 1

    def test_set_get(self):
        cache = LruCache(100)
        cache.set("k", b"value")
        assert cache.get("k") == b"value"
        assert cache.stats.hits == 1

    def test_replace_updates_bytes(self):
        cache = LruCache(100)
        cache.set("k", b"12345")
        cache.set("k", b"12")
        assert cache.used_bytes == 2
        assert len(cache) == 1

    def test_value_type_enforced(self):
        with pytest.raises(TypeError):
            LruCache(100).set("k", "not bytes")

    def test_oversized_value_rejected(self):
        with pytest.raises(ValueError):
            LruCache(10).set("k", b"x" * 11)

    def test_delete(self):
        cache = LruCache(100)
        cache.set("k", b"v")
        assert cache.delete("k")
        assert not cache.delete("k")
        assert cache.used_bytes == 0


class TestEviction:
    def test_lru_order(self):
        cache = LruCache(30)
        cache.set("a", b"x" * 10)
        cache.set("b", b"x" * 10)
        cache.set("c", b"x" * 10)
        cache.get("a")  # refresh a
        cache.set("d", b"x" * 10)  # evicts b (oldest untouched)
        assert "a" in cache
        assert "b" not in cache
        assert cache.stats.evictions == 1

    def test_peek_does_not_refresh(self):
        cache = LruCache(20)
        cache.set("a", b"x" * 10)
        cache.set("b", b"x" * 10)
        cache.peek("a")
        cache.set("c", b"x" * 10)  # evicts a despite the peek
        assert "a" not in cache

    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 30), st.integers(1, 40)), max_size=200
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_byte_budget_never_exceeded(self, ops):
        cache = LruCache(100)
        for key, size in ops:
            cache.set(f"k{key}", b"x" * size)
            assert cache.used_bytes <= 100
        live = cache.items_snapshot()
        assert sum(len(v) for _, v in live) == cache.used_bytes


class TestTtl:
    def test_expiry_is_a_miss(self):
        clock = [0.0]
        cache = LruCache(100, clock=lambda: clock[0])
        cache.set("k", b"v", ttl_seconds=5.0)
        assert cache.get("k") == b"v"
        clock[0] = 6.0
        assert cache.get("k") is None
        assert cache.stats.expirations == 1

    def test_purge_expired(self):
        clock = [0.0]
        cache = LruCache(100, clock=lambda: clock[0])
        cache.set("a", b"v", ttl_seconds=1.0)
        cache.set("b", b"v")
        clock[0] = 2.0
        assert cache.purge_expired() == 1
        assert "b" in cache

    def test_invalid_ttl(self):
        with pytest.raises(ValueError):
            LruCache(100).set("k", b"v", ttl_seconds=0.0)

    def test_contains_respects_ttl(self):
        clock = [0.0]
        cache = LruCache(100, clock=lambda: clock[0])
        cache.set("k", b"v", ttl_seconds=1.0)
        assert "k" in cache
        clock[0] = 2.0
        assert "k" not in cache


class TestStats:
    def test_hit_rate(self):
        cache = LruCache(100)
        cache.set("k", b"v")
        cache.get("k")
        cache.get("k")
        cache.get("nope")
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_empty_hit_rate(self):
        assert LruCache(100).stats.hit_rate == 0.0


class TestClearAndLoad:
    def test_clear_preserves_counters(self):
        cache = LruCache(100)
        cache.set("a", b"12345")
        cache.get("a")
        cache.get("missing")
        dropped = cache.clear()
        assert dropped == 1
        assert len(cache) == 0
        assert cache.used_bytes == 0
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.sets == 1

    def test_clear_drops_expired_entries_too(self):
        clock = [0.0]
        cache = LruCache(100, clock=lambda: clock[0])
        cache.set("a", b"v", ttl_seconds=1.0)
        clock[0] = 5.0
        assert cache.clear() == 1
        assert cache.used_bytes == 0

    def test_load_matches_set_sequence(self):
        items = [(f"k{i}", b"x" * (i + 1)) for i in range(10)]
        via_sets = LruCache(1000)
        for key, value in items:
            via_sets.set(key, value)
        via_load = LruCache(1000)
        via_load.load(items)
        assert via_load.items_snapshot() == via_sets.items_snapshot()
        assert via_load.used_bytes == via_sets.used_bytes
        assert via_load.stats.sets == via_sets.stats.sets

    def test_load_requires_empty_cache(self):
        cache = LruCache(100)
        cache.set("a", b"v")
        with pytest.raises(ValueError):
            cache.load([("b", b"v")])

    def test_load_rejects_overflow(self):
        cache = LruCache(10)
        with pytest.raises(ValueError):
            cache.load([("a", b"x" * 6), ("b", b"x" * 6)])
        assert len(cache) == 0  # failed load leaves the cache empty


class TestTtlRacingEviction:
    def test_expired_entry_evicted_under_pressure_counts_once(self):
        """An entry that has expired but not yet been reclaimed is still
        a legal LRU victim; eviction and expiration must not both be
        charged for it."""
        clock = [0.0]
        cache = LruCache(30, clock=lambda: clock[0])
        cache.set("old", b"x" * 10, ttl_seconds=1.0)
        cache.set("live", b"x" * 10)
        clock[0] = 2.0  # "old" is now expired but still resident
        cache.set("new1", b"x" * 10)  # fits: no eviction yet
        cache.set("new2", b"x" * 10)  # evicts "old" (LRU, expired)
        assert cache.stats.evictions == 1
        assert cache.stats.expirations == 0
        assert "live" in cache
        assert "new1" in cache and "new2" in cache

    def test_replace_of_expired_entry_updates_in_place(self):
        clock = [0.0]
        cache = LruCache(100, clock=lambda: clock[0])
        cache.set("k", b"old", ttl_seconds=1.0)
        clock[0] = 2.0
        cache.set("k", b"newval")  # replacement clears the stale TTL
        clock[0] = 100.0
        assert cache.get("k") == b"newval"
        assert cache.used_bytes == 6
