"""Tests for the byte-bounded LRU cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cachelib.lru import LruCache


class TestBasics:
    def test_get_miss(self):
        cache = LruCache(100)
        assert cache.get("missing") is None
        assert cache.stats.misses == 1

    def test_set_get(self):
        cache = LruCache(100)
        cache.set("k", b"value")
        assert cache.get("k") == b"value"
        assert cache.stats.hits == 1

    def test_replace_updates_bytes(self):
        cache = LruCache(100)
        cache.set("k", b"12345")
        cache.set("k", b"12")
        assert cache.used_bytes == 2
        assert len(cache) == 1

    def test_value_type_enforced(self):
        with pytest.raises(TypeError):
            LruCache(100).set("k", "not bytes")

    def test_oversized_value_rejected(self):
        with pytest.raises(ValueError):
            LruCache(10).set("k", b"x" * 11)

    def test_delete(self):
        cache = LruCache(100)
        cache.set("k", b"v")
        assert cache.delete("k")
        assert not cache.delete("k")
        assert cache.used_bytes == 0


class TestEviction:
    def test_lru_order(self):
        cache = LruCache(30)
        cache.set("a", b"x" * 10)
        cache.set("b", b"x" * 10)
        cache.set("c", b"x" * 10)
        cache.get("a")  # refresh a
        cache.set("d", b"x" * 10)  # evicts b (oldest untouched)
        assert "a" in cache
        assert "b" not in cache
        assert cache.stats.evictions == 1

    def test_peek_does_not_refresh(self):
        cache = LruCache(20)
        cache.set("a", b"x" * 10)
        cache.set("b", b"x" * 10)
        cache.peek("a")
        cache.set("c", b"x" * 10)  # evicts a despite the peek
        assert "a" not in cache

    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 30), st.integers(1, 40)), max_size=200
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_byte_budget_never_exceeded(self, ops):
        cache = LruCache(100)
        for key, size in ops:
            cache.set(f"k{key}", b"x" * size)
            assert cache.used_bytes <= 100
        live = cache.items_snapshot()
        assert sum(len(v) for _, v in live) == cache.used_bytes


class TestTtl:
    def test_expiry_is_a_miss(self):
        clock = [0.0]
        cache = LruCache(100, clock=lambda: clock[0])
        cache.set("k", b"v", ttl_seconds=5.0)
        assert cache.get("k") == b"v"
        clock[0] = 6.0
        assert cache.get("k") is None
        assert cache.stats.expirations == 1

    def test_purge_expired(self):
        clock = [0.0]
        cache = LruCache(100, clock=lambda: clock[0])
        cache.set("a", b"v", ttl_seconds=1.0)
        cache.set("b", b"v")
        clock[0] = 2.0
        assert cache.purge_expired() == 1
        assert "b" in cache

    def test_invalid_ttl(self):
        with pytest.raises(ValueError):
            LruCache(100).set("k", b"v", ttl_seconds=0.0)

    def test_contains_respects_ttl(self):
        clock = [0.0]
        cache = LruCache(100, clock=lambda: clock[0])
        cache.set("k", b"v", ttl_seconds=1.0)
        assert "k" in cache
        clock[0] = 2.0
        assert "k" not in cache


class TestStats:
    def test_hit_rate(self):
        cache = LruCache(100)
        cache.set("k", b"v")
        cache.get("k")
        cache.get("k")
        cache.get("nope")
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_empty_hit_rate(self):
        assert LruCache(100).stats.hit_rate == 0.0
