"""Tests for the SLO search."""

import pytest

from repro.loadgen.slo import SLO, ProbeResult, find_max_load


def synthetic_probe(capacity: float):
    """Latency rises hyperbolically toward the capacity asymptote."""

    def probe(rate: float) -> ProbeResult:
        rho = min(rate / capacity, 0.999)
        latency = 0.05 / (1.0 - rho)
        return ProbeResult(
            offered_rps=rate,
            achieved_rps=min(rate, capacity),
            latency_at_percentile=latency,
            error_rate=0.0,
            cpu_util=rho,
        )

    return probe


class TestSlo:
    def test_validation(self):
        with pytest.raises(ValueError):
            SLO(percentile=0.0)
        with pytest.raises(ValueError):
            SLO(latency_seconds=0.0)
        with pytest.raises(ValueError):
            SLO(max_error_rate=2.0)

    def test_meets(self):
        slo = SLO(latency_seconds=0.5, max_error_rate=0.01)
        ok = ProbeResult(10, 10, 0.4, 0.0, 0.5)
        slow = ProbeResult(10, 10, 0.6, 0.0, 0.5)
        errory = ProbeResult(10, 10, 0.4, 0.05, 0.5)
        assert ok.meets(slo)
        assert not slow.meets(slo)
        assert not errory.meets(slo)


class TestFindMaxLoad:
    def test_converges_to_analytic_answer(self):
        # latency = 0.05/(1-rho) <= 0.5  =>  rho <= 0.9.
        result = find_max_load(
            synthetic_probe(1000.0),
            SLO(latency_seconds=0.5),
            low_rps=50.0,
            high_rps=1200.0,
            tolerance=0.01,
            max_probes=30,
        )
        assert result.max_rps == pytest.approx(900.0, rel=0.03)

    def test_high_point_passing_returns_high(self):
        result = find_max_load(
            synthetic_probe(100000.0), SLO(latency_seconds=0.5),
            low_rps=10.0, high_rps=100.0,
        )
        assert result.max_rps == 100.0

    def test_steps_down_when_low_violates(self):
        """A tight SLO forces the search to shrink its starting load."""
        result = find_max_load(
            synthetic_probe(1000.0),
            SLO(latency_seconds=0.0668),  # rho <= 0.25 -> max 250 rps
            low_rps=600.0,
            high_rps=1200.0,
            max_probes=30,
        )
        assert result.max_rps < 300.0

    def test_impossible_slo_raises(self):
        with pytest.raises(ValueError, match="cannot be met"):
            find_max_load(
                synthetic_probe(1000.0), SLO(latency_seconds=0.01),
                low_rps=100.0, high_rps=500.0,
            )

    def test_input_validation(self):
        with pytest.raises(ValueError):
            find_max_load(
                synthetic_probe(100.0), SLO(), low_rps=10.0, high_rps=5.0
            )
