"""BucketedHistogram and the LatencyRecorder HDR backend."""

import random

import pytest

from repro.loadgen.recorder import BucketedHistogram, LatencyRecorder


class TestBucketMapping:
    def test_small_values_are_exact(self):
        """Values under 2**precision_bits microseconds get one bucket
        each, so percentiles in that range are quantized only to 1 µs."""
        h = BucketedHistogram(precision_bits=7)
        for us in (0, 1, 64, 127):
            h.record(us / 1e6)
        assert h.bucket_count == 4
        assert h.percentile(100) == pytest.approx(127e-6)

    def test_index_is_monotone_and_contiguous(self):
        h = BucketedHistogram(precision_bits=4)
        indices = [h._index(u) for u in range(0, 5000)]
        assert indices == sorted(indices)
        # No gaps: every index between first and last is hit.
        assert set(indices) == set(range(indices[-1] + 1))

    def test_bucket_bounds_cover_their_values(self):
        h = BucketedHistogram(precision_bits=4)
        for units in (3, 17, 100, 1023, 4096, 123_456):
            index = h._index(units)
            assert h._bucket_high_units(index) >= units
            mid = h._bucket_mid_seconds(index) * 1e6
            assert mid <= h._bucket_high_units(index)

    def test_precision_bits_validated(self):
        with pytest.raises(ValueError):
            BucketedHistogram(precision_bits=0)
        with pytest.raises(ValueError):
            BucketedHistogram(precision_bits=15)


class TestHistogramQueries:
    def test_relative_error_bound_vs_exact(self):
        """The HDR guarantee: percentile error stays within the
        bucket's relative width (2**-(bits+1), ~0.4% at 7 bits) plus
        the 1 µs quantization floor."""
        rng = random.Random(7)
        exact = LatencyRecorder()  # sort-based reference
        h = BucketedHistogram(precision_bits=7)
        samples = [rng.lognormvariate(-6.0, 1.2) for _ in range(5000)]
        for s in samples:
            exact.record(s)
            h.record(s)
        for p in (50.0, 90.0, 99.0, 99.9):
            reference = exact.percentile(p)
            got = h.percentile(p)
            assert got == pytest.approx(reference, rel=0.01, abs=2e-6)

    def test_p100_is_exact_max(self):
        h = BucketedHistogram()
        for s in (0.001, 0.5, 0.123456):
            h.record(s)
        assert h.percentile(100) == pytest.approx(0.5)
        assert h.max() == pytest.approx(0.5)

    def test_count_at_or_below(self):
        h = BucketedHistogram(precision_bits=7)
        for us in (10, 20, 30, 40):
            h.record(us / 1e6)
        assert h.count_at_or_below(25e-6) == 2
        assert h.count_at_or_below(1.0) == 4
        assert h.count_at_or_below(0.0) == 0

    def test_empty_raises(self):
        h = BucketedHistogram()
        with pytest.raises(ValueError):
            h.percentile(50)
        with pytest.raises(ValueError):
            h.mean()
        with pytest.raises(ValueError):
            h.max()
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_clear(self):
        h = BucketedHistogram()
        h.record(0.5)
        h.clear()
        assert h.total == 0
        assert h.bucket_count == 0


class TestRecorderBackends:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            LatencyRecorder(backend="tdigest")

    def test_hdr_backend_counts_without_samples_list(self):
        r = LatencyRecorder(backend="hdr")
        for s in (0.001, 0.002, 0.003):
            r.record(s)
        assert len(r) == 3
        assert r._samples == []  # samples never accumulate
        assert r.mean() == pytest.approx(0.002, rel=0.01)

    def test_summary_shape_matches_exact_backend(self):
        exact = LatencyRecorder()
        hdr = LatencyRecorder(backend="hdr")
        for s in (0.001, 0.004, 0.009, 0.020):
            exact.record(s)
            hdr.record(s)
        assert set(exact.summary()) == set(hdr.summary())
        assert hdr.summary()["count"] == 4
        assert hdr.snapshot()["max"] == pytest.approx(0.020)

    def test_fraction_below_counts_errors_as_misses(self):
        r = LatencyRecorder(backend="hdr")
        r.record(0.001)
        r.record(0.100)
        r.record_error()
        assert r.fraction_below(0.010) == pytest.approx(1 / 3)

    def test_reset(self):
        r = LatencyRecorder(backend="hdr")
        r.record(0.5)
        r.record_error()
        r.reset()
        assert len(r) == 0
        assert r.errors == 0
        assert r.snapshot()["count"] == 0


class TestWindowedUse:
    """Edge cases the windowed SLO tracker leans on: one histogram is
    cleared per window while a second accumulates, so clear/re-record
    cycles and tiny populations must behave exactly."""

    def test_clear_then_record_matches_fresh_histogram(self):
        reused = BucketedHistogram(precision_bits=7)
        for s in (0.001, 0.250, 0.987):
            reused.record(s)
        reused.clear()
        fresh = BucketedHistogram(precision_bits=7)
        for s in (0.010, 0.020, 0.030):
            reused.record(s)
            fresh.record(s)
        for p in (50.0, 95.0, 99.0, 100.0):
            assert reused.percentile(p) == fresh.percentile(p)
        assert reused.total == fresh.total == 3
        assert reused.max() == fresh.max()

    def test_empty_after_clear_raises_like_never_used(self):
        h = BucketedHistogram()
        h.record(0.5)
        h.clear()
        with pytest.raises(ValueError):
            h.percentile(95.0)
        with pytest.raises(ValueError):
            h.max()
        assert h.count_at_or_below(1.0) == 0

    def test_single_sample_all_percentiles_equal(self):
        h = BucketedHistogram(precision_bits=7)
        h.record(0.042)
        values = {h.percentile(p) for p in (0.0001, 50.0, 95.0, 99.0, 99.9)}
        assert len(values) == 1
        # p100 is the exact max, which may differ from the bucket mid.
        assert h.percentile(100.0) == pytest.approx(0.042)

    def test_window_reset_vs_cumulative_snapshot_parity(self):
        """Recording the same stream into a per-window histogram
        (cleared every W samples) and a cumulative one: each window's
        count sums to the cumulative count, and the cumulative
        percentile equals a fresh histogram over all samples."""
        rng = random.Random(13)
        samples = [rng.lognormvariate(-5.0, 1.0) for _ in range(300)]
        window = BucketedHistogram(precision_bits=7)
        cumulative = BucketedHistogram(precision_bits=7)
        window_counts = []
        for i, s in enumerate(samples, 1):
            window.record(s)
            cumulative.record(s)
            if i % 50 == 0:
                window_counts.append(window.total)
                window.clear()
        assert sum(window_counts) == cumulative.total == 300
        reference = BucketedHistogram(precision_bits=7)
        for s in samples:
            reference.record(s)
        for p in (50.0, 95.0, 99.0):
            assert cumulative.percentile(p) == reference.percentile(p)

    def test_error_only_window_recorder_summary(self):
        """A recorder that saw only errors (the error-only-window case)
        keeps a sane summary instead of raising."""
        r = LatencyRecorder(backend="hdr")
        r.record_error()
        r.record_error()
        summary = r.summary()
        assert summary["count"] == 0
        assert r.errors == 2
        assert r.fraction_below(1.0) == 0.0
