"""Tests for open/closed-loop load generators."""

import pytest

from repro.loadgen.generators import ClosedLoopGenerator, OpenLoopGenerator
from repro.loadgen.recorder import LatencyRecorder
from repro.sim.engine import Environment
from repro.sim.rng import RngStreams


def instant_handler(env):
    def handler(request):
        yield env.timeout(0.001)

    return handler


class TestOpenLoop:
    def test_arrival_rate(self):
        env = Environment()
        recorder = LatencyRecorder()
        gen = OpenLoopGenerator(
            env, rate_rps=1000.0, handler=instant_handler(env),
            recorder=recorder, rng=RngStreams(7).stream("a"),
        )
        gen.start()
        env.run(until=5.0)
        # Poisson arrivals: ~5000 +- a few percent.
        assert gen.issued == pytest.approx(5000, rel=0.1)
        assert gen.completed >= gen.issued - 10

    def test_latencies_recorded(self):
        env = Environment()
        recorder = LatencyRecorder()
        gen = OpenLoopGenerator(
            env, 100.0, instant_handler(env), recorder, RngStreams(7).stream("a")
        )
        gen.start()
        env.run(until=1.0)
        assert len(recorder) == gen.completed
        assert recorder.percentile(50) == pytest.approx(0.001)

    def test_timeout_counts_error(self):
        env = Environment()
        recorder = LatencyRecorder()

        def slow_handler(request):
            yield env.timeout(10.0)

        gen = OpenLoopGenerator(
            env, 10.0, slow_handler, recorder, RngStreams(7).stream("a"),
            timeout_seconds=1.0,
        )
        gen.start()
        env.run(until=20.0)
        assert recorder.errors > 0

    def test_invalid_rate(self):
        env = Environment()
        with pytest.raises(ValueError):
            OpenLoopGenerator(
                env, 0.0, instant_handler(env), LatencyRecorder(),
                RngStreams(7).stream("a"),
            )


class TestClosedLoop:
    def test_concurrency_bounds_throughput(self):
        env = Environment()
        recorder = LatencyRecorder()

        def handler(request):
            yield env.timeout(0.1)

        gen = ClosedLoopGenerator(
            env, concurrency=4, handler=handler, recorder=recorder,
            rng=RngStreams(7).stream("a"),
        )
        gen.start()
        env.run(until=10.0)
        # 4 clients x 10 ops/s each = ~400 completions.
        assert gen.completed == pytest.approx(400, rel=0.05)

    def test_think_time_slows_clients(self):
        env = Environment()

        def handler(request):
            yield env.timeout(0.01)

        fast = ClosedLoopGenerator(
            env, 2, handler, LatencyRecorder(), RngStreams(7).stream("a")
        )
        fast.start()
        env.run(until=5.0)

        env2 = Environment()

        def handler2(request):
            yield env2.timeout(0.01)

        slow = ClosedLoopGenerator(
            env2, 2, handler2, LatencyRecorder(), RngStreams(7).stream("a"),
            think_time_seconds=0.1,
        )
        slow.start()
        env2.run(until=5.0)
        assert slow.completed < fast.completed

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            ClosedLoopGenerator(
                env, 0, instant_handler(env), LatencyRecorder(),
                RngStreams(7).stream("a"),
            )
