"""Property tests for mergeable measurement state.

The shard merge's central claim: ``merge(a, b)`` answers every query
exactly as a recorder that saw the union stream (a's samples followed
by b's) would.  These tests check that claim on randomized streams for
both backends, plus the codec round-trip of the mergeable state that
carries recorders between shard processes.
"""

from __future__ import annotations

import json
import math
import random

import pytest

from repro.exec.serialize import dict_from_bytes, dict_to_bytes
from repro.loadgen.recorder import BucketedHistogram, LatencyRecorder
from repro.loadgen.windows import WindowedSloTracker


def _record_stream(backend, stream, errors=0):
    recorder = LatencyRecorder(backend=backend)
    for value in stream:
        recorder.record(value)
    for _ in range(errors):
        recorder.record_error()
    return recorder


def _stream(rng, n):
    return [rng.expovariate(1.0 / 0.002) for _ in range(n)]


QUERIES = (0.0, 25.0, 50.0, 90.0, 95.0, 99.0, 99.9, 100.0)


def _eq(x, y):
    # nan-tolerant exact equality: an inf sample makes interpolated
    # percentiles nan on *both* sides, which still counts as agreement.
    return x == y or (math.isnan(x) and math.isnan(y))


def _assert_equivalent(merged, union, exact_mean=True):
    assert len(merged) == len(union)
    assert merged.errors == union.errors
    if len(union) == 0:
        assert merged.summary() == union.summary()
        return
    for p in QUERIES:
        assert _eq(merged.percentile(p), union.percentile(p))
    if exact_mean:
        assert _eq(merged.mean(), union.mean())
    else:
        # HDR mean() accumulates floats in bucket-dict insertion order;
        # a recorder rebuilt from canonical (bucket-sorted) state can
        # differ from the record-order original by an ulp.  Every
        # execution path merges from the canonical state, so paths
        # still agree with each other bit-for-bit.
        assert merged.mean() == pytest.approx(union.mean(), rel=1e-12)
    assert merged.max() == union.max()
    for threshold in (0.0, 0.001, 0.002, 0.01):
        assert merged.fraction_below(threshold) == union.fraction_below(threshold)


@pytest.mark.parametrize("backend", ["exact", "hdr"])
@pytest.mark.parametrize("seed", range(8))
def test_merge_equals_union_stream(backend, seed):
    rng = random.Random(seed)
    n_a, n_b = rng.randint(1, 400), rng.randint(1, 400)
    err_a, err_b = rng.randint(0, 5), rng.randint(0, 5)
    stream_a, stream_b = _stream(rng, n_a), _stream(rng, n_b)

    a = _record_stream(backend, stream_a, err_a)
    b = _record_stream(backend, stream_b, err_b)
    # Union order matters only for float-sum accumulation (HDR mean):
    # merge folds b's buckets after a's, matching a-then-b recording.
    union = _record_stream(backend, stream_a + stream_b, err_a + err_b)
    merged = a.merge(b)
    _assert_equivalent(merged, union)
    assert merged.summary() == union.summary()


@pytest.mark.parametrize("backend", ["exact", "hdr"])
def test_merge_empty_sides(backend):
    rng = random.Random(42)
    stream = _stream(rng, 50)

    merged = _record_stream(backend, stream).merge(_record_stream(backend, []))
    _assert_equivalent(merged, _record_stream(backend, stream))

    merged = _record_stream(backend, []).merge(_record_stream(backend, stream))
    _assert_equivalent(merged, _record_stream(backend, stream))

    both = _record_stream(backend, [], errors=2).merge(
        _record_stream(backend, [], errors=3)
    )
    assert len(both) == 0 and both.errors == 5
    assert both.summary() == {"count": 0, "errors": 5}


@pytest.mark.parametrize("backend", ["exact", "hdr"])
def test_merge_negative_zero(backend):
    # -0.0 passes the `latency < 0` check on both backends.
    merged = _record_stream(backend, [-0.0, 0.001]).merge(
        _record_stream(backend, [-0.0])
    )
    union = _record_stream(backend, [-0.0, 0.001, -0.0])
    _assert_equivalent(merged, union)


def test_merge_infinity_exact_backend():
    # inf is exact-only: the HDR bucket mapping cannot quantize it.
    inf = math.inf
    merged = _record_stream("exact", [0.001, inf]).merge(
        _record_stream("exact", [0.002])
    )
    union = _record_stream("exact", [0.001, inf, 0.002])
    _assert_equivalent(merged, union)
    assert merged.max() == inf


def test_merge_exact_keeps_samples_sorted_without_resort():
    a = _record_stream("exact", [0.003, 0.001, 0.002])
    b = _record_stream("exact", [0.004, 0.0005])
    merged = a.merge(b)
    assert merged._samples == sorted(merged._samples)
    assert merged._sorted


def test_merge_backend_mismatch_raises():
    with pytest.raises(ValueError, match="backends"):
        LatencyRecorder("exact").merge(LatencyRecorder("hdr"))
    with pytest.raises(ValueError, match="backends"):
        LatencyRecorder("hdr").merge(LatencyRecorder("exact"))


def test_histogram_precision_mismatch_raises():
    with pytest.raises(ValueError, match="precision"):
        BucketedHistogram(precision_bits=7).merge(
            BucketedHistogram(precision_bits=8)
        )


@pytest.mark.parametrize("seed", range(4))
def test_histogram_merge_bucketwise(seed):
    rng = random.Random(seed)
    a, b = BucketedHistogram(), BucketedHistogram()
    union = BucketedHistogram()
    for hist in (a, b):
        for _ in range(rng.randint(1, 300)):
            value = rng.expovariate(1.0 / 0.001)
            hist.record(value)
            union.record(value)
    a.merge(b)
    assert a._counts == union._counts
    assert a.total == union.total
    assert a.max() == union.max()


@pytest.mark.parametrize("backend", ["exact", "hdr"])
@pytest.mark.parametrize("seed", range(4))
def test_mergeable_state_round_trips_both_codecs(backend, seed):
    rng = random.Random(seed)
    recorder = _record_stream(backend, _stream(rng, 200), errors=3)
    state = recorder.mergeable_state()

    # The state must survive both transports losslessly: the JSON text
    # codec (cache entries, cold pool) and the binary codec (warm pool
    # shared-memory ring).
    via_json = json.loads(json.dumps(state))
    via_bytes = dict_from_bytes(dict_to_bytes({"s": state}))["s"]
    for transported in (state, via_json, via_bytes):
        rebuilt = LatencyRecorder.from_state(transported)
        _assert_equivalent(rebuilt, recorder, exact_mean=(backend == "exact"))
        assert rebuilt.mergeable_state() == state


def test_mergeable_state_is_canonical():
    # Two recorders with identical content but different internal
    # insertion order must serialize identically (byte-determinism).
    a = _record_stream("hdr", [0.001, 0.005, 0.002])
    b = _record_stream("hdr", [0.002, 0.001, 0.005])
    assert a.mergeable_state() == b.mergeable_state()
    c = _record_stream("exact", [0.003, 0.001])
    d = _record_stream("exact", [0.001, 0.003])
    assert c.mergeable_state() == d.mergeable_state()


def test_merge_window_series_counts_and_percentiles():
    # Rows: [index, start, end, completions, errors, slo_met,
    #        p50, p95, p99, stall_seconds]
    shard_a = [
        [0.0, 0.0, 1.0, 10.0, 1.0, 9.0, 0.001, 0.002, 0.003, 0.1],
        [1.0, 1.0, 2.0, 20.0, 0.0, 20.0, 0.002, 0.004, 0.006, 0.0],
    ]
    shard_b = [
        [0.0, 0.1, 1.1, 30.0, 2.0, 28.0, 0.003, 0.006, 0.009, 0.2],
    ]
    merged = WindowedSloTracker.merge_window_series([shard_a, shard_b])
    assert len(merged) == 2

    first = merged[0]
    assert first[0] == 0.0
    assert first[1] == 0.0 and first[2] == 1.1  # min(start), max(end)
    assert first[3] == 40.0 and first[4] == 3.0 and first[5] == 37.0
    # Completion-weighted percentiles: (10*x_a + 30*x_b) / 40.
    assert first[6] == pytest.approx((10 * 0.001 + 30 * 0.003) / 40)
    assert first[7] == pytest.approx((10 * 0.002 + 30 * 0.006) / 40)
    assert first[8] == pytest.approx((10 * 0.003 + 30 * 0.009) / 40)
    assert first[9] == pytest.approx(0.3)

    # Window 1 exists only in shard A — it passes through unchanged
    # except for the re-stamped index.
    assert merged[1] == [1.0, 1.0, 2.0, 20.0, 0.0, 20.0, 0.002, 0.004, 0.006, 0.0]


def test_merge_window_series_zero_completions_and_empty():
    empty_window = [[0.0, 0.0, 1.0, 0.0, 5.0, 0.0, 0.0, 0.0, 0.0, 0.0]]
    merged = WindowedSloTracker.merge_window_series([empty_window, empty_window])
    assert merged[0][3] == 0.0
    assert merged[0][4] == 10.0
    assert merged[0][6:9] == [0.0, 0.0, 0.0]
    assert WindowedSloTracker.merge_window_series([]) == []
    assert WindowedSloTracker.merge_window_series([[], []]) == []
