"""WindowedSloTracker: completion-counted windows and SLO signals."""

import pytest

from repro.loadgen.windows import WindowedSloTracker, WindowSnapshot


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_tracker(window=4, slo=0.1, clock=None, **kwargs):
    return WindowedSloTracker(
        window_completions=window,
        slo_latency_s=slo,
        clock=clock or FakeClock(),
        **kwargs,
    )


class TestValidation:
    def test_window_completions_validated(self):
        with pytest.raises(ValueError):
            make_tracker(window=0)

    def test_slo_latency_validated(self):
        with pytest.raises(ValueError):
            make_tracker(slo=0.0)

    def test_negative_stall_rejected(self):
        tracker = make_tracker()
        with pytest.raises(ValueError):
            tracker.add_stall(-1.0)


class TestWindowLifecycle:
    def test_window_closes_on_completion_count(self):
        tracker = make_tracker(window=3)
        for latency in (0.01, 0.02, 0.03):
            tracker.on_complete(latency)
        assert tracker.windows_closed == 1
        window = tracker.last_window
        assert window.completions == 3
        assert window.errors == 0
        assert window.slo_met == 3

    def test_partial_window_stays_open(self):
        tracker = make_tracker(window=10)
        tracker.on_complete(0.01)
        assert tracker.windows_closed == 0
        assert tracker.last_window is None

    def test_errors_count_toward_window_close(self):
        tracker = make_tracker(window=2)
        tracker.on_complete(0.01)
        tracker.on_complete(None)
        assert tracker.windows_closed == 1
        window = tracker.last_window
        assert window.completions == 1
        assert window.errors == 1
        assert window.error_rate == pytest.approx(0.5)

    def test_window_times_come_from_clock(self):
        clock = FakeClock()
        tracker = make_tracker(window=2, clock=clock)
        clock.now = 1.0
        tracker.on_complete(0.01)
        clock.now = 2.0
        tracker.on_complete(0.01)
        window = tracker.last_window
        assert window.start_s == 0.0
        assert window.end_s == 2.0
        # Next window starts where the last one ended.
        clock.now = 3.0
        tracker.on_complete(0.01)
        clock.now = 4.0
        tracker.on_complete(0.01)
        assert tracker.last_window.start_s == 2.0

    def test_observers_called_in_registration_order(self):
        order = []
        tracker = make_tracker(window=1, on_window=lambda w: order.append("a"))
        tracker.subscribe(lambda w: order.append("b"))
        tracker.on_complete(0.01)
        assert order == ["a", "b"]

    def test_snapshot_row_matches_fields(self):
        tracker = make_tracker(window=1)
        tracker.on_complete(0.05)
        row = tracker.last_window.as_row()
        assert len(row) == len(WindowSnapshot.ROW_FIELDS)
        assert all(isinstance(v, float) for v in row)
        as_dict = dict(zip(WindowSnapshot.ROW_FIELDS, row))
        assert as_dict["completions"] == 1.0
        assert as_dict["slo_met"] == 1.0


class TestEdgeWindows:
    def test_error_only_window_reports_zero_percentiles(self):
        tracker = make_tracker(window=3)
        for _ in range(3):
            tracker.on_complete(None)
        window = tracker.last_window
        assert window.completions == 0
        assert window.errors == 3
        assert window.error_rate == 1.0
        assert window.goodput_fraction == 0.0
        assert window.p50 == window.p95 == window.p99 == 0.0

    def test_single_sample_window_percentiles_agree(self):
        tracker = make_tracker(window=1)
        tracker.on_complete(0.042)
        window = tracker.last_window
        # All percentiles of a one-sample window are that sample
        # (to HDR bucket resolution).
        assert window.p50 == window.p95 == window.p99
        assert window.p50 == pytest.approx(0.042, rel=0.01)

    def test_slo_judged_on_raw_latency_not_bucket(self):
        # A latency exactly at the SLO counts as met even if its HDR
        # bucket midpoint lands above the threshold.
        tracker = make_tracker(window=1, slo=0.1)
        tracker.on_complete(0.1)
        assert tracker.last_window.slo_met == 1

    def test_empty_tracker_queries(self):
        tracker = make_tracker()
        assert tracker.cumulative_percentile(95.0) == 0.0
        assert tracker.goodput_fraction() == 0.0
        assert tracker.summary()["windows"] == 0.0
        assert tracker.window_series() == []


class TestStallAttribution:
    def test_stall_lands_in_current_window(self):
        tracker = make_tracker(window=2)
        tracker.add_stall(0.5)
        tracker.on_complete(0.01)
        tracker.on_complete(0.01)
        assert tracker.last_window.stall_seconds == pytest.approx(0.5)
        # The next window starts with no stall time.
        tracker.on_complete(0.01)
        tracker.on_complete(0.01)
        assert tracker.last_window.stall_seconds == 0.0
        assert tracker.stall_seconds == pytest.approx(0.5)


class TestResetAndCumulative:
    def test_reset_clears_counters_and_windows(self):
        tracker = make_tracker(window=2)
        for _ in range(4):
            tracker.on_complete(0.01)
        tracker.add_stall(0.2)
        tracker.on_complete(None)  # partial open window
        tracker.reset()
        assert tracker.windows_closed == 0
        assert tracker.windows == []
        assert tracker.completions == 0
        assert tracker.errors == 0
        assert tracker.stall_seconds == 0.0
        assert tracker.cumulative_percentile(50.0) == 0.0
        # The partial window's state must not leak into the first
        # post-reset window.
        tracker.on_complete(0.01)
        tracker.on_complete(0.01)
        assert tracker.last_window.errors == 0
        assert tracker.last_window.stall_seconds == 0.0

    def test_reset_keeps_observers(self):
        closed = []
        tracker = make_tracker(window=1, on_window=closed.append)
        tracker.on_complete(0.01)
        tracker.reset()
        tracker.on_complete(0.01)
        assert len(closed) == 2

    def test_cumulative_matches_windows(self):
        """Cumulative counters equal the sum over closed windows when
        every window is full (window-reset vs cumulative parity)."""
        tracker = make_tracker(window=5, slo=0.05)
        latencies = [0.01, 0.02, 0.08, 0.04, 0.03] * 4
        for latency in latencies:
            tracker.on_complete(latency)
        assert tracker.windows_closed == 4
        assert sum(w.completions for w in tracker.windows) == tracker.completions
        assert sum(w.slo_met for w in tracker.windows) == tracker.slo_met
        assert sum(w.errors for w in tracker.windows) == tracker.errors

    def test_cumulative_percentile_spans_windows(self):
        """Per-window histograms clear at each close; the cumulative
        histogram must keep every sample."""
        tracker = make_tracker(window=2)
        for latency in (0.001, 0.001, 0.1, 0.1):
            tracker.on_complete(latency)
        # Last window only saw the slow samples ...
        assert tracker.last_window.p50 == pytest.approx(0.1, rel=0.01)
        # ... but the cumulative view spans both windows.
        assert tracker.cumulative_percentile(50.0) == pytest.approx(
            0.001, rel=0.01
        )
        assert tracker.cumulative_percentile(99.0) == pytest.approx(
            0.1, rel=0.01
        )
