"""Tests for trace synthesis, persistence, and replay."""

import pytest

from repro.loadgen.recorder import LatencyRecorder
from repro.loadgen.trace import (
    Trace,
    TraceRecord,
    TraceReplayGenerator,
    synthesize_production_trace,
)
from repro.sim.engine import Environment


class TestTraceRecord:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceRecord(inter_arrival_s=-1.0, request_bytes=1, response_bytes=1)
        with pytest.raises(ValueError):
            TraceRecord(inter_arrival_s=0.1, request_bytes=-1, response_bytes=1)


class TestSynthesis:
    def test_rate_matches_target(self):
        trace = synthesize_production_trace(
            5000, base_rate_rps=100.0, diurnal_amplitude=0.0
        )
        assert trace.mean_rate_rps == pytest.approx(100.0, rel=0.1)

    def test_deterministic(self):
        a = synthesize_production_trace(100, 50.0, seed=3)
        b = synthesize_production_trace(100, 50.0, seed=3)
        assert a.records == b.records

    def test_size_distributions(self):
        trace = synthesize_production_trace(
            3000, 100.0, mean_request_bytes=2000.0, mean_response_bytes=60000.0
        )
        summary = trace.size_summary()
        assert summary["request_mean"] == pytest.approx(2000.0, rel=0.15)
        assert summary["response_mean"] == pytest.approx(60000.0, rel=0.15)
        # Heavy tail: p99 well above the mean.
        assert summary["response_p99"] > 3 * summary["response_mean"]

    def test_endpoint_mix(self):
        trace = synthesize_production_trace(
            4000, 100.0, endpoints={"feed": 0.7, "inbox": 0.3}
        )
        mix = trace.endpoint_mix()
        assert mix["feed"] == pytest.approx(0.7, abs=0.05)
        assert mix["inbox"] == pytest.approx(0.3, abs=0.05)

    def test_diurnal_modulates_rate(self):
        """With a strong diurnal envelope over one period, trough
        inter-arrivals are measurably longer than peak ones."""
        trace = synthesize_production_trace(
            20000, base_rate_rps=100.0, diurnal_amplitude=0.8,
            diurnal_period_s=200.0,
        )
        # Split records into peak (first quarter-period) vs trough.
        clock = 0.0
        peak, trough = [], []
        for record in trace.records:
            clock += record.inter_arrival_s
            phase = (clock % 200.0) / 200.0
            if 0.1 < phase < 0.4:
                peak.append(record.inter_arrival_s)
            elif 0.6 < phase < 0.9:
                trough.append(record.inter_arrival_s)
        assert sum(trough) / len(trough) > 1.5 * sum(peak) / len(peak)

    def test_validation(self):
        with pytest.raises(ValueError):
            synthesize_production_trace(0, 100.0)
        with pytest.raises(ValueError):
            synthesize_production_trace(10, 0.0)
        with pytest.raises(ValueError):
            synthesize_production_trace(10, 100.0, diurnal_amplitude=1.0)


class TestPersistence:
    def test_jsonl_roundtrip(self, tmp_path):
        trace = synthesize_production_trace(50, 100.0, seed=9)
        path = str(tmp_path / "trace.jsonl")
        trace.save_jsonl(path)
        loaded = Trace.load_jsonl(path)
        assert loaded.records == trace.records

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            Trace(records=[])


class TestReplay:
    def test_replay_preserves_order_and_metadata(self):
        env = Environment()
        trace = Trace(
            records=[
                TraceRecord(0.1, 100, 1000, "feed"),
                TraceRecord(0.2, 200, 2000, "inbox"),
                TraceRecord(0.1, 300, 3000, "feed"),
            ]
        )
        seen = []

        def handler(request):
            seen.append(
                (env.now, request.metadata["endpoint"],
                 request.metadata["request_bytes"])
            )
            yield env.timeout(0.001)

        recorder = LatencyRecorder()
        generator = TraceReplayGenerator(
            env, trace, handler, recorder, loop=False
        )
        generator.start()
        env.run()
        assert [e for _, e, _ in seen] == ["feed", "inbox", "feed"]
        assert [b for _, _, b in seen] == [100, 200, 300]
        assert seen[0][0] == pytest.approx(0.1)
        assert seen[1][0] == pytest.approx(0.3)
        assert len(recorder) == 3

    def test_time_scale_compresses(self):
        env = Environment()
        trace = Trace(records=[TraceRecord(10.0, 1, 1)] * 5)

        def handler(request):
            yield env.timeout(0.0)

        generator = TraceReplayGenerator(
            env, trace, handler, LatencyRecorder(), time_scale=0.01, loop=False
        )
        generator.start()
        env.run()
        assert env.now == pytest.approx(0.5)

    def test_loop_replays(self):
        env = Environment()
        trace = Trace(records=[TraceRecord(0.1, 1, 1)])

        def handler(request):
            yield env.timeout(0.0)

        generator = TraceReplayGenerator(
            env, trace, handler, LatencyRecorder(), loop=True
        )
        generator.start()
        env.run(until=1.05)
        assert generator.issued == 10

    def test_validation(self):
        env = Environment()
        trace = Trace(records=[TraceRecord(0.1, 1, 1)])
        with pytest.raises(ValueError):
            TraceReplayGenerator(
                env, trace, lambda r: iter(()), LatencyRecorder(), time_scale=0.0
            )
