"""Tests for the latency recorder."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.loadgen.recorder import LatencyRecorder


class TestPercentiles:
    def test_single_sample(self):
        r = LatencyRecorder()
        r.record(0.5)
        assert r.percentile(50) == 0.5
        assert r.percentile(99) == 0.5

    def test_interpolation(self):
        r = LatencyRecorder()
        for v in (1.0, 2.0, 3.0, 4.0):
            r.record(v)
        assert r.percentile(0) == 1.0
        assert r.percentile(100) == 4.0
        assert r.percentile(50) == pytest.approx(2.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            LatencyRecorder().percentile(50)

    def test_out_of_range_percentile(self):
        r = LatencyRecorder()
        r.record(1.0)
        with pytest.raises(ValueError):
            r.percentile(101)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-0.1)

    @given(samples=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_percentiles_bracket_data(self, samples):
        r = LatencyRecorder()
        for s in samples:
            r.record(s)
        assert r.percentile(0) == pytest.approx(min(samples))
        assert r.percentile(100) == pytest.approx(max(samples))
        eps = 1e-9 * max(1.0, abs(max(samples)))
        assert min(samples) - eps <= r.percentile(95) <= max(samples) + eps

    @given(samples=st.lists(st.floats(0.0, 100.0), min_size=2, max_size=100))
    @settings(max_examples=50)
    def test_percentiles_monotone(self, samples):
        r = LatencyRecorder()
        for s in samples:
            r.record(s)
        values = [r.percentile(p) for p in (10, 50, 90, 99)]
        for a, b in zip(values, values[1:]):
            assert b >= a - 1e-9  # tolerate float interpolation noise


class TestSummary:
    def test_summary_fields(self):
        r = LatencyRecorder()
        for v in (0.1, 0.2, 0.3):
            r.record(v)
        r.record_error()
        s = r.summary()
        assert s["count"] == 3
        assert s["errors"] == 1
        assert s["mean"] == pytest.approx(0.2)
        assert s["max"] == 0.3

    def test_empty_summary(self):
        s = LatencyRecorder().summary()
        assert s == {"count": 0, "errors": 0}

    def test_error_rate(self):
        r = LatencyRecorder()
        r.record(1.0)
        r.record_error()
        assert r.error_rate() == pytest.approx(0.5)
        assert LatencyRecorder().error_rate() == 0.0

    def test_reset(self):
        r = LatencyRecorder()
        r.record(1.0)
        r.record_error()
        r.reset()
        assert len(r) == 0
        assert r.errors == 0


class TestSnapshot:
    def test_error_only_run_never_raises(self):
        r = LatencyRecorder()
        r.record_error()
        r.record_error()
        snap = r.snapshot()
        assert snap["count"] == 0
        assert snap["errors"] == 2
        assert snap["mean"] == 0.0
        assert snap["p95"] == 0.0
        assert snap["max"] == 0.0

    def test_empty_recorder_snapshot(self):
        snap = LatencyRecorder().snapshot()
        assert snap["count"] == 0
        assert snap["errors"] == 0
        assert set(snap) == {
            "count", "errors", "mean", "p50", "p90", "p95", "p99", "max",
        }

    def test_matches_summary_with_samples(self):
        r = LatencyRecorder()
        for v in (0.1, 0.2, 0.3):
            r.record(v)
        r.record_error()
        assert r.snapshot() == r.summary()
