"""End-to-end fault injection: determinism, degradation, reporting."""

import json

import pytest

from repro.core.benchmark import Benchmark
from repro.workloads.base import RunConfig
from repro.workloads.scenarios import apply_fault_scenario

FAST = dict(measure_seconds=0.6, warmup_seconds=0.2, seed=11)


def run_taobench(scenario=""):
    config = RunConfig(sku_name="SKU2", **FAST)
    if scenario:
        config = apply_fault_scenario(config, scenario)
    return Benchmark.by_name("taobench").run(config)


def canonical(report):
    return json.dumps(report.as_dict(), sort_keys=True, default=str)


class TestDeterministicReplay:
    def test_same_seed_same_scenario_byte_identical(self):
        a = run_taobench("brownout")
        b = run_taobench("brownout")
        assert canonical(a) == canonical(b)

    def test_different_scenarios_differ(self):
        assert canonical(run_taobench("brownout")) != canonical(
            run_taobench("flaky_network")
        )


class TestDegradation:
    def test_brownout_degrades_p95(self):
        clean = run_taobench()
        faulted = run_taobench("brownout")
        assert (
            faulted.result.latency["p95"] > clean.result.latency["p95"] * 1.5
        )

    def test_blackout_produces_failures_and_retries(self):
        report = run_taobench("blackout")
        section = report.hook_sections["resilience"]
        assert section["enabled"] is True
        assert section["scenario"] == "blackout"
        assert section["error_rate"] > 0.0
        assert section["retries"] > 0
        assert section["fault_events_applied"] >= 1
        # Goodput excludes failed requests, so it must trail throughput.
        assert 0.0 < section["goodput_fraction"] < 1.0

    def test_flaky_network_hedges(self):
        section = run_taobench("flaky_network").hook_sections["resilience"]
        assert section["net_drops"] > 0
        assert section["hedges"] > 0
        assert section["retry_amplification"] > 1.0


class TestResilienceReporting:
    def test_fault_free_run_reports_disabled(self):
        report = run_taobench()
        assert report.hook_sections["resilience"] == {"enabled": False}

    def test_faulted_section_shape(self):
        section = run_taobench("noisy_neighbor").hook_sections["resilience"]
        for key in (
            "requests",
            "error_rate",
            "retry_amplification",
            "slo_compliance_pct",
            "goodput_rps",
            "slo_latency_ms",
        ):
            assert key in section
        assert section["requests"] > 0
        assert 0.0 <= section["slo_compliance_pct"] <= 100.0
        # The section must be JSON-serializable for report export.
        json.dumps(section, sort_keys=True)

    def test_slo_compliance_drops_under_brownout(self):
        faulted = run_taobench("brownout").hook_sections["resilience"]
        assert faulted["slo_compliance_pct"] < 100.0
