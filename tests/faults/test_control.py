"""The in-run SLO control plane: shed, admit, brown out."""

import dataclasses
import hashlib
import json
import random

import pytest

from repro.core.benchmark import Benchmark
from repro.core.cli import main
from repro.faults.control import (
    DISABLED_CONTROL,
    AdmissionController,
    BrownoutResponder,
    LoadShedder,
    SloControlStats,
    SloControlPolicy,
)
from repro.loadgen.windows import WindowSnapshot
from repro.workloads.base import RunConfig
from repro.workloads.scenarios import (
    FAULT_SCENARIOS,
    apply_fault_scenario,
    fault_scenario_names,
)


def window(index=0, completions=100, errors=0, slo_met=None, p95=0.05):
    """A synthetic closed-window snapshot for driving controllers."""
    if slo_met is None:
        slo_met = completions
    return WindowSnapshot(
        index=index,
        start_s=0.0,
        end_s=0.1,
        completions=completions,
        errors=errors,
        slo_met=slo_met,
        p50=p95 / 2,
        p95=p95,
        p99=p95 * 1.1,
        stall_seconds=0.0,
    )


class TestPolicy:
    def test_defaults_valid(self):
        SloControlPolicy()

    def test_disabled_policy_shared(self):
        assert not DISABLED_CONTROL.enabled
        assert SloControlPolicy.disabled() == DISABLED_CONTROL

    @pytest.mark.parametrize(
        "field,value",
        [
            ("window_completions", 0),
            ("slo_latency_s", 0.0),
            ("shed_percentile", 0.0),
            ("shed_percentile", 101.0),
            ("shed_interval_windows", 0),
            ("shed_step", 0.0),
            ("shed_decay", 1.0),
            ("shed_max_fraction", 1.0),
            ("shed_error_rate_threshold", 1.5),
            ("admit_max_inflight_per_instance", -1),
            ("brownout_relief", 1.0),
            ("brownout_trigger_windows", 0),
            ("brownout_max_steps", 0),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            dataclasses.replace(SloControlPolicy(), **{field: value})

    def test_round_trips_through_dict(self):
        policy = SloControlPolicy(shed_step=0.2, brownout_enabled=True)
        assert SloControlPolicy.from_dict(policy.as_dict()) == policy
        json.dumps(policy.as_dict(), sort_keys=True)


class TestLoadShedder:
    def make(self, **kwargs):
        policy = SloControlPolicy(
            shed_interval_windows=2, shed_step=0.1, shed_decay=0.5, **kwargs
        )
        stats = SloControlStats()
        return LoadShedder(policy, random.Random(7), stats), stats

    def test_admits_everything_at_zero_probability(self):
        shedder, _ = self.make()
        # No RNG entropy is consumed while the probability is zero.
        state = shedder.rng.getstate()
        assert all(shedder.admits() for _ in range(100))
        assert shedder.rng.getstate() == state

    def test_ramp_after_breach_interval(self):
        shedder, stats = self.make()
        shedder.on_window(window(p95=0.5))
        assert shedder.drop_probability == 0.0  # one breach: not yet
        shedder.on_window(window(p95=0.5))
        assert shedder.drop_probability == pytest.approx(0.1)
        assert stats.shed_steps == 1
        assert stats.breached_windows == 2

    def test_decay_on_healthy_window_and_recovery(self):
        shedder, stats = self.make()
        shedder.drop_probability = 0.1
        shedder.on_window(window(p95=0.01))
        assert shedder.drop_probability == pytest.approx(0.05)
        # Decay below the floor snaps to exactly zero (recovered).
        shedder.drop_probability = LoadShedder.FLOOR * 1.5
        shedder.on_window(window(p95=0.01))
        assert shedder.drop_probability == 0.0
        assert stats.shed_recoveries == 1

    def test_error_saturated_window_is_a_breach(self):
        shedder, stats = self.make()
        w = window(completions=10, errors=90, slo_met=10, p95=0.01)
        shedder.on_window(w)
        assert stats.breached_windows == 1

    def test_capped_at_max_fraction(self):
        shedder, _ = self.make(shed_max_fraction=0.3)
        for _ in range(20):
            shedder.on_window(window(p95=0.5))
        assert shedder.drop_probability == pytest.approx(0.3)

    def test_decisions_deterministic_per_seed(self):
        def decisions(seed):
            shedder, _ = self.make()
            shedder.drop_probability = 0.5
            shedder.rng = random.Random(seed)
            return [shedder.admits() for _ in range(200)]

        assert decisions(7) == decisions(7)
        assert decisions(7) != decisions(8)


class TestAdmissionController:
    def test_zero_cap_admits_everything(self):
        ctl = AdmissionController(0, SloControlStats())
        assert all(ctl.try_acquire() is not None for _ in range(1000))

    def test_cap_and_release_round_robin(self):
        stats = SloControlStats()
        ctl = AdmissionController(1, stats)
        ctl.set_instances(2)
        assert ctl.try_acquire() == 0
        assert ctl.try_acquire() == 1
        # Both instances full: the next two probes are refused.
        assert ctl.try_acquire() is None
        assert ctl.try_acquire() is None
        assert stats.admission_rejections == 2
        ctl.release(0)
        # Round-robin continues from where it left off (instance 0 next).
        assert ctl.try_acquire() == 0
        assert ctl.total_inflight == 2

    def test_set_instances_validated(self):
        ctl = AdmissionController(1, SloControlStats())
        with pytest.raises(ValueError):
            ctl.set_instances(0)


class TestBrownoutResponder:
    def make(self, **kwargs):
        policy = SloControlPolicy(
            brownout_enabled=True,
            brownout_relief=0.25,
            brownout_trigger_windows=2,
            brownout_recover_windows=2,
            brownout_max_steps=2,
            **kwargs,
        )
        stats = SloControlStats()
        return BrownoutResponder(policy, stats), stats

    def test_steps_up_and_publishes(self):
        responder, stats = self.make()

        class Target:
            relief_speedup = 1.0

        target = Target()
        responder.attach(target)
        responder.on_window(window(p95=0.5))
        assert target.relief_speedup == 1.0
        responder.on_window(window(p95=0.5))
        assert responder.steps == 1
        assert target.relief_speedup == pytest.approx(1.0 / 0.75)
        assert stats.brownout_activations == 1
        assert responder.adjustments == [(0, pytest.approx(1.0 / 0.75))]

    def test_caps_at_max_steps(self):
        responder, _ = self.make()
        for _ in range(10):
            responder.on_window(window(p95=0.5))
        assert responder.steps == 2

    def test_recovers_after_healthy_windows(self):
        responder, stats = self.make()
        for _ in range(4):
            responder.on_window(window(p95=0.5))
        assert responder.steps == 2
        for _ in range(2):
            responder.on_window(window(p95=0.01))
        assert responder.steps == 1
        assert stats.brownout_recoveries == 1
        # Two more healthy windows finish the recovery.
        for _ in range(2):
            responder.on_window(window(p95=0.01))
        assert responder.steps == 0
        assert stats.brownout_recoveries == 2

    def test_late_attach_picks_up_current_relief(self):
        responder, _ = self.make()
        for _ in range(2):
            responder.on_window(window(p95=0.5))

        class Target:
            relief_speedup = 1.0

        late = Target()
        responder.attach(late)
        assert late.relief_speedup == pytest.approx(responder.relief_factor)


class TestScenarioWiring:
    def test_compound_scenarios_registered(self):
        assert {
            "brownout_degraded_disk",
            "flaky_network_compaction",
            "overload_shed",
        } <= set(fault_scenario_names())

    def test_apply_sets_control_and_load(self):
        config = apply_fault_scenario(RunConfig(), "overload_shed")
        assert config.slo_control.enabled
        assert config.slo_control.shed_enabled
        assert config.load_scale == pytest.approx(2.0)
        assert config.fault_scenario == "overload_shed"

    def test_load_multiplier_compounds_with_load_scale(self):
        config = apply_fault_scenario(
            RunConfig(load_scale=1.5), "overload_shed"
        )
        assert config.load_scale == pytest.approx(3.0)

    def test_plain_scenarios_keep_control_disabled(self):
        config = apply_fault_scenario(RunConfig(), "brownout")
        assert config.slo_control == DISABLED_CONTROL

    def test_scenario_dicts_digest_control_policy(self):
        payload = FAULT_SCENARIOS["overload_shed"].as_dict()
        assert payload["control"]["shed_enabled"]
        assert payload["load_multiplier"] == 2.0
        json.dumps(payload, sort_keys=True)


def _run_report(config):
    return Benchmark.by_name("taobench").run(config)


def _digest(report):
    canon = json.dumps(report.as_dict(), sort_keys=True, default=repr)
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


class TestOverloadShedEndToEnd:
    @pytest.fixture(scope="class")
    def shed_config(self):
        return apply_fault_scenario(
            RunConfig(measure_seconds=1.0, warmup_seconds=0.3),
            "overload_shed",
        )

    @pytest.fixture(scope="class")
    def shed_report(self, shed_config):
        return _run_report(shed_config)

    def test_shedding_raises_goodput_under_overload(
        self, shed_config, shed_report
    ):
        """The acceptance bar: at 2x capacity, completions meeting the
        SLO are strictly more frequent with the shedder on."""
        no_shed = dataclasses.replace(
            shed_config,
            slo_control=dataclasses.replace(
                shed_config.slo_control, shed_enabled=False
            ),
        )
        baseline = _run_report(no_shed)
        shed_goodput = shed_report.result.extra["slo_goodput_rps"]
        base_goodput = baseline.result.extra["slo_goodput_rps"]
        assert shed_goodput > base_goodput
        assert shed_report.result.extra["slo_shed"] > 0
        assert baseline.result.extra["slo_shed"] == 0

    def test_replay_is_byte_identical(self, shed_config, shed_report):
        assert _digest(_run_report(shed_config)) == _digest(shed_report)

    def test_control_section_shape(self, shed_report):
        section = shed_report.hook_sections["slo_control"]
        assert section["scenario"] == "overload_shed"
        assert section["windows"] > 0
        assert section["shed_fraction"] > 0.0
        assert section["window_fields"] == list(WindowSnapshot.ROW_FIELDS)
        rows = section["window_series"]
        assert len(rows) == section["windows"]
        assert all(len(row) == len(WindowSnapshot.ROW_FIELDS) for row in rows)

    def test_disabled_control_reports_stub_section(self):
        report = _run_report(RunConfig(measure_seconds=0.3))
        assert report.hook_sections["slo_control"] == {"enabled": False}


class TestCliFaults:
    def test_faults_list_prints_every_scenario(self, capsys):
        assert main(["faults", "list"]) == 0
        out = capsys.readouterr().out
        for name in fault_scenario_names():
            assert name in out
        assert "CoDel-style shedder" in out or "shedder" in out

    def test_run_accepts_compound_scenario(self):
        parser_args = [
            "run", "-b", "taobench", "--faults", "overload_shed",
        ]
        from repro.core.cli import build_parser

        args = build_parser().parse_args(parser_args)
        assert args.faults == "overload_shed"
