"""Tests for fault specs, schedules, and the scenario registry."""

import pytest

from repro.faults.schedule import (
    EMPTY_SCHEDULE,
    FAULT_KINDS,
    FaultSchedule,
    FaultSpec,
    merge,
)
from repro.workloads.scenarios import (
    FAULT_SCENARIOS,
    apply_fault_scenario,
    fault_scenario_names,
    get_fault_scenario,
)
from repro.workloads.base import RunConfig


class TestFaultSpec:
    def test_valid_spec(self):
        spec = FaultSpec("server_slowdown", 0.1, 0.5, 2.0)
        assert spec.kind == "server_slowdown"
        assert spec.start_frac == 0.1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("meteor_strike", 0.1, 0.5)

    def test_start_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("server_crash", 1.0, 0.1)
        with pytest.raises(ValueError):
            FaultSpec("server_crash", -0.1, 0.1)

    def test_fault_must_end_within_window(self):
        with pytest.raises(ValueError):
            FaultSpec("server_crash", 0.8, 0.5)
        with pytest.raises(ValueError):
            FaultSpec("server_crash", 0.2, 0.0)

    def test_slowdown_magnitude_must_exceed_one(self):
        with pytest.raises(ValueError):
            FaultSpec("server_slowdown", 0.1, 0.2, 0.9)

    def test_fraction_kinds_bounded_below_one(self):
        with pytest.raises(ValueError):
            FaultSpec("freq_throttle", 0.1, 0.2, 1.0)
        with pytest.raises(ValueError):
            FaultSpec("net_loss", 0.1, 0.2, 1.5)

    def test_dict_roundtrip(self):
        spec = FaultSpec("net_latency", 0.25, 0.5, 0.003)
        assert FaultSpec.from_dict(spec.as_dict()) == spec

    def test_all_kinds_constructible(self):
        for kind in FAULT_KINDS:
            multiplier_kind = kind in ("server_slowdown", "disk_degraded")
            magnitude = 1.5 if multiplier_kind else 0.5
            FaultSpec(kind, 0.1, 0.3, magnitude)


class TestFaultSchedule:
    def test_empty_is_falsy(self):
        assert not EMPTY_SCHEDULE
        assert len(EMPTY_SCHEDULE) == 0
        assert bool(FaultSchedule.of(FaultSpec("server_crash", 0.1, 0.2)))

    def test_sorted_by_start(self):
        schedule = FaultSchedule.of(
            FaultSpec("server_crash", 0.5, 0.2),
            FaultSpec("net_loss", 0.1, 0.2, 0.1),
        )
        starts = [f.start_frac for f in schedule.sorted_by_start()]
        assert starts == sorted(starts)

    def test_dict_roundtrip(self):
        schedule = FaultSchedule.of(
            FaultSpec("mem_pressure", 0.2, 0.3, 0.5),
            FaultSpec("net_latency", 0.4, 0.2, 0.001),
        )
        assert FaultSchedule.from_dict(schedule.as_dict()) == schedule

    def test_schedules_hashable(self):
        a = FaultSchedule.of(FaultSpec("server_crash", 0.1, 0.2))
        b = FaultSchedule.of(FaultSpec("server_crash", 0.1, 0.2))
        assert hash(a) == hash(b)
        assert a == b

    def test_merge(self):
        a = FaultSchedule.of(FaultSpec("server_crash", 0.1, 0.2))
        b = FaultSchedule.of(FaultSpec("net_loss", 0.3, 0.2, 0.1))
        merged = merge([a, b])
        assert len(merged) == 2


class TestScenarioRegistry:
    def test_expected_scenarios_present(self):
        assert {"brownout", "blackout", "flaky_network", "noisy_neighbor"} <= set(
            fault_scenario_names()
        )

    def test_every_scenario_well_formed(self):
        for name, scenario in FAULT_SCENARIOS.items():
            assert scenario.name == name
            # Every scenario perturbs the run somehow: a fault schedule,
            # or pure overload (load multiplier + SLO control plane).
            assert scenario.schedule or (
                scenario.load_multiplier != 1.0 and scenario.control.enabled
            )
            assert scenario.policy.enabled
            assert scenario.description
            # as_dict must be JSON-serializable for fingerprinting.
            import json

            json.dumps(scenario.as_dict(), sort_keys=True)

    def test_unknown_scenario_helpful_error(self):
        with pytest.raises(KeyError, match="known scenarios"):
            get_fault_scenario("nope")

    def test_apply_fault_scenario(self):
        config = apply_fault_scenario(RunConfig(), "blackout")
        assert config.fault_scenario == "blackout"
        assert config.faults
        assert config.resilience.enabled

    def test_default_config_fault_free(self):
        config = RunConfig()
        assert not config.faults
        assert not config.resilience.enabled
        assert config.fault_scenario == ""
