"""Unit tests for the injector and the client-side resilience stack."""

import random

import pytest

from repro.faults.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    RetriesExhaustedError,
    ServerUnavailableError,
)
from repro.faults.injector import MIN_FREQ_FRACTION, FaultInjector
from repro.faults.resilience import (
    CircuitBreaker,
    ResiliencePolicy,
    ResilienceStats,
    ServiceClient,
)
from repro.faults.schedule import FaultSchedule, FaultSpec
from repro.oskernel.kernel import get_kernel
from repro.oskernel.scheduler import CpuScheduler
from repro.sim.engine import Environment


def make_scheduler(env, cores=4, freq=2.0):
    return CpuScheduler(
        env=env, logical_cores=cores, freq_ghz=freq, kernel=get_kernel("6.9")
    )


def run_injector(schedule, window=(0.0, 1.0), cores=4, freq=2.0, probe_at=None):
    """Drive a schedule to completion; return (env, scheduler, injector,
    samples) where samples holds scheduler state at each probe time."""
    env = Environment()
    sched = make_scheduler(env, cores=cores, freq=freq)
    injector = FaultInjector(
        env, schedule, sched, random.Random(1), window[0], window[1] - window[0]
    )
    injector.start()
    samples = {}
    if probe_at:

        def probe():
            for t in sorted(probe_at):
                delay = t - env.now
                if delay > 0:
                    yield env.timeout(delay)
                samples[t] = (
                    sched.fault_slowdown,
                    sched.freq_ghz,
                    sched.offline,
                    injector.net_delay_s,
                    injector.net_loss_p,
                )

        env.process(probe())
    env.run(until=window[1] + 0.5)
    return env, sched, injector, samples


class TestFaultInjector:
    def test_slowdown_applied_and_reverted(self):
        schedule = FaultSchedule.of(FaultSpec("server_slowdown", 0.2, 0.4, 2.0))
        _, sched, injector, samples = run_injector(
            schedule, probe_at=[0.1, 0.4, 0.9]
        )
        assert samples[0.1][0] == 1.0
        assert samples[0.4][0] == 2.0
        assert samples[0.9][0] == 1.0
        assert sched.fault_slowdown == 1.0
        assert injector.events_applied == 1

    def test_overlapping_slowdowns_compound(self):
        schedule = FaultSchedule.of(
            FaultSpec("server_slowdown", 0.1, 0.6, 2.0),
            FaultSpec("server_slowdown", 0.3, 0.2, 3.0),
        )
        _, sched, _, samples = run_injector(schedule, probe_at=[0.4, 0.6, 0.9])
        assert samples[0.4][0] == pytest.approx(6.0)
        assert samples[0.6][0] == pytest.approx(2.0)
        assert samples[0.9][0] == 1.0

    def test_freq_throttle_lowers_clock_and_reverts(self):
        schedule = FaultSchedule.of(FaultSpec("freq_throttle", 0.2, 0.4, 0.5))
        _, sched, _, samples = run_injector(schedule, freq=2.0, probe_at=[0.4, 0.9])
        slowdown, freq, *_ = samples[0.4]
        assert freq == pytest.approx(1.0)
        assert slowdown == pytest.approx(2.0)
        assert samples[0.9][1] == pytest.approx(2.0)
        assert sched.fault_slowdown == 1.0

    def test_throttle_floors_at_min_pstate(self):
        schedule = FaultSchedule.of(
            FaultSpec("freq_throttle", 0.1, 0.5, 0.9),
            FaultSpec("freq_throttle", 0.2, 0.4, 0.9),
        )
        _, sched, _, samples = run_injector(schedule, freq=2.0, probe_at=[0.4])
        assert samples[0.4][1] == pytest.approx(MIN_FREQ_FRACTION * 2.0)

    def test_crash_marks_offline_then_restores(self):
        schedule = FaultSchedule.of(FaultSpec("server_crash", 0.3, 0.2))
        _, sched, _, samples = run_injector(schedule, probe_at=[0.2, 0.4, 0.8])
        assert samples[0.2][2] is False
        assert samples[0.4][2] is True
        assert samples[0.8][2] is False

    def test_network_faults_published(self):
        schedule = FaultSchedule.of(
            FaultSpec("net_latency", 0.2, 0.4, 0.005),
            FaultSpec("net_loss", 0.2, 0.4, 0.25),
        )
        _, _, injector, samples = run_injector(schedule, probe_at=[0.4, 0.9])
        assert samples[0.4][3] == pytest.approx(0.005)
        assert samples[0.4][4] == pytest.approx(0.25)
        assert samples[0.9][3] == 0.0
        assert samples[0.9][4] == 0.0

    def test_offline_scheduler_refuses_work(self):
        env = Environment()
        sched = make_scheduler(env)
        sched.offline = True
        caught = []

        def proc():
            try:
                yield from sched.execute(0.001)
            except ServerUnavailableError:
                caught.append(True)

        env.process(proc())
        env.run()
        assert caught == [True]

    def test_log_is_deterministic(self):
        schedule = FaultSchedule.of(
            FaultSpec("server_slowdown", 0.2, 0.3, 1.5),
            FaultSpec("net_loss", 0.1, 0.6, 0.2),
        )
        _, _, a, _ = run_injector(schedule)
        _, _, b, _ = run_injector(schedule)
        assert a.log == b.log
        assert len(a.log) == 4  # two applies + two reverts


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        env = Environment()
        breaker = CircuitBreaker(env, failure_threshold=3, reset_s=1.0)
        assert breaker.allow()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.times_opened == 1

    def test_half_open_probe_then_close(self):
        env = Environment()
        breaker = CircuitBreaker(env, failure_threshold=1, reset_s=0.5)
        breaker.record_failure()
        assert not breaker.allow()
        env.run(until=0.6)  # advance the clock past the reset window
        assert breaker.state == "half_open"
        assert breaker.allow()  # the single probe
        assert not breaker.allow()  # second caller still rejected
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_failure_reopens(self):
        env = Environment()
        breaker = CircuitBreaker(env, failure_threshold=1, reset_s=0.5)
        breaker.record_failure()
        env.run(until=0.6)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"

    def test_zero_threshold_disables(self):
        env = Environment()
        breaker = CircuitBreaker(env, failure_threshold=0, reset_s=0.5)
        for _ in range(100):
            breaker.record_failure()
        assert breaker.allow()


class TestResiliencePolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(max_retries=-1)
        with pytest.raises(ValueError):
            ResiliencePolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            ResiliencePolicy(jitter_frac=1.5)
        with pytest.raises(ValueError):
            ResiliencePolicy(slo_latency_s=0.0)

    def test_dict_roundtrip(self):
        policy = ResiliencePolicy(max_retries=5, hedge_delay_s=0.01)
        assert ResiliencePolicy.from_dict(policy.as_dict()) == policy

    def test_disabled(self):
        assert not ResiliencePolicy.disabled().enabled


def make_client(env, policy, injector=None):
    return ServiceClient(env, policy, random.Random(42), injector=injector)


def run_call(env, client, work):
    """Run one client.call to completion; returns (ok, error)."""
    outcome = {}

    def proc():
        try:
            yield from client.call(work)
        except Exception as exc:
            outcome["error"] = exc
        else:
            outcome["ok"] = True

    env.process(proc())
    env.run()
    return outcome.get("ok", False), outcome.get("error")


class TestServiceClient:
    def test_success_passthrough(self):
        env = Environment()
        client = make_client(env, ResiliencePolicy(deadline_s=1.0))

        def work():
            yield env.timeout(0.01)

        ok, _ = run_call(env, client, work)
        assert ok
        assert client.stats.requests == 1
        assert client.stats.successes == 1
        assert client.stats.attempts == 1
        assert client.stats.retries == 0

    def test_deadline_exceeded_then_retries_exhausted(self):
        env = Environment()
        client = make_client(
            env, ResiliencePolicy(deadline_s=0.05, max_retries=1)
        )

        def slow_work():
            yield env.timeout(10.0)

        ok, error = run_call(env, client, slow_work)
        assert not ok
        assert isinstance(error, RetriesExhaustedError)
        assert isinstance(error.last, DeadlineExceededError)
        assert error.attempts == 2
        assert client.stats.timeouts == 2
        assert client.stats.retries == 1
        assert client.stats.failures == 1

    def test_retry_succeeds_on_second_attempt(self):
        env = Environment()
        client = make_client(
            env, ResiliencePolicy(deadline_s=0.05, max_retries=2)
        )
        calls = []

        def flaky_work():
            calls.append(1)
            # First attempt stalls past the deadline; later ones are fast.
            yield env.timeout(10.0 if len(calls) == 1 else 0.001)

        ok, _ = run_call(env, client, flaky_work)
        assert ok
        assert client.stats.retries == 1
        assert client.stats.successes == 1

    def test_breaker_rejects_after_sustained_failure(self):
        env = Environment()
        client = make_client(
            env,
            ResiliencePolicy(
                deadline_s=0.01,
                max_retries=0,
                breaker_failure_threshold=2,
                breaker_reset_s=1000.0,
            ),
        )

        def slow_work():
            yield env.timeout(10.0)

        run_call(env, client, slow_work)
        run_call(env, client, slow_work)
        ok, error = run_call(env, client, slow_work)
        assert not ok
        assert isinstance(error, CircuitOpenError)
        assert client.stats.breaker_rejections == 1

    def test_hedge_win_counted(self):
        env = Environment()
        client = make_client(
            env,
            ResiliencePolicy(
                deadline_s=10.0, max_retries=0, hedge_delay_s=0.05
            ),
        )
        calls = []

        def work():
            calls.append(1)
            # Primary is slow; the hedge (second call) is fast.
            yield env.timeout(5.0 if len(calls) == 1 else 0.001)

        ok, _ = run_call(env, client, work)
        assert ok
        assert client.stats.hedges == 1
        assert client.stats.hedge_wins == 1
        assert client.stats.attempts == 2

    def test_hedge_not_launched_for_fast_primary(self):
        env = Environment()
        client = make_client(
            env,
            ResiliencePolicy(deadline_s=10.0, hedge_delay_s=0.5),
        )

        def fast_work():
            yield env.timeout(0.001)

        ok, _ = run_call(env, client, fast_work)
        assert ok
        assert client.stats.hedges == 0

    def test_hedge_survives_one_branch_failure(self):
        env = Environment()
        client = make_client(
            env,
            ResiliencePolicy(
                deadline_s=10.0, max_retries=0, hedge_delay_s=0.05
            ),
        )
        calls = []

        def work():
            calls.append(1)
            if len(calls) == 1:
                # Primary dies after the hedge has launched.
                yield env.timeout(0.1)
                raise ServerUnavailableError("primary died")
            yield env.timeout(0.2)

        ok, _ = run_call(env, client, work)
        assert ok
        assert client.stats.hedges == 1
        assert client.stats.hedge_wins == 1

    def test_net_loss_drops_attempts(self):
        env = Environment()
        sched = make_scheduler(env)
        injector = FaultInjector(
            env,
            FaultSchedule.of(FaultSpec("net_loss", 0.0, 0.99, 0.9)),
            sched,
            random.Random(7),
            window_start=0.0,
            window_seconds=1.0,
        )
        injector.start()
        client = make_client(
            env,
            ResiliencePolicy(deadline_s=1.0, max_retries=0),
            injector=injector,
        )

        def work():
            yield env.timeout(0.001)

        failures = 0
        for _ in range(20):
            ok, _ = run_call(env, client, work)
            failures += 0 if ok else 1
        assert client.stats.net_drops > 0
        assert failures == client.stats.net_drops

    def test_backoff_is_deterministic(self):
        def run_once():
            env = Environment()
            client = make_client(
                env,
                ResiliencePolicy(deadline_s=0.01, max_retries=3),
            )

            def slow_work():
                yield env.timeout(10.0)

            run_call(env, client, slow_work)
            return env.now

        assert run_once() == run_once()

    def test_stats_reset(self):
        stats = ResilienceStats(requests=5, retries=2)
        stats.reset()
        assert stats.requests == 0
        assert stats.retries == 0

    def test_stats_as_extra_keys(self):
        extra = ResilienceStats(requests=3, successes=2).as_extra()
        assert extra["resilience_requests"] == 3.0
        assert extra["resilience_successes"] == 2.0
        assert all(k.startswith("resilience_") for k in extra)
