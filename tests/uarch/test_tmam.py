"""Tests for TMAM slot accounting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.uarch.cache_model import MissProfile
from repro.uarch.characteristics import WorkloadCharacteristics
from repro.uarch.tmam import TmamProfile, tmam_from_misses, UOPS_PER_INSTRUCTION


def chars(**overrides):
    params = dict(
        name="w", category="web", code_footprint_kb=500.0,
        branch_per_kinstr=170.0, branch_mispredict_rate=0.03,
        dependency_cpk=40.0,
    )
    params.update(overrides)
    return WorkloadCharacteristics(**params)


def misses(l1i=30.0, l1d=80.0, l2=10.0, llc=5.0):
    return MissProfile(l1i_mpki=l1i, l1d_mpki=l1d, l2_mpki=l2, llc_mpki=llc)


class TestTmamProfile:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            TmamProfile(
                frontend=0.4, bad_speculation=0.1, backend=0.1, retiring=0.1,
                cycles_per_kinstr=1000.0,
            )

    def test_ipc_per_thread(self):
        p = TmamProfile(0.25, 0.25, 0.25, 0.25, cycles_per_kinstr=800.0)
        assert p.ipc_per_thread == pytest.approx(1.25)


class TestTmamFromMisses:
    def test_fractions_sum_to_one(self):
        p = tmam_from_misses(chars(), misses(), 4, memory_cost_cycles=20.0)
        total = p.frontend + p.bad_speculation + p.backend + p.retiring
        assert total == pytest.approx(1.0)

    def test_wider_pipeline_raises_ipc_ceiling(self):
        narrow = tmam_from_misses(chars(), misses(), 4, 20.0)
        wide = tmam_from_misses(chars(), misses(), 6, 20.0)
        assert wide.ipc_per_thread > narrow.ipc_per_thread

    def test_icache_misses_raise_frontend_share(self):
        clean = tmam_from_misses(chars(), misses(l1i=2.0), 4, 20.0)
        dirty = tmam_from_misses(chars(), misses(l1i=60.0), 4, 20.0)
        assert dirty.frontend > clean.frontend
        assert dirty.ipc_per_thread < clean.ipc_per_thread

    def test_memory_cost_raises_backend_share(self):
        fast = tmam_from_misses(chars(), misses(), 4, memory_cost_cycles=10.0)
        slow = tmam_from_misses(chars(), misses(), 4, memory_cost_cycles=100.0)
        assert slow.backend > fast.backend

    def test_efficiency_shrinks_stalls(self):
        old = tmam_from_misses(chars(), misses(), 4, 20.0, uarch_efficiency=1.0)
        new = tmam_from_misses(chars(), misses(), 4, 20.0, uarch_efficiency=1.2)
        assert new.ipc_per_thread > old.ipc_per_thread

    def test_frontend_pathology_scales_with_footprint(self):
        """SKU-B's fetch pathology must hit big-code workloads hardest."""
        small_code = chars(code_footprint_kb=60.0)
        big_code = chars(code_footprint_kb=2000.0)
        m = misses(l1i=30.0)

        def slowdown(c):
            healthy = tmam_from_misses(c, m, 4, 20.0, frontend_multiplier=1.0)
            sick = tmam_from_misses(c, m, 4, 20.0, frontend_multiplier=10.0)
            return healthy.ipc_per_thread / sick.ipc_per_thread

        assert slowdown(big_code) > slowdown(small_code) * 1.5

    def test_retiring_ipc_identity(self):
        """IPC = width x retiring / uops-per-instruction."""
        p = tmam_from_misses(chars(), misses(), 4, 20.0)
        implied = 4 * p.retiring / UOPS_PER_INSTRUCTION
        assert p.ipc_per_thread == pytest.approx(implied, rel=1e-9)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            tmam_from_misses(chars(), misses(), 0, 20.0)
        with pytest.raises(ValueError):
            tmam_from_misses(chars(), misses(), 4, 20.0, uarch_efficiency=0.0)

    @given(
        l1i=st.floats(0.0, 80.0),
        llc=st.floats(0.0, 40.0),
        cost=st.floats(5.0, 150.0),
        width=st.integers(2, 8),
    )
    @settings(max_examples=50, deadline=None)
    def test_profile_always_valid(self, l1i, llc, cost, width):
        m = misses(l1i=l1i, l1d=max(llc, 60.0), l2=max(llc, 8.0), llc=llc)
        p = tmam_from_misses(chars(), m, width, cost)
        for frac in (p.frontend, p.bad_speculation, p.backend, p.retiring):
            assert 0.0 < frac < 1.0 or frac == pytest.approx(0.0)
        assert p.ipc_per_thread > 0
