"""Tests for the memoized fixed-point solver."""

import pytest

from repro.hw.sku import get_sku
from repro.uarch.projection import (
    ProjectionEngine,
    clear_solve_cache,
    solve_cache_stats,
)
from repro.workloads.profiles import BENCHMARK_PROFILES


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_solve_cache()
    yield
    clear_solve_cache()


@pytest.fixture
def chars():
    return BENCHMARK_PROFILES["taobench"]


class TestSolveCache:
    def test_repeat_solve_hits_cache(self, chars):
        engine = ProjectionEngine(get_sku("SKU2"))
        first = engine.solve(chars, cpu_util=0.6)
        assert solve_cache_stats()["entries"] == 1
        second = engine.solve(chars, cpu_util=0.6)
        assert solve_cache_stats()["entries"] == 1
        assert first == second

    def test_quantization_folds_float_noise(self, chars):
        """Inputs within the 1e-6 quantum resolve to one cached state,
        so cross-process float jitter cannot fork results."""
        engine = ProjectionEngine(get_sku("SKU2"))
        a = engine.solve(chars, cpu_util=0.6)
        b = engine.solve(chars, cpu_util=0.6 + 1e-9)
        assert solve_cache_stats()["entries"] == 1
        assert a == b

    def test_distinct_inputs_get_distinct_entries(self, chars):
        engine = ProjectionEngine(get_sku("SKU2"))
        a = engine.solve(chars, cpu_util=0.4)
        b = engine.solve(chars, cpu_util=0.8)
        assert solve_cache_stats()["entries"] == 2
        assert a != b

    def test_engines_on_different_skus_do_not_collide(self, chars):
        small = ProjectionEngine(get_sku("SKU1"))
        large = ProjectionEngine(get_sku("SKU4"))
        a = small.solve(chars, cpu_util=0.6)
        b = large.solve(chars, cpu_util=0.6)
        assert solve_cache_stats()["entries"] == 2
        assert a != b

    def test_cached_result_matches_cold_result(self, chars):
        engine = ProjectionEngine(get_sku("SKU2"))
        warm = engine.solve(chars, cpu_util=0.55, scaling_efficiency=0.9)
        clear_solve_cache()
        cold = engine.solve(chars, cpu_util=0.55, scaling_efficiency=0.9)
        assert warm == cold

    def test_clear_resets(self, chars):
        engine = ProjectionEngine(get_sku("SKU2"))
        engine.solve(chars, cpu_util=0.6)
        clear_solve_cache()
        assert solve_cache_stats()["entries"] == 0
