"""Tests for workload characteristics and tax profiles."""

import pytest

from repro.uarch.characteristics import TaxProfile, WorkloadCharacteristics


def make_chars(**overrides):
    params = dict(
        name="test",
        category="web",
        code_footprint_kb=500.0,
    )
    params.update(overrides)
    return WorkloadCharacteristics(**params)


class TestTaxProfile:
    def test_default_is_all_app(self):
        profile = TaxProfile()
        assert profile.app_fraction == pytest.approx(1.0)
        assert profile.tax_fraction == pytest.approx(0.0)

    def test_app_vs_tax_split(self):
        profile = TaxProfile({"app:logic": 0.6, "rpc": 0.25, "compression": 0.15})
        assert profile.app_fraction == pytest.approx(0.6)
        assert profile.tax_fraction == pytest.approx(0.4)
        assert profile.share("rpc") == pytest.approx(0.25)
        assert profile.share("missing") == 0.0

    def test_shares_must_sum_to_one(self):
        with pytest.raises(ValueError):
            TaxProfile({"app:x": 0.5, "rpc": 0.2})

    def test_negative_share_rejected(self):
        with pytest.raises(ValueError):
            TaxProfile({"app:x": 1.2, "rpc": -0.2})

    def test_scaled_tax_preserves_sum(self):
        profile = TaxProfile({"app:logic": 0.6, "rpc": 0.3, "hashing": 0.1})
        scaled = profile.scaled_tax(0.5)
        assert sum(scaled.shares.values()) == pytest.approx(1.0)
        assert scaled.tax_fraction == pytest.approx(0.2)
        assert scaled.app_fraction == pytest.approx(0.8)

    def test_scaled_tax_to_zero(self):
        profile = TaxProfile({"app:logic": 0.6, "rpc": 0.4})
        scaled = profile.scaled_tax(0.0)
        assert scaled.tax_fraction == pytest.approx(0.0)

    def test_scaled_tax_overflow_rejected(self):
        profile = TaxProfile({"app:logic": 0.2, "rpc": 0.8})
        with pytest.raises(ValueError):
            profile.scaled_tax(1.5)


class TestWorkloadCharacteristics:
    def test_defaults_valid(self):
        chars = make_chars()
        assert chars.code_footprint_kb == 500.0

    @pytest.mark.parametrize(
        "field,value",
        [
            ("code_footprint_kb", 0.0),
            ("data_reuse_kb", -1.0),
            ("branch_mispredict_rate", 1.5),
            ("kernel_frac", -0.1),
            ("locality_beta", 0.0),
            ("switches_per_kinstr", -0.5),
            ("frontend_overlap", 0.0),
            ("frontend_extra_cpk", -1.0),
            ("instructions_per_request", 0.0),
        ],
    )
    def test_field_validation(self, field, value):
        with pytest.raises(ValueError):
            make_chars(**{field: value})

    def test_evolve_replaces_fields(self):
        chars = make_chars()
        evolved = chars.evolve(kernel_frac=0.3, name="evolved")
        assert evolved.kernel_frac == 0.3
        assert evolved.name == "evolved"
        assert chars.kernel_frac != 0.3 or chars.name == "test"

    def test_evolve_validates(self):
        with pytest.raises(ValueError):
            make_chars().evolve(kernel_frac=2.0)
