"""Tests for the vendor-guidance sensitivity sweep."""

import pytest

from repro.hw.sku import get_sku
from repro.uarch.sensitivity import (
    STANDARD_KNOBS,
    sensitivity_sweep,
    top_knob_per_workload,
)
from repro.workloads.profiles import BENCHMARK_PROFILES
from repro.workloads.targets import BENCHMARK_TARGETS


@pytest.fixture(scope="module")
def sweep():
    workloads = {
        name: BENCHMARK_PROFILES[name]
        for name in ("mediawiki", "sparkbench", "taobench", "feedsim")
    }
    utils = {
        name: BENCHMARK_TARGETS[name].cpu_util for name in workloads
    }
    return sensitivity_sweep(get_sku("SKU2"), workloads, utils, factor=1.25)


class TestSweep:
    def test_covers_all_knob_workload_pairs(self, sweep):
        assert len(sweep) == 4 * len(STANDARD_KNOBS)

    def test_improvements_never_hurt(self, sweep):
        for result in sweep:
            assert result.relative_gain > -0.01, (result.workload, result.knob)

    def test_frequency_helps_everyone(self, sweep):
        for result in sweep:
            if result.knob == "frequency":
                assert result.relative_gain > 0.05

    def test_caching_wants_memory_latency_most(self, sweep):
        """TAO-style caching chases pointers with low memory-level
        parallelism, so latency is its binding knob — unlike Spark's
        prefetch-friendly streaming."""
        gains = {
            (r.workload, r.knob): r.relative_gain for r in sweep
        }
        assert gains[("taobench", "memory_latency")] > 3 * gains[
            ("sparkbench", "memory_latency")
        ]
        # And it dwarfs taobench's own bandwidth sensitivity.
        assert gains[("taobench", "memory_latency")] > 3 * gains[
            ("taobench", "memory_bandwidth")
        ]

    def test_spark_wants_bandwidth_more_than_web_does(self, sweep):
        gains = {(r.workload, r.knob): r.relative_gain for r in sweep}
        assert gains[("sparkbench", "memory_bandwidth")] >= gains[
            ("mediawiki", "memory_bandwidth")
        ] - 0.005

    def test_replacement_quality_echoes_fig15(self, sweep):
        """Better replacement helps web by small single digits — the
        Figure 15 magnitude."""
        gains = {(r.workload, r.knob): r.relative_gain for r in sweep}
        assert 0.005 < gains[("mediawiki", "replacement_quality")] < 0.08

    def test_top_knob_table(self, sweep):
        table = top_knob_per_workload(sweep)
        assert set(table) == {"mediawiki", "sparkbench", "taobench", "feedsim"}
        assert all(knob in STANDARD_KNOBS for knob in table.values())

    def test_factor_validation(self):
        with pytest.raises(ValueError):
            sensitivity_sweep(get_sku("SKU2"), {}, {}, factor=1.0)
