"""Tests for the closed-form calibration inversion."""

import pytest

from repro.uarch.calibrate import (
    FidelityTargets,
    StructuralParams,
    calibrate,
    verify_roundtrip,
)
from repro.workloads.targets import (
    BENCHMARK_TARGETS,
    PRODUCTION_TARGETS,
    SPEC2006_TARGETS,
    SPEC2017_TARGETS,
)
from repro.workloads.profiles import (
    BENCHMARK_PROFILES,
    PRODUCTION_PROFILES,
    SPEC2017_PROFILES,
)
from repro.workloads.spec import SPEC2006_PROFILES


def _all_pairs():
    pairs = []
    for targets, profiles in (
        (BENCHMARK_TARGETS, BENCHMARK_PROFILES),
        (PRODUCTION_TARGETS, PRODUCTION_PROFILES),
        (SPEC2017_TARGETS, SPEC2017_PROFILES),
        (SPEC2006_TARGETS, SPEC2006_PROFILES),
    ):
        for name in targets:
            pairs.append((targets[name], profiles[name]))
    return pairs


class TestRoundTrip:
    """Every calibrated profile must reproduce its published targets
    when run forward through the model on the reference SKU."""

    @pytest.mark.parametrize(
        "targets,profile", _all_pairs(), ids=lambda x: getattr(x, "name", "")
    )
    def test_forward_model_matches_targets(self, targets, profile):
        errors = verify_roundtrip(targets, profile, tolerance=0.13)
        assert errors["l1i_mpki"] < 0.13
        assert errors["freq_ghz"] < 0.13


class TestFidelityTargets:
    def test_tmam_sum_validation(self):
        with pytest.raises(ValueError):
            FidelityTargets(
                name="bad", category="web",
                frontend=0.5, bad_speculation=0.5, backend=0.5, retiring=0.5,
                l1i_mpki=10, membw_gbps=10, cpu_util=0.9, sys_util=0.1,
                freq_ghz=2.0,
            )

    def test_sys_util_bound(self):
        with pytest.raises(ValueError):
            FidelityTargets(
                name="bad", category="web",
                frontend=0.25, bad_speculation=0.25, backend=0.25, retiring=0.25,
                l1i_mpki=10, membw_gbps=10, cpu_util=0.5, sys_util=0.6,
                freq_ghz=2.0,
            )


class TestCalibrateMechanics:
    def make(self, **target_overrides):
        base = dict(
            name="synthetic", category="web",
            frontend=0.35, bad_speculation=0.10, backend=0.20, retiring=0.35,
            l1i_mpki=30.0, membw_gbps=25.0, cpu_util=0.95, sys_util=0.10,
            freq_ghz=1.95,
        )
        base.update(target_overrides)
        return FidelityTargets(**base)

    def test_switch_rate_scaled_back_when_overshooting(self):
        """A declared switch rate that alone exceeds the L1I target is
        reduced so the footprint term keeps a share."""
        targets = self.make(l1i_mpki=20.0)
        structure = StructuralParams(
            instructions_per_request=1e8, switches_per_kinstr=5.0
        )
        chars = calibrate(targets, structure)
        assert chars.switches_per_kinstr < 5.0
        assert chars.code_footprint_kb >= 1.0

    def test_kernel_frac_derived_from_utils(self):
        targets = self.make(cpu_util=0.80, sys_util=0.20)
        chars = calibrate(targets, StructuralParams(instructions_per_request=1e8))
        assert chars.kernel_frac == pytest.approx(0.25)

    def test_higher_membw_target_means_poorer_locality(self):
        structure = StructuralParams(instructions_per_request=1e8)
        low = calibrate(self.make(membw_gbps=10.0), structure)
        high = calibrate(self.make(membw_gbps=40.0), structure)
        # A larger reuse scale means poorer locality -> more misses.
        assert high.data_reuse_kb > low.data_reuse_kb

    def test_mlp_solved_within_bounds(self):
        chars = calibrate(
            self.make(), StructuralParams(instructions_per_request=1e8)
        )
        assert 1.0 <= chars.memory_level_parallelism <= 64.0
