"""Tests for the steady-state projection engine."""

import pytest

from repro.hw.sku import get_sku
from repro.uarch.characteristics import WorkloadCharacteristics
from repro.uarch.projection import ProjectionEngine


def chars(**overrides):
    params = dict(
        name="w", category="web", code_footprint_kb=800.0,
        mem_refs_per_kinstr=350.0, data_reuse_kb=8.0, locality_beta=0.55,
        branch_mispredict_rate=0.03, dependency_cpk=40.0,
        kernel_frac=0.10, instructions_per_request=2e8,
        network_bytes_per_request=50_000.0,
    )
    params.update(overrides)
    return WorkloadCharacteristics(**params)


class TestSolve:
    def setup_method(self):
        self.engine = ProjectionEngine(get_sku("SKU2"))

    def test_state_fields_consistent(self):
        state = self.engine.solve(chars(), cpu_util=0.9)
        assert state.sku == "SKU2"
        assert state.instructions_per_second > 0
        assert state.requests_per_second == pytest.approx(
            state.instructions_per_second / 2e8
        )
        assert 0 < state.memory_bandwidth_fraction <= 1.0
        assert state.power_watts == pytest.approx(
            state.power.total * 400.0
        )

    def test_util_scales_throughput(self):
        low = self.engine.solve(chars(), cpu_util=0.4)
        high = self.engine.solve(chars(), cpu_util=0.9)
        assert high.instructions_per_second > low.instructions_per_second

    def test_scaling_efficiency_scales_throughput(self):
        perfect = self.engine.solve(chars(), 0.9, scaling_efficiency=1.0)
        lossy = self.engine.solve(chars(), 0.9, scaling_efficiency=0.7)
        # Slightly above exactly-proportional because the lower rate
        # relieves memory-bandwidth contention (higher IPC).
        assert lossy.instructions_per_second < perfect.instructions_per_second
        assert lossy.instructions_per_second >= 0.7 * perfect.instructions_per_second

    def test_bandwidth_never_exceeds_peak(self):
        hungry = chars(
            data_reuse_kb=100_000.0, locality_beta=0.2, mem_refs_per_kinstr=500.0
        )
        state = self.engine.solve(hungry, cpu_util=1.0)
        assert state.memory_bandwidth_gbps <= get_sku("SKU2").memory.peak_bw_gbps

    def test_network_util_estimated_when_absent(self):
        state = self.engine.solve(chars(), cpu_util=0.9)
        # 25 Gbps NIC; the estimate must be a valid fraction.
        assert 0.0 <= state.power.soc  # soc power consumed the estimate
        explicit = self.engine.solve(chars(), cpu_util=0.9, network_util=0.9)
        assert explicit.power.soc >= state.power.soc

    def test_input_validation(self):
        with pytest.raises(ValueError):
            self.engine.solve(chars(), cpu_util=0.0)
        with pytest.raises(ValueError):
            self.engine.solve(chars(), cpu_util=0.5, scaling_efficiency=1.5)

    def test_perf_per_watt(self):
        state = self.engine.solve(chars(), cpu_util=0.9)
        assert state.perf_per_watt() == pytest.approx(
            state.requests_per_second / state.power_watts
        )


class TestCrossSku:
    def test_bigger_sku_more_throughput(self):
        c = chars()
        small = ProjectionEngine(get_sku("SKU1")).solve(c, 0.9)
        large = ProjectionEngine(get_sku("SKU4")).solve(c, 0.9)
        assert large.instructions_per_second > 2 * small.instructions_per_second

    def test_replacement_quality_improves_throughput(self):
        """The Figure 15 experiment: better cache replacement -> fewer
        misses -> higher IPC -> more throughput."""
        from dataclasses import replace

        sku = get_sku("SKU2")
        improved_cpu = replace(
            sku.cpu, caches=sku.cpu.caches.with_replacement_quality(1.56)
        )
        improved_sku = replace(sku, cpu=improved_cpu)
        c = chars()
        base = ProjectionEngine(sku).solve(c, 0.95)
        better = ProjectionEngine(improved_sku).solve(c, 0.95)
        assert better.misses.l1i_mpki < base.misses.l1i_mpki
        assert better.ipc_per_physical_core > base.ipc_per_physical_core
        assert better.instructions_per_second > base.instructions_per_second
