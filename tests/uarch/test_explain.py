"""Tests for the cycle-breakdown explainer."""

import pytest

from repro.hw.sku import get_sku
from repro.uarch.explain import explain_state
from repro.workloads.profiles import BENCHMARK_PROFILES, SPEC2017_PROFILES
from repro.workloads.targets import BENCHMARK_TARGETS


class TestExplain:
    @pytest.mark.parametrize("name", sorted(BENCHMARK_PROFILES))
    def test_contributors_sum_to_total(self, name):
        chars = BENCHMARK_PROFILES[name]
        util = BENCHMARK_TARGETS[name].cpu_util
        breakdown = explain_state(chars, get_sku("SKU2"), cpu_util=util)
        assert sum(breakdown.contributors.values()) == pytest.approx(
            breakdown.total_cpk, rel=0.02
        )
        assert all(v >= 0 for v in breakdown.contributors.values())

    def test_web_dominated_by_frontend_terms(self):
        breakdown = explain_state(
            BENCHMARK_PROFILES["mediawiki"], get_sku("SKU2"), cpu_util=0.95
        )
        shares = breakdown.shares()
        frontend = shares["L1I miss bubbles"] + shares["decode/ITLB"]
        assert frontend > shares["DRAM stalls"]
        assert frontend > 0.25

    def test_mcf_dominated_by_dram(self):
        breakdown = explain_state(
            SPEC2017_PROFILES["505.mcf"], get_sku("SKU2"), cpu_util=1.0
        )
        assert breakdown.ranked()[0] == "DRAM stalls"

    def test_spark_dominated_by_issue_limit(self):
        """High-IPC Spark spends most slots actually retiring."""
        breakdown = explain_state(
            BENCHMARK_PROFILES["sparkbench"], get_sku("SKU2"), cpu_util=0.73
        )
        assert breakdown.ranked()[0] == "issue limit"

    def test_render_is_readable(self):
        breakdown = explain_state(
            BENCHMARK_PROFILES["taobench"], get_sku("SKU2"), cpu_util=0.86
        )
        text = breakdown.render()
        assert "taobench on SKU2" in text
        assert "L1I miss bubbles" in text
        assert text.count("\n") == len(breakdown.contributors)
