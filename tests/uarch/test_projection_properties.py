"""Property-based invariants of the projection engine across SKUs.

Whatever the workload vector, the model must produce physically
sensible outputs on every modeled machine: valid TMAM fractions,
bandwidth within the memory system's peak, frequency within the DVFS
envelope, positive throughput, and power within the designed envelope.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.sku import SKU_REGISTRY, get_sku
from repro.uarch.characteristics import WorkloadCharacteristics
from repro.uarch.projection import ProjectionEngine

CHAR_STRATEGY = st.builds(
    WorkloadCharacteristics,
    name=st.just("property"),
    category=st.just("synthetic"),
    code_footprint_kb=st.floats(1.0, 8000.0),
    switches_per_kinstr=st.floats(0.0, 3.0),
    mem_refs_per_kinstr=st.floats(10.0, 600.0),
    data_reuse_kb=st.floats(0.001, 100_000.0),
    locality_beta=st.floats(0.1, 1.5),
    memory_level_parallelism=st.floats(1.0, 64.0),
    branch_per_kinstr=st.floats(20.0, 400.0),
    branch_mispredict_rate=st.floats(0.0, 0.2),
    dependency_cpk=st.floats(0.0, 800.0),
    vector_intensity=st.floats(0.0, 1.0),
    kernel_frac=st.floats(0.0, 0.6),
    instructions_per_request=st.floats(1e4, 1e10),
)


class TestProjectionInvariants:
    @given(
        chars=CHAR_STRATEGY,
        sku_name=st.sampled_from(sorted(SKU_REGISTRY)),
        util=st.floats(0.05, 1.0),
    )
    @settings(max_examples=120, deadline=None)
    def test_physical_plausibility(self, chars, sku_name, util):
        sku = get_sku(sku_name)
        state = ProjectionEngine(sku).solve(chars, cpu_util=util)

        # TMAM is a valid partition of the slots.
        tmam = state.tmam
        total = tmam.frontend + tmam.bad_speculation + tmam.backend + tmam.retiring
        assert total == pytest.approx(1.0)
        for fraction in (tmam.frontend, tmam.bad_speculation, tmam.backend,
                         tmam.retiring):
            assert 0.0 <= fraction <= 1.0

        # IPC bounded by issue width x SMT boost.
        assert 0.0 < state.ipc_per_physical_core <= sku.cpu.pipeline_width * 1.5

        # Frequency within the DVFS envelope.
        assert sku.cpu.base_freq_ghz <= state.effective_freq_ghz
        assert state.effective_freq_ghz <= sku.cpu.max_freq_ghz

        # Bandwidth within the memory system's ceiling.
        assert 0.0 <= state.memory_bandwidth_gbps <= sku.memory.peak_bw_gbps
        assert 0.0 <= state.memory_bandwidth_fraction <= 1.0

        # Power within the designed envelope.
        assert 0.0 < state.power.total <= 1.0 + 1e-9
        assert 0.0 < state.power_watts <= sku.designed_power_w * (1 + 1e-9)

        # Throughput positive and consistent with the request size.
        assert state.instructions_per_second > 0
        assert state.requests_per_second == pytest.approx(
            state.instructions_per_second / chars.instructions_per_request
        )

    @given(chars=CHAR_STRATEGY)
    @settings(max_examples=40, deadline=None)
    def test_utilization_monotone(self, chars):
        engine = ProjectionEngine(get_sku("SKU2"))
        low = engine.solve(chars, cpu_util=0.3)
        high = engine.solve(chars, cpu_util=0.9)
        assert high.instructions_per_second >= low.instructions_per_second

    @given(chars=CHAR_STRATEGY, util=st.floats(0.1, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_deterministic(self, chars, util):
        engine = ProjectionEngine(get_sku("SKU3"))
        a = engine.solve(chars, cpu_util=util)
        b = engine.solve(chars, cpu_util=util)
        assert a.instructions_per_second == b.instructions_per_second
        assert a.power_watts == b.power_watts
