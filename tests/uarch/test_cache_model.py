"""Tests for the cache miss-rate model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.cache import standard_x86_hierarchy
from repro.uarch.cache_model import CacheMissModel, MissProfile
from repro.uarch.characteristics import WorkloadCharacteristics


def chars(**overrides):
    params = dict(
        name="w", category="web", code_footprint_kb=500.0,
        mem_refs_per_kinstr=350.0, data_reuse_kb=16.0, locality_beta=0.55,
    )
    params.update(overrides)
    return WorkloadCharacteristics(**params)


class TestMissProfile:
    def test_hierarchy_monotonicity_enforced(self):
        with pytest.raises(ValueError):
            MissProfile(l1i_mpki=10, l1d_mpki=5, l2_mpki=8, llc_mpki=2)

    def test_negative_l1i_rejected(self):
        with pytest.raises(ValueError):
            MissProfile(l1i_mpki=-1, l1d_mpki=5, l2_mpki=3, llc_mpki=1)


class TestL1iModel:
    def test_bigger_footprint_more_misses(self):
        model = CacheMissModel(standard_x86_hierarchy())
        small = model.l1i_mpki(chars(code_footprint_kb=50))
        large = model.l1i_mpki(chars(code_footprint_kb=2000))
        assert large > small

    def test_context_switches_add_misses(self):
        model = CacheMissModel(standard_x86_hierarchy())
        calm = model.l1i_mpki(chars(switches_per_kinstr=0.0))
        thrashy = model.l1i_mpki(chars(switches_per_kinstr=1.5))
        assert thrashy > calm + 30  # 25 misses per switch

    def test_bigger_l1i_fewer_misses(self):
        small = CacheMissModel(standard_x86_hierarchy(l1i_kb=32))
        big = CacheMissModel(standard_x86_hierarchy(l1i_kb=128))
        c = chars(code_footprint_kb=1000)
        assert big.l1i_mpki(c) < small.l1i_mpki(c)

    def test_replacement_quality_reduces_misses(self):
        """The Section 5.2 vendor-optimization mechanism."""
        base = CacheMissModel(standard_x86_hierarchy())
        improved = CacheMissModel(
            standard_x86_hierarchy().with_replacement_quality(1.56)
        )
        c = chars()
        reduction = 1.0 - improved.l1i_mpki(c) / base.l1i_mpki(c)
        assert reduction == pytest.approx(0.36, abs=0.01)


class TestDataSideModel:
    def test_profile_monotone_down_hierarchy(self):
        model = CacheMissModel(standard_x86_hierarchy(), active_cores=26)
        p = model.profile(chars())
        assert p.l1d_mpki >= p.l2_mpki >= p.llc_mpki >= 0

    def test_more_active_cores_more_llc_misses(self):
        c = chars(data_reuse_kb=500.0)
        few = CacheMissModel(standard_x86_hierarchy(), active_cores=4).profile(c)
        many = CacheMissModel(standard_x86_hierarchy(), active_cores=32).profile(c)
        assert many.llc_mpki > few.llc_mpki

    def test_invalid_active_cores(self):
        with pytest.raises(ValueError):
            CacheMissModel(standard_x86_hierarchy(), active_cores=0)

    @given(
        reuse=st.floats(0.1, 10000.0),
        beta=st.floats(0.1, 1.5),
        refs=st.floats(10.0, 600.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_profile_always_valid(self, reuse, beta, refs):
        model = CacheMissModel(standard_x86_hierarchy(), active_cores=26)
        p = model.profile(
            chars(data_reuse_kb=reuse, locality_beta=beta, mem_refs_per_kinstr=refs)
        )
        assert 0 <= p.llc_mpki <= p.l2_mpki <= p.l1d_mpki <= refs

    @given(size_small=st.floats(8.0, 64.0), size_big=st.floats(65.0, 1024.0))
    @settings(max_examples=30, deadline=None)
    def test_miss_ratio_monotone_in_cache_size(self, size_small, size_big):
        model = CacheMissModel(standard_x86_hierarchy())
        c = chars()
        assert model.miss_ratio(size_big, c) <= model.miss_ratio(size_small, c)
