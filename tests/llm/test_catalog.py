"""The scenario catalog: shape validation and lookup semantics."""

import pytest

from repro.llm.catalog import CATALOG, LlmMix, get_mix, mix_names


class TestCatalog:
    def test_expected_mixes_present(self):
        assert set(CATALOG) == {
            "chat", "codegen", "rag_summarize", "long_reasoning",
        }

    def test_mix_names_sorted(self):
        assert list(mix_names()) == sorted(CATALOG)

    def test_get_mix_roundtrip(self):
        for name in mix_names():
            assert get_mix(name).name == name

    def test_get_mix_unknown_is_helpful(self):
        with pytest.raises(KeyError, match="chat"):
            get_mix("nope")

    def test_every_mix_is_well_formed(self):
        for mix in CATALOG.values():
            assert mix.prompt_tokens_mean > 0
            assert mix.output_tokens_mean > 0
            assert 1 <= mix.min_turns <= mix.max_turns
            assert 0.0 <= mix.turn_continue_prob < 1.0
            assert 0.0 <= mix.prefix_share <= 1.0
            assert mix.prefix_groups >= 1
            assert mix.description

    def test_expected_turns_bounds(self):
        for mix in CATALOG.values():
            expected = mix.expected_turns
            assert mix.min_turns <= expected <= mix.max_turns

    def test_expected_turns_single_turn_mix(self):
        mix = LlmMix(
            name="x", description="d",
            prompt_tokens_mean=10, prompt_tokens_cv=1,
            output_tokens_mean=10, output_tokens_cv=1,
            min_turns=1, max_turns=1, turn_continue_prob=0.0,
            think_time_mean_s=0.0, prefix_share=0.0, prefix_groups=1,
            prefix_tokens_mean=1, prefix_tokens_cv=1,
        )
        assert mix.expected_turns == 1.0

    def test_validation_rejects_bad_shapes(self):
        base = dict(
            name="x", description="d",
            prompt_tokens_mean=10.0, prompt_tokens_cv=1.0,
            output_tokens_mean=10.0, output_tokens_cv=1.0,
            min_turns=1, max_turns=2, turn_continue_prob=0.5,
            think_time_mean_s=0.0, prefix_share=0.5, prefix_groups=2,
            prefix_tokens_mean=5.0, prefix_tokens_cv=0.5,
        )
        for bad in (
            {"prompt_tokens_mean": 0.0},
            {"output_tokens_cv": -1.0},
            {"min_turns": 0},
            {"min_turns": 3},  # > max_turns
            {"turn_continue_prob": 1.0},
            {"think_time_mean_s": -0.1},
            {"prefix_share": 1.5},
            {"prefix_groups": 0},
        ):
            with pytest.raises(ValueError):
                LlmMix(**{**base, **bad})

    def test_long_reasoning_is_decode_heavy(self):
        # The KV-pressure mix must generate more than it reads.
        mix = get_mix("long_reasoning")
        assert mix.output_tokens_mean > mix.prompt_tokens_mean

    def test_rag_is_prefill_heavy(self):
        mix = get_mix("rag_summarize")
        assert mix.prompt_tokens_mean > 4 * mix.output_tokens_mean
