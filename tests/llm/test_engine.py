"""The continuous-batching engine: KV ledger, preemption, prefix cache."""

import pytest

from repro.llm.catalog import get_mix
from repro.llm.engine import (
    EngineParams,
    EngineStats,
    KvLedger,
    LlmReplica,
    Sequence,
    expected_turn_instructions,
)
from repro.uarch.characteristics import WorkloadCharacteristics
from repro.workloads.base import RunConfig
from repro.workloads.profiles import BENCHMARK_PROFILES
from repro.workloads.runner import BenchmarkHarness


def _harness():
    chars = BENCHMARK_PROFILES["llmbench"]
    return BenchmarkHarness(RunConfig(), chars)


def _run_sequences(params, specs, until=60.0):
    """Submit (prompt, output) pairs to one replica; run to completion."""
    harness = _harness()
    replica = LlmReplica(harness, params)
    done = []
    for index, (prompt, output) in enumerate(specs):
        seq = Sequence(seq_id=index, prompt_tokens=prompt, output_tokens=output)
        done.append(replica.submit(seq))

    def waiter():
        for event in done:
            yield event
        harness.env.stop()

    harness.env.process(waiter())
    harness.env.run(until=until)
    return replica


class TestEngineParams:
    def test_defaults_valid(self):
        params = EngineParams()
        assert params.kv_budget_tokens == 12_500

    def test_validation(self):
        for bad in (
            {"max_batch_slots": 0},
            {"kv_budget_bytes": 0.0},
            {"kv_bytes_per_token": -1.0},
            {"prefill_instr_per_token": 0.0},
            {"decode_instr_per_token": 0.0},
            {"decode_batch_efficiency": 1.5},
            {"prefix_cache_entries": 0},
        ):
            with pytest.raises(ValueError):
                EngineParams(**bad)

    def test_decode_step_is_sublinear(self):
        params = EngineParams(decode_batch_efficiency=0.25)
        one = params.decode_step_instructions(1)
        eight = params.decode_step_instructions(8)
        assert one == params.decode_instr_per_token
        assert eight < 8 * one
        assert eight == one * (1 + 0.25 * 7)

    def test_expected_turn_instructions_positive(self):
        params = EngineParams()
        for name in ("chat", "codegen", "rag_summarize", "long_reasoning"):
            assert expected_turn_instructions(get_mix(name), params) > 0


class TestKvLedger:
    def test_reserve_release_accounting(self):
        ledger = KvLedger(100, 10.0)
        assert ledger.try_reserve(60)
        assert ledger.try_reserve(40)
        assert not ledger.try_reserve(1)
        assert ledger.peak_tokens == 100
        assert ledger.peak_bytes == 1000.0
        ledger.release(50)
        assert ledger.resident_tokens == 50
        assert ledger.peak_tokens == 100

    def test_force_reserve_counts_overflow(self):
        ledger = KvLedger(100, 10.0)
        ledger.force_reserve(130)
        assert ledger.resident_tokens == 130
        assert ledger.overflow_tokens == 30

    def test_over_release_raises(self):
        ledger = KvLedger(100, 10.0)
        with pytest.raises(ValueError):
            ledger.release(1)


class TestContinuousBatching:
    def test_all_sequences_complete(self):
        replica = _run_sequences(EngineParams(), [(64, 32)] * 8)
        assert replica.stats.completions == 8
        assert replica.stats.decoded_tokens == 8 * 32
        assert not replica.active and not replica.pending
        assert replica.kv.resident_tokens == 0

    def test_queue_beyond_slots(self):
        params = EngineParams(max_batch_slots=2)
        replica = _run_sequences(params, [(32, 16)] * 6)
        assert replica.stats.completions == 6
        assert replica.stats.max_queue_depth >= 4

    def test_batched_decode_cheaper_than_serial(self):
        # 4 sequences batched finish in fewer engine steps' worth of
        # sim time than 4 run through a slots=1 replica.
        def total_time(slots):
            harness = _harness()
            replica = LlmReplica(harness, EngineParams(max_batch_slots=slots))
            done = [
                replica.submit(Sequence(i, 32, 64)) for i in range(4)
            ]

            def waiter():
                for event in done:
                    yield event
                harness.env.stop()

            harness.env.process(waiter())
            harness.env.run(until=60.0)
            assert replica.stats.completions == 4
            return harness.env.now

        assert total_time(4) < total_time(1)


class TestKvExhaustion:
    """The pinned acceptance test: a tiny HBM budget must demonstrably
    queue and preempt sessions rather than over-admitting them."""

    def test_exhaustion_preempts_and_blocks(self):
        params = EngineParams(
            max_batch_slots=4,
            kv_budget_bytes=200.0 * 160_000.0,  # 200 tokens of KV
        )
        assert params.kv_budget_tokens == 200
        replica = _run_sequences(params, [(60, 80)] * 4, until=120.0)
        assert replica.stats.completions == 4
        assert replica.stats.preemptions > 0
        assert replica.stats.admission_blocked_steps > 0
        assert replica.kv.peak_tokens <= 200
        assert replica.kv.resident_tokens == 0

    def test_preempted_sequence_reprefills(self):
        params = EngineParams(
            max_batch_slots=2, kv_budget_bytes=150.0 * 160_000.0
        )
        replica = _run_sequences(params, [(50, 60)] * 2, until=120.0)
        assert replica.stats.completions == 2
        # A preemption forces its victim back through prefill, so
        # prefill charged more tokens than the prompts alone.
        assert replica.stats.preemptions > 0
        assert replica.stats.prefill_tokens > 2 * 50

    def test_lone_oversized_sequence_overflows_not_deadlocks(self):
        params = EngineParams(
            max_batch_slots=2, kv_budget_bytes=40.0 * 160_000.0
        )
        replica = _run_sequences(params, [(60, 30)], until=120.0)
        assert replica.stats.completions == 1
        assert replica.kv.overflow_tokens > 0


class TestPrefixCache:
    def test_shared_prefix_discounts_prefill(self):
        harness = _harness()
        params = EngineParams()
        replica = LlmReplica(harness, params)
        done = [
            replica.submit(
                Sequence(i, 128, 8, prefix_group=3, prefix_tokens=96)
            )
            for i in range(4)
        ]

        def waiter():
            for event in done:
                yield event
            harness.env.stop()

        harness.env.process(waiter())
        harness.env.run(until=60.0)
        stats = replica.stats
        assert stats.prefix_lookups == 4
        # First lookup misses (installs the prefix), the rest hit.
        assert stats.prefix_hits == 3
        assert stats.cached_prefix_tokens == 3 * 96

    def test_unique_prompts_never_touch_the_cache(self):
        replica = _run_sequences(EngineParams(), [(64, 8)] * 3)
        assert replica.stats.prefix_lookups == 0


class TestEngineStats:
    def test_reset_zeroes_everything(self):
        stats = EngineStats(
            steps=5, completions=2, prefill_tokens=10, decoded_tokens=20,
            preemptions=1, admission_blocked_steps=3, max_queue_depth=4,
            prefix_lookups=2, prefix_hits=1, cached_prefix_tokens=6,
        )
        stats.reset()
        assert stats == EngineStats()

    def test_merge_sums_and_maxes(self):
        a = EngineStats(steps=5, max_queue_depth=2, decoded_tokens=10)
        b = EngineStats(steps=3, max_queue_depth=7, decoded_tokens=4)
        a.merge_from(b)
        assert a.steps == 8
        assert a.max_queue_depth == 7
        assert a.decoded_tokens == 14


class TestTokenCallbacks:
    def test_ttft_and_itl_observed(self):
        harness = _harness()
        ttft, gaps = [], []
        replica = LlmReplica(
            harness,
            EngineParams(),
            on_first_token=lambda seq, s: ttft.append(s),
            on_token=lambda seq, s: gaps.append(s),
        )
        done = replica.submit(Sequence(0, 32, 16))

        def waiter():
            yield done
            harness.env.stop()

        harness.env.process(waiter())
        harness.env.run(until=60.0)
        assert len(ttft) == 1 and ttft[0] > 0
        assert len(gaps) == 15  # 16 tokens -> 15 inter-token gaps
        assert all(g > 0 for g in gaps)
