"""Session-generator determinism: the properties the docstring pins.

These are the satellite tests for the shared RNG helpers
(:class:`~repro.sim.rng.LognormalSampler` memoization and seed-split
independence) under the session generators.
"""

import pytest

from repro.llm.catalog import get_mix
from repro.llm.sessions import (
    MAX_OUTPUT_TOKENS,
    MAX_PROMPT_TOKENS,
    MIN_OUTPUT_TOKENS,
    MIN_PROMPT_TOKENS,
    SessionGenerator,
    SessionPlan,
    Turn,
)
from repro.sim.rng import RngStreams, lognormal_sampler


def _generator(mix_name="chat", seed=7):
    return SessionGenerator(get_mix(mix_name), RngStreams(seed))


class TestTurnAndPlanValidation:
    def test_turn_rejects_empty(self):
        with pytest.raises(ValueError):
            Turn(prompt_tokens=0, output_tokens=1, prefix_tokens=0)
        with pytest.raises(ValueError):
            Turn(prompt_tokens=1, output_tokens=0, prefix_tokens=0)

    def test_turn_prefix_bounds(self):
        with pytest.raises(ValueError):
            Turn(prompt_tokens=4, output_tokens=1, prefix_tokens=4)
        Turn(prompt_tokens=4, output_tokens=1, prefix_tokens=3)

    def test_plan_needs_turns_and_matching_think_times(self):
        turn = Turn(prompt_tokens=8, output_tokens=8, prefix_tokens=0)
        with pytest.raises(ValueError):
            SessionPlan(0, -1, (), ())
        with pytest.raises(ValueError):
            SessionPlan(0, -1, (turn,), (0.0, 0.1))
        plan = SessionPlan(0, -1, (turn, turn), (0.0, 0.1))
        assert plan.total_prompt_tokens == 16
        assert plan.total_output_tokens == 16


class TestDeterminism:
    def test_plan_depends_only_on_seed_and_id(self):
        a = _generator().plan(5)
        b = _generator().plan(5)
        assert a == b

    def test_draw_order_independent_of_planning_order(self):
        # Planning sessions 0..9 in order vs. planning only #7 must
        # give the identical plan for #7: session streams are disjoint.
        gen_all = _generator()
        plans = [gen_all.plan(i) for i in range(10)]
        gen_one = _generator()
        assert gen_one.plan(7) == plans[7]

    def test_seed_split_independence_between_sessions(self):
        # Interleaving draws from two concurrent sessions can't perturb
        # either: regenerate one of them cold and compare.
        gen = _generator()
        a_first = gen.plan(1)
        _ = gen.plan(2)
        a_again = _generator().plan(1)
        assert a_first == a_again

    def test_master_seed_changes_plans(self):
        assert _generator(seed=7).plan(0) != _generator(seed=8).plan(0)

    def test_batch_size_invariance(self):
        # Chunked generation (batches of 3) vs. one-by-one: identical.
        gen = _generator()
        chunked = []
        for start in range(0, 9, 3):
            chunked.extend(gen.plan(i) for i in range(start, start + 3))
        single = [_generator().plan(i) for i in range(9)]
        assert chunked == single


class TestSamplerMemoization:
    def test_generator_uses_memoized_samplers(self):
        mix = get_mix("chat")
        gen = SessionGenerator(mix, RngStreams(7))
        assert gen._prompt is lognormal_sampler(
            mix.prompt_tokens_mean, mix.prompt_tokens_cv
        )
        assert gen._output is lognormal_sampler(
            mix.output_tokens_mean, mix.output_tokens_cv
        )


class TestPrefixGroups:
    def test_prefix_length_memoized_and_order_free(self):
        gen_a = _generator()
        gen_b = _generator()
        # Touch groups in different orders: lengths agree per group.
        a = {g: gen_a.prefix_tokens(g) for g in (0, 1, 2, 3)}
        b = {g: gen_b.prefix_tokens(g) for g in (3, 1, 0, 2)}
        assert a == b
        # Memoized: asking again returns the same value.
        assert gen_a.prefix_tokens(0) == a[0]

    def test_group_members_share_prefix_length(self):
        gen = _generator()
        by_group = {}
        for sid in range(200):
            plan = gen.plan(sid)
            if plan.prefix_group < 0:
                continue
            for turn in plan.turns:
                if turn.prefix_tokens >= turn.prompt_tokens - 1:
                    continue  # clamped by a short prompt
                by_group.setdefault(plan.prefix_group, set()).add(
                    turn.prefix_tokens
                )
        assert by_group, "chat mix should produce prefix-group sessions"
        for group, lengths in by_group.items():
            assert len(lengths) == 1, f"group {group} disagreed: {lengths}"

    def test_prefix_share_zero_means_no_groups(self):
        gen = _generator("rag_summarize")
        # Not zero-share, but verify the -1 contract where drawn unique.
        plans = [gen.plan(i) for i in range(50)]
        uniques = [p for p in plans if p.prefix_group < 0]
        assert uniques
        for plan in uniques:
            assert all(t.prefix_tokens == 0 for t in plan.turns)


class TestPlanShape:
    @pytest.mark.parametrize(
        "mix_name", ["chat", "codegen", "rag_summarize", "long_reasoning"]
    )
    def test_plans_respect_mix_bounds(self, mix_name):
        mix = get_mix(mix_name)
        gen = _generator(mix_name)
        for sid in range(100):
            plan = gen.plan(sid)
            assert mix.min_turns <= len(plan.turns) <= mix.max_turns
            assert plan.think_times_s[0] == 0.0
            for turn in plan.turns:
                assert (
                    MIN_PROMPT_TOKENS <= turn.prompt_tokens <= MAX_PROMPT_TOKENS
                )
                assert (
                    MIN_OUTPUT_TOKENS <= turn.output_tokens <= MAX_OUTPUT_TOKENS
                )

    def test_think_times_zero_when_mix_has_none(self):
        gen = _generator("rag_summarize")
        for sid in range(50):
            assert all(t == 0.0 for t in gen.plan(sid).think_times_s)

    def test_chat_multi_turn_sessions_have_think_times(self):
        gen = _generator("chat")
        saw_positive = False
        for sid in range(100):
            plan = gen.plan(sid)
            if len(plan.turns) > 1 and any(
                t > 0 for t in plan.think_times_s[1:]
            ):
                saw_positive = True
                break
        assert saw_positive
