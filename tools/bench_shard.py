"""Benchmark intra-run sharding: wall-clock scaling of one run.

A ``shards=N`` run splits one open-loop run into N shard environments
executed concurrently on the warm worker pool, then merges the results.
This tool records the pywren-style scaling curve — the same logical run
at shards = 1, 2, 4, ... — for taobench and storagebench, and writes it
to ``BENCH_shard.json``.

Method: for each benchmark, shard counts are interleaved round-robin
(unsharded, 2, 4, unsharded, 2, 4, ...) for ``--repeat`` rounds so
machine drift hits every configuration equally; each configuration
keeps its best (minimum) wall time.  The cache is disabled — every
timing executes its shards for real — and the warm pool is shut down
before the first timed round so worker spawn cost lands inside the
first round for every shard count alike, then amortizes exactly as it
does in real use.

On a host with >= 2 CPUs the tool asserts the headline claim from the
issue: a >= 2s taobench run speeds up >= 1.6x at shards=2.  Single-CPU
hosts (CI containers) record the curve without the assertion — there is
no parallel speedup to be had on one core, and the byte-identity
guarantees are what the test suite pins there.

Run:
    python tools/bench_shard.py [--smoke] [--measure SECONDS] [--repeat N]
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.exec.executor import SweepExecutor
from repro.exec.spec import RunPoint
from repro.exec.workerpool import shutdown_warm_pool

BENCHMARKS = ["taobench", "storagebench"]
SHARD_COUNTS = [1, 2, 4]


def timed_run(point: RunPoint, workers: int) -> float:
    executor = SweepExecutor(
        max_workers=workers, cache=None, use_cache=False, warm_pool=True
    )
    start = time.monotonic()
    executor.run([point])
    return time.monotonic() - start


def bench_benchmark(benchmark: str, measure: float, repeat: int):
    """Best-of-``repeat`` wall times for each shard count, interleaved."""
    points = {
        shards: RunPoint(
            benchmark=benchmark,
            seed=11,
            measure_seconds=measure,
            warmup_seconds=0.5,
            early_stop=False,
            shards=shards,
        )
        for shards in SHARD_COUNTS
    }
    best = {shards: float("inf") for shards in SHARD_COUNTS}
    for round_index in range(repeat):
        for shards in SHARD_COUNTS:
            elapsed = timed_run(points[shards], workers=max(shards, 1))
            best[shards] = min(best[shards], elapsed)
            print(
                f"  {benchmark} shards={shards} round {round_index + 1}: "
                f"{elapsed:6.2f}s"
            )
    base = best[1]
    curve = {
        "shards": SHARD_COUNTS,
        "seconds": [best[s] for s in SHARD_COUNTS],
        "speedup": [base / best[s] if best[s] > 0 else 0.0 for s in SHARD_COUNTS],
    }
    for shards, seconds, speedup in zip(
        curve["shards"], curve["seconds"], curve["speedup"]
    ):
        print(f"  {benchmark} shards={shards}: {seconds:6.2f}s  ({speedup:.2f}x)")
    return curve


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--measure",
        type=float,
        default=2.0,
        help="measurement window per run in simulated seconds (default 2.0)",
    )
    parser.add_argument(
        "--repeat", type=int, default=3, help="rounds per configuration"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short windows, one round, no speedup assertion (CI)",
    )
    args = parser.parse_args()
    measure = 0.5 if args.smoke else args.measure
    repeat = 1 if args.smoke else args.repeat

    cpus = os.cpu_count() or 1
    print(f"host: {cpus} CPU(s); measure={measure}s repeat={repeat}")
    shutdown_warm_pool()

    payload = {
        "cpus": cpus,
        "measure_seconds": measure,
        "repeat": repeat,
        "shard_counts": SHARD_COUNTS,
        "benchmarks": {},
    }
    for benchmark in BENCHMARKS:
        print(f"== {benchmark} ==")
        payload["benchmarks"][benchmark] = bench_benchmark(
            benchmark, measure, repeat
        )

    out = os.path.join(os.path.dirname(os.path.dirname(__file__)), "BENCH_shard.json")
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}")

    if cpus >= 2 and not args.smoke and measure >= 2.0:
        speedup2 = payload["benchmarks"]["taobench"]["speedup"][
            SHARD_COUNTS.index(2)
        ]
        assert speedup2 >= 1.6, (
            f"taobench shards=2 speedup {speedup2:.2f}x < 1.6x on a "
            f"{cpus}-CPU host"
        )
        print(f"speedup check passed: taobench shards=2 at {speedup2:.2f}x")
    else:
        print("speedup assertion skipped (smoke mode, short window, or 1 CPU)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
