"""Benchmark cost-model sweep scheduling: FIFO vs LPT + stealing.

The experiment is the classic list-scheduling worst case: a sweep of
many short points with one long straggler *last* in spec order.  A
FIFO dispatcher drains the short points across all workers, then the
whole pool waits while one worker runs the straggler alone —
makespan ~ ``short_total / W + long``.  LPT dispatch starts the
straggler first and packs the short points around it —
makespan ~ ``max(long, total / W)`` — so on >= 2 CPUs the same sweep
finishes >= 1.3x sooner with **byte-identical** merged reports.

Three sections, written to ``BENCH_schedule.json``:

* **makespan** — the imbalanced sweep through one warm pool under
  ``--schedule fifo`` then ``--schedule lpt`` (ledger warmed by a
  priming pass, so LPT schedules from measured history, not the seed
  table).  Asserts the merged reports are byte-identical and, when
  this machine has >= 2 usable CPUs, that LPT wins by >= 1.3x.
* **auto_shard** — the same sweep with ``--auto-shard``: the recorded
  plan splits the straggler across workers, removing the tail that
  even LPT cannot hide when one point exceeds the mean worker load.
* **ledger** — cold (seed-table) vs warm (recorded) prediction error
  against the measured wall times from the priming pass.

On a 1-CPU container the FIFO/LPT wall times are honest — two worker
processes timesharing one core cannot show a makespan win, so the
numbers are recorded and the >= 1.3x assertion is skipped.

Run:
    python tools/bench_schedule.py [--workers N] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.exec.executor import SweepExecutor
from repro.exec.schedule import CostLedger, plan_auto_shards
from repro.exec.spec import RunPoint, run_fingerprint
from repro.exec.workerpool import shutdown_warm_pool


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def imbalanced_points():
    """Six short points followed by one straggler (worst spec order)."""
    shorts = [
        RunPoint(benchmark=name, seed=seed, measure_seconds=0.6,
                 warmup_seconds=0.1)
        for name in ("djangobench", "feedsim", "mediawiki")
        for seed in (11, 12)
    ]
    straggler = RunPoint(
        benchmark="aibench", measure_seconds=2.5, warmup_seconds=0.5
    )
    return shorts + [straggler]


def sweep_bytes(reports):
    return [json.dumps(r.as_dict(), sort_keys=True) for r in reports]


def timed_run(points, ledger, schedule, workers, auto_shard=False):
    executor = SweepExecutor(
        max_workers=workers, cache=None, use_cache=False,
        warm_pool=True, schedule=schedule, ledger=ledger,
        auto_shard=auto_shard,
    )
    start = time.monotonic()
    reports = executor.run(points)
    elapsed = time.monotonic() - start
    return elapsed, reports, executor.last_stats


def bench_makespan(points, ledger, workers, repeats):
    shutdown_warm_pool()
    # Priming pass: spawn + warm the workers and record every point's
    # wall time into the ledger, so the timed LPT passes schedule from
    # measured history.  FIFO order so the timing is scheduler-neutral.
    prime_s, reference, _ = timed_run(points, ledger, "fifo", workers)
    print(f"priming pass ({workers} workers): {prime_s:6.2f}s, "
          f"{ledger.entries()} fingerprints recorded")
    reference_bytes = sweep_bytes(reference)

    section = {"prime_seconds": prime_s, "repeats": repeats}
    for schedule in ("fifo", "lpt"):
        times, stats = [], None
        for _ in range(repeats):
            elapsed, reports, stats = timed_run(
                points, ledger, schedule, workers
            )
            assert sweep_bytes(reports) == reference_bytes, (
                f"{schedule} changed report bytes"
            )
            times.append(elapsed)
        best = min(times)
        section[schedule] = {
            "seconds": times,
            "best_seconds": best,
            "steals": stats.steals,
        }
        print(f"{schedule:4s}: best {best:6.2f}s over {repeats} run(s) "
              f"(steals={stats.steals})")
    speedup = section["fifo"]["best_seconds"] / section["lpt"]["best_seconds"]
    section["lpt_speedup_vs_fifo"] = speedup
    section["byte_identical"] = True
    print(f"LPT + stealing vs FIFO makespan: {speedup:5.2f}x "
          f"(reports byte-identical)")
    return section, speedup


def bench_auto_shard(points, ledger, workers):
    plan = plan_auto_shards(points, workers, ledger.predict)
    elapsed, _, stats = timed_run(
        points, ledger, "lpt", workers, auto_shard=True
    )
    print(f"lpt + auto-shard: {elapsed:6.2f}s "
          f"({stats.auto_sharded} point(s) expanded)")
    for row in stats.auto_shard_plan:
        print(f"  sharded {row['workload']} -> {row['shards']} shards "
              f"(predicted {row['predicted_s']:.2f}s)")
    return {
        "seconds": elapsed,
        "expanded_points": stats.auto_sharded,
        "plan": stats.auto_shard_plan,
        "plan_size": len(plan),
    }


def bench_ledger_accuracy(points, warm_ledger):
    """Mean relative prediction error, cold seed table vs warm ledger."""
    cold = CostLedger(None)
    rows, cold_err, warm_err = [], 0.0, 0.0
    for point in points:
        fp = run_fingerprint(point)
        measured = warm_ledger.predict(point, fp)  # exact recording
        seed = cold.predict(point, fp)
        cold_err += abs(seed - measured) / measured
        rows.append({
            "workload": point.workload_name,
            "measured_s": round(measured, 4),
            "seed_predicted_s": round(seed, 4),
        })
    cold_mre = cold_err / len(points)
    print(f"ledger: seed-table mean relative error {cold_mre:5.1%} "
          f"(warm ledger replays its own recordings exactly)")
    return {"points": rows, "seed_mean_relative_error": cold_mre}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2, metavar="N")
    parser.add_argument("--repeats", type=int, default=2, metavar="N")
    parser.add_argument("--output", default="BENCH_schedule.json")
    args = parser.parse_args()
    workers = max(2, args.workers)
    cpus = usable_cpus()

    points = imbalanced_points()
    ledger = CostLedger(None)  # in-memory: never touches a real cache
    print(f"imbalanced sweep: {len(points)} points "
          f"({len(points) - 1} short + 1 straggler), "
          f"{workers} workers, {cpus} usable CPU(s)")

    try:
        makespan, speedup = bench_makespan(
            points, ledger, workers, args.repeats
        )
        auto_shard = bench_auto_shard(points, ledger, workers)
    finally:
        shutdown_warm_pool()
    accuracy = bench_ledger_accuracy(points, ledger)

    parallel = cpus >= 2
    if parallel:
        assert speedup >= 1.3, (
            f"LPT speedup {speedup:.2f}x below the 1.3x bar on "
            f"{cpus} CPUs"
        )
    else:
        print(f"only {cpus} usable CPU(s): workers timeshare one core, "
              f"recording honest numbers without the >= 1.3x assertion")

    payload = {
        "machine": {"usable_cpus": cpus, "workers": workers},
        "sweep": {
            "points": len(points),
            "short_measure_seconds": 0.6,
            "straggler_measure_seconds": 2.5,
        },
        "makespan": makespan,
        "auto_shard": auto_shard,
        "ledger": accuracy,
        "speedup_assertion": {
            "required": 1.3,
            "enforced": parallel,
            "observed": speedup,
        },
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
