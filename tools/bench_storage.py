"""Wall-clock microbenchmarks for the storage subsystem hot paths.

BENCH_workloads.json times whole points; this tool isolates the three
layers StorageBench added so a regression can be localized before it
shows up in the end-to-end number:

* ``device``  — raw :class:`~repro.hw.blockdev.BlockDevice` op
  submission/completion (slot claim, depth accounting, service sleep).
* ``lsm_put`` — the write path: WAL append, memtable insert, flush
  rotation, background compaction (and the stall machinery when L0
  backs up).
* ``lsm_get`` — the bloom-gated, cache-mediated point-lookup path over
  a warm leveled tree.
* ``storagebench`` — one pinned end-to-end point through
  ``execute_point``, the number a sweep actually pays.

Each case reports *operations per wall second* (and engine events/sec
for the end-to-end case).  Writes ``BENCH_storage.json`` with the same
before/after layout as the other bench files.

Run:
    PYTHONPATH=src python tools/bench_storage.py [--output BENCH_storage.json]
    PYTHONPATH=src python tools/bench_storage.py --smoke   # CI sanity pass
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.cachelib.lru import LruCache
from repro.exec.executor import execute_point
from repro.exec.spec import RunPoint
from repro.hw.blockdev import NVME_FLASH, BlockDevice
from repro.sim.engine import Environment
from repro.sim.rng import RngStreams, ZipfSampler
from repro.storage.lsm import LsmConfig, LsmTree

#: Ops per microbench case (full run; --smoke divides by 10).
DEVICE_OPS = 20_000
LSM_PUTS = 8_000
LSM_GETS = 20_000
KEY_SPACE = 20_000


def bench_device(ops: int) -> dict:
    """Raw device op throughput at a mixed seq/random, read/write load."""
    env = Environment()
    device = BlockDevice(env, NVME_FLASH)

    def issuer(index: int):
        sequential = index % 4 == 0
        for i in range(ops // 8):
            if (index + i) % 3 == 0:
                yield from device.write(4096, sequential=sequential)
            else:
                yield from device.read(4096, sequential=sequential)

    start = time.perf_counter()
    for index in range(8):
        env.process(issuer(index))
    env.run()
    elapsed = time.perf_counter() - start
    completed = device.stats.ops
    return {
        "wall_seconds": elapsed,
        "ops": completed,
        "ops_per_sec": completed / elapsed,
    }


def _warm_tree(env: Environment):
    device = BlockDevice(env, NVME_FLASH)
    cache = LruCache(2 * 1024 * 1024, clock=lambda: env.now)
    config = LsmConfig(
        memtable_bytes=16 * 1024,
        base_level_bytes=512 * 1024,
        level_size_multiplier=8,
        table_target_bytes=128 * 1024,
    )
    tree = LsmTree(env, device, cache, config=config)
    value = 400
    l1_keys = config.level_target_bytes(1) // value
    stride = max(1, -(-KEY_SPACE // l1_keys))
    tree.load_level(
        1, [(k, value) for k in range(1, KEY_SPACE + 1, stride)][:l1_keys]
    )
    l2_keys = min(KEY_SPACE, config.level_target_bytes(2) // value)
    tree.load_level(2, [(k, value) for k in range(1, l2_keys + 1)])
    return tree


def bench_lsm_put(ops: int) -> dict:
    env = Environment()
    tree = _warm_tree(env)
    rng = RngStreams(11).stream("bench-puts")
    zipf = ZipfSampler(KEY_SPACE, 0.9)

    def writer():
        for _ in range(ops):
            yield from tree.put(zipf.sample(rng), 400)

    start = time.perf_counter()
    env.process(writer())
    env.run()
    elapsed = time.perf_counter() - start
    return {
        "wall_seconds": elapsed,
        "ops": ops,
        "ops_per_sec": ops / elapsed,
        "flushes": tree.stats.flushes,
        "compactions": tree.stats.compactions,
        "stall_events": tree.stats.stall_events,
    }


def bench_lsm_get(ops: int) -> dict:
    env = Environment()
    tree = _warm_tree(env)
    rng = RngStreams(11).stream("bench-gets")
    zipf = ZipfSampler(KEY_SPACE, 0.9)

    def reader():
        for _ in range(ops):
            yield from tree.get(zipf.sample(rng))

    start = time.perf_counter()
    env.process(reader())
    env.run()
    elapsed = time.perf_counter() - start
    return {
        "wall_seconds": elapsed,
        "ops": ops,
        "ops_per_sec": ops / elapsed,
        "hit_rate": tree.stats.hits / max(1, tree.stats.gets),
        "block_reads": tree.stats.block_reads,
        "bloom_fp_rate": tree.stats.bloom_fp_rate,
    }


def bench_end_to_end(smoke: bool) -> dict:
    measure = 0.2 if smoke else 0.5
    warmup = 0.1 if smoke else 0.2
    point = RunPoint(
        benchmark="storagebench",
        sku="SKU2",
        seed=11,
        measure_seconds=measure,
        warmup_seconds=warmup,
        early_stop=False,
    )
    start = time.perf_counter()
    report = execute_point(point)
    elapsed = time.perf_counter() - start
    return {
        "wall_seconds": elapsed,
        "metric_value": report.metric_value,
    }


def run_benches(smoke: bool, repeat: int) -> dict:
    divisor = 10 if smoke else 1
    cases = {
        "device": lambda: bench_device(DEVICE_OPS // divisor),
        "lsm_put": lambda: bench_lsm_put(LSM_PUTS // divisor),
        "lsm_get": lambda: bench_lsm_get(LSM_GETS // divisor),
        "storagebench": lambda: bench_end_to_end(smoke),
    }
    results = {}
    for name, fn in cases.items():
        best = None
        for _ in range(repeat):
            sample = fn()
            key = "ops_per_sec" if "ops_per_sec" in sample else "wall_seconds"
            better = (
                best is None
                or (key == "ops_per_sec" and sample[key] > best[key])
                or (key == "wall_seconds" and sample[key] < best[key])
            )
            if better:
                best = sample
        best["repeats"] = repeat
        results[name] = best
        rate = best.get("ops_per_sec")
        detail = (
            f"{rate:12.0f} ops/s"
            if rate is not None
            else f"{best['wall_seconds']:8.2f}s wall"
        )
        print(f"{name:14s} {detail}")
    return results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_storage.json")
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny op counts, single repeat, no file written (the CI pass)",
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="samples per case; the best is kept (noise discipline)",
    )
    parser.add_argument(
        "--label", default="after",
        help="top-level key to store results under (default: after)",
    )
    args = parser.parse_args()

    repeat = 1 if args.smoke else max(1, args.repeat)
    results = run_benches(args.smoke, repeat)

    if args.smoke:
        assert results["device"]["ops_per_sec"] > 0
        assert results["lsm_put"]["flushes"] > 0
        assert results["lsm_get"]["hit_rate"] > 0
        assert results["storagebench"]["metric_value"] > 0
        print(f"storage bench smoke ok: {len(results)} cases ran")
        return 0

    try:
        with open(args.output) as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        payload = {}
    payload[args.label] = results
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
