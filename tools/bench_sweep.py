"""Benchmark the sweep executor: cold cache vs warm cache vs parallel.

Times a 6-benchmark x 4-SKU sweep (the Figure 2 grid) three ways:

* **cold** — serial, empty cache: every point simulated from scratch;
* **warm** — serial rerun against the cache the cold pass filled;
* **parallel** — empty cache again, fanned out over worker processes.

Writes ``BENCH_sweep.json`` with the raw timings and derived speedups.
The cache lives in a private temp directory, so this never touches
(or benefits from) your real ``~/.cache/dcperf-repro``.

Run:
    python tools/bench_sweep.py [--parallel N] [--measure SECONDS]
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time

from repro.exec.cache import RunCache
from repro.exec.executor import SweepExecutor, auto_workers
from repro.exec.spec import expand_grid
from repro.workloads.registry import dcperf_benchmarks

SKUS = ["SKU1", "SKU2", "SKU3", "SKU4"]


def timed_sweep(points, executor):
    start = time.monotonic()
    executor.run(points)
    elapsed = time.monotonic() - start
    return elapsed, executor.last_stats.as_dict()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="workers for the parallel pass (default: one per CPU)",
    )
    parser.add_argument(
        "--measure", type=float, default=1.0, metavar="SECONDS",
        help="simulated measurement window per point",
    )
    parser.add_argument("--output", default="BENCH_sweep.json")
    args = parser.parse_args()
    workers = args.parallel or auto_workers()

    points = expand_grid(
        benchmarks=dcperf_benchmarks(),
        skus=SKUS,
        measure_seconds=args.measure,
    )
    print(
        f"{len(points)} points ({len(dcperf_benchmarks())} benchmarks x "
        f"{len(SKUS)} SKUs), {os.cpu_count()} CPUs on this machine"
    )

    with tempfile.TemporaryDirectory(prefix="dcperf-bench-") as tmp:
        cache = RunCache(os.path.join(tmp, "cache"))
        cold_s, cold_stats = timed_sweep(
            points, SweepExecutor(max_workers=1, cache=cache)
        )
        print(f"cold  (serial, empty cache): {cold_s:7.2f}s")
        warm_s, warm_stats = timed_sweep(
            points, SweepExecutor(max_workers=1, cache=cache)
        )
        print(f"warm  (serial, full cache):  {warm_s:7.2f}s   "
              f"{warm_s / cold_s:6.1%} of cold")
        par_cache = RunCache(os.path.join(tmp, "cache-parallel"))
        par_s, par_stats = timed_sweep(
            points, SweepExecutor(max_workers=workers, cache=par_cache)
        )
        print(f"parallel ({workers} workers, empty): {par_s:7.2f}s   "
              f"{cold_s / par_s:5.2f}x vs cold serial")

    payload = {
        "grid": {
            "benchmarks": dcperf_benchmarks(),
            "skus": SKUS,
            "points": len(points),
            "measure_seconds": args.measure,
        },
        "machine": {"cpus": os.cpu_count()},
        "cold": {"seconds": cold_s, "stats": cold_stats},
        "warm": {
            "seconds": warm_s,
            "stats": warm_stats,
            "fraction_of_cold": warm_s / cold_s,
        },
        "parallel": {
            "seconds": par_s,
            "stats": par_stats,
            "workers": workers,
            "speedup_vs_cold": cold_s / par_s,
        },
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
