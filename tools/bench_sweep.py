"""Benchmark the sweep executor: pools, codec, cache, and scaling.

Four experiments, written to ``BENCH_sweep.json``:

* **pool** — a repeated 7-benchmark suite sweep through a **cold**
  per-sweep pool (fresh worker processes every sweep, the pre-warm-pool
  behavior) vs the **warm** pool (persistent workers reused across
  sweeps).  The headline number is the warm second run against the
  cold second run: warm workers keep their per-process model warm-setup,
  cold ones pay it again every sweep.
* **codec** — the binary report codec (`dict_to_bytes`) vs the JSON
  text codec for result transport: encode+decode wall time and bytes
  per report.
* **scaling** — a pywren-style worker-count curve: the same point grid
  through the warm pool at 1..N workers.
* **cache** — the original cold/warm-cache serial passes (unchanged
  semantics: a warm rerun is served from the persistent cache).

The pool experiments run *before* any point executes in this parent
process: forked workers inherit the parent's state, so priming the
parent would silently warm the "cold" pool too.  The cache lives in a
private temp directory, so this never touches (or benefits from) your
real ``~/.cache/dcperf-repro``.

Run:
    python tools/bench_sweep.py [--workers N] [--measure SECONDS]
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time

from repro.exec.cache import RunCache
from repro.exec.executor import SweepExecutor, _run_point_payload
from repro.exec.serialize import dict_from_bytes, dict_to_bytes
from repro.exec.spec import expand_grid, run_fingerprint
from repro.exec.workerpool import WarmPool, shutdown_warm_pool
from repro.workloads.registry import dcperf_benchmarks

SKUS = ["SKU1", "SKU2", "SKU3", "SKU4"]


def timed_sweep(points, executor):
    start = time.monotonic()
    executor.run(points)
    elapsed = time.monotonic() - start
    return elapsed, executor.last_stats.as_dict()


def bench_pools(points, workers):
    """Cold per-sweep pool vs persistent warm pool, two sweeps each."""
    results = {}

    cold_times = []
    for i in range(2):
        executor = SweepExecutor(
            max_workers=workers, cache=None, use_cache=False, warm_pool=False
        )
        elapsed, stats = timed_sweep(points, executor)
        cold_times.append(elapsed)
        print(f"cold pool sweep {i + 1}: {elapsed:7.2f}s "
              f"({stats['workers']} workers, fresh processes)")
    results["cold"] = {"seconds": cold_times, "stats": stats}

    shutdown_warm_pool()  # measure spawn cost inside the first warm sweep
    warm_times = []
    for i in range(2):
        executor = SweepExecutor(
            max_workers=workers, cache=None, use_cache=False, warm_pool=True
        )
        elapsed, stats = timed_sweep(points, executor)
        warm_times.append(elapsed)
        print(f"warm pool sweep {i + 1}: {elapsed:7.2f}s "
              f"(spawned={stats['spawned']} reused={stats['reused']} "
              f"shipped={stats['bytes_shipped']}B)")
    results["warm"] = {"seconds": warm_times, "stats": stats}

    speedup = cold_times[1] / warm_times[1]
    results["warm_vs_cold_second_run"] = speedup
    print(f"warm second run vs cold per-sweep pool: {speedup:5.2f}x")
    return results


def bench_scaling(points, max_workers):
    """Worker-count scaling curve through one warm pool (pywren-style).

    Uses the pool API directly so n=1 still goes through a worker
    process (the executor would shortcut to in-process execution).
    Each count gets a fresh pool so every measurement includes its own
    spawn + warm-up — the cost a user actually pays at that size.
    """
    todo = [(run_fingerprint(p), p) for p in points]
    curve = []
    base = None
    for n in range(1, max_workers + 1):
        pool = WarmPool()
        try:
            pool.run_points(todo, workers=n)  # spawn + warm the workers
            start = time.monotonic()
            _, lost, _, stats = pool.run_points(todo, workers=n)
            elapsed = time.monotonic() - start
        finally:
            pool.close()
        assert not lost
        base = base or elapsed
        curve.append(
            {
                "workers": n,
                "seconds": elapsed,
                "speedup_vs_1": base / elapsed,
                "bytes_shipped": stats.bytes_shipped,
            }
        )
        print(f"scaling: {n} worker(s) {elapsed:7.2f}s "
              f"({base / elapsed:4.2f}x vs 1)")
    return curve


def bench_codec(points, repeat=200):
    """Binary codec vs JSON text for one sweep's worth of reports."""
    payloads = [_run_point_payload(p) for p in points[: len(set(p.benchmark for p in points))]]
    json_bytes = sum(len(json.dumps(p).encode()) for p in payloads)
    bin_bytes = sum(len(dict_to_bytes(p)) for p in payloads)

    start = time.monotonic()
    for _ in range(repeat):
        for p in payloads:
            json.loads(json.dumps(p))
    json_s = (time.monotonic() - start) / repeat

    start = time.monotonic()
    for _ in range(repeat):
        for p in payloads:
            dict_from_bytes(dict_to_bytes(p))
    bin_s = (time.monotonic() - start) / repeat

    print(f"codec: json {json_bytes}B {json_s * 1e3:.2f}ms/sweep, "
          f"binary {bin_bytes}B {bin_s * 1e3:.2f}ms/sweep "
          f"({json_bytes / bin_bytes:.2f}x smaller)")
    return {
        "reports": len(payloads),
        "repeat": repeat,
        "json_bytes": json_bytes,
        "binary_bytes": bin_bytes,
        "bytes_ratio": json_bytes / bin_bytes,
        "json_roundtrip_seconds": json_s,
        "binary_roundtrip_seconds": bin_s,
    }


def bench_cache(points, workers, tmp):
    """The original serial cache passes plus a parallel cold pass."""
    cache = RunCache(os.path.join(tmp, "cache"))
    cold_s, cold_stats = timed_sweep(
        points, SweepExecutor(max_workers=1, cache=cache)
    )
    print(f"cache: cold serial {cold_s:7.2f}s")
    warm_s, warm_stats = timed_sweep(
        points, SweepExecutor(max_workers=1, cache=cache)
    )
    print(f"cache: warm rerun  {warm_s:7.2f}s   {warm_s / cold_s:6.1%} of cold")
    par_cache = RunCache(os.path.join(tmp, "cache-parallel"))
    par_s, par_stats = timed_sweep(
        points, SweepExecutor(max_workers=workers, cache=par_cache)
    )
    print(f"cache: parallel ({workers} workers, empty): {par_s:7.2f}s   "
          f"{cold_s / par_s:5.2f}x vs cold serial")
    return {
        "cold": {"seconds": cold_s, "stats": cold_stats},
        "warm": {
            "seconds": warm_s,
            "stats": warm_stats,
            "fraction_of_cold": warm_s / cold_s,
        },
        "parallel": {
            "seconds": par_s,
            "stats": par_stats,
            "workers": workers,
            "speedup_vs_cold": cold_s / par_s,
        },
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers", "--parallel", type=int, default=2, metavar="N",
        dest="workers",
        help="workers for the pool passes and the scaling curve max",
    )
    parser.add_argument(
        "--measure", type=float, default=0.3, metavar="SECONDS",
        help="simulated measurement window per point",
    )
    parser.add_argument("--output", default="BENCH_sweep.json")
    args = parser.parse_args()
    workers = max(2, args.workers)

    suite_points = expand_grid(
        benchmarks=dcperf_benchmarks(),
        skus=["SKU2"],
        measure_seconds=args.measure,
        warmup_seconds=0.1,
    )
    grid_points = expand_grid(
        benchmarks=dcperf_benchmarks(),
        skus=SKUS,
        measure_seconds=args.measure,
        warmup_seconds=0.1,
    )
    print(
        f"suite sweep: {len(suite_points)} points; figure-2 grid: "
        f"{len(grid_points)} points; {os.cpu_count()} CPU(s) on this machine"
    )

    # Pool + scaling first: this parent must not run a point in-process
    # beforehand, or forked 'cold' workers would inherit warm state.
    pool = bench_pools(suite_points, workers)
    scaling = bench_scaling(suite_points, workers)
    codec = bench_codec(suite_points)
    with tempfile.TemporaryDirectory(prefix="dcperf-bench-") as tmp:
        cache = bench_cache(grid_points, workers, tmp)
    shutdown_warm_pool()

    payload = {
        "grid": {
            "benchmarks": dcperf_benchmarks(),
            "skus": SKUS,
            "suite_points": len(suite_points),
            "grid_points": len(grid_points),
            "measure_seconds": args.measure,
        },
        "machine": {"cpus": os.cpu_count()},
        "pool": pool,
        "scaling": scaling,
        "codec": codec,
        "cache": cache,
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
