"""End-to-end wall-clock benchmark of every DCPerf workload model.

BENCH_engine.json tracks the engine's event-loop floor and
BENCH_sweep.json the executor fan-out, but neither sees the
*workload-model* layer — the per-request code (key validation,
distribution draws, dispatch accounting) each benchmark runs between
engine events.  This tool times one fully pinned point per benchmark
(all six, plus one fault scenario) end to end through
``execute_point`` and reports *events per wall second*: the engine's
scheduled-event counter summed over every environment the point
creates, divided by the point's wall time.  Pre-warm, SLO probes, and
the measurement window all count — that is the wall-clock a sweep
actually pays per point.

Instrumentation is tool-side only: ``BenchmarkHarness.__init__`` is
wrapped to stash each created environment so the event counters can be
read after the run.  The library itself carries no bench hooks.

Writes ``BENCH_workloads.json`` (best-of-N per point, same
before/after/speedup layout as BENCH_engine.json).

Run:
    python tools/bench_workloads.py [--output BENCH_workloads.json]
    python tools/bench_workloads.py --smoke            # CI sanity pass
    python tools/bench_workloads.py --check BENCH_workloads.json
    python tools/bench_workloads.py --profile taobench # cProfile a point
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.exec.executor import execute_point
from repro.exec.spec import RunPoint
from repro.workloads.runner import BenchmarkHarness

#: The six paper benchmarks plus one fault scenario, with per-point
#: (measure, warmup) windows sized so a full pass stays under a minute.
#: FeedSim's window is short because its SLO search multiplies it.
CASES = {
    "taobench": dict(benchmark="taobench", measure_seconds=1.0, warmup_seconds=0.3),
    "mediawiki": dict(benchmark="mediawiki", measure_seconds=4.0, warmup_seconds=0.5),
    "djangobench": dict(
        benchmark="djangobench", measure_seconds=4.0, warmup_seconds=0.5
    ),
    "feedsim": dict(benchmark="feedsim", measure_seconds=0.4, warmup_seconds=0.2),
    "sparkbench": dict(
        benchmark="sparkbench", measure_seconds=0.5, warmup_seconds=0.2
    ),
    "videotranscode": dict(
        benchmark="videotranscode", measure_seconds=3.0, warmup_seconds=0.3
    ),
    "taobench+blackout": dict(
        benchmark="taobench",
        measure_seconds=1.0,
        warmup_seconds=0.3,
        faults="blackout",
    ),
}
#: The request-path cases the tentpole targets (checked by --check).
HEADLINE_CASES = ("taobench", "mediawiki")


def _make_point(spec: dict, smoke: bool) -> RunPoint:
    kwargs = dict(sku="SKU2", seed=11, early_stop=False, **spec)
    if smoke:
        kwargs["measure_seconds"] = min(0.3, kwargs["measure_seconds"])
        kwargs["warmup_seconds"] = min(0.1, kwargs["warmup_seconds"])
    return RunPoint(**kwargs)


class _EnvTracer:
    """Capture every Environment a point's harnesses create."""

    def __init__(self) -> None:
        self.envs = []
        self._orig_init = None

    def __enter__(self) -> "_EnvTracer":
        self._orig_init = BenchmarkHarness.__init__
        tracer = self

        def traced_init(harness, *args, **kwargs):
            tracer._orig_init(harness, *args, **kwargs)
            tracer.envs.append(harness.env)

        BenchmarkHarness.__init__ = traced_init
        return self

    def __exit__(self, *exc) -> None:
        BenchmarkHarness.__init__ = self._orig_init

    @property
    def events(self) -> int:
        return sum(env._seq for env in self.envs)


def bench_case(name: str, spec: dict, smoke: bool) -> dict:
    """One end-to-end point: wall seconds + engine events scheduled."""
    point = _make_point(spec, smoke)
    with _EnvTracer() as tracer:
        start = time.perf_counter()
        report = execute_point(point)
        elapsed = time.perf_counter() - start
    return {
        "wall_seconds": elapsed,
        "events": tracer.events,
        "events_per_sec": tracer.events / elapsed,
        "environments": len(tracer.envs),
        "metric_value": report.metric_value,
    }


def _best_of(fn, repeat: int) -> dict:
    """Best-of-N by events/sec: interference only ever slows a run."""
    best = None
    for _ in range(repeat):
        result = fn()
        if best is None or result["events_per_sec"] > best["events_per_sec"]:
            best = result
    best["repeats"] = repeat
    return best


def run_benches(repeat: int, smoke: bool) -> dict:
    results = {}
    for name, spec in CASES.items():
        results[name] = _best_of(lambda s=spec: bench_case(name, s, smoke), repeat)
        r = results[name]
        print(
            f"{name:20s} {r['events_per_sec']:12.0f} ev/s "
            f"({r['events']} events in {r['wall_seconds']:.2f}s, "
            f"metric {r['metric_value']:.1f})"
        )
    return results


def check_against_baseline(
    results: dict, baseline_path: str, tolerance: float
) -> int:
    """CI gate: the headline request paths must not regress."""
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    reference = baseline.get("after") or baseline.get("before") or baseline
    failed = False
    for name in HEADLINE_CASES:
        if name not in reference or name not in results:
            continue
        base = reference[name]["events_per_sec"]
        now = results[name]["events_per_sec"]
        floor = base * (1.0 - tolerance)
        status = "ok" if now >= floor else "REGRESSED"
        if now < floor:
            failed = True
        print(
            f"{name:20s} {now:12.0f} ev/s vs baseline {base:12.0f} "
            f"(floor {floor:12.0f}) {status}"
        )
    return 1 if failed else 0


def profile_case(name: str) -> int:
    """Reproduce the cProfile that motivated the workload fast path."""
    import cProfile
    import pstats

    spec = dict(CASES[name])
    spec["measure_seconds"] = 2.0
    point = _make_point(spec, smoke=False)
    profiler = cProfile.Profile()
    profiler.enable()
    execute_point(point)
    profiler.disable()
    pstats.Stats(profiler).sort_stats("cumulative").print_stats(30)
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_workloads.json")
    parser.add_argument(
        "--smoke", action="store_true",
        help="short windows, single repeat, no file written (the CI pass)",
    )
    parser.add_argument(
        "--check", metavar="BASELINE",
        help="compare the headline cases against a baseline JSON; exit "
        "non-zero on a >tolerance events/sec regression",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.35,
        help="allowed fractional events/sec regression for --check",
    )
    parser.add_argument(
        "--label", default="after",
        help="top-level key to store results under (default: after)",
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="samples per case; the best is kept (noise discipline)",
    )
    parser.add_argument(
        "--profile", metavar="CASE", choices=sorted(CASES),
        help="cProfile one case at a 2s window and print the top-30",
    )
    args = parser.parse_args()

    if args.profile:
        return profile_case(args.profile)

    repeat = 1 if args.smoke else max(1, args.repeat)
    results = run_benches(repeat, args.smoke)

    if args.smoke:
        assert all(r["events_per_sec"] > 0 for r in results.values())
        print(f"workload bench smoke ok: {len(results)} cases ran")
        return 0
    if args.check:
        return check_against_baseline(results, args.check, args.tolerance)

    try:
        with open(args.output) as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        payload = {}
    payload[args.label] = results
    if "after" in payload and "before" in payload:
        payload["speedup"] = {
            name: payload["after"][name]["events_per_sec"]
            / payload["before"][name]["events_per_sec"]
            for name in CASES
            if name in payload["after"] and name in payload["before"]
        }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
