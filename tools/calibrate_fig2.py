"""Calibration tool: evaluate Figure 2 suite ratios for current SKU params.

Run after changing SKU parameters in repro.hw.sku to see how the four
suites (production, DCPerf, SPEC 2006, SPEC 2017) scale across SKUs
relative to SKU1, compared to the paper's published ratios.

Sweeps go through the shared executor: pass ``--parallel N`` to fan
runs out over N worker processes, and note that finished points are
memoized in the persistent run cache (``DCPERF_CACHE_DIR``), so
re-running after a calibration tweak only recomputes what the edit
invalidated.
"""
import argparse
import time

from repro.core.suite import DCPerfSuite
from repro.exec.executor import SweepExecutor
from repro.workloads.spec import spec2006_suite, spec2017_suite
from repro.workloads.targets import FIG2_SKU_PERFORMANCE

SKUS = ["SKU1", "SKU2", "SKU3", "SKU4"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--parallel", type=int, default=1, metavar="N")
    args = parser.parse_args()

    t0 = time.time()
    s17 = spec2017_suite()
    s06 = spec2006_suite()
    spec17 = [s17.score(sku) for sku in SKUS]
    spec06 = [s06.score(sku) for sku in SKUS]

    executor = SweepExecutor(max_workers=args.parallel)
    bench_suite = DCPerfSuite(measure_seconds=1.0, executor=executor)
    prod_suite = DCPerfSuite(
        variant=":prod", measure_seconds=1.0, executor=executor
    )
    bench_reports = bench_suite.run_many(SKUS)
    prod_reports = prod_suite.run_many(SKUS)
    dcperf = [bench_reports[sku].overall_score for sku in SKUS]
    prod_w = [
        prod_suite.production_score(prod_reports[sku]) for sku in SKUS
    ]

    print(f"evaluated in {time.time()-t0:.1f}s")
    rows = {
        "production": prod_w,
        "dcperf": dcperf,
        "spec2006": spec06,
        "spec2017": spec17,
    }
    print(f"{'suite':<12}{'SKU1':>8}{'SKU2':>8}{'SKU3':>8}{'SKU4':>8}   paper")
    for name, vals in rows.items():
        paper = FIG2_SKU_PERFORMANCE[name]
        print(
            f"{name:<12}" + "".join(f"{v:8.2f}" for v in vals)
            + "   " + " ".join(f"{p:.2f}" for p in paper)
        )
        percore = [v / c for v, c in zip(vals, [1.0, 52/36, 72/36, 176/36])]
        print(f"{'  per-core':<12}" + "".join(f"{v:8.3f}" for v in percore))


if __name__ == "__main__":
    main()


def per_benchmark() -> None:
    """Print per-benchmark SKU4/SKU1 ratios for both variants."""
    for variant in ("", ":prod"):
        suite = DCPerfSuite(variant=variant, measure_seconds=1.0)
        r1 = suite.run("SKU1")
        r4 = suite.run("SKU4")
        print(f"variant={variant or 'bench'}")
        for name in r1.scores:
            print(f"  {name:<16} SKU4/SKU1 = {r4.scores[name]:.2f}")
