"""Wall-clock microbenchmarks for the LLM token-serving subsystem.

BENCH_workloads.json times whole points; this tool isolates the layers
the llmbench family added so a regression can be localized before it
shows up in the end-to-end number:

* ``sessions`` — deterministic session planning throughput
  (:class:`~repro.llm.sessions.SessionGenerator`: stream derivation,
  lognormal draws, prefix-group memoization).
* ``engine``   — the continuous-batching loop on a single replica
  (admission, prefill/decode bursts, KV ledger growth) in sequences
  decoded per wall second.
* ``llmbench-<mix>`` — one pinned end-to-end point per catalog mix
  through ``execute_point``, reporting the model-level tokens/s and
  TTFT p99 alongside the wall time a sweep actually pays.

Writes ``BENCH_llm.json`` with the same before/after layout as the
other bench files.

Run:
    PYTHONPATH=src python tools/bench_llm.py [--output BENCH_llm.json]
    PYTHONPATH=src python tools/bench_llm.py --smoke   # CI sanity pass
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.exec.executor import execute_point
from repro.exec.spec import RunPoint
from repro.llm.catalog import get_mix, mix_names
from repro.llm.engine import EngineParams, LlmReplica, Sequence
from repro.llm.sessions import SessionGenerator
from repro.sim.rng import RngStreams
from repro.workloads.base import RunConfig
from repro.workloads.profiles import BENCHMARK_PROFILES
from repro.workloads.runner import BenchmarkHarness

#: Case sizes for a full run; --smoke divides by 10.
SESSION_PLANS = 20_000
ENGINE_SEQUENCES = 400

#: The end-to-end mixes a full run times (smoke keeps just chat).
E2E_MIXES = ("chat", "codegen", "rag_summarize", "long_reasoning")


def bench_sessions(plans: int) -> dict:
    generator = SessionGenerator(get_mix("chat"), RngStreams(11))
    start = time.perf_counter()
    turns = 0
    for sid in range(plans):
        turns += len(generator.plan(sid).turns)
    elapsed = time.perf_counter() - start
    return {
        "wall_seconds": elapsed,
        "ops": plans,
        "ops_per_sec": plans / elapsed,
        "turns_planned": turns,
    }


def bench_engine(sequences: int) -> dict:
    """Single-replica continuous batching at sustained queue pressure."""
    harness = BenchmarkHarness(RunConfig(), BENCHMARK_PROFILES["llmbench"])
    replica = LlmReplica(harness, EngineParams())
    done = [
        replica.submit(Sequence(i, 96, 48, prefix_group=i % 4, prefix_tokens=32))
        for i in range(sequences)
    ]

    def waiter():
        for event in done:
            yield event
        harness.env.stop()

    harness.env.process(waiter())
    start = time.perf_counter()
    harness.env.run(until=10_000.0)
    elapsed = time.perf_counter() - start
    stats = replica.stats
    assert stats.completions == sequences, "engine bench did not drain"
    return {
        "wall_seconds": elapsed,
        "ops": sequences,
        "ops_per_sec": sequences / elapsed,
        "decoded_tokens": stats.decoded_tokens,
        "decoded_tokens_per_wall_sec": stats.decoded_tokens / elapsed,
        "engine_steps": stats.steps,
    }


def bench_end_to_end(mix: str, smoke: bool) -> dict:
    measure = 0.2 if smoke else 0.5
    warmup = 0.1 if smoke else 0.2
    point = RunPoint(
        benchmark=f"llmbench-{mix}",
        sku="SKU2",
        seed=11,
        measure_seconds=measure,
        warmup_seconds=warmup,
        early_stop=False,
    )
    start = time.perf_counter()
    report = execute_point(point)
    elapsed = time.perf_counter() - start
    extra = report.result.extra
    return {
        "wall_seconds": elapsed,
        "metric_value": report.metric_value,
        "model_tokens_per_sec": extra["llm_tokens_per_second"],
        "ttft_p99_ms": extra["llm_ttft_p99_s"] * 1000.0,
        "itl_p99_ms": extra["llm_itl_p99_s"] * 1000.0,
    }


def run_benches(smoke: bool, repeat: int) -> dict:
    divisor = 10 if smoke else 1
    cases = {
        "sessions": lambda: bench_sessions(SESSION_PLANS // divisor),
        "engine": lambda: bench_engine(ENGINE_SEQUENCES // divisor),
    }
    for mix in ("chat",) if smoke else E2E_MIXES:
        cases[f"llmbench-{mix}"] = (
            lambda mix=mix: bench_end_to_end(mix, smoke)
        )
    results = {}
    for name, fn in cases.items():
        best = None
        for _ in range(repeat):
            sample = fn()
            key = "ops_per_sec" if "ops_per_sec" in sample else "wall_seconds"
            better = (
                best is None
                or (key == "ops_per_sec" and sample[key] > best[key])
                or (key == "wall_seconds" and sample[key] < best[key])
            )
            if better:
                best = sample
        best["repeats"] = repeat
        results[name] = best
        if "ops_per_sec" in best:
            detail = f"{best['ops_per_sec']:12.0f} ops/s"
        else:
            detail = (
                f"{best['wall_seconds']:8.2f}s wall  "
                f"{best['model_tokens_per_sec']:10.0f} tok/s  "
                f"ttft p99 {best['ttft_p99_ms']:6.2f}ms"
            )
        print(f"{name:24s} {detail}")
    return results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_llm.json")
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny op counts, single repeat, no file written (the CI pass)",
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="samples per case; the best is kept (noise discipline)",
    )
    parser.add_argument(
        "--label", default="after",
        help="top-level key to store results under (default: after)",
    )
    args = parser.parse_args()

    repeat = 1 if args.smoke else max(1, args.repeat)
    results = run_benches(args.smoke, repeat)

    if args.smoke:
        assert results["sessions"]["ops_per_sec"] > 0
        assert results["engine"]["decoded_tokens"] > 0
        assert results["llmbench-chat"]["metric_value"] > 0
        assert results["llmbench-chat"]["ttft_p99_ms"] > 0
        print(f"llm bench smoke ok: {len(results)} cases ran")
        return 0

    assert set(mix_names()) == set(E2E_MIXES), "catalog drifted; update tool"
    try:
        with open(args.output) as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        payload = {}
    payload[args.label] = results
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
