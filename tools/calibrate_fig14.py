"""Calibration tool: Figure 14 Perf/Watt across SKU4 / SKU-A / SKU-B.

Prints model Perf/Watt (normalized to SKU1) against the paper values,
for the DCPerf benchmarks and the SPEC 2017 suite.

All (benchmark, SKU) points are expanded into one sweep through the
shared executor, so the persistent run cache makes re-runs after a
calibration edit cheap; ``--parallel N`` fans the sweep out over N
worker processes.
"""
import argparse
import math

from repro.core.suite import DCPerfSuite
from repro.exec.executor import SweepExecutor
from repro.workloads.spec import spec2017_suite
from repro.workloads.targets import FIG14_PERF_PER_WATT


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--parallel", type=int, default=1, metavar="N")
    args = parser.parse_args()

    skus = ("SKU4", "SKU-A", "SKU-B")
    suite = DCPerfSuite(
        measure_seconds=1.0,
        executor=SweepExecutor(max_workers=args.parallel),
    )
    reports = suite.run_many(["SKU1", *skus])
    base = reports["SKU1"].perf_per_watt
    s17 = spec2017_suite()
    spec_base_ppw = 1.0 / s17.average_power_watts("SKU1")
    for sku in skus:
        rep = reports[sku]
        norm = {k: rep.perf_per_watt[k] / base[k] for k in base}
        vals = [v for v in norm.values() if v > 0]
        geo = math.exp(sum(math.log(v) for v in vals) / len(vals))
        spec_ppw = s17.score(sku) / (
            s17.average_power_watts(sku) * spec_base_ppw
        )
        paper = FIG14_PERF_PER_WATT[sku]
        print(sku)
        for name in ("taobench", "feedsim", "djangobench", "mediawiki", "sparkbench"):
            print(f"  {name:<14} model {norm[name]:5.2f}   paper {paper[name]:4.1f}")
        print(f"  {'dcperf':<14} model {geo:5.2f}   paper {paper['dcperf']:4.1f}")
        print(f"  {'spec2017':<14} model {spec_ppw:5.2f}   paper {paper['spec2017']:4.1f}")


if __name__ == "__main__":
    main()
