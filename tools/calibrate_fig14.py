"""Calibration tool: Figure 14 Perf/Watt across SKU4 / SKU-A / SKU-B.

Prints model Perf/Watt (normalized to SKU1) against the paper values,
for the DCPerf benchmarks and the SPEC 2017 suite.
"""
import math

from repro.core.suite import DCPerfSuite
from repro.workloads.spec import spec2017_suite
from repro.workloads.targets import FIG14_PERF_PER_WATT


def main() -> None:
    suite = DCPerfSuite(measure_seconds=1.0)
    base = suite.run("SKU1").perf_per_watt
    s17 = spec2017_suite()
    spec_base_ppw = 1.0 / s17.average_power_watts("SKU1")
    for sku in ("SKU4", "SKU-A", "SKU-B"):
        rep = suite.run(sku)
        norm = {k: rep.perf_per_watt[k] / base[k] for k in base}
        vals = [v for v in norm.values() if v > 0]
        geo = math.exp(sum(math.log(v) for v in vals) / len(vals))
        spec_ppw = s17.score(sku) / (
            s17.average_power_watts(sku) * spec_base_ppw
        )
        paper = FIG14_PERF_PER_WATT[sku]
        print(sku)
        for name in ("taobench", "feedsim", "djangobench", "mediawiki", "sparkbench"):
            print(f"  {name:<14} model {norm[name]:5.2f}   paper {paper[name]:4.1f}")
        print(f"  {'dcperf':<14} model {geo:5.2f}   paper {paper['dcperf']:4.1f}")
        print(f"  {'spec2017':<14} model {spec_ppw:5.2f}   paper {paper['spec2017']:4.1f}")


if __name__ == "__main__":
    main()
