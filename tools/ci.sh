#!/bin/sh
# Tier-1 verification: the full unit suite plus a parallel smoke sweep.
#
# The run cache is pointed at a throwaway directory so CI results can
# never leak into (or be served from) a developer's ~/.cache, and the
# smoke sweep exercises the real multi-process path end to end.
#
# Usage: tools/ci.sh   (or: make verify)
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH=src
export PYTHONPATH

CACHE_TMP="$(mktemp -d "${TMPDIR:-/tmp}/dcperf-ci-cache.XXXXXX")"
DCPERF_CACHE_DIR="$CACHE_TMP"
export DCPERF_CACHE_DIR
trap 'rm -rf "$CACHE_TMP"' EXIT INT TERM

echo "== tier-1 tests (cache dir: $CACHE_TMP) =="
python -m pytest -x -q

echo "== parallel smoke sweep (2 points, 2 workers) =="
python - <<'EOF'
from repro.exec.executor import SweepExecutor
from repro.exec.spec import RunPoint

points = [
    RunPoint(benchmark="taobench", sku="SKU1",
             measure_seconds=0.5, warmup_seconds=0.2),
    RunPoint(benchmark="taobench", sku="SKU2",
             measure_seconds=0.5, warmup_seconds=0.2),
]
executor = SweepExecutor(max_workers=2)
reports = executor.run(points)
stats = executor.last_stats
assert len(reports) == 2 and all(r.metric_value > 0 for r in reports)
assert stats.executed == 2 and stats.workers == 2

# Rerun must be served entirely from the cache just written.
warm = SweepExecutor(max_workers=2)
warm_reports = warm.run(points)
assert warm.last_stats.cache_hits == 2 and warm.last_stats.executed == 0
assert [r.as_dict() for r in warm_reports] == [r.as_dict() for r in reports]
print(f"smoke sweep ok: {stats.executed} executed in "
      f"{stats.elapsed_seconds:.1f}s, warm rerun fully cached")
EOF

echo "== warm-pool smoke (reuse + byte-identity + clean teardown) =="
python - <<'EOF'
import json
import os

from repro.exec.executor import SweepExecutor
from repro.exec.spec import RunPoint
from repro.exec.workerpool import get_warm_pool, shutdown_warm_pool

points = [
    RunPoint(benchmark="taobench", sku="SKU1",
             measure_seconds=0.5, warmup_seconds=0.2),
    RunPoint(benchmark="feedsim", sku="SKU2",
             measure_seconds=0.5, warmup_seconds=0.2),
]

def sweep():
    executor = SweepExecutor(max_workers=2, use_cache=False, warm_pool=True)
    reports = executor.run(points)
    return [json.dumps(r.as_dict(), sort_keys=True) for r in reports], \
        executor.last_stats

first, first_stats = sweep()
assert first_stats.pool_mode == "warm" and first_stats.spawned == 2

# The same sweep again through the same process-global pool: every
# worker is reused and the reports are byte-identical.
second, second_stats = sweep()
assert second_stats.reused > 0 and second_stats.spawned == 0
assert second == first, "warm rerun diverged from first warm run"

pids = get_warm_pool().worker_pids()
assert len(pids) == 2
shutdown_warm_pool()
for pid in pids:  # clean teardown: no orphaned workers
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        pass
    else:
        raise AssertionError(f"worker {pid} survived shutdown")
print(f"warm-pool smoke ok: {second_stats.reused} workers reused, "
      f"{second_stats.bytes_shipped}B shipped, reports byte-identical, "
      "teardown left no orphans")
EOF

echo "== fault-scenario smoke (deterministic replay) =="
python - <<'EOF'
import json

from repro.exec.executor import SweepExecutor
from repro.exec.spec import RunPoint

point = RunPoint(benchmark="taobench", sku="SKU2", seed=11,
                 measure_seconds=0.5, warmup_seconds=0.2,
                 faults="blackout")

def sweep(workers, use_cache):
    executor = SweepExecutor(max_workers=workers, use_cache=use_cache)
    # Two points so the pooled path actually engages at workers=2.
    clean = RunPoint(benchmark="taobench", sku="SKU2", seed=11,
                     measure_seconds=0.5, warmup_seconds=0.2)
    reports = executor.run([point, clean])
    return [json.dumps(r.as_dict(), sort_keys=True) for r in reports]

first = sweep(1, use_cache=False)
replay = sweep(1, use_cache=False)
pooled = sweep(2, use_cache=False)
assert first == replay, "fault scenario replay is not deterministic"
assert first == pooled, "parallel fault run diverged from serial"

faulted = json.loads(first[0])
section = faulted["hooks"]["resilience"]
assert section["enabled"] and section["scenario"] == "blackout"
assert section["requests"] > 0 and section["fault_events_applied"] >= 1
assert json.loads(first[1])["hooks"]["resilience"] == {"enabled": False}
print("fault smoke ok: blackout replay byte-identical "
      f"(serial x2 + 2-worker pool), error_rate={section['error_rate']:.3f}, "
      f"slo={section['slo_compliance_pct']:.1f}%")
EOF

echo "== SLO control-plane smoke (compound scenario, shed replay) =="
python - <<'EOF'
import json

from repro.exec.executor import SweepExecutor, execute_point
from repro.exec.spec import RunPoint

point = RunPoint(benchmark="taobench", sku="SKU2", seed=11,
                 measure_seconds=0.5, warmup_seconds=0.2,
                 faults="overload_shed")

# Replaying a compound scenario twice must reproduce every byte,
# including each window's shed decisions and the window series itself.
first = execute_point(point).as_dict()
replay = execute_point(point).as_dict()
assert first == replay, "overload_shed replay is not deterministic"

# The warm-pool transport must carry the control section unchanged.
pooled = SweepExecutor(max_workers=2, use_cache=False, warm_pool=True).run(
    [point, RunPoint(benchmark="taobench", sku="SKU2", seed=11,
                     measure_seconds=0.5, warmup_seconds=0.2)])
assert json.dumps(pooled[0].as_dict(), sort_keys=True) \
    == json.dumps(first, sort_keys=True), "pooled shed run diverged"

section = first["hooks"]["slo_control"]
assert section["enabled"] and section["scenario"] == "overload_shed"
assert section["windows"] >= 1 and section["shed"] > 0
assert len(section["window_series"]) == section["windows"]
assert pooled[1].as_dict()["hooks"]["slo_control"] == {"enabled": False}
print("slo control smoke ok: overload_shed replay byte-identical "
      f"(in-proc x2 + warm pool), shed_fraction={section['shed_fraction']:.2f}, "
      f"goodput_fraction={section['goodput_fraction']:.2f}, "
      f"{section['windows']:.0f} windows")
EOF

echo "== early-stop smoke (convergence on/off) =="
python - <<'EOF'
import json

from repro.exec.executor import execute_point
from repro.exec.spec import RunPoint

base = dict(benchmark="taobench", sku="SKU2", seed=11,
            measure_seconds=0.6, warmup_seconds=0.2)

# Under fault injection the convergence monitor is skipped entirely:
# the report must be byte-identical whether early_stop is set or not.
faulted = json.dumps(execute_point(
    RunPoint(faults="blackout", **base)).as_dict(), sort_keys=True)
faulted_es = json.dumps(execute_point(
    RunPoint(faults="blackout", early_stop=True, **base)).as_dict(),
    sort_keys=True)
assert faulted == faulted_es, "early_stop changed a fault-injection report"

# A clean early-stop run is deterministic and says so in the report.
fast = RunPoint(early_stop=True, **dict(base, measure_seconds=3.0))
first = execute_point(fast).as_dict()
second = execute_point(fast).as_dict()
assert first == second, "early-stop replay is not deterministic"
extra = first["result"]["extra"]
assert extra["early_stopped"] == 1.0 and extra["measured_seconds"] < 3.0
print("early-stop smoke ok: fault reports unchanged, clean run "
      f"converged at {extra['measured_seconds']:.2f}s of 3.0s "
      f"({extra['convergence_windows']:.0f} windows), replay identical")
EOF

echo "== storagebench smoke (run + fault replay + cache round-trip) =="
python - <<'EOF'
import json

from repro.exec.executor import SweepExecutor, execute_point
from repro.exec.spec import RunPoint

base = dict(benchmark="storagebench", sku="SKU2", seed=11,
            measure_seconds=0.5, warmup_seconds=0.2)
plain = RunPoint(**base)
degraded = RunPoint(faults="disk_degraded", **base)

# The device-channel fault must replay deterministically and show up
# in foreground behavior (stalls, p99) and the iostat section.
first = execute_point(degraded).as_dict()
replay = execute_point(degraded).as_dict()
assert first == replay, "disk_degraded replay is not deterministic"
clean = execute_point(plain).as_dict()
iostat = first["hooks"]["iostat"]
assert iostat["enabled"] and iostat["flushes"] >= 1
assert iostat["stall_seconds"] > clean["hooks"]["iostat"]["stall_seconds"]
assert (first["result"]["latency"]["p99"]
        > clean["result"]["latency"]["p99"])

# Cold sweep executes both points; warm rerun is fully cached.
points = [plain, degraded]
cold = SweepExecutor(max_workers=2)
cold_reports = cold.run(points)
assert cold.last_stats.executed == 2
warm = SweepExecutor(max_workers=2)
warm_reports = warm.run(points)
assert warm.last_stats.cache_hits == 2 and warm.last_stats.executed == 0
assert ([json.dumps(r.as_dict(), sort_keys=True) for r in warm_reports]
        == [json.dumps(r.as_dict(), sort_keys=True) for r in cold_reports])
print("storagebench smoke ok: disk_degraded replay byte-identical, "
      f"stall {iostat['stall_seconds']:.2f}s vs "
      f"{clean['hooks']['iostat']['stall_seconds']:.2f}s clean, "
      "cold sweep cached + warm rerun fully served")
EOF

echo "== llmbench smoke (cross-path byte-identity + cache round-trip) =="
python - <<'EOF'
import json

from repro.exec.executor import SweepExecutor, execute_point
from repro.exec.spec import RunPoint

base = dict(benchmark="llmbench-chat", sku="SKU2", seed=11,
            measure_seconds=0.5, warmup_seconds=0.2, early_stop=False)
point = RunPoint(**base)

# A fixed-seed serving run must replay byte-identically in process...
first = json.dumps(execute_point(point).as_dict(), sort_keys=True)
replay = json.dumps(execute_point(point).as_dict(), sort_keys=True)
assert first == replay, "llmbench in-proc replay diverged"

# ...through the warm worker pool...
warm_ex = SweepExecutor(max_workers=2, use_cache=False, warm_pool=True)
warm = warm_ex.run(
    [point, RunPoint(**dict(base, benchmark="llmbench-codegen"))])
assert warm_ex.last_stats.pool_mode == "warm"
assert json.dumps(warm[0].as_dict(), sort_keys=True) == first, \
    "llmbench warm-pool run diverged from in-proc"

# ...and through a cache round-trip (write then fully served).
cold_ex = SweepExecutor(max_workers=1)
cold = json.dumps(cold_ex.run([point])[0].as_dict(), sort_keys=True)
rerun_ex = SweepExecutor(max_workers=1)
rerun = json.dumps(rerun_ex.run([point])[0].as_dict(), sort_keys=True)
assert cold == rerun == first, "llmbench cache round-trip changed bytes"
assert rerun_ex.last_stats.cache_hits == 1 and rerun_ex.last_stats.executed == 0

section = json.loads(first)["hooks"]["llm_serving"]
assert section["enabled"] and section["tokens_per_second"] > 0
assert section["ttft_p99_ms"] > 0 and section["turns_completed"] > 0
print("llmbench smoke ok: byte-identical across in-proc x2, warm pool, "
      f"cache round-trip; {section['tokens_per_second']:.0f} tok/s, "
      f"ttft p99 {section['ttft_p99_ms']:.2f}ms")
EOF

echo "== shard smoke (shards=1 identity + shards=2 cross-path replay) =="
python - <<'EOF'
import json

from repro.core.benchmark import Benchmark
from repro.exec.executor import SweepExecutor, execute_point
from repro.exec.spec import RunPoint

base = dict(benchmark="taobench", sku="SKU2", seed=11,
            measure_seconds=0.5, warmup_seconds=0.2, early_stop=False)

# shards=1 must be bit-identical to the plain in-process runner.
plain = RunPoint(**base)
direct = json.dumps(
    Benchmark.by_name("taobench").run(plain.run_config()).as_dict(),
    sort_keys=True)
via_executor = json.dumps(
    SweepExecutor(max_workers=1, cache=None, use_cache=False)
    .run([plain])[0].as_dict(), sort_keys=True)
assert direct == via_executor, "shards=1 diverged from the in-proc runner"

# A fixed shards=2 run replays byte-identically across the in-process
# and warm-pool paths...
sharded = RunPoint(shards=2, **base)
inproc_ex = SweepExecutor(max_workers=1, cache=None, use_cache=False)
inproc = json.dumps(inproc_ex.run([sharded])[0].as_dict(), sort_keys=True)
assert inproc_ex.last_stats.shard_points == 2
assert inproc_ex.last_stats.merged_runs == 1
warm_ex = SweepExecutor(max_workers=2, cache=None, use_cache=False,
                        warm_pool=True)
warm = json.dumps(warm_ex.run([sharded])[0].as_dict(), sort_keys=True)
assert warm_ex.last_stats.pool_mode == "warm"
assert warm == inproc, "sharded warm-pool run diverged from in-proc"
assert json.dumps(execute_point(sharded).as_dict(), sort_keys=True) == inproc

# ...and round-trips the run cache: first sweep writes 2 shard entries
# + the merged parent, the rerun is served entirely from the parent hit.
cached_ex = SweepExecutor(max_workers=1)
first = json.dumps(cached_ex.run([sharded])[0].as_dict(), sort_keys=True)
rerun_ex = SweepExecutor(max_workers=1)
rerun = json.dumps(rerun_ex.run([sharded])[0].as_dict(), sort_keys=True)
assert rerun == first == inproc, "cached shard rerun changed bytes"
assert rerun_ex.last_stats.cache_hits == 1
assert rerun_ex.last_stats.executed == 0
merged = json.loads(inproc)
assert merged["system"]["shards"] == 2
assert merged["hooks"]["sharding"]["role"] == "merged"
print("shard smoke ok: shards=1 identical to in-proc runner, shards=2 "
      "byte-identical across in-proc/warm/execute_point + cache round-trip")
EOF

echo "== schedule smoke (cold vs warm ledger, byte-identity) =="
python - <<'EOF'
import json
import os

from repro.exec.cache import LEDGER_FILENAME
from repro.exec.executor import SweepExecutor
from repro.exec.spec import RunPoint
from repro.exec.workerpool import shutdown_warm_pool

# An imbalanced sweep: two short points and one long straggler, the
# straggler last in spec order (the FIFO worst case LPT reorders).
points = [
    RunPoint(benchmark="djangobench", sku="SKU1",
             measure_seconds=0.4, warmup_seconds=0.1),
    RunPoint(benchmark="feedsim", sku="SKU2",
             measure_seconds=0.4, warmup_seconds=0.1),
    RunPoint(benchmark="taobench", sku="SKU2",
             measure_seconds=0.8, warmup_seconds=0.2),
]

def sweep():
    executor = SweepExecutor(max_workers=2, cache=None, use_cache=False,
                             warm_pool=True, schedule="lpt")
    reports = executor.run(points)
    return [json.dumps(r.as_dict(), sort_keys=True) for r in reports], \
        executor.last_stats

# First pass schedules from the seed cost table (cold ledger) and
# records every measured wall time; the second schedules from that
# recorded history.  Both must merge to the same bytes.
cold, cold_stats = sweep()
assert cold_stats.ledger_recorded == 3, cold_stats.ledger_recorded
warm, warm_stats = sweep()
assert warm == cold, "warm-ledger sweep diverged from cold-ledger sweep"
shutdown_warm_pool()

# The sweeps above ran cache-less (in-memory ledger); a cached sweep
# must persist a non-empty ledger sidecar next to the run cache.
cached = SweepExecutor(max_workers=1)
cached.run(points[:1])
ledger_path = os.path.join(os.environ["DCPERF_CACHE_DIR"], LEDGER_FILENAME)
assert os.path.exists(ledger_path), "cost ledger sidecar was not written"
sidecar = json.load(open(ledger_path))
assert sidecar["by_fingerprint"], "persisted cost ledger is empty"
print("schedule smoke ok: cold and warm-ledger LPT sweeps byte-identical, "
      f"{warm_stats.ledger_recorded} timings re-recorded, persistent "
      f"ledger holds {len(sidecar['by_fingerprint'])} fingerprint(s)")
EOF

echo "== engine perf smoke (vs BENCH_engine.json quick baseline) =="
python tools/bench_engine.py --quick --repeat 3 --check BENCH_engine.json

echo "== golden traces with workload fast path (byte-identity gate) =="
python -m pytest -x -q tests/test_golden_traces.py

echo "== workload bench smoke (all six benchmarks + fault scenario) =="
python tools/bench_workloads.py --smoke

echo "== llm bench smoke (sessions + engine + end-to-end chat mix) =="
python tools/bench_llm.py --smoke

echo "== verify ok =="
