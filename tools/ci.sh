#!/bin/sh
# Tier-1 verification: the full unit suite plus a parallel smoke sweep.
#
# The run cache is pointed at a throwaway directory so CI results can
# never leak into (or be served from) a developer's ~/.cache, and the
# smoke sweep exercises the real multi-process path end to end.
#
# Usage: tools/ci.sh   (or: make verify)
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH=src
export PYTHONPATH

CACHE_TMP="$(mktemp -d "${TMPDIR:-/tmp}/dcperf-ci-cache.XXXXXX")"
DCPERF_CACHE_DIR="$CACHE_TMP"
export DCPERF_CACHE_DIR
trap 'rm -rf "$CACHE_TMP"' EXIT INT TERM

echo "== tier-1 tests (cache dir: $CACHE_TMP) =="
python -m pytest -x -q

echo "== parallel smoke sweep (2 points, 2 workers) =="
python - <<'EOF'
from repro.exec.executor import SweepExecutor
from repro.exec.spec import RunPoint

points = [
    RunPoint(benchmark="taobench", sku="SKU1",
             measure_seconds=0.5, warmup_seconds=0.2),
    RunPoint(benchmark="taobench", sku="SKU2",
             measure_seconds=0.5, warmup_seconds=0.2),
]
executor = SweepExecutor(max_workers=2)
reports = executor.run(points)
stats = executor.last_stats
assert len(reports) == 2 and all(r.metric_value > 0 for r in reports)
assert stats.executed == 2 and stats.workers == 2

# Rerun must be served entirely from the cache just written.
warm = SweepExecutor(max_workers=2)
warm_reports = warm.run(points)
assert warm.last_stats.cache_hits == 2 and warm.last_stats.executed == 0
assert [r.as_dict() for r in warm_reports] == [r.as_dict() for r in reports]
print(f"smoke sweep ok: {stats.executed} executed in "
      f"{stats.elapsed_seconds:.1f}s, warm rerun fully cached")
EOF

echo "== verify ok =="
