"""Microbenchmark the discrete-event engine's hot path.

Two engine-level scenarios plus one end-to-end workload point:

* **timeout_ring** — N processes each looping over plain timeouts: the
  floor of per-event engine overhead (schedule + pop + resume).
* **request_loop** — an open-loop generator driving requests through a
  ThreadPool whose work items are CPU-burst timeouts: the shape of the
  steady-state request path every benchmark runs.
* **cold_point** — one taobench point executed end to end (the unit of
  work a sweep repeats 24+ times).

The throughput metric is *scheduled events per wall second*, computed
from the environment's monotonically increasing sequence counter — free
to read and identical in meaning across engine versions.

Writes ``BENCH_engine.json``.  With ``--check BASELINE.json`` the tool
instead compares against a checked-in baseline and exits non-zero if
either engine scenario regressed more than ``--tolerance`` (default
30%) — the CI perf smoke.

Run:
    python tools/bench_engine.py [--quick] [--output BENCH_engine.json]
    python tools/bench_engine.py --quick --check BENCH_engine.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.loadgen.generators import OpenLoopGenerator
from repro.loadgen.recorder import LatencyRecorder
from repro.sim.engine import Environment
from repro.sim.rng import RngStreams


def _sleep_fn(env: Environment):
    """The cheapest fire-and-forget delay the engine offers.

    Prefers the freelist-backed ``sleep`` and falls back to ``timeout``
    so the same tool benchmarks both engine generations fairly.
    """
    return getattr(env, "sleep", env.timeout)


def bench_timeout_ring(num_procs: int, sim_seconds: float) -> dict:
    """N processes looping over bare timeouts; pure engine overhead."""
    env = Environment()
    sleep = _sleep_fn(env)

    def ticker(delay: float):
        while True:
            yield sleep(delay)

    for i in range(num_procs):
        env.process(ticker(0.001 + 0.0001 * (i % 7)))
    start = time.perf_counter()
    env.run(until=sim_seconds)
    elapsed = time.perf_counter() - start
    return {
        "events": env._seq,
        "wall_seconds": elapsed,
        "events_per_sec": env._seq / elapsed,
    }


def bench_request_loop(rate_rps: float, sim_seconds: float) -> dict:
    """Open-loop arrivals through a thread pool: the benchmark shape."""
    from repro.workloads.runner import ThreadPool

    env = Environment()
    pool = ThreadPool(env, "workers", num_threads=64)
    rng = RngStreams(7).stream("bench-arrivals")
    recorder = LatencyRecorder()
    service_rate = rate_rps / 32.0  # ~50% pool utilization
    expovariate = RngStreams(7).stream("bench-service").expovariate
    sleep = _sleep_fn(env)
    submit = pool.submit

    def burst():
        yield sleep(expovariate(service_rate))

    def handler(request):
        yield submit(burst)

    generator = OpenLoopGenerator(
        env=env,
        rate_rps=rate_rps,
        handler=handler,
        recorder=recorder,
        rng=rng,
    )
    generator.start()
    start = time.perf_counter()
    env.run(until=sim_seconds)
    elapsed = time.perf_counter() - start
    return {
        "events": env._seq,
        "requests": generator.completed,
        "wall_seconds": elapsed,
        "events_per_sec": env._seq / elapsed,
        "requests_per_wall_sec": generator.completed / elapsed,
    }


def bench_cold_point(measure_seconds: float) -> dict:
    """One taobench point end to end — the unit a sweep repeats."""
    from repro.exec.executor import execute_point
    from repro.exec.spec import RunPoint

    point = RunPoint(
        benchmark="taobench",
        sku="SKU2",
        measure_seconds=measure_seconds,
        warmup_seconds=0.3,
    )
    start = time.perf_counter()
    report = execute_point(point)
    elapsed = time.perf_counter() - start
    return {
        "wall_seconds": elapsed,
        "metric_value": report.metric_value,
    }


def _best_of(fn, repeat: int, key: str, lowest: bool = False) -> dict:
    """Run ``fn`` ``repeat`` times and keep the least-noisy sample.

    Microbenchmarks on a shared box are noisy in one direction only
    (interference slows them down), so best-of-N is the estimator of
    the uncontended cost.  The sample count is recorded in the result.
    """
    best = None
    for _ in range(repeat):
        result = fn()
        if (
            best is None
            or (result[key] < best[key] if lowest else result[key] > best[key])
        ):
            best = result
    best["repeats"] = repeat
    return best


def run_benches(quick: bool, repeat: int) -> dict:
    if quick:
        ring = _best_of(
            lambda: bench_timeout_ring(num_procs=200, sim_seconds=2.0),
            repeat, "events_per_sec")
        loop = _best_of(
            lambda: bench_request_loop(rate_rps=20_000.0, sim_seconds=2.0),
            repeat, "events_per_sec")
        point = bench_cold_point(measure_seconds=0.5)
    else:
        ring = _best_of(
            lambda: bench_timeout_ring(num_procs=500, sim_seconds=5.0),
            repeat, "events_per_sec")
        loop = _best_of(
            lambda: bench_request_loop(rate_rps=40_000.0, sim_seconds=5.0),
            repeat, "events_per_sec")
        point = _best_of(
            lambda: bench_cold_point(measure_seconds=1.5),
            repeat, "wall_seconds", lowest=True)
    return {"timeout_ring": ring, "request_loop": loop, "cold_point": point}


def check_against_baseline(
    results: dict, baseline_path: str, tolerance: float, quick: bool = False
) -> int:
    """Compare against the baseline recorded for the *same* mode.

    Quick and full runs use different scenario sizes and warm up
    differently, so their events/sec are not comparable; a quick check
    needs the ``quick`` baseline key (``--quick --label quick`` records
    it).
    """
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    reference = None
    if quick:
        reference = baseline.get("quick")
    reference = (
        reference or baseline.get("after") or baseline.get("before") or baseline
    )
    failed = False
    for name in ("timeout_ring", "request_loop"):
        base = reference[name]["events_per_sec"]
        now = results[name]["events_per_sec"]
        floor = base * (1.0 - tolerance)
        status = "ok" if now >= floor else "REGRESSED"
        if now < floor:
            failed = True
        print(
            f"{name:14s} {now:12.0f} ev/s vs baseline {base:12.0f} "
            f"(floor {floor:12.0f}) {status}"
        )
    return 1 if failed else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="short windows (the CI perf smoke)")
    parser.add_argument("--output", default="BENCH_engine.json")
    parser.add_argument(
        "--check", metavar="BASELINE",
        help="compare against a baseline JSON instead of writing; exit "
        "non-zero on a >tolerance regression",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed fractional events/sec regression for --check",
    )
    parser.add_argument(
        "--label", default="after",
        help="top-level key to store results under (default: after)",
    )
    parser.add_argument(
        "--repeat", type=int, default=1,
        help="samples per scenario; the best is kept (noise discipline)",
    )
    args = parser.parse_args()

    results = run_benches(args.quick, max(1, args.repeat))
    for name, r in results.items():
        if "events_per_sec" in r:
            print(f"{name:14s} {r['events_per_sec']:12.0f} events/s "
                  f"({r['events']} events in {r['wall_seconds']:.2f}s)")
        else:
            print(f"{name:14s} {r['wall_seconds']:12.2f} s")

    if args.check:
        return check_against_baseline(
            results, args.check, args.tolerance, quick=args.quick
        )

    try:
        with open(args.output) as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        payload = {}
    payload[args.label] = results
    if "after" in payload and "before" in payload:
        payload["speedup"] = {
            name: payload["after"][name]["events_per_sec"]
            / payload["before"][name]["events_per_sec"]
            for name in ("timeout_ring", "request_loop")
        }
        payload["speedup"]["cold_point"] = (
            payload["before"]["cold_point"]["wall_seconds"]
            / payload["after"]["cold_point"]["wall_seconds"]
        )
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
