"""Full-fidelity JSON codec for benchmark reports.

:meth:`BenchmarkReport.as_dict` is a *presentation* format — it
flattens the steady state into a summary and drops fields — so the
cache needs its own lossless encoding.  Python's JSON float handling
round-trips exactly (``repr`` based), which means a report that goes
through this codec is numerically identical to the original; the
executor routes *every* result through it (fresh, pooled, or cached)
so all three paths produce the same objects.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.hw.power import PowerBreakdown
from repro.uarch.cache_model import MissProfile
from repro.uarch.projection import SteadyState
from repro.uarch.tmam import TmamProfile
from repro.workloads.base import WorkloadResult

if TYPE_CHECKING:  # deferred: repro.core's __init__ imports repro.exec
    from repro.core.benchmark import BenchmarkReport


def _steady_to_dict(steady: SteadyState) -> Dict[str, object]:
    return {
        "workload": steady.workload,
        "sku": steady.sku,
        "cpu_util": steady.cpu_util,
        "kernel_frac": steady.kernel_frac,
        "effective_freq_ghz": steady.effective_freq_ghz,
        "misses": {
            "l1i_mpki": steady.misses.l1i_mpki,
            "l1d_mpki": steady.misses.l1d_mpki,
            "l2_mpki": steady.misses.l2_mpki,
            "llc_mpki": steady.misses.llc_mpki,
            "l1i_stall_mpki": steady.misses.l1i_stall_mpki,
        },
        "tmam": {
            "frontend": steady.tmam.frontend,
            "bad_speculation": steady.tmam.bad_speculation,
            "backend": steady.tmam.backend,
            "retiring": steady.tmam.retiring,
            "cycles_per_kinstr": steady.tmam.cycles_per_kinstr,
        },
        "ipc_per_physical_core": steady.ipc_per_physical_core,
        "instructions_per_second": steady.instructions_per_second,
        "memory_bandwidth_gbps": steady.memory_bandwidth_gbps,
        "memory_bandwidth_fraction": steady.memory_bandwidth_fraction,
        "power": {
            "core": steady.power.core,
            "soc": steady.power.soc,
            "dram": steady.power.dram,
            "other": steady.power.other,
        },
        "power_watts": steady.power_watts,
        "requests_per_second": steady.requests_per_second,
    }


def _steady_from_dict(payload: Dict[str, object]) -> SteadyState:
    misses = payload["misses"]
    tmam = payload["tmam"]
    power = payload["power"]
    return SteadyState(
        workload=payload["workload"],
        sku=payload["sku"],
        cpu_util=payload["cpu_util"],
        kernel_frac=payload["kernel_frac"],
        effective_freq_ghz=payload["effective_freq_ghz"],
        misses=MissProfile(**misses),
        tmam=TmamProfile(**tmam),
        ipc_per_physical_core=payload["ipc_per_physical_core"],
        instructions_per_second=payload["instructions_per_second"],
        memory_bandwidth_gbps=payload["memory_bandwidth_gbps"],
        memory_bandwidth_fraction=payload["memory_bandwidth_fraction"],
        power=PowerBreakdown(**power),
        power_watts=payload["power_watts"],
        requests_per_second=payload["requests_per_second"],
    )


def result_to_dict(result: WorkloadResult) -> Dict[str, object]:
    steady: Optional[Dict[str, object]] = None
    if result.steady is not None:
        steady = _steady_to_dict(result.steady)
    return {
        "workload": result.workload,
        "sku": result.sku,
        "kernel": result.kernel,
        "throughput_rps": result.throughput_rps,
        "latency": dict(result.latency),
        "cpu_util": result.cpu_util,
        "kernel_util": result.kernel_util,
        "scaling_efficiency": result.scaling_efficiency,
        "steady": steady,
        "extra": dict(result.extra),
        "timeline": [list(point) for point in result.timeline],
    }


def result_from_dict(payload: Dict[str, object]) -> WorkloadResult:
    steady = payload["steady"]
    return WorkloadResult(
        workload=payload["workload"],
        sku=payload["sku"],
        kernel=payload["kernel"],
        throughput_rps=payload["throughput_rps"],
        latency=dict(payload["latency"]),
        cpu_util=payload["cpu_util"],
        kernel_util=payload["kernel_util"],
        scaling_efficiency=payload["scaling_efficiency"],
        steady=None if steady is None else _steady_from_dict(steady),
        extra=dict(payload["extra"]),
        timeline=[list(point) for point in payload["timeline"]],
    )


def report_to_dict(report: BenchmarkReport) -> Dict[str, object]:
    """Lossless encoding of one report (unlike ``as_dict``)."""
    return {
        "benchmark": report.benchmark,
        "metric_name": report.metric_name,
        "metric_value": report.metric_value,
        "result": result_to_dict(report.result),
        "system": dict(report.system),
        "hooks": {name: dict(sec) for name, sec in report.hook_sections.items()},
        "score": report.score,
    }


def report_from_dict(payload: Dict[str, object]) -> "BenchmarkReport":
    from repro.core.benchmark import BenchmarkReport

    return BenchmarkReport(
        benchmark=payload["benchmark"],
        metric_name=payload["metric_name"],
        metric_value=payload["metric_value"],
        result=result_from_dict(payload["result"]),
        system=dict(payload["system"]),
        hook_sections={n: dict(s) for n, s in payload["hooks"].items()},
        score=payload["score"],
    )
