"""Full-fidelity codecs for benchmark reports: JSON dicts and bytes.

:meth:`BenchmarkReport.as_dict` is a *presentation* format — it
flattens the steady state into a summary and drops fields — so the
cache needs its own lossless encoding.  Python's JSON float handling
round-trips exactly (``repr`` based), which means a report that goes
through this codec is numerically identical to the original; the
executor routes *every* result through it (fresh, pooled, or cached)
so all three paths produce the same objects.

On top of the dict form sits a compact binary codec
(:func:`report_to_bytes` / :func:`report_from_bytes`): a tagged,
varint-framed encoding of the same payload tree, with floats carried
as raw IEEE-754 doubles (exact by construction, including negative
zero and subnormals).  The warm worker pool ships results through it
over shared memory instead of pickling nested dicts through a pool
pipe — roughly a third the bytes of the JSON text for a typical
report, with no parsing ambiguity.

Shard sub-run payloads additionally carry the recorder's mergeable
state (sorted samples or sparse histogram buckets) nested in
``result.extra`` — both codecs transport it losslessly, which is what
makes the shard merge byte-identical across the in-process, cold-pool,
and warm-pool execution paths.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.hw.power import PowerBreakdown
from repro.uarch.cache_model import MissProfile
from repro.uarch.projection import SteadyState
from repro.uarch.tmam import TmamProfile
from repro.workloads.base import WorkloadResult

if TYPE_CHECKING:  # deferred: repro.core's __init__ imports repro.exec
    from repro.core.benchmark import BenchmarkReport


def _steady_to_dict(steady: SteadyState) -> Dict[str, object]:
    return {
        "workload": steady.workload,
        "sku": steady.sku,
        "cpu_util": steady.cpu_util,
        "kernel_frac": steady.kernel_frac,
        "effective_freq_ghz": steady.effective_freq_ghz,
        "misses": {
            "l1i_mpki": steady.misses.l1i_mpki,
            "l1d_mpki": steady.misses.l1d_mpki,
            "l2_mpki": steady.misses.l2_mpki,
            "llc_mpki": steady.misses.llc_mpki,
            "l1i_stall_mpki": steady.misses.l1i_stall_mpki,
        },
        "tmam": {
            "frontend": steady.tmam.frontend,
            "bad_speculation": steady.tmam.bad_speculation,
            "backend": steady.tmam.backend,
            "retiring": steady.tmam.retiring,
            "cycles_per_kinstr": steady.tmam.cycles_per_kinstr,
        },
        "ipc_per_physical_core": steady.ipc_per_physical_core,
        "instructions_per_second": steady.instructions_per_second,
        "memory_bandwidth_gbps": steady.memory_bandwidth_gbps,
        "memory_bandwidth_fraction": steady.memory_bandwidth_fraction,
        "power": {
            "core": steady.power.core,
            "soc": steady.power.soc,
            "dram": steady.power.dram,
            "other": steady.power.other,
        },
        "power_watts": steady.power_watts,
        "requests_per_second": steady.requests_per_second,
    }


def _steady_from_dict(payload: Dict[str, object]) -> SteadyState:
    misses = payload["misses"]
    tmam = payload["tmam"]
    power = payload["power"]
    return SteadyState(
        workload=payload["workload"],
        sku=payload["sku"],
        cpu_util=payload["cpu_util"],
        kernel_frac=payload["kernel_frac"],
        effective_freq_ghz=payload["effective_freq_ghz"],
        misses=MissProfile(**misses),
        tmam=TmamProfile(**tmam),
        ipc_per_physical_core=payload["ipc_per_physical_core"],
        instructions_per_second=payload["instructions_per_second"],
        memory_bandwidth_gbps=payload["memory_bandwidth_gbps"],
        memory_bandwidth_fraction=payload["memory_bandwidth_fraction"],
        power=PowerBreakdown(**power),
        power_watts=payload["power_watts"],
        requests_per_second=payload["requests_per_second"],
    )


def result_to_dict(result: WorkloadResult) -> Dict[str, object]:
    steady: Optional[Dict[str, object]] = None
    if result.steady is not None:
        steady = _steady_to_dict(result.steady)
    return {
        "workload": result.workload,
        "sku": result.sku,
        "kernel": result.kernel,
        "throughput_rps": result.throughput_rps,
        "latency": dict(result.latency),
        "cpu_util": result.cpu_util,
        "kernel_util": result.kernel_util,
        "scaling_efficiency": result.scaling_efficiency,
        "steady": steady,
        "extra": dict(result.extra),
        "timeline": [list(point) for point in result.timeline],
    }


def result_from_dict(payload: Dict[str, object]) -> WorkloadResult:
    steady = payload["steady"]
    return WorkloadResult(
        workload=payload["workload"],
        sku=payload["sku"],
        kernel=payload["kernel"],
        throughput_rps=payload["throughput_rps"],
        latency=dict(payload["latency"]),
        cpu_util=payload["cpu_util"],
        kernel_util=payload["kernel_util"],
        scaling_efficiency=payload["scaling_efficiency"],
        steady=None if steady is None else _steady_from_dict(steady),
        extra=dict(payload["extra"]),
        timeline=[list(point) for point in payload["timeline"]],
    )


def report_to_dict(report: BenchmarkReport) -> Dict[str, object]:
    """Lossless encoding of one report (unlike ``as_dict``)."""
    return {
        "benchmark": report.benchmark,
        "metric_name": report.metric_name,
        "metric_value": report.metric_value,
        "result": result_to_dict(report.result),
        "system": dict(report.system),
        "hooks": {name: dict(sec) for name, sec in report.hook_sections.items()},
        "score": report.score,
    }


def report_from_dict(payload: Dict[str, object]) -> "BenchmarkReport":
    from repro.core.benchmark import BenchmarkReport

    return BenchmarkReport(
        benchmark=payload["benchmark"],
        metric_name=payload["metric_name"],
        metric_value=payload["metric_value"],
        result=result_from_dict(payload["result"]),
        system=dict(payload["system"]),
        hook_sections={n: dict(s) for n, s in payload["hooks"].items()},
        score=payload["score"],
    )


# -- binary codec --------------------------------------------------------------
#
# A minimal tagged binary format for the payload trees the dict codec
# produces: None, bools, ints, floats, strings, lists, and dicts with
# string keys.  Ints are zigzag varints (arbitrary precision), floats
# are big-endian IEEE-754 doubles (bit-exact round trip), strings are
# varint-length UTF-8.  Dict keys skip the type tag — they are always
# strings in a report payload.

#: Magic prefix of a binary report: codec name + format version.
BINARY_MAGIC = b"DCRB\x01"

_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_LIST = 0x06
_T_DICT = 0x07

_pack_double = struct.Struct(">d").pack
_unpack_double = struct.Struct(">d").unpack_from


def _write_uvarint(out: bytearray, value: int) -> None:
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _read_uvarint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _encode_value(out: bytearray, value: object) -> None:
    # bool first: it is a subclass of int.
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        out.append(_T_INT)
        _write_uvarint(out, _zigzag(value))
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out += _pack_double(value)
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out.append(_T_STR)
        _write_uvarint(out, len(encoded))
        out += encoded
    elif isinstance(value, (list, tuple)):
        out.append(_T_LIST)
        _write_uvarint(out, len(value))
        for item in value:
            _encode_value(out, item)
    elif isinstance(value, dict):
        out.append(_T_DICT)
        _write_uvarint(out, len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"binary report codec requires str dict keys, got {key!r}"
                )
            encoded = key.encode("utf-8")
            _write_uvarint(out, len(encoded))
            out += encoded
            _encode_value(out, item)
    else:
        raise TypeError(
            f"binary report codec cannot encode {type(value).__name__}: {value!r}"
        )


def _zigzag(value: int) -> int:
    """Map signed to unsigned, small magnitudes first (any precision)."""
    return value << 1 if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def _decode_value(data: bytes, pos: int) -> Tuple[object, int]:
    tag = data[pos]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_INT:
        raw, pos = _read_uvarint(data, pos)
        return _unzigzag(raw), pos
    if tag == _T_FLOAT:
        return _unpack_double(data, pos)[0], pos + 8
    if tag == _T_STR:
        length, pos = _read_uvarint(data, pos)
        return data[pos : pos + length].decode("utf-8"), pos + length
    if tag == _T_LIST:
        count, pos = _read_uvarint(data, pos)
        items = []
        for _ in range(count):
            item, pos = _decode_value(data, pos)
            items.append(item)
        return items, pos
    if tag == _T_DICT:
        count, pos = _read_uvarint(data, pos)
        mapping: Dict[str, object] = {}
        for _ in range(count):
            length, pos = _read_uvarint(data, pos)
            key = data[pos : pos + length].decode("utf-8")
            pos += length
            mapping[key], pos = _decode_value(data, pos)
        return mapping, pos
    raise ValueError(f"binary report codec: unknown tag 0x{tag:02x} at {pos - 1}")


def dict_to_bytes(payload: Dict[str, object]) -> bytes:
    """Compact binary encoding of one lossless report payload dict."""
    out = bytearray(BINARY_MAGIC)
    _encode_value(out, payload)
    return bytes(out)


def dict_from_bytes(data: bytes) -> Dict[str, object]:
    """Inverse of :func:`dict_to_bytes`; validates the magic prefix."""
    if data[: len(BINARY_MAGIC)] != BINARY_MAGIC:
        raise ValueError(
            "not a binary report payload (bad magic "
            f"{bytes(data[: len(BINARY_MAGIC)])!r})"
        )
    value, pos = _decode_value(bytes(data), len(BINARY_MAGIC))
    if pos != len(data):
        raise ValueError(
            f"binary report payload has {len(data) - pos} trailing byte(s)"
        )
    if not isinstance(value, dict):
        raise ValueError("binary report payload did not decode to a dict")
    return value


def report_to_bytes(report: BenchmarkReport) -> bytes:
    """Lossless binary encoding of one report (see :data:`BINARY_MAGIC`)."""
    return dict_to_bytes(report_to_dict(report))


def report_from_bytes(data: bytes) -> "BenchmarkReport":
    """Decode a report encoded by :func:`report_to_bytes`."""
    return report_from_dict(dict_from_bytes(data))
