"""Sweep execution subsystem: parallel fan-out plus a persistent cache.

The paper's methodology is one large cross-product sweep — benchmarks
x SKUs x kernels x ablations — and DCPerf itself parallelizes
benchmark instances across many-core hosts (Section 2.2).  This
package makes every sweep in the repo parallel and memoized:

* :class:`~repro.exec.spec.RunPoint` — one immutable point of the
  sweep grid, content-fingerprinted for caching.
* :class:`~repro.exec.cache.RunCache` — a persistent JSON store of
  finished :class:`~repro.core.benchmark.BenchmarkReport`s, keyed by
  run fingerprint (which covers the model parameters and the package
  source, so any edit invalidates stale entries).
* :class:`~repro.exec.executor.SweepExecutor` — expands, deduplicates,
  fans points out over a process pool, and merges results back in spec
  order so parallel output is identical to serial.
* :class:`~repro.exec.workerpool.WarmPool` — a process-global pool of
  persistent, fingerprint-keyed worker processes with a shared-memory
  binary-codec result channel; repeated sweeps reuse warm workers
  instead of cold-starting a pool per sweep.
* :mod:`repro.exec.schedule` — cost-model-driven scheduling: a
  persistent :class:`~repro.exec.schedule.CostLedger` of measured
  per-point wall times feeds longest-predicted-first dispatch,
  queue-aware stealing, and deterministic straggler auto-sharding, so
  the makespan of an imbalanced sweep is optimized, not accidental.
"""

from repro.exec.cache import RunCache, cache_from_env, default_cache_dir
from repro.exec.executor import (
    SweepExecutor,
    SweepStats,
    auto_workers,
    execute_point,
)
from repro.exec.schedule import (
    CostLedger,
    ledger_for_cache,
    order_lpt,
    plan_auto_shards,
)
from repro.exec.serialize import (
    report_from_bytes,
    report_from_dict,
    report_to_bytes,
    report_to_dict,
)
from repro.exec.spec import (
    RunPoint,
    code_fingerprint,
    expand_grid,
    model_fingerprint,
    pool_key,
    run_fingerprint,
)
from repro.exec.workerpool import (
    WarmPool,
    get_warm_pool,
    shutdown_warm_pool,
    warm_pool_enabled,
)

__all__ = [
    "CostLedger",
    "RunCache",
    "RunPoint",
    "SweepExecutor",
    "SweepStats",
    "WarmPool",
    "auto_workers",
    "cache_from_env",
    "code_fingerprint",
    "default_cache_dir",
    "execute_point",
    "expand_grid",
    "get_warm_pool",
    "ledger_for_cache",
    "order_lpt",
    "plan_auto_shards",
    "model_fingerprint",
    "pool_key",
    "report_from_bytes",
    "report_from_dict",
    "report_to_bytes",
    "report_to_dict",
    "run_fingerprint",
    "shutdown_warm_pool",
    "warm_pool_enabled",
]
