"""Sweep execution subsystem: parallel fan-out plus a persistent cache.

The paper's methodology is one large cross-product sweep — benchmarks
x SKUs x kernels x ablations — and DCPerf itself parallelizes
benchmark instances across many-core hosts (Section 2.2).  This
package makes every sweep in the repo parallel and memoized:

* :class:`~repro.exec.spec.RunPoint` — one immutable point of the
  sweep grid, content-fingerprinted for caching.
* :class:`~repro.exec.cache.RunCache` — a persistent JSON store of
  finished :class:`~repro.core.benchmark.BenchmarkReport`s, keyed by
  run fingerprint (which covers the model parameters and the package
  source, so any edit invalidates stale entries).
* :class:`~repro.exec.executor.SweepExecutor` — expands, deduplicates,
  fans points out over a process pool, and merges results back in spec
  order so parallel output is identical to serial.
"""

from repro.exec.cache import RunCache, cache_from_env, default_cache_dir
from repro.exec.executor import SweepExecutor, SweepStats, execute_point
from repro.exec.spec import (
    RunPoint,
    code_fingerprint,
    expand_grid,
    model_fingerprint,
    run_fingerprint,
)

__all__ = [
    "RunCache",
    "RunPoint",
    "SweepExecutor",
    "SweepStats",
    "cache_from_env",
    "code_fingerprint",
    "default_cache_dir",
    "execute_point",
    "expand_grid",
    "model_fingerprint",
    "run_fingerprint",
]
