"""Warm worker pool with shared-memory result transport.

Every sweep used to build a fresh ``ProcessPoolExecutor`` per
``run_sweep`` call: each worker paid process startup plus the
per-process warm-setup of every workload model it touched, per sweep.
This module keeps a **process-global pool of persistent workers**
(:class:`WarmPool`) alive across sweeps instead — the ModelOps
warm-isolated-subprocess-pool shape — so repeated sweeps reuse
already-warm processes:

* **Keyed workers** — each worker is tagged with the model/code
  fingerprint it was spawned under (:func:`repro.exec.spec.pool_key`).
  When the source tree or calibrated parameters change, the key
  changes and stale workers self-retire on the next acquire, exactly
  mirroring the run cache's self-invalidation.
* **Shared-memory results** — workers encode each finished report with
  the compact binary codec (:func:`repro.exec.serialize.dict_to_bytes`)
  and push it through a single-producer/single-consumer ring in
  ``multiprocessing.shared_memory``; only a tiny completion record
  crosses the pipe.  Where shared memory is unavailable (or disabled
  via ``DCPERF_WARM_POOL_SHM=0``) the bytes ride the pipe instead —
  same codec, same results.
* **Workload-affinity dispatch** — warm-setup memos (generated
  datasets, validation results, pre-warmed cache sets) live per
  process, so dispatch prefers handing a point to a worker that has
  run its workload before, falling back to any idle worker.  Repeat
  sweeps land on already-warm processes even when spec order changes.
* **Streaming completions** — results surface through an ``on_result``
  callback as each point finishes, so callers can persist per point
  and render long sweeps incrementally.
* **Per-worker fault recovery** — a crashed worker (pipe EOF) or a
  straggler past the per-point deadline is killed and respawned
  *individually*; the rest of the pool keeps draining the sweep.  No
  stragglers outlive their deadline (the cold pool leaked them until
  interpreter exit).

Environment knobs::

    DCPERF_WARM_POOL=0         disable the warm pool (cold pools again)
    DCPERF_WARM_POOL_SIZE=N    cap the number of persistent workers
    DCPERF_WARM_POOL_SHM=0     force pipe transport (no shared memory)
    DCPERF_SHM_RING_BYTES=N    per-worker ring capacity (default 1 MiB)
"""

from __future__ import annotations

import atexit
import os
import pickle
import struct
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from multiprocessing import get_context
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.exec.serialize import dict_from_bytes, dict_to_bytes
from repro.exec.spec import RunPoint, pool_key

try:  # gate: absent on some minimal builds; the pipe fallback covers it
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - depends on interpreter build
    _shared_memory = None  # type: ignore[assignment]

#: Test seam shared with the in-process path: a per-point sleep that
#: (unlike a monkeypatch) can be carried into pool workers.
FAULT_DELAY_ENV = "DCPERF_FAULT_POINT_DELAY"

WARM_POOL_ENV = "DCPERF_WARM_POOL"
WARM_POOL_SIZE_ENV = "DCPERF_WARM_POOL_SIZE"
WARM_POOL_SHM_ENV = "DCPERF_WARM_POOL_SHM"
RING_BYTES_ENV = "DCPERF_SHM_RING_BYTES"

DEFAULT_RING_BYTES = 1 << 20

_MSG_RUN = "run"
_MSG_STOP = "stop"
_MSG_OK = "ok"
_MSG_ERR = "err"

_VIA_SHM = "shm"
_VIA_PIPE = "pipe"


def _env_flag(name: str, default: bool = True) -> bool:
    raw = os.environ.get(name, "").strip().lower()
    if not raw:
        return default
    return raw not in ("0", "false", "off", "no")


def warm_pool_enabled() -> bool:
    """Whether sweeps should use the warm pool (default: yes)."""
    return _env_flag(WARM_POOL_ENV, default=True)


def _affinity_key(point: RunPoint) -> Tuple[str, int, int]:
    """Exact-affinity identity of a point for dispatch purposes."""
    return (point.workload_name, point.seed, point.shard_index)


def _pool_size_cap() -> Optional[int]:
    raw = os.environ.get(WARM_POOL_SIZE_ENV, "").strip()
    if not raw:
        return None
    size = int(raw)
    return size if size >= 1 else None


def _ring_bytes() -> int:
    raw = os.environ.get(RING_BYTES_ENV, "").strip()
    return max(4096, int(raw)) if raw else DEFAULT_RING_BYTES


# -- shared-memory ring --------------------------------------------------------
#
# Single producer (the worker), single consumer (the parent).  The
# first 16 bytes hold two little-endian u64 counters of *total* bytes
# ever written / read; each side owns exactly one counter, so no lock
# is needed.  Records are [u32 length][payload] and wrap byte-wise
# around the data region.  The producer publishes its counter only
# after the full record is copied, so the consumer never observes a
# partial record; the consumer is only told to read (via the pipe
# completion message) after publication, so it never spins.

_HEADER = 16
_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")


class _RingWriter:
    def __init__(self, buf: memoryview) -> None:
        self._buf = buf
        self._cap = len(buf) - _HEADER
        self._written = _U64.unpack_from(buf, 0)[0]

    def _read_total(self) -> int:
        return _U64.unpack_from(self._buf, 8)[0]

    def _copy_in(self, data: bytes) -> None:
        pos = self._written % self._cap
        first = min(len(data), self._cap - pos)
        self._buf[_HEADER + pos : _HEADER + pos + first] = data[:first]
        if first < len(data):
            self._buf[_HEADER : _HEADER + len(data) - first] = data[first:]
        self._written += len(data)

    def write(self, data: bytes, wait_s: float = 0.25) -> bool:
        """Copy one framed record in; ``False`` if it cannot fit."""
        need = _U32.size + len(data)
        if need > self._cap:
            return False
        deadline = time.monotonic() + wait_s
        while self._cap - (self._written - self._read_total()) < need:
            if time.monotonic() > deadline:
                return False
            time.sleep(0.0005)
        self._copy_in(_U32.pack(len(data)))
        self._copy_in(data)
        _U64.pack_into(self._buf, 0, self._written)
        return True


class _RingReader:
    def __init__(self, buf: memoryview) -> None:
        self._buf = buf
        self._cap = len(buf) - _HEADER
        self._read = _U64.unpack_from(buf, 8)[0]

    def _copy_out(self, length: int) -> bytes:
        pos = self._read % self._cap
        first = min(length, self._cap - pos)
        out = bytes(self._buf[_HEADER + pos : _HEADER + pos + first])
        if first < length:
            out += bytes(self._buf[_HEADER : _HEADER + length - first])
        self._read += length
        return out

    def read(self) -> bytes:
        """Pop the next record (the completion message guarantees one)."""
        length = _U32.unpack(self._copy_out(_U32.size))[0]
        data = self._copy_out(length)
        _U64.pack_into(self._buf, 8, self._read)
        return data


# -- worker process ------------------------------------------------------------


def _encode_exc(exc: BaseException) -> Tuple[str, bytes]:
    try:
        return "pickle", pickle.dumps(exc)
    except Exception:
        import traceback

        detail = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
        return "str", detail.encode("utf-8", "replace")


def _decode_exc(encoded: Tuple[str, bytes]) -> BaseException:
    kind, body = encoded
    if kind == "pickle":
        try:
            exc = pickle.loads(body)
            if isinstance(exc, BaseException):
                return exc
        except Exception:
            pass
        body = repr(body).encode("utf-8")
    return RuntimeError(
        "warm pool worker raised:\n" + body.decode("utf-8", "replace")
    )


def _worker_main(conn, shm_name: Optional[str]) -> None:
    """Persistent worker loop: point dicts in, binary reports out.

    Top level (picklable) so the pool works under any multiprocessing
    start method.  The heavy imports happen once, here — that is the
    whole point of keeping the process warm.
    """
    from repro.exec.executor import _run_point_payload

    ring = None
    shm = None
    if shm_name is not None and _shared_memory is not None:
        try:
            shm = _shared_memory.SharedMemory(name=shm_name)
            ring = _RingWriter(shm.buf)
        except (OSError, ValueError):
            ring = None
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError, KeyboardInterrupt):
                break
            if message[0] == _MSG_STOP:
                break
            _, task_id, point_payload, delay = message
            try:
                # Mirror the parent's test-delay seam into this process
                # per task: a warm worker may have been spawned before
                # (or after) the parent set the variable.
                if delay:
                    os.environ[FAULT_DELAY_ENV] = delay
                else:
                    os.environ.pop(FAULT_DELAY_ENV, None)
                payload = _run_point_payload(RunPoint.from_dict(point_payload))
                data = dict_to_bytes(payload)
            except BaseException as exc:
                conn.send((_MSG_ERR, task_id, _encode_exc(exc)))
                continue
            if ring is not None and ring.write(data):
                conn.send((_MSG_OK, task_id, len(data), _VIA_SHM))
            else:
                # Oversized record or no shared memory: same bytes,
                # shipped through the pipe instead.
                conn.send((_MSG_OK, task_id, data, _VIA_PIPE))
    finally:
        conn.close()
        if shm is not None:
            shm.close()


# -- parent-side pool ----------------------------------------------------------


@dataclass
class PoolRunStats:
    """Accounting for one :meth:`WarmPool.run_points` call."""

    workers: int = 0
    spawned: int = 0
    reused: int = 0
    respawned: int = 0
    bytes_shipped: int = 0
    #: Points taken by a worker with no affinity to them while some
    #: busy worker *was* affine — queue-aware stealing beat idling.
    steals: int = 0

    def merge_into(self, other: "PoolRunStats") -> None:
        other.workers = max(other.workers, self.workers)
        other.spawned += self.spawned
        other.reused += self.reused
        other.respawned += self.respawned
        other.bytes_shipped += self.bytes_shipped
        other.steals += self.steals

    def as_dict(self) -> Dict[str, int]:
        return {
            "workers": self.workers,
            "spawned": self.spawned,
            "reused": self.reused,
            "respawned": self.respawned,
            "bytes_shipped": self.bytes_shipped,
            "steals": self.steals,
        }


class _Worker:
    """One persistent worker process plus its transport endpoints."""

    def __init__(self, key: str, ctx, ring_bytes: int, use_shm: bool) -> None:
        self.key = key
        #: Workloads this process has already run — its per-process
        #: warm-setup memos (datasets, validation results, warm cache
        #: sets) make repeats much cheaper, so dispatch prefers them.
        self.seen: set = set()
        #: Exact ``(workload, seed, shard_index)`` triples this process
        #: has run.  Warm-setup memos key on the RNG entry state, which
        #: depends on the (derived) seed — so for sharded reruns the
        #: same shard should land on the same worker, not just the same
        #: workload.
        self.seen_exact: set = set()
        self.shm = None
        self.reader: Optional[_RingReader] = None
        shm_name = None
        if use_shm and _shared_memory is not None:
            try:
                self.shm = _shared_memory.SharedMemory(
                    create=True, size=_HEADER + ring_bytes
                )
                self.shm.buf[:_HEADER] = b"\x00" * _HEADER
                shm_name = self.shm.name
            except (OSError, ValueError):
                self.shm = None
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, shm_name),
            name="dcperf-warm-worker",
            daemon=True,
        )
        self.proc.start()
        child_conn.close()
        if self.shm is not None:
            self.reader = _RingReader(self.shm.buf)

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid

    def alive(self) -> bool:
        return self.proc.is_alive()

    def _release(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.shm is not None:
            self.reader = None
            try:
                self.shm.close()
                self.shm.unlink()
            except (OSError, FileNotFoundError):
                pass
            self.shm = None

    def stop(self, grace_s: float = 1.0) -> None:
        """Cooperative shutdown; escalates to kill after ``grace_s``."""
        try:
            self.conn.send((_MSG_STOP,))
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(timeout=grace_s)
        if self.proc.is_alive():
            self.proc.kill()
            self.proc.join(timeout=grace_s)
        self._release()

    def kill(self) -> None:
        """Immediate SIGKILL — for stragglers and crashed workers."""
        if self.proc.is_alive():
            self.proc.kill()
        self.proc.join(timeout=1.0)
        self._release()


class WarmPool:
    """A keyed pool of persistent workers, reused across sweeps.

    One pool instance normally serves the whole process (see
    :func:`get_warm_pool`); ``SweepExecutor`` acquires workers from it
    per sweep instead of constructing a cold ``ProcessPoolExecutor``.
    """

    def __init__(
        self,
        size: Optional[int] = None,
        use_shm: Optional[bool] = None,
        ring_bytes: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        self.size = size if size is not None else _pool_size_cap()
        self.use_shm = (
            use_shm
            if use_shm is not None
            else _env_flag(WARM_POOL_SHM_ENV, default=True)
        ) and _shared_memory is not None
        self.ring_bytes = ring_bytes if ring_bytes is not None else _ring_bytes()
        self._ctx = get_context(start_method) if start_method else get_context()
        self._workers: List[_Worker] = []
        self._task_seq = 0
        self.closed = False
        #: Lifetime totals across every ``run_points`` call.
        self.stats = PoolRunStats()

    # -- lifecycle ------------------------------------------------------------
    def worker_pids(self) -> List[int]:
        return [w.pid for w in self._workers if w.pid is not None]

    def alive_count(self) -> int:
        return sum(1 for w in self._workers if w.alive())

    def close(self) -> None:
        """Stop every worker and release their shared-memory rings."""
        for worker in self._workers:
            worker.stop()
        self._workers = []
        self.closed = True

    def _spawn(self, key: str) -> _Worker:
        return _Worker(key, self._ctx, self.ring_bytes, self.use_shm)

    def _respawn(self, worker: _Worker, run: PoolRunStats) -> _Worker:
        """Kill one worker and replace it in place with a fresh one."""
        worker.kill()
        replacement = self._spawn(worker.key)
        self._workers[self._workers.index(worker)] = replacement
        run.respawned += 1
        return replacement

    def _ensure(self, key: str, count: int, run: PoolRunStats) -> List[_Worker]:
        """``count`` live workers keyed ``key``; stale ones self-retire."""
        if self.closed:
            raise RuntimeError("WarmPool is closed")
        if self.size is not None:
            count = max(1, min(count, self.size))
        keep: List[_Worker] = []
        for worker in self._workers:
            if worker.key == key and worker.alive():
                keep.append(worker)
            else:
                # Stale fingerprint or dead process: retire it.
                worker.stop(grace_s=0.2)
        run.reused += min(len(keep), count)
        while len(keep) < count:
            keep.append(self._spawn(key))
            run.spawned += 1
        self._workers = keep
        run.workers = max(run.workers, count)
        return keep[:count]

    # -- execution ------------------------------------------------------------
    def run_points(
        self,
        todo: Sequence[Tuple[str, RunPoint]],
        workers: int,
        key: Optional[str] = None,
        timeout_s: Optional[float] = None,
        on_result: Optional[
            Callable[[str, RunPoint, Dict[str, object]], None]
        ] = None,
        predict: Optional[Callable[[str, RunPoint], float]] = None,
        on_timing: Optional[Callable[[str, RunPoint, float], None]] = None,
    ) -> Tuple[
        Dict[str, Dict[str, object]],
        List[Tuple[str, RunPoint]],
        int,
        PoolRunStats,
    ]:
        """Drain ``todo`` over the pool, streaming completions.

        Returns ``(completed payloads, lost points, timeout count,
        per-call stats)``.  Lost points are those whose worker crashed
        or blew the per-point deadline — in both cases that one worker
        is killed and respawned while the rest keep working; the caller
        re-runs lost points in-process.  Application-level exceptions
        propagate (they would fail in-process too); the pool stays
        coherent afterwards because mid-task workers are respawned
        before the exception leaves this frame.

        ``predict`` (``(fingerprint, point) -> seconds``) switches
        dispatch to cost-aware mode: ``todo`` is assumed to arrive
        longest-predicted-first (:func:`repro.exec.schedule.order_lpt`)
        and the affinity tiers only apply *within a predicted-cost
        band* of the queue head — a worker may grab an affine point in
        the band, but never defers the head for something far smaller.
        When the head is another busy worker's affine point, the idle
        worker steals it instead of idling (counted in ``steals``).
        Without ``predict``, dispatch is the historical affinity-first
        FIFO scan.  Either way results are keyed by fingerprint, so
        completion order never changes the merged output.

        ``on_timing`` observes ``(fingerprint, point, wall seconds)``
        per completed point — the feed for the runtime cost ledger.
        """
        run = PoolRunStats()
        completed: Dict[str, Dict[str, object]] = {}
        lost: List[Tuple[str, RunPoint]] = []
        timeouts = 0
        if not todo:
            return completed, lost, timeouts, run
        pool_workers = self._ensure(
            key or pool_key(), max(1, min(workers, len(todo))), run
        )
        pending = deque(todo)
        delay = os.environ.get(FAULT_DELAY_ENV, "")
        costs: Optional[Dict[str, float]] = (
            {fp: predict(fp, point) for fp, point in todo}
            if predict is not None
            else None
        )
        # worker -> (task_id, fingerprint, point, deadline, started)
        inflight: Dict[
            _Worker, Tuple[int, str, RunPoint, Optional[float], float]
        ] = {}

        def take_fifo(worker: _Worker) -> Tuple[str, RunPoint]:
            """Historical dispatch: affinity-first scan of the whole
            queue, falling back to the head — a worker never idles
            while work is pending."""
            for index, (fp, point) in enumerate(pending):
                if _affinity_key(point) in worker.seen_exact:
                    del pending[index]
                    return fp, point
            for index, (fp, point) in enumerate(pending):
                if point.workload_name in worker.seen:
                    del pending[index]
                    return fp, point
            return pending.popleft()

        def take_lpt(worker: _Worker) -> Tuple[str, RunPoint]:
            """Cost-aware dispatch: affinity only within the head's
            predicted-cost band, stealing over idling past it."""
            from repro.exec.schedule import AFFINITY_COST_BAND

            head_cost = costs.get(pending[0][0], 0.0)
            floor = head_cost / AFFINITY_COST_BAND
            exact_index = None
            workload_index = None
            for index, (fp, point) in enumerate(pending):
                if costs.get(fp, 0.0) < floor:
                    # Too small to justify deferring the head: taking
                    # it first would forfeit the LPT makespan bound.
                    continue
                if _affinity_key(point) in worker.seen_exact:
                    exact_index = index
                    break
                if (
                    workload_index is None
                    and point.workload_name in worker.seen
                ):
                    workload_index = index
            index = exact_index if exact_index is not None else workload_index
            if index is not None:
                fp, point = pending[index]
                del pending[index]
                return fp, point
            # No affine work in the band.  Take the head even when it
            # is another (busy) worker's affine point: the thief pays
            # that workload's warm-setup once, the sweep keeps all its
            # workers busy — stealing beats idling.
            fp, point = pending.popleft()
            if point.workload_name not in worker.seen and any(
                point.workload_name in other.seen for other in inflight
            ):
                run.steals += 1
            return fp, point

        take_for = take_fifo if costs is None else take_lpt

        def dispatch(worker: _Worker) -> None:
            while pending:
                fp, point = take_for(worker)
                self._task_seq += 1
                task_id = self._task_seq
                try:
                    worker.conn.send((_MSG_RUN, task_id, point.as_dict(), delay))
                except (BrokenPipeError, OSError):
                    pending.appendleft((fp, point))
                    worker = self._respawn(worker, run)
                    continue
                worker.seen.add(point.workload_name)
                worker.seen_exact.add(_affinity_key(point))
                now = time.monotonic()
                deadline = now + timeout_s if timeout_s is not None else None
                inflight[worker] = (task_id, fp, point, deadline, now)
                return

        for worker in pool_workers:
            dispatch(worker)

        try:
            while inflight:
                now = time.monotonic()
                deadlines = [
                    entry[3] for entry in inflight.values() if entry[3] is not None
                ]
                wait_s = (
                    max(0.0, min(deadlines) - now) if deadlines else None
                )
                ready = mp_connection.wait(
                    [w.conn for w in inflight], timeout=wait_s
                )
                if not ready:
                    # Deadline expired with nothing to read: kill and
                    # respawn exactly the workers past their deadline.
                    now = time.monotonic()
                    stragglers = [
                        w
                        for w, entry in inflight.items()
                        if entry[3] is not None and entry[3] <= now
                    ]
                    for worker in stragglers:
                        _, fp, point, _, _ = inflight.pop(worker)
                        timeouts += 1
                        lost.append((fp, point))
                        dispatch(self._respawn(worker, run))
                    continue
                by_conn = {w.conn: w for w in inflight}
                for conn in ready:
                    worker = by_conn[conn]
                    task_id, fp, point, _, started_at = inflight[worker]
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        # Worker crashed mid-task (OOM-kill, segfault):
                        # only this worker is replaced.
                        inflight.pop(worker)
                        lost.append((fp, point))
                        dispatch(self._respawn(worker, run))
                        continue
                    kind = message[0]
                    if kind == _MSG_ERR:
                        inflight.pop(worker)
                        raise _decode_exc(message[2])
                    _, done_id, body, transport = message
                    if transport == _VIA_SHM and worker.reader is not None:
                        data = worker.reader.read()
                    else:
                        data = body
                    if done_id != task_id:
                        # Stale completion from an abandoned task; the
                        # ring record (if any) is already consumed.
                        continue
                    run.bytes_shipped += len(data)
                    inflight.pop(worker)
                    payload = dict_from_bytes(data)
                    completed[fp] = payload
                    if on_timing is not None:
                        on_timing(
                            fp, point, time.monotonic() - started_at
                        )
                    if on_result is not None:
                        on_result(fp, point, payload)
                    dispatch(worker)
        except BaseException:
            # Leave no worker mid-task: the next run_points call must
            # start from an idle pool with an empty transport.
            for worker in list(inflight):
                self._respawn(worker, run)
            raise
        finally:
            run.merge_into(self.stats)

        # Only reachable with points undone if every dispatch attempt
        # failed (e.g. workers dying faster than they respawn).
        lost.extend(pending)
        return completed, lost, timeouts, run


# -- process-global pool -------------------------------------------------------

_global_pool: Optional[WarmPool] = None


def get_warm_pool() -> WarmPool:
    """The process-global pool, created (and atexit-hooked) on demand."""
    global _global_pool
    if _global_pool is None or _global_pool.closed:
        _global_pool = WarmPool()
    return _global_pool


def shutdown_warm_pool() -> None:
    """Close the global pool (idempotent; also runs atexit)."""
    global _global_pool
    if _global_pool is not None:
        _global_pool.close()
        _global_pool = None


atexit.register(shutdown_warm_pool)
