"""Intra-run sharding: split one run into N environments, merge results.

A :class:`~repro.exec.spec.RunPoint` with ``shards=N`` is executed as N
statistically-independent *shard environments*: each sub-point carries
``shard_index in [0, N)``, a seed derived from the run seed
(:func:`repro.exec.spec.shard_seed`), and ``1/N`` of the offered rate.
Sub-points are ordinary run points — they ride the same in-process,
cold-pool, and warm-pool machinery as any sweep point, carry their own
fingerprints, and cache independently.

The merge (:func:`merge_shard_payloads`) is the load-bearing half:

* **Latency** merges *recorder state*, not summaries — every shard ships
  its full :meth:`~repro.loadgen.recorder.LatencyRecorder.mergeable_state`
  (sorted samples or HDR bucket counts), so the merged percentiles are
  exactly those of the union sample stream.  Workloads that assemble
  results without the harness fall back to a completion-weighted
  summary merge.
* **Counters add** (throughput, I/O traffic, resilience/shed counts,
  fault events): the fleet did the sum of what its shards did.
* **Utilizations and rates average**, weighted by shard completions —
  a shard that served more requests speaks for more of the fleet.
* **SLO window series** align by window index
  (:meth:`~repro.loadgen.windows.WindowedSloTracker.merge_window_series`).

The merge is a pure function of the shard payloads in shard order, and
shard payloads are transported through the lossless report codecs, so a
fixed ``shards=N`` run is byte-identical across the in-process, cold
pool, and warm pool execution paths.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.exec.spec import RunPoint, shard_seed
from repro.loadgen.recorder import LatencyRecorder
from repro.loadgen.windows import WindowedSloTracker

#: Extra key a shard sub-run uses to ship its recorder state.
SHARD_LATENCY_KEY = "shard_latency"

#: Extras that average (completion-weighted) instead of summing:
#: ratios, utilizations, and per-request shape parameters, where the
#: fleet-level value is "what the average request saw".
_MEAN_KEYS = frozenset(
    {
        "cache_hit_rate",
        "object_cache_hit_rate",
        "page_cache_hit_rate",
        "lsm_hit_rate",
        "dispatches_per_request",
        "wire_bytes_per_response",
        "error_rate",
        "io_mean_queue_depth",
        "io_device_util",
        "io_cache_hit_rate",
        "io_bloom_fp_rate",
        "resilience_slo_compliance",
        "slo_goodput_fraction",
        "slo_drop_probability",
        "slo_relief_factor",
        "slo_p50",
        "slo_p95",
        "slo_p99",
        "slo_p95_seconds",
        "slo_p99_seconds",
        "validation_mean_ctr",
        "llm_prefix_hit_rate",
        "llm_ttft_p50_s",
        "llm_ttft_p99_s",
        "llm_itl_p50_s",
        "llm_itl_p99_s",
        "slo_ttft_p50_s",
        "slo_ttft_p99_s",
        "slo_itl_p99_s",
    }
)

#: Extras where the fleet value is the worst shard's value.
_MAX_KEYS = frozenset(
    {
        "slo_max_drop_probability",
        "io_stall_p99_s",
        "llm_kv_peak_tokens",
        "llm_kv_peak_bytes",
        "llm_queue_depth_peak",
    }
)

#: Extras that are run *parameters* (identical across shards by
#: construction): take the first shard's value.
_FIRST_KEYS = frozenset(
    {
        "resilience_slo_latency_s",
        "slo_latency_s",
        "slo_window_completions",
        "validation_batch",
        "llm_replicas",
        "llm_batch_slots",
        "llm_kv_budget_bytes",
        "llm_kv_bytes_per_token",
    }
)


def shardable(point: RunPoint) -> bool:
    """Whether auto-sharding may expand this point.

    Only a plain parent point qualifies: an explicit ``shards=N`` is
    the user's fan-out plan already (and a shard sub-point is internal
    framing that must never be re-split).
    """
    return point.shards == 1 and point.shard_index == -1


def expand_shards(point: RunPoint) -> List[RunPoint]:
    """The N shard sub-points of a ``shards=N`` parent point.

    Sub-points differ from the parent only in ``shard_index``; the
    per-shard seed and load split happen in
    :meth:`~repro.exec.spec.RunPoint.run_config`, so the framing stays
    a pure spec transformation.
    """
    if point.shards < 2 or point.shard_index >= 0:
        return [point]
    return [
        dataclasses.replace(point, shard_index=index)
        for index in range(point.shards)
    ]


def _weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    total = sum(weights)
    if total <= 0:
        return sum(values) / len(values) if values else 0.0
    return sum(v * w for v, w in zip(values, weights)) / total


def _shard_weights(results: Sequence[Dict[str, object]]) -> List[float]:
    """Per-shard completion weights (successes + errors), 1.0 fallback."""
    weights = []
    for result in results:
        latency = result["latency"]
        weights.append(
            float(latency.get("count", 0)) + float(latency.get("errors", 0))
        )
    if sum(weights) <= 0:
        return [1.0] * len(results)
    return weights


def _merge_latency(results: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Latency summary of the union sample stream.

    Preferred path: every shard shipped recorder state
    (``extra["shard_latency"]``), so reconstructing and merging the
    recorders gives *exact* union percentiles.  Fallback (workloads
    that assemble results without ``run_open_loop``): counts add, max
    is the max, the remaining stats are count-weighted means of the
    shard summaries.
    """
    states = [r["extra"].get(SHARD_LATENCY_KEY) for r in results]
    if all(state is not None for state in states):
        merged = LatencyRecorder.from_state(states[0])
        for state in states[1:]:
            merged.merge(LatencyRecorder.from_state(state))
        return merged.summary()

    summaries = [dict(r["latency"]) for r in results]
    counts = [float(s.get("count", 0)) for s in summaries]
    errors = sum(int(s.get("errors", 0)) for s in summaries)
    total = sum(counts)
    if total <= 0:
        return {"count": 0, "errors": errors}
    out: Dict[str, object] = {}
    for key in summaries[0]:
        if key == "count":
            out[key] = int(total)
        elif key == "errors":
            out[key] = errors
        elif key == "max":
            out[key] = max(float(s.get(key, 0.0)) for s in summaries)
        else:
            out[key] = _weighted_mean(
                [float(s.get(key, 0.0)) for s in summaries], counts
            )
    return out


def _merge_tree(
    nodes: Sequence[object], weights: Sequence[float]
) -> object:
    """Field-wise weighted mean over a numeric payload tree.

    Dicts merge key-by-key (first node's key order), numbers take the
    completion-weighted mean, and strings/bools/None take the first
    node's value.  Used for the steady state, where every field is a
    fleet-level intensity (utilization, IPC, bandwidth, power) rather
    than a countable total.
    """
    first = nodes[0]
    if first is None:
        return None
    if isinstance(first, dict):
        return {
            key: _merge_tree([node[key] for node in nodes], weights)
            for key in first
        }
    if isinstance(first, bool) or isinstance(first, str):
        return first
    if isinstance(first, (int, float)):
        return _weighted_mean([float(node) for node in nodes], weights)
    return first


def _merge_timeline(
    timelines: Sequence[List[List[float]]],
) -> List[List[float]]:
    """Fleet utilization series: per-index mean across the shards.

    Shard samplers tick on the same simulated cadence, so sample ``i``
    lands at (essentially) the same simulated time in every shard; the
    fleet series averages utilization per index, stamped with shard 0's
    timestamps, truncated to the shortest shard series so every point
    averages over all N shards.
    """
    if not timelines or any(not series for series in timelines):
        return []
    length = min(len(series) for series in timelines)
    n = float(len(timelines))
    return [
        [
            timelines[0][i][0],
            sum(series[i][1] for series in timelines) / n,
        ]
        for i in range(length)
    ]


def _merge_extras(
    point: RunPoint,
    results: Sequence[Dict[str, object]],
    weights: Sequence[float],
) -> Dict[str, object]:
    """Merge ``result.extra`` trees under the documented key policy.

    Defaults to summing (counters, per-second rates, byte totals);
    ratio-like keys average (completion-weighted), worst-case keys take
    the max, and run parameters take the first shard's value.  Special
    keys — the measurement window, convergence accounting, and the SLO
    window series — keep scalar aggregates *and* grow per-shard lists
    so the merged report still answers "what did each shard do".
    """
    extras = [r["extra"] for r in results]
    key_order: List[str] = []
    for extra in extras:
        for key in extra:
            if key not in key_order:
                key_order.append(key)

    merged: Dict[str, object] = {}
    for key in key_order:
        values = [extra[key] for extra in extras if key in extra]
        if key == SHARD_LATENCY_KEY:
            continue  # consumed by the latency merge
        if key == "measured_seconds":
            # The fleet measured until its slowest shard finished.
            merged[key] = max(float(v) for v in values)
            merged["shard_measured_seconds"] = [float(v) for v in values]
        elif key == "early_stopped":
            merged[key] = 1.0 if all(float(v) == 1.0 for v in values) else 0.0
            merged["shard_early_stopped"] = [float(v) for v in values]
        elif key == "convergence_windows":
            merged[key] = float(sum(float(v) for v in values))
            merged["shard_convergence_windows"] = [float(v) for v in values]
        elif key == "slo_window_series":
            series = WindowedSloTracker.merge_window_series(list(values))
            merged[key] = series
            merged["slo_windows"] = float(len(series))
        elif key == "slo_windows":
            merged.setdefault(key, float(sum(float(v) for v in values)))
        elif key in _FIRST_KEYS:
            merged[key] = values[0]
        elif key in _MAX_KEYS:
            merged[key] = max(float(v) for v in values)
        elif key in _MEAN_KEYS:
            merged[key] = _weighted_mean([float(v) for v in values], weights)
        else:
            merged[key] = float(sum(float(v) for v in values))

    merged["shards"] = float(point.shards)
    merged["shard_seeds"] = [
        shard_seed(point.seed, index) for index in range(point.shards)
    ]
    merged["shard_throughput_rps"] = [
        float(r["throughput_rps"]) for r in results
    ]
    merged["shard_completions"] = [float(w) for w in weights]
    return merged


def merge_shard_payloads(
    point: RunPoint, payloads: Sequence[Dict[str, object]]
) -> Dict[str, object]:
    """One merged report payload from the N shard report payloads.

    ``point`` is the parent (``shard_index == -1``) run point;
    ``payloads`` are the lossless report dicts of its shards, in shard
    order.  Hook sections are *recomputed* from the merged result under
    the parent's config — the same registry and context
    :meth:`~repro.core.benchmark.Benchmark.run` uses — so the merged
    report has exactly the shape of an unsharded report plus the
    ``sharding`` section's merged view.
    """
    from repro.core.hooks import RunContext, default_hooks
    from repro.core.report import system_info
    from repro.workloads.registry import get_workload

    if len(payloads) != point.shards or point.shards < 2:
        raise ValueError(
            f"expected {point.shards} shard payloads for {point.workload_name}, "
            f"got {len(payloads)}"
        )
    results = [payload["result"] for payload in payloads]
    weights = _shard_weights(results)
    config = point.run_config()

    merged_result_payload: Dict[str, object] = {
        "workload": results[0]["workload"],
        "sku": results[0]["sku"],
        "kernel": results[0]["kernel"],
        "throughput_rps": float(sum(r["throughput_rps"] for r in results)),
        "latency": _merge_latency(results),
        "cpu_util": _weighted_mean([r["cpu_util"] for r in results], weights),
        "kernel_util": _weighted_mean(
            [r["kernel_util"] for r in results], weights
        ),
        "scaling_efficiency": _weighted_mean(
            [r["scaling_efficiency"] for r in results], weights
        ),
        "steady": _merge_tree([r["steady"] for r in results], weights),
        "extra": _merge_extras(point, results, weights),
        "timeline": _merge_timeline([r["timeline"] for r in results]),
    }

    from repro.exec.serialize import result_from_dict, result_to_dict

    merged_result = result_from_dict(merged_result_payload)
    workload = get_workload(point.workload_name)
    ctx = RunContext(
        benchmark=payloads[0]["benchmark"],
        config=config,
        metadata={
            "network_bytes_per_request": (
                workload.characteristics.network_bytes_per_request
            ),
        },
    )
    sections = default_hooks().run_after(ctx, merged_result)
    return {
        "benchmark": payloads[0]["benchmark"],
        "metric_name": payloads[0]["metric_name"],
        "metric_value": merged_result.throughput_rps,
        "result": result_to_dict(merged_result),
        "system": system_info(config),
        "hooks": {name: dict(section) for name, section in sections.items()},
        "score": None,
    }
