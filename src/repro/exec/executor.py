"""Parallel, cached execution of sweep grids.

:class:`SweepExecutor` is the one path every sweep in the repo goes
through — the suite runner, the CLI, the figure harness, and the
calibration tools.  It guarantees:

* **Determinism** — results are merged back in spec order, and every
  report (fresh, pooled, or cached) is normalized through the same
  JSON codec, so ``max_workers=N`` output is identical to
  ``max_workers=1`` output for the same points.
* **Deduplication** — a grid that names the same point twice (e.g. the
  baseline SKU appearing both as baseline and as target) runs it once.
* **Memoization** — with a cache attached, previously executed points
  are loaded instead of re-run; fingerprints cover model parameters
  and package source, so edits invalidate automatically.

``max_workers=1`` executes in-process (no pool, plain stack traces —
the debuggable path); anything higher fans out over a
:class:`concurrent.futures.ProcessPoolExecutor`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.exec.cache import RunCache, cache_from_env
from repro.exec.serialize import report_from_dict, report_to_dict
from repro.exec.spec import RunPoint, run_fingerprint

if TYPE_CHECKING:  # deferred: repro.core's __init__ imports repro.exec
    from repro.core.benchmark import BenchmarkReport


def auto_workers() -> int:
    """Default worker count: one per CPU, capped to keep startup sane."""
    return max(1, min(os.cpu_count() or 1, 16))


def _run_point_payload(point: RunPoint) -> Dict[str, object]:
    """Execute one point and return its lossless report payload."""
    from repro.core.benchmark import Benchmark

    report = Benchmark.by_name(point.workload_name).run(point.run_config())
    return report_to_dict(report)


def _pool_worker(payload: Dict[str, object]) -> Dict[str, object]:
    """Top-level (picklable) worker: point dict in, report dict out."""
    return _run_point_payload(RunPoint.from_dict(payload))


def execute_point(point: RunPoint) -> BenchmarkReport:
    """Run one point in-process, normalized through the codec."""
    return report_from_dict(_run_point_payload(point))


@dataclass
class SweepStats:
    """Accounting for one :meth:`SweepExecutor.run` call."""

    total_points: int = 0
    unique_points: int = 0
    cache_hits: int = 0
    executed: int = 0
    workers: int = 1
    elapsed_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "total_points": self.total_points,
            "unique_points": self.unique_points,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "workers": self.workers,
            "elapsed_seconds": self.elapsed_seconds,
        }


@dataclass
class SweepResult:
    """Reports in spec order plus the execution accounting."""

    reports: List[BenchmarkReport]
    stats: SweepStats
    fingerprints: List[str] = field(default_factory=list)


class SweepExecutor:
    """Expands, deduplicates, fans out, and merges a sweep grid."""

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache: Optional[RunCache] = None,
        use_cache: bool = True,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers or auto_workers()
        #: ``None`` disables persistence; by default the environment
        #: decides (``DCPERF_CACHE``/``DCPERF_CACHE_DIR``).
        self.cache = cache if cache is not None else (
            cache_from_env() if use_cache else None
        )
        self.last_stats: Optional[SweepStats] = None

    # -- public API -----------------------------------------------------------
    def run(self, points: Sequence[RunPoint]) -> List[BenchmarkReport]:
        """Reports for ``points``, in the same order as ``points``."""
        return self.run_sweep(points).reports

    def run_sweep(self, points: Sequence[RunPoint]) -> SweepResult:
        started = time.monotonic()
        points = list(points)
        fingerprints = [run_fingerprint(p) for p in points]

        payloads: Dict[str, Dict[str, object]] = {}
        todo: List[Tuple[str, RunPoint]] = []
        seen = set()
        for point, fp in zip(points, fingerprints):
            if fp in seen:
                continue
            seen.add(fp)
            cached = self.cache.get(fp) if self.cache is not None else None
            if cached is not None:
                payloads[fp] = cached
            else:
                todo.append((fp, point))

        stats = SweepStats(
            total_points=len(points),
            unique_points=len(seen),
            cache_hits=len(seen) - len(todo),
            executed=len(todo),
            workers=min(self.max_workers, max(1, len(todo))),
        )

        if todo:
            if stats.workers == 1:
                for fp, point in todo:
                    payloads[fp] = _run_point_payload(point)
            else:
                payloads.update(self._run_pooled(todo, stats.workers))
            if self.cache is not None:
                for fp, point in todo:
                    self.cache.put(fp, point, payloads[fp])

        # Materialize a fresh report per output position: callers
        # mutate `.score`, so deduplicated positions must not alias.
        reports = [report_from_dict(payloads[fp]) for fp in fingerprints]
        stats.elapsed_seconds = time.monotonic() - started
        self.last_stats = stats
        return SweepResult(
            reports=reports, stats=stats, fingerprints=fingerprints
        )

    # -- internals ------------------------------------------------------------
    def _run_pooled(
        self, todo: Sequence[Tuple[str, RunPoint]], workers: int
    ) -> Dict[str, Dict[str, object]]:
        from concurrent.futures import ProcessPoolExecutor

        args = [point.as_dict() for _, point in todo]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(_pool_worker, args))
        return {fp: payload for (fp, _), payload in zip(todo, results)}
