"""Parallel, cached execution of sweep grids.

:class:`SweepExecutor` is the one path every sweep in the repo goes
through — the suite runner, the CLI, the figure harness, and the
calibration tools.  It guarantees:

* **Determinism** — results are merged back in spec order, and every
  report (fresh, pooled, or cached) is normalized through the same
  JSON codec, so ``max_workers=N`` output is identical to
  ``max_workers=1`` output for the same points.
* **Deduplication** — a grid that names the same point twice (e.g. the
  baseline SKU appearing both as baseline and as target) runs it once.
* **Memoization** — with a cache attached, previously executed points
  are loaded instead of re-run; fingerprints cover model parameters
  and package source, so edits invalidate automatically.

``max_workers=1`` executes in-process (no pool, plain stack traces —
the debuggable path).  Anything higher fans out over the process-global
:class:`~repro.exec.workerpool.WarmPool` of persistent workers —
repeated sweeps reuse already-warm processes and results stream back
through a shared-memory binary-codec channel.  ``warm_pool=False`` (or
``DCPERF_WARM_POOL=0``) falls back to a cold
:class:`concurrent.futures.ProcessPoolExecutor` per sweep.

Completions stream: pass ``on_point`` to :meth:`SweepExecutor.run` /
:meth:`~SweepExecutor.run_sweep` to observe each unique point's report
the moment it resolves (cache hit, pooled completion, or in-process
finish) — long sweeps can render and persist incrementally.

A point with ``shards=N`` expands into N shard sub-points that ride
the same dedupe/cache/pool machinery as any other point; after the
sweep drains, each parent's shard payloads merge into one report
(:mod:`repro.exec.shard`).  One run of one benchmark can therefore
use the whole pool, not just one core.
"""

from __future__ import annotations

import dataclasses
import math
import os
import sys
import time
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.exec.cache import RunCache, cache_from_env
from repro.exec.schedule import (
    CostLedger,
    describe_plan,
    ledger_for_cache,
    order_lpt,
    plan_auto_shards,
)
from repro.exec.serialize import report_from_dict, report_to_dict
from repro.exec.spec import RunPoint, run_fingerprint

if TYPE_CHECKING:  # deferred: repro.core's __init__ imports repro.exec
    from repro.core.benchmark import BenchmarkReport

#: Incremental completion callback: ``(point, report)`` per unique point.
OnPoint = Callable[[RunPoint, "BenchmarkReport"], None]

#: Dispatch policy: pick the env default, or force one per executor.
SCHEDULE_ENV = "DCPERF_SCHEDULE"
SCHEDULE_LPT = "lpt"
SCHEDULE_FIFO = "fifo"

#: cgroup v2 CPU quota file (bind-mounted read-only in containers).
_CGROUP_CPU_MAX = "/sys/fs/cgroup/cpu.max"


def _cgroup_cpu_quota(path: str = _CGROUP_CPU_MAX) -> Optional[int]:
    """Whole CPUs allowed by the cgroup v2 quota, or ``None``.

    ``cpu.max`` holds ``"<quota> <period>"`` in microseconds, or
    ``"max ..."`` when unthrottled.  A container throttled to e.g.
    ``150000 100000`` can progress 1.5 CPUs of work per wall second no
    matter how many cores it *sees*; rounding up to 2 keeps a little
    headroom without over-subscribing 16 workers onto 1.5 CPUs.
    """
    try:
        with open(path) as fh:
            parts = fh.read().split()
    except OSError:
        return None
    if not parts or parts[0] == "max":
        return None
    try:
        quota = int(parts[0])
        period = int(parts[1]) if len(parts) > 1 else 100_000
    except ValueError:
        return None
    if quota <= 0 or period <= 0:
        return None
    return max(1, math.ceil(quota / period))


def auto_workers() -> int:
    """Default worker count: one per *usable* CPU, capped at 16.

    ``os.cpu_count()`` reports the host's cores; in a container pinned
    to a subset (cpuset) or throttled by a cgroup quota that number
    over-subscribes the pool — 16 workers timesharing 2 usable CPUs
    thrash instead of parallelizing.  The effective count is the
    scheduling affinity mask (where available) further clamped by the
    cgroup v2 CPU quota.
    """
    try:
        cpus = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        # macOS/Windows have no sched_getaffinity; the host count is
        # the best available answer there.
        cpus = os.cpu_count() or 1
    # cgroup v2 is a Linux construct; never probe the pseudo-file
    # elsewhere (a same-named path on another OS would be noise).
    quota = _cgroup_cpu_quota() if sys.platform.startswith("linux") else None
    if quota is not None:
        cpus = min(cpus, quota)
    return max(1, min(cpus, 16))


def _run_point_payload(point: RunPoint) -> Dict[str, object]:
    """Execute one point and return its lossless report payload."""
    from repro.core.benchmark import Benchmark

    # Test seam for the per-point timeout path: env vars (unlike
    # monkeypatches) propagate into pool workers.
    delay = os.environ.get("DCPERF_FAULT_POINT_DELAY", "")
    if delay:
        time.sleep(float(delay))
    report = Benchmark.by_name(point.workload_name).run(point.run_config())
    return report_to_dict(report)


def _pool_worker(payload: Dict[str, object]) -> Dict[str, object]:
    """Top-level (picklable) worker: point dict in, report dict out."""
    return _run_point_payload(RunPoint.from_dict(payload))


def _pool_worker_chunk(
    payloads: List[Dict[str, object]],
) -> List[Dict[str, object]]:
    """Chunked worker: several points per task to amortize pool IPC.

    A suite sweep is dozens of sub-second points; submitting each as
    its own task spends a measurable fraction of the sweep on pickling,
    queue round-trips, and future bookkeeping.  One task per chunk cuts
    that overhead by the chunk length while the chunks themselves still
    load-balance across workers.
    """
    return [_run_point_payload(RunPoint.from_dict(p)) for p in payloads]


def execute_point(point: RunPoint) -> BenchmarkReport:
    """Run one point in-process, normalized through the codec.

    A ``shards=N`` parent point runs its N shard environments serially
    in-process and merges them — the same expansion and merge the
    executor's pooled paths use, so the report is byte-identical to a
    pooled run of the same point.
    """
    if point.shards > 1 and point.shard_index < 0:
        from repro.exec.shard import expand_shards, merge_shard_payloads

        payloads = [_run_point_payload(sub) for sub in expand_shards(point)]
        return report_from_dict(merge_shard_payloads(point, payloads))
    return report_from_dict(_run_point_payload(point))


@dataclass
class SweepStats:
    """Accounting for one :meth:`SweepExecutor.run` call."""

    total_points: int = 0
    unique_points: int = 0
    cache_hits: int = 0
    executed: int = 0
    #: Worker processes the sweep *actually* ran on: 1 for the
    #: in-process path, the effective pool parallelism otherwise
    #: (never more than the number of pool tasks).
    workers: int = 1
    elapsed_seconds: float = 0.0
    #: Points that timed out or were lost to a worker crash and were
    #: recovered by re-running in-process.
    recovered: int = 0
    #: Points whose pooled execution exceeded the per-point timeout.
    timeouts: int = 0
    #: Which execution path ran: ``"inproc"`` (no pool), ``"cold"``
    #: (fresh ProcessPoolExecutor), or ``"warm"`` (persistent pool).
    pool_mode: str = "inproc"
    #: Warm-pool accounting for this sweep (zero on other paths).
    spawned: int = 0
    reused: int = 0
    respawned: int = 0
    bytes_shipped: int = 0
    #: Shard sub-points scheduled by ``shards=N`` parent points (they
    #: also count toward ``executed``/``workers`` like any point).
    shard_points: int = 0
    #: Parent points whose reports were merged from shard results.
    merged_runs: int = 0
    #: Points a worker took without affinity while an affine worker was
    #: busy (cost-aware dispatch only): stealing beat idling.
    steals: int = 0
    #: Wall times recorded into the runtime cost ledger this sweep.
    ledger_recorded: int = 0
    #: Points expanded by the deterministic auto-shard planner, plus
    #: the full replayable plan (one row per expanded point, in spec
    #: order, carrying the predicted cost and worker count that chose
    #: its shard fan-out).
    auto_sharded: int = 0
    auto_shard_plan: List[Dict[str, object]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "total_points": self.total_points,
            "unique_points": self.unique_points,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "workers": self.workers,
            "elapsed_seconds": self.elapsed_seconds,
            "recovered": self.recovered,
            "timeouts": self.timeouts,
            "pool_mode": self.pool_mode,
            "spawned": self.spawned,
            "reused": self.reused,
            "respawned": self.respawned,
            "bytes_shipped": self.bytes_shipped,
            "shard_points": self.shard_points,
            "merged_runs": self.merged_runs,
            "steals": self.steals,
            "ledger_recorded": self.ledger_recorded,
            "auto_sharded": self.auto_sharded,
            "auto_shard_plan": [dict(row) for row in self.auto_shard_plan],
        }


@dataclass
class SweepResult:
    """Reports in spec order plus the execution accounting."""

    reports: List[BenchmarkReport]
    stats: SweepStats
    fingerprints: List[str] = field(default_factory=list)


class SweepExecutor:
    """Expands, deduplicates, fans out, and merges a sweep grid."""

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache: Optional[RunCache] = None,
        use_cache: bool = True,
        point_timeout_s: Optional[float] = None,
        warm_pool: Optional[bool] = None,
        schedule: Optional[str] = None,
        auto_shard: bool = False,
        ledger: Optional[CostLedger] = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if point_timeout_s is not None and point_timeout_s <= 0:
            raise ValueError(
                f"point_timeout_s must be positive, got {point_timeout_s}"
            )
        if schedule is None:
            schedule = (
                os.environ.get(SCHEDULE_ENV, "").strip().lower()
                or SCHEDULE_LPT
            )
        if schedule not in (SCHEDULE_LPT, SCHEDULE_FIFO):
            raise ValueError(
                f"schedule must be {SCHEDULE_LPT!r} or {SCHEDULE_FIFO!r}, "
                f"got {schedule!r}"
            )
        #: Dispatch policy: ``"lpt"`` (default) orders pending work
        #: longest-predicted-first with queue-aware stealing; ``"fifo"``
        #: is the historical spec-order dispatch.  Merged results are
        #: byte-identical either way — only completion order moves.
        self.schedule = schedule
        #: Expand predicted stragglers into ``shards=N`` sub-points
        #: before dispatch (deterministic plan; see
        #: :func:`repro.exec.schedule.plan_auto_shards`).
        self.auto_shard = auto_shard
        self.max_workers = max_workers or auto_workers()
        #: Wall-clock budget per pooled point; a straggler past this is
        #: abandoned and re-run in-process.  ``None`` = no timeout.
        #: On the warm path the straggler's worker is killed and
        #: respawned, so no orphan process outlives the deadline.
        self.point_timeout_s = point_timeout_s
        #: ``None`` defers to ``DCPERF_WARM_POOL`` (default: enabled).
        if warm_pool is None:
            from repro.exec.workerpool import warm_pool_enabled

            warm_pool = warm_pool_enabled()
        self.warm_pool = warm_pool
        #: ``None`` disables persistence; by default the environment
        #: decides (``DCPERF_CACHE``/``DCPERF_CACHE_DIR``).
        self.cache = cache if cache is not None else (
            cache_from_env() if use_cache else None
        )
        #: Runtime cost ledger: persisted next to the run cache (or
        #: in-memory only when the sweep is cache-less).
        self.ledger = ledger if ledger is not None else ledger_for_cache(
            self.cache
        )
        self.last_stats: Optional[SweepStats] = None
        #: Live progress of the current/most recent sweep (see
        #: :meth:`progress`); ``None`` before the first ``run_sweep``.
        self._progress: Optional[Dict[str, object]] = None
        self._predicted: Dict[str, float] = {}

    # -- public API -----------------------------------------------------------
    def run(
        self,
        points: Sequence[RunPoint],
        on_point: Optional[OnPoint] = None,
    ) -> List[BenchmarkReport]:
        """Reports for ``points``, in the same order as ``points``."""
        return self.run_sweep(points, on_point=on_point).reports

    def run_sweep(
        self,
        points: Sequence[RunPoint],
        on_point: Optional[OnPoint] = None,
    ) -> SweepResult:
        from repro.exec.shard import expand_shards, merge_shard_payloads

        started = time.monotonic()
        points = list(points)
        ledger = self.ledger.load()

        # Deterministic straggler auto-sharding happens *before* any
        # fingerprinting or cache probing: the plan is a pure function
        # of the spec points, the worker count, and the ledger snapshot
        # loaded above — never of live timing or cache state — so the
        # same inputs always shard the same way (and the recorded plan
        # replays a run exactly).
        plan_record: List[Dict[str, object]] = []
        if self.auto_shard:
            plan = plan_auto_shards(points, self.max_workers, ledger.predict)
            if plan:
                plan_record = describe_plan(
                    plan, points, ledger.predict, self.max_workers
                )
                points = [
                    dataclasses.replace(p, shards=plan[p]) if p in plan else p
                    for p in points
                ]

        fingerprints = [run_fingerprint(p) for p in points]
        self._progress = {
            "done": 0,
            "total": len(set(fingerprints)),
            "remaining_s": 0.0,
            "workers": 1,
            "ledger_backed": False,
        }
        self._predicted = {}

        payloads: Dict[str, Dict[str, object]] = {}
        todo: List[Tuple[str, RunPoint]] = []
        seen = set()
        scheduled = set()
        cache_hits = 0
        shard_point_count = 0
        #: (parent fingerprint, parent point, shard fingerprints) per
        #: un-cached sharded parent; merged after execution.
        shard_jobs: List[Tuple[str, RunPoint, List[str]]] = []

        def probe(fp: str, point: RunPoint) -> bool:
            nonlocal cache_hits
            cached = self.cache.get(fp) if self.cache is not None else None
            if cached is None:
                return False
            payloads[fp] = cached
            cache_hits += 1
            self._notify(on_point, point, cached)
            return True

        for point, fp in zip(points, fingerprints):
            if fp in seen:
                continue
            seen.add(fp)
            if probe(fp, point):
                continue
            if point.shards > 1 and point.shard_index < 0:
                # Expand the parent into shard sub-points: they join
                # the flat todo list, so every execution path (and the
                # per-point cache) treats them like ordinary points.
                subs = expand_shards(point)
                sub_fps = [run_fingerprint(sub) for sub in subs]
                shard_jobs.append((fp, point, sub_fps))
                shard_point_count += len(subs)
                for sub_fp, sub in zip(sub_fps, subs):
                    if sub_fp in scheduled or sub_fp in payloads:
                        continue
                    if probe(sub_fp, sub):
                        continue
                    scheduled.add(sub_fp)
                    todo.append((sub_fp, sub))
            elif fp not in scheduled:
                scheduled.add(fp)
                todo.append((fp, point))

        stats = SweepStats(
            total_points=len(points),
            unique_points=len(seen),
            cache_hits=cache_hits,
            executed=len(todo),
            shard_points=shard_point_count,
            auto_sharded=len(plan_record),
            auto_shard_plan=plan_record,
        )

        def predict_fp(fp: str, point: RunPoint) -> float:
            return ledger.predict(point, fingerprint=fp)

        def record_cost(fp: str, point: RunPoint, seconds: float) -> None:
            ledger.record(fp, point, seconds)
            stats.ledger_recorded += 1

        if todo:
            workers = min(self.max_workers, len(todo))
            if self.schedule == SCHEDULE_LPT and len(todo) > 1:
                # Longest-predicted-first dispatch.  Results are keyed
                # by fingerprint and merged in spec order below, so
                # only completion order (and the makespan) moves.
                todo = order_lpt(todo, predict_fp)
            self._predicted = {}
            ledger_backed = False
            for fp, point in todo:
                seconds, source = ledger.predict_with_source(point, fp)
                self._predicted[fp] = seconds
                ledger_backed = ledger_backed or source != "seed"
            self._progress.update(
                remaining_s=sum(self._predicted.values()),
                workers=workers,
                ledger_backed=ledger_backed,
            )
            if workers == 1:
                stats.workers = 1
                stats.pool_mode = "inproc"
                for fp, point in todo:
                    t0 = time.monotonic()
                    payload = _run_point_payload(point)
                    record_cost(fp, point, time.monotonic() - t0)
                    payloads[fp] = self._finish_point(
                        fp, point, payload, on_point
                    )
            else:
                if self.warm_pool:
                    stats.pool_mode = "warm"
                    pooled, lost, timeouts = self._run_warm(
                        todo,
                        workers,
                        stats,
                        on_point,
                        predict=(
                            predict_fp
                            if self.schedule == SCHEDULE_LPT
                            else None
                        ),
                        on_timing=record_cost,
                    )
                else:
                    stats.pool_mode = "cold"
                    pooled, lost, timeouts = self._run_pooled(todo, workers)
                    stats.workers = self._cold_effective_workers(
                        len(todo), workers
                    )
                payloads.update(pooled)
                stats.timeouts = timeouts
                # Points lost to a worker crash or to the per-point
                # timeout are re-run in-process — the debuggable path —
                # so one bad point cannot sink a whole sweep.
                stats.recovered = len(lost)
                for fp, point in lost:
                    t0 = time.monotonic()
                    payload = _run_point_payload(point)
                    record_cost(fp, point, time.monotonic() - t0)
                    payloads[fp] = self._finish_point(
                        fp, point, payload, on_point
                    )
        else:
            stats.workers = 1

        # Merge each sharded parent from its (now complete) shard
        # payloads.  The merge is a pure function of the shard results
        # in shard order, so every pool mode produces the same bytes;
        # the parent payload is cached and streamed like any point.
        for parent_fp, parent_point, sub_fps in shard_jobs:
            merged = merge_shard_payloads(
                parent_point, [payloads[sub_fp] for sub_fp in sub_fps]
            )
            payloads[parent_fp] = self._finish_point(
                parent_fp, parent_point, merged, on_point
            )
        stats.merged_runs = len(shard_jobs)

        # Materialize a fresh report per output position: callers
        # mutate `.score`, so deduplicated positions must not alias.
        reports = [report_from_dict(payloads[fp]) for fp in fingerprints]
        stats.elapsed_seconds = time.monotonic() - started
        if stats.ledger_recorded:
            ledger.save()
        self.last_stats = stats
        return SweepResult(
            reports=reports, stats=stats, fingerprints=fingerprints
        )

    # -- internals ------------------------------------------------------------
    def progress(self) -> Optional[Dict[str, object]]:
        """Live ``done/total`` plus a cost-model ETA for this sweep.

        ``eta_seconds`` is the predicted wall time still owed — the
        sum of the pending points' predicted costs divided by the
        sweep's parallelism — and is ``None`` while the ledger is cold
        (every prediction seed-table-only): a plain count is honest
        then, a made-up ETA is not.
        """
        if self._progress is None:
            return None
        eta: Optional[float] = None
        if self._progress["ledger_backed"]:
            eta = max(0.0, float(self._progress["remaining_s"])) / max(
                1, int(self._progress["workers"])
            )
        return {
            "done": int(self._progress["done"]),
            "total": int(self._progress["total"]),
            "eta_seconds": eta,
        }

    def _notify(
        self,
        on_point: Optional[OnPoint],
        point: RunPoint,
        payload: Dict[str, object],
    ) -> None:
        """Stream one resolved point to the caller, as its own object.

        Shard sub-points are internal framing: callers asked for the
        parent point, so only its merged report streams.
        """
        if point.shard_index < 0 and self._progress is not None:
            self._progress["done"] = int(self._progress["done"]) + 1
        if on_point is not None and point.shard_index < 0:
            on_point(point, report_from_dict(payload))

    def _finish_point(
        self,
        fp: str,
        point: RunPoint,
        payload: Dict[str, object],
        on_point: Optional[OnPoint] = None,
    ) -> Dict[str, object]:
        """Persist one completed point immediately (partial resume).

        Writing per point instead of in bulk after the sweep means a
        killed sweep keeps everything it finished: the restart loads
        those points from the cache and only re-runs the remainder.
        """
        if self.cache is not None:
            self.cache.put(fp, point, payload)
        if self._progress is not None and fp in self._predicted:
            self._progress["remaining_s"] = float(
                self._progress["remaining_s"]
            ) - self._predicted.pop(fp)
        self._notify(on_point, point, payload)
        return payload

    def _run_warm(
        self,
        todo: Sequence[Tuple[str, RunPoint]],
        workers: int,
        stats: SweepStats,
        on_point: Optional[OnPoint],
        predict=None,
        on_timing=None,
    ) -> Tuple[Dict[str, Dict[str, object]], List[Tuple[str, RunPoint]], int]:
        """Fan ``todo`` out over the process-global warm pool.

        Completions stream back as they finish: each one is cached (and
        surfaced through ``on_point``) before the sweep is over, so a
        killed sweep keeps every finished point and long sweeps render
        incrementally.  ``predict`` turns on cost-aware dispatch in the
        pool (band-limited affinity + stealing); ``on_timing`` feeds
        measured wall times back into the runtime cost ledger.
        """
        from repro.exec.workerpool import get_warm_pool

        pool = get_warm_pool()
        completed, lost, timeouts, run = pool.run_points(
            todo,
            workers=workers,
            timeout_s=self.point_timeout_s,
            on_result=lambda fp, point, payload: self._finish_point(
                fp, point, payload, on_point
            ),
            predict=predict,
            on_timing=on_timing,
        )
        stats.workers = run.workers
        stats.spawned = run.spawned
        stats.reused = run.reused
        stats.respawned = run.respawned
        stats.bytes_shipped = run.bytes_shipped
        stats.steals = run.steals
        return completed, lost, timeouts

    @staticmethod
    def _cold_effective_workers(n_todo: int, workers: int) -> int:
        """Parallelism the cold path actually achieves.

        The unchunked (timeout) path runs one task per point; the
        chunked path runs one task per chunk — with fewer chunks than
        workers, the surplus workers never receive a task.
        """
        return min(workers, n_todo)

    def _run_pooled(
        self, todo: Sequence[Tuple[str, RunPoint]], workers: int
    ) -> Tuple[Dict[str, Dict[str, object]], List[Tuple[str, RunPoint]], int]:
        """Fan ``todo`` out over a process pool.

        Returns ``(completed payloads, lost points, timeout count)``.
        Lost points are those whose worker crashed (the pool breaks) or
        whose execution exceeded ``point_timeout_s``; the caller re-runs
        them in-process.  Application-level exceptions from a point
        still propagate — they would fail in-process too.
        """
        from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
        from concurrent.futures import TimeoutError as FutureTimeout

        if self.point_timeout_s is None:
            # No per-point deadline to enforce, so points can ride in
            # chunks — far fewer pool round-trips for the same work.
            # (A timeout needs one future per point to know *which*
            # point blew the budget, so that path stays unchunked.)
            return self._run_pooled_chunks(todo, workers)

        completed: Dict[str, Dict[str, object]] = {}
        lost: List[Tuple[str, RunPoint]] = []
        timeouts = 0
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            futures = [
                (fp, point, pool.submit(_pool_worker, point.as_dict()))
                for fp, point in todo
            ]
            broken = False
            for fp, point, future in futures:
                if broken:
                    lost.append((fp, point))
                    continue
                try:
                    payload = future.result(timeout=self.point_timeout_s)
                except FutureTimeout:
                    timeouts += 1
                    future.cancel()
                    lost.append((fp, point))
                except BrokenExecutor:
                    # A worker died (OOM-kill, segfault, hard exit):
                    # every in-flight future is gone.  Collect the rest
                    # as lost instead of raising.
                    broken = True
                    lost.append((fp, point))
                else:
                    completed[fp] = self._finish_point(fp, point, payload)
        finally:
            # Never block on a hung or broken pool: cancel what has not
            # started and let stragglers die with their processes.
            pool.shutdown(wait=False, cancel_futures=True)
        return completed, lost, timeouts

    def _run_pooled_chunks(
        self, todo: Sequence[Tuple[str, RunPoint]], workers: int
    ) -> Tuple[Dict[str, Dict[str, object]], List[Tuple[str, RunPoint]], int]:
        """Chunked fan-out: several points per pool task, no deadline.

        Chunks are sized for ~4 tasks per worker — small enough that a
        slow chunk cannot idle the pool for long, large enough to
        amortize submission overhead.  Cache writes stay per point (a
        killed sweep keeps every point of every finished chunk).  A
        worker crash loses only the chunks not yet collected; the
        caller re-runs those points in-process.
        """
        from concurrent.futures import BrokenExecutor, ProcessPoolExecutor

        chunk_size = max(1, -(-len(todo) // (workers * 4)))  # ceil division
        chunks = [
            list(todo[i : i + chunk_size])
            for i in range(0, len(todo), chunk_size)
        ]
        completed: Dict[str, Dict[str, object]] = {}
        lost: List[Tuple[str, RunPoint]] = []
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            futures = [
                (
                    chunk,
                    pool.submit(
                        _pool_worker_chunk, [p.as_dict() for _, p in chunk]
                    ),
                )
                for chunk in chunks
            ]
            broken = False
            for chunk, future in futures:
                if broken:
                    lost.extend(chunk)
                    continue
                try:
                    payloads = future.result()
                except BrokenExecutor:
                    broken = True
                    lost.extend(chunk)
                else:
                    for (fp, point), payload in zip(chunk, payloads):
                        completed[fp] = self._finish_point(fp, point, payload)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return completed, lost, 0
