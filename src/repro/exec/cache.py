"""Persistent run cache: one JSON file per fingerprinted run.

The cache directory defaults to ``~/.cache/dcperf-repro`` and can be
redirected with ``DCPERF_CACHE_DIR`` (CI points it at a temp dir so
runs never leak between jobs).  ``DCPERF_CACHE=0`` disables caching
entirely.  Entries are keyed by
:func:`repro.exec.spec.run_fingerprint`, which digests the run point,
the calibrated model parameters, and the package source — so editing
any of them simply orphans the old entries rather than serving stale
results.  Writes are atomic (temp file + rename) so concurrent sweeps
sharing one directory cannot corrupt each other.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.exec.spec import CACHE_SCHEMA_VERSION, RunPoint

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "DCPERF_CACHE_DIR"
#: Set to ``0`` to disable the persistent cache entirely.
CACHE_ENABLE_ENV = "DCPERF_CACHE"
#: Sidecar file the runtime cost ledger keeps next to the cache
#: entries (see :class:`repro.exec.schedule.CostLedger`).  It shares
#: the directory — surviving, relocating, and sandboxing exactly like
#: the cache — but is not itself a cache entry, so ``info``/``clear``
#: must skip it.
LEDGER_FILENAME = "cost_ledger.json"


def default_cache_dir() -> str:
    """Resolve the cache directory from the environment."""
    configured = os.environ.get(CACHE_DIR_ENV, "").strip()
    if configured:
        return configured
    return os.path.join(os.path.expanduser("~"), ".cache", "dcperf-repro")


def cache_enabled() -> bool:
    return os.environ.get(CACHE_ENABLE_ENV, "1").strip().lower() not in (
        "0",
        "false",
        "off",
        "no",
    )


def cache_from_env() -> Optional["RunCache"]:
    """A cache honouring the environment, or ``None`` when disabled.

    Probes the configured directory up front: if it cannot be created
    or written (read-only volume, bad ``DCPERF_CACHE_DIR``), a warning
    is issued and caching is disabled for the process rather than
    blowing up mid-sweep.
    """
    if not cache_enabled():
        return None
    directory = default_cache_dir()
    try:
        os.makedirs(directory, exist_ok=True)
        probe_ok = os.access(directory, os.W_OK)
    except OSError:
        probe_ok = False
    if not probe_ok:
        warnings.warn(
            f"run cache directory {directory!r} is not writable; "
            "persistent caching disabled (set DCPERF_CACHE_DIR to a "
            "writable path or DCPERF_CACHE=0 to silence this)",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    return RunCache(directory)


@dataclass(frozen=True)
class CacheInfo:
    """Summary of a cache directory's contents."""

    directory: str
    entries: int
    total_bytes: int
    #: Entry counts grouped by the cache schema version that wrote
    #: them.  Keys are stringified versions ("6"), plus "unversioned"
    #: for entries written before schema tagging and "corrupt" for
    #: files that no longer parse.
    by_schema: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "directory": self.directory,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "by_schema": dict(self.by_schema),
        }


class RunCache:
    """Filesystem-backed store of finished benchmark run payloads.

    Values are the lossless report dicts produced by
    :mod:`repro.exec.serialize`; the executor materializes
    :class:`~repro.core.benchmark.BenchmarkReport` objects from them.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = directory or default_cache_dir()
        self.hits = 0
        self.misses = 0
        #: Set after the first failed write: the cache degrades to a
        #: no-op (with one warning) instead of failing every sweep
        #: point on an unwritable directory.
        self.disabled = False

    def _path(self, fingerprint: str) -> str:
        return os.path.join(self.directory, f"{fingerprint}.json")

    def get(self, fingerprint: str) -> Optional[Dict[str, object]]:
        """The stored report payload, or ``None`` on miss/corruption."""
        if self.disabled:
            return None
        try:
            with open(self._path(fingerprint)) as fh:
                entry = json.load(fh)
            if entry.get("fingerprint") != fingerprint:
                raise ValueError("fingerprint mismatch")
            payload = entry["report"]
        except (OSError, ValueError, KeyError):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(
        self,
        fingerprint: str,
        point: RunPoint,
        payload: Dict[str, object],
    ) -> Optional[str]:
        """Atomically persist one run payload; returns the path.

        On an I/O failure (directory vanished, volume went read-only,
        disk full) the cache disables itself with a warning and returns
        ``None`` — losing memoization must never lose the sweep.
        """
        if self.disabled:
            return None
        entry = {
            "fingerprint": fingerprint,
            "schema": CACHE_SCHEMA_VERSION,
            "point": point.as_dict(),
            "created_unix": time.time(),
            "report": payload,
        }
        path = self._path(fingerprint)
        tmp_path: Optional[str] = None
        try:
            os.makedirs(self.directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-", suffix=".json"
            )
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh)
            os.replace(tmp_path, path)
        except OSError as exc:
            if tmp_path is not None:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
            self.disabled = True
            warnings.warn(
                f"run cache write to {self.directory!r} failed ({exc}); "
                "caching disabled for the rest of this process",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        except BaseException:
            if tmp_path is not None:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
            raise
        return path

    def _entry_paths(self):
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        for name in sorted(names):
            if (
                name.endswith(".json")
                and not name.startswith(".tmp-")
                and name != LEDGER_FILENAME
            ):
                yield os.path.join(self.directory, name)

    @staticmethod
    def _entry_schema(path: str) -> str:
        """The schema bucket one entry file belongs to."""
        try:
            with open(path) as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            return "corrupt"
        if not isinstance(entry, dict):
            return "corrupt"
        schema = entry.get("schema")
        if schema is None:
            return "unversioned"
        return str(schema)

    def info(self) -> CacheInfo:
        entries = 0
        total = 0
        by_schema: Dict[str, int] = {}
        for path in self._entry_paths():
            try:
                total += os.path.getsize(path)
            except OSError:
                continue
            entries += 1
            bucket = self._entry_schema(path)
            by_schema[bucket] = by_schema.get(bucket, 0) + 1
        return CacheInfo(
            directory=self.directory,
            entries=entries,
            total_bytes=total,
            by_schema=by_schema,
        )

    def clear(self, stale_only: bool = False) -> int:
        """Delete cached runs; returns the number removed.

        With ``stale_only`` set, only entries written under an older
        (or missing) cache schema version are dropped — along with any
        corrupt files — leaving current entries warm.  The fingerprint
        already rotates when inputs change, so stale entries can never
        be *served*; this merely reclaims the disk they occupy.
        """
        removed = 0
        for path in self._entry_paths():
            if stale_only and self._entry_schema(path) == str(
                CACHE_SCHEMA_VERSION
            ):
                continue
            try:
                os.unlink(path)
            except OSError:
                continue
            removed += 1
        return removed
