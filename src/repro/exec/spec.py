"""Sweep grid specifications and content fingerprints.

A :class:`RunPoint` pins down everything that determines a benchmark
run's output: the workload (benchmark + variant), the simulated
machine (SKU, kernel), the load shape, and the measurement window.
Because runs are deterministic given those inputs, a fingerprint over
them — plus a digest of the model parameters and the package source —
is a safe cache key: two equal fingerprints imply byte-identical
reports, and any edit to the model or the simulator invalidates old
entries automatically.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, fields
from functools import lru_cache
from typing import Dict, Iterable, List, Sequence

from repro.workloads.base import RunConfig

#: Bump to invalidate every cached run when the cache layout itself
#: changes (not needed for model/code edits — those are digested).
#: 2: RunPoint grew the ``faults`` scenario field and the model digest
#: now covers the fault-scenario registry.
#: 3: RunPoint grew the ``early_stop`` field (convergence-based early
#: termination of the measurement window).
#: 4: storage subsystem — StorageBench joined the suite, the report
#: grew the ``iostat`` hook section, and the ``disk_degraded`` fault
#: scenario landed; every report's shape changed.
#: 5: in-run SLO control plane — the report grew the ``slo_control``
#: hook section, the ``resilience`` section grew stall-adjusted
#: SLO/goodput fields, and scenarios carry control policies + load
#: multipliers; every report's shape changed.
#: 6: intra-run sharding — RunPoint grew ``shards``/``shard_index``,
#: every report grew the ``sharding`` hook section and a ``shards``
#: system field, and cache entries record the schema version they were
#: written under; every report's shape changed.
#: 7: LLM token serving — the llmbench family joined the suite, every
#: report grew the ``llm_serving`` hook section, and the SLO section
#: grew token-level TTFT/inter-token percentiles; every report's shape
#: changed.
CACHE_SCHEMA_VERSION = 7


def shard_seed(seed: int, index: int) -> int:
    """Derive the seed for shard ``index`` of a run seeded ``seed``.

    The split is a documented multiply-add: ``seed * 1_000_003 +
    index + 1``.  The multiplier (a prime much larger than any shard
    count) keeps distinct run seeds from colliding across shard
    indices, and the ``+ 1`` keeps shard 0's seed distinct from the
    parent seed — every shard environment draws from RNG streams no
    unsharded run ever uses.  Being a pure function of ``(seed,
    index)``, a ``shards=N`` run replays byte-identically from just the
    parent point.
    """
    return seed * 1_000_003 + index + 1


@dataclass(frozen=True, order=True)
class RunPoint:
    """One point of a sweep grid: a fully specified benchmark run."""

    benchmark: str
    sku: str = "SKU2"
    kernel: str = "6.9"
    seed: int = 7
    variant: str = ""
    measure_seconds: float = 1.5
    warmup_seconds: float = 0.5
    load_scale: float = 1.0
    batch: int = 1
    #: Named fault scenario ("" = fault-free).  Stored as the name so
    #: points stay hashable/serializable; resolved in :meth:`run_config`.
    faults: str = ""
    #: End the measurement window early once latency windows converge
    #: (deterministic; see ConvergenceMonitor).  Part of the cache key:
    #: early-stopped reports are not interchangeable with full-window
    #: ones.
    early_stop: bool = False
    #: Split this run across ``shards`` independent shard environments
    #: (offered rate divided N ways, per-shard seeds via
    #: :func:`shard_seed`); the executor merges the shard results into
    #: one report.  ``shards=1`` is the unsharded path, bit-identical
    #: to points built before this field existed.
    shards: int = 1
    #: Which shard this sub-point runs (``-1`` = the parent point).
    #: Sub-points are framed by :func:`repro.exec.shard.expand_shards`
    #: and carry their own fingerprints, so shard results cache
    #: independently of the merged parent report.
    shard_index: int = -1

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if not -1 <= self.shard_index < self.shards:
            raise ValueError(
                f"shard_index {self.shard_index} out of range for "
                f"{self.shards} shard(s)"
            )

    @property
    def workload_name(self) -> str:
        """Registry name this point runs (benchmark + variant suffix)."""
        return f"{self.benchmark}{self.variant}"

    def run_config(self) -> RunConfig:
        seed = self.seed
        load_scale = self.load_scale
        if self.shards > 1 and self.shard_index >= 0:
            # One shard environment: its slice of the offered rate,
            # under a seed no unsharded run ever draws from.
            seed = shard_seed(self.seed, self.shard_index)
            load_scale = self.load_scale / self.shards
        config = RunConfig(
            sku_name=self.sku,
            kernel_version=self.kernel,
            seed=seed,
            warmup_seconds=self.warmup_seconds,
            measure_seconds=self.measure_seconds,
            load_scale=load_scale,
            batch=self.batch,
            early_stop=self.early_stop,
            shards=self.shards,
            shard_index=self.shard_index,
        )
        if self.faults:
            from repro.workloads.scenarios import apply_fault_scenario

            config = apply_fault_scenario(config, self.faults)
        return config

    def as_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RunPoint":
        return cls(**payload)  # type: ignore[arg-type]


def expand_grid(
    benchmarks: Sequence[str],
    skus: Sequence[str],
    kernels: Sequence[str] = ("6.9",),
    seeds: Sequence[int] = (7,),
    variant: str = "",
    measure_seconds: float = 1.5,
    warmup_seconds: float = 0.5,
) -> List[RunPoint]:
    """Cross-product of the inputs in deterministic nested order.

    Ordering is (sku, kernel, seed, benchmark) outermost-first, so all
    of one SKU's points are contiguous — the natural shape for suite
    scoring, which groups reports per SKU.
    """
    points: List[RunPoint] = []
    for sku in skus:
        for kernel in kernels:
            for seed in seeds:
                for benchmark in benchmarks:
                    points.append(
                        RunPoint(
                            benchmark=benchmark,
                            sku=sku,
                            kernel=kernel,
                            seed=seed,
                            variant=variant,
                            measure_seconds=measure_seconds,
                            warmup_seconds=warmup_seconds,
                        )
                    )
    return points


def _digest(payload: object) -> str:
    canon = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


@lru_cache(maxsize=1)
def model_fingerprint() -> str:
    """Digest of every calibrated model parameter a run depends on.

    Covers the SKU registry (hardware parameters), the kernel registry
    (scheduler parameters), and the workload characteristic profiles.
    Editing any of them changes the fingerprint, so cached runs made
    under the old parameters stop matching.
    """
    from repro.hw.sku import SKU_REGISTRY
    from repro.oskernel.kernel import _KERNELS
    from repro.workloads.profiles import (
        BENCHMARK_PROFILES,
        PRODUCTION_PROFILES,
        SPEC2017_PROFILES,
    )
    from repro.workloads.scenarios import FAULT_SCENARIOS

    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "skus": {name: asdict(sku) for name, sku in SKU_REGISTRY.items()},
        "kernels": {v: asdict(k) for v, k in _KERNELS.items()},
        "profiles": {
            name: asdict(chars)
            for name, chars in {
                **BENCHMARK_PROFILES,
                **PRODUCTION_PROFILES,
                **SPEC2017_PROFILES,
            }.items()
        },
        "fault_scenarios": {
            name: scenario.as_dict()
            for name, scenario in FAULT_SCENARIOS.items()
        },
    }
    return _digest(payload)[:16]


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Digest of the ``repro`` package source tree.

    The simulator's outputs depend on its code, not only on model
    parameters, so the cache must not survive source edits.  Hashing
    ~1 MB of source costs a few milliseconds once per process — far
    cheaper than one stale-cache debugging session.
    """
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames if d != "__pycache__" and not d.endswith(".egg-info")
        )
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            digest.update(os.path.relpath(path, root).encode("utf-8"))
            with open(path, "rb") as fh:
                digest.update(fh.read())
    return digest.hexdigest()[:16]


def pool_key() -> str:
    """Identity key for warm pool workers: model + code fingerprints.

    A persistent worker is only as fresh as the source tree and model
    parameters it imported at spawn time.  Keying workers on the same
    digests the run cache uses means a source or parameter edit retires
    stale workers exactly when it orphans stale cache entries.
    """
    return f"{model_fingerprint()}-{code_fingerprint()}"


def run_fingerprint(point: RunPoint) -> str:
    """Content key for one run: the point plus model + code digests."""
    payload = {
        "point": point.as_dict(),
        "model": model_fingerprint(),
        "code": code_fingerprint(),
    }
    return _digest(payload)[:32]


def cost_class(point: RunPoint) -> tuple:
    """Runtime-cost equivalence class of a point.

    Two points in the same class are expected to cost about the same
    wall time: same workload (benchmark + variant), same simulated
    duration, same shard fan-out, same fault scenario.  SKU, kernel,
    and seed move the *simulated* result, not (to first order) the
    wall time spent simulating it, so they stay out of the key — that
    is what lets one recorded run predict a whole SKU sweep.  Used by
    :class:`repro.exec.schedule.CostLedger` for its aggregates.
    """
    duration = point.warmup_seconds + point.measure_seconds
    return (point.workload_name, duration, point.shards, point.faults)


def dedupe(points: Iterable[RunPoint]) -> List[RunPoint]:
    """Unique points, preserving first-seen order."""
    seen = set()
    out: List[RunPoint] = []
    for point in points:
        if point not in seen:
            seen.add(point)
            out.append(point)
    return out
