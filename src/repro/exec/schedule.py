"""Cost-model-driven sweep scheduling: ledger, LPT order, auto-shard.

The sweep executor used to dispatch points in spec order, which is
FIFO from the pool's point of view: a long storagebench+faults point
that happens to sit last in the grid starts only after every short
point has drained, and the rest of the pool idles while one worker
finishes it.  Makespan was whatever spec order produced.  This module
makes it a *measured, optimized* quantity:

* :class:`CostLedger` — a persistent sidecar (next to the run cache)
  of measured per-point wall times, keyed by run fingerprint with
  per-``(workload, duration, shards, faults)`` class aggregates.  A
  static seed table (:data:`SEED_COST_RATES`, seconds of wall clock
  per simulated second, calibrated on the reference container) covers
  cold starts, so even the very first sweep knows that an aibench
  point dwarfs a djangobench point of the same window.
* :func:`order_lpt` — longest-predicted-first ordering of the pending
  work (classic LPT list scheduling).  Only *completion order* moves:
  results are keyed by fingerprint and merged back in spec order, so
  reports stay byte-identical to FIFO dispatch.
* :func:`plan_auto_shards` — deterministic straggler expansion: a
  point whose predicted cost exceeds the mean per-worker load of its
  sweep is split into ``shards=N`` sub-points *before* dispatch, with
  N a pure function of the predicted costs and the worker count —
  never of live timing — so the chosen plan (recorded in
  ``SweepStats``) replays exactly from its inputs.

Queue-aware stealing lives in :meth:`WarmPool.run_points
<repro.exec.workerpool.WarmPool.run_points>`: under a cost model the
pool keeps the affinity tiers (exact point, then workload) as
tiebreakers *within a predicted-cost band* of the queue head, and an
idle worker whose only pending work is affinity-bound to a busy
worker steals it rather than idling (counted in ``steals``).
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import warnings
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.exec.cache import LEDGER_FILENAME
from repro.exec.spec import RunPoint, cost_class, dedupe

#: Predictor signature used by the executor and warm pool:
#: ``(fingerprint, point) -> predicted wall seconds``.
Predictor = Callable[[str, RunPoint], float]

#: Seed cost table: seconds of wall clock per simulated second for a
#: warm worker, measured on the reference container (see
#: ``tools/bench_schedule.py``).  Only the *relative* magnitudes
#: matter — they make cold-ledger LPT order the imbalance correctly.
SEED_COST_RATES: Dict[str, float] = {
    "aibench": 0.75,
    "taobench": 0.18,
    "storagebench": 0.17,
    "feedsim": 0.03,
    "mediawiki": 0.03,
    "djangobench": 0.02,
    "sparkbench": 0.01,
    "videotranscode": 0.01,
}

#: Fallback rate for workloads the seed table has never seen.
DEFAULT_COST_RATE = 0.10

#: A fault scenario adds injection + control-plane work on top of the
#: clean run; the seed model inflates faulted points by this factor.
FAULT_COST_FACTOR = 1.25

#: Affinity tiebreak band for cost-aware dispatch: a worker may prefer
#: an affine point over the queue head only while the affine point's
#: predicted cost is within this factor of the head's (taking a much
#: shorter point first would forfeit the LPT makespan bound).
AFFINITY_COST_BAND = 2.0

#: EWMA weight of the newest observation when a fingerprint recurs —
#: recent wall times reflect the current machine state best, but one
#: noisy run should not own the estimate.
_EWMA_ALPHA = 0.5

#: Prediction provenance markers (``predict_with_source``).
SOURCE_EXACT = "exact"
SOURCE_CLASS = "class"
SOURCE_SEED = "seed"


def seed_cost(point: RunPoint) -> float:
    """Static cold-start estimate of one point's wall seconds."""
    rate = SEED_COST_RATES.get(point.benchmark, DEFAULT_COST_RATE)
    seconds = rate * (point.warmup_seconds + point.measure_seconds)
    if point.faults:
        seconds *= FAULT_COST_FACTOR
    if point.shards > 1 and point.shard_index >= 0:
        seconds /= point.shards
    return seconds


def _class_key(point: RunPoint) -> str:
    """Flat JSON-safe form of :func:`repro.exec.spec.cost_class`."""
    workload, duration, shards, faults = cost_class(point)
    return f"{workload}|{duration:g}|{shards}|{faults or '-'}"


class CostLedger:
    """Persistent ledger of measured per-point wall times.

    Lives as a single JSON sidecar (:data:`~repro.exec.cache.
    LEDGER_FILENAME`) next to the run cache entries, surviving across
    invocations exactly like the cache does — and degrading exactly
    like it too: a corrupt file loads as empty, an unwritable
    directory turns ``save()`` into a warned no-op, and a ``None``
    directory keeps the ledger purely in-memory.  Losing cost history
    must never lose (or even slow) the sweep.
    """

    def __init__(self, directory: Optional[str]) -> None:
        self.directory = directory
        #: fingerprint -> {"seconds": EWMA wall time, "count": runs}
        self.by_fingerprint: Dict[str, Dict[str, float]] = {}
        #: class key -> {"total_s", "count", "max_s"} aggregates
        self.by_class: Dict[str, Dict[str, float]] = {}
        self._loaded = False
        self._dirty = False

    # -- persistence ----------------------------------------------------------
    @property
    def path(self) -> Optional[str]:
        if self.directory is None:
            return None
        return os.path.join(self.directory, LEDGER_FILENAME)

    @staticmethod
    def _parse(path: str) -> Tuple[Dict, Dict]:
        """Both ledger maps from one file; empty maps on any damage."""
        try:
            with open(path) as fh:
                raw = json.load(fh)
            by_fp = dict(raw["by_fingerprint"])
            by_class = dict(raw["by_class"])
            for entry in list(by_fp.values()) + list(by_class.values()):
                if not isinstance(entry, dict):
                    raise ValueError("malformed ledger entry")
            return by_fp, by_class
        except (OSError, ValueError, KeyError, TypeError):
            return {}, {}

    def load(self) -> "CostLedger":
        """Read the sidecar once per instance (idempotent, graceful)."""
        if self._loaded or self.path is None:
            self._loaded = True
            return self
        self.by_fingerprint, self.by_class = self._parse(self.path)
        self._loaded = True
        return self

    def save(self) -> Optional[str]:
        """Atomically persist, merging with what is on disk now.

        Concurrent sweeps sharing one cache directory each merge their
        recordings over the current file contents before the rename,
        so the last writer extends — rather than erases — the others'
        history.  Failures warn once and disable persistence for this
        instance; the in-memory ledger keeps predicting.
        """
        if self.path is None or not self._dirty:
            return None
        disk_fp, disk_class = self._parse(self.path)
        # This instance's recordings win on collision: they are newer.
        disk_fp.update(self.by_fingerprint)
        disk_class.update(self.by_class)
        payload = {
            "version": 1,
            "by_fingerprint": disk_fp,
            "by_class": disk_class,
        }
        tmp_path: Optional[str] = None
        try:
            os.makedirs(self.directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-ledger-", suffix=".json"
            )
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp_path, self.path)
        except OSError as exc:
            if tmp_path is not None:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
            warnings.warn(
                f"cost ledger write to {self.directory!r} failed ({exc}); "
                "runtime history will not persist for this process",
                RuntimeWarning,
                stacklevel=2,
            )
            self.directory = None  # stop retrying every sweep
            return None
        self._dirty = False
        return self.path

    def clear(self) -> bool:
        """Delete the sidecar and forget in-memory history."""
        self.by_fingerprint = {}
        self.by_class = {}
        self._dirty = False
        if self.path is None:
            return False
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            return False
        except OSError:
            return False
        return True

    # -- recording ------------------------------------------------------------
    def record(self, fingerprint: str, point: RunPoint, seconds: float) -> None:
        """Fold one measured wall time into both ledger maps."""
        if seconds < 0:
            return
        self.load()
        entry = self.by_fingerprint.get(fingerprint)
        if entry is None:
            self.by_fingerprint[fingerprint] = {
                "seconds": seconds,
                "count": 1,
            }
        else:
            entry["seconds"] = (
                (1.0 - _EWMA_ALPHA) * float(entry["seconds"])
                + _EWMA_ALPHA * seconds
            )
            entry["count"] = int(entry["count"]) + 1
        key = _class_key(point)
        agg = self.by_class.get(key)
        if agg is None:
            self.by_class[key] = {
                "total_s": seconds,
                "count": 1,
                "max_s": seconds,
            }
        else:
            agg["total_s"] = float(agg["total_s"]) + seconds
            agg["count"] = int(agg["count"]) + 1
            agg["max_s"] = max(float(agg["max_s"]), seconds)
        self._dirty = True

    # -- prediction -----------------------------------------------------------
    def predict_with_source(
        self, point: RunPoint, fingerprint: Optional[str] = None
    ) -> Tuple[float, str]:
        """Predicted wall seconds plus where the number came from.

        Exact fingerprint history beats the class aggregate beats the
        static seed table — the same specificity ladder the warm
        pool's affinity tiers use.
        """
        self.load()
        if fingerprint is not None:
            entry = self.by_fingerprint.get(fingerprint)
            if entry is not None:
                return float(entry["seconds"]), SOURCE_EXACT
        agg = self.by_class.get(_class_key(point))
        if agg is not None and int(agg["count"]) > 0:
            return float(agg["total_s"]) / int(agg["count"]), SOURCE_CLASS
        return seed_cost(point), SOURCE_SEED

    def predict(
        self, point: RunPoint, fingerprint: Optional[str] = None
    ) -> float:
        return self.predict_with_source(point, fingerprint)[0]

    def entries(self) -> int:
        """Recorded fingerprints (the ledger's cardinality)."""
        self.load()
        return len(self.by_fingerprint)

    def workload_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-workload mean/max/count over the class aggregates."""
        self.load()
        out: Dict[str, Dict[str, float]] = {}
        for key, agg in self.by_class.items():
            workload = key.split("|", 1)[0]
            row = out.setdefault(
                workload, {"count": 0, "total_s": 0.0, "max_s": 0.0}
            )
            row["count"] += int(agg["count"])
            row["total_s"] += float(agg["total_s"])
            row["max_s"] = max(row["max_s"], float(agg["max_s"]))
        for row in out.values():
            row["mean_s"] = row["total_s"] / row["count"] if row["count"] else 0.0
        return out


def ledger_for_cache(cache) -> CostLedger:
    """The sidecar ledger for a run cache (in-memory when cache-less)."""
    return CostLedger(cache.directory if cache is not None else None)


def order_lpt(
    todo: Sequence[Tuple[str, RunPoint]], predict: Predictor
) -> List[Tuple[str, RunPoint]]:
    """Pending work longest-predicted-first (stable on ties).

    Classic LPT list scheduling: handing out the biggest jobs first
    bounds the makespan at 4/3 of optimal for any greedy pool, where
    FIFO spec order can approach ``short_total/W + longest`` — the
    whole pool idling while one straggler that was scheduled last
    finishes.  Ties (and near-ties) keep spec order, so the ordering
    is deterministic for a fixed ledger snapshot.
    """
    indexed = list(enumerate(todo))
    indexed.sort(key=lambda item: (-predict(item[1][0], item[1][1]), item[0]))
    return [entry for _, entry in indexed]


def plan_auto_shards(
    points: Sequence[RunPoint],
    workers: int,
    predict: Callable[[RunPoint], float],
    max_shards: Optional[int] = None,
) -> Dict[RunPoint, int]:
    """Deterministic straggler expansion plan: point -> shard count.

    A point whose predicted cost exceeds the mean per-worker load of
    the (deduplicated) sweep would cap the makespan all by itself; it
    is split into ``ceil(cost / mean_load)`` shards, clamped to the
    worker count, so its pieces pack like any other point.  The plan
    is a **pure function** of the predicted costs and ``workers`` —
    live timing never feeds in — so the same specs against the same
    ledger snapshot always produce the same plan, and the recorded
    plan (``SweepStats.auto_shard_plan``) replays a run exactly.

    Only plain points (``shards == 1``, parent frame) are eligible:
    an explicit ``shards=N`` is the user's plan already.
    """
    unique = dedupe(points)
    if workers < 2 or not unique:
        return {}
    cap = min(workers, max_shards) if max_shards else workers
    costs = {point: predict(point) for point in unique}
    mean_load = sum(costs.values()) / workers
    if mean_load <= 0:
        return {}
    from repro.exec.shard import shardable

    plan: Dict[RunPoint, int] = {}
    for point in unique:
        if not shardable(point):
            continue
        cost = costs[point]
        if cost <= mean_load:
            continue
        # ceil(cost / mean_load), with an epsilon so float noise at an
        # exact multiple cannot flip the plan between equal inputs.
        shards = min(cap, int(math.ceil(cost / mean_load - 1e-9)))
        if shards >= 2:
            plan[point] = shards
    return plan


def describe_plan(
    plan: Dict[RunPoint, int],
    points: Sequence[RunPoint],
    predict: Callable[[RunPoint], float],
    workers: int,
) -> List[Dict[str, object]]:
    """Replayable record of an auto-shard plan, in spec order."""
    rows: List[Dict[str, object]] = []
    for point in dedupe(points):
        if point not in plan:
            continue
        rows.append(
            {
                "workload": point.workload_name,
                "sku": point.sku,
                "seed": point.seed,
                "faults": point.faults,
                "predicted_s": round(predict(point), 6),
                "shards": plan[point],
                "workers": workers,
            }
        )
    return rows
