"""Parametric server hardware models.

The paper evaluates DCPerf on four generations of x86 production
servers (Table 3), two candidate ARM SKUs (Table 4), and a prospective
384-core SKU (Section 5.3).  This package models each server as a set
of parameters — cores, SMT, cache hierarchy, memory bandwidth, network,
frequency curve, and power envelope — that the microarchitecture model
(:mod:`repro.uarch`) and the discrete-event workload models consume.
"""

from repro.hw.cache import CacheHierarchy, CacheLevel
from repro.hw.cpu import CpuModel
from repro.hw.frequency import FrequencyModel
from repro.hw.memory import MemorySystem
from repro.hw.power import PowerBreakdown, PowerModel
from repro.hw.sku import (
    SKU_REGISTRY,
    ServerSku,
    get_sku,
    list_skus,
)

__all__ = [
    "CacheHierarchy",
    "CacheLevel",
    "CpuModel",
    "FrequencyModel",
    "MemorySystem",
    "PowerBreakdown",
    "PowerModel",
    "ServerSku",
    "SKU_REGISTRY",
    "get_sku",
    "list_skus",
]
