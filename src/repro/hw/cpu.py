"""CPU core and socket model."""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.cache import CacheHierarchy


@dataclass(frozen=True)
class CpuModel:
    """A CPU described by the parameters the uarch model consumes.

    Attributes:
        name: marketing-free identifier, e.g. ``"x86-gen2018"``.
        arch: ``"x86"`` or ``"arm"``.
        physical_cores: core count per server (all sockets combined).
        smt: hardware threads per core (1 = SMT off / not present).
        pipeline_width: issue slots per cycle per physical core; the
            denominator of the TMAM slot accounting.
        base_freq_ghz: guaranteed all-core frequency.
        max_freq_ghz: best-case all-core turbo under light load.
        caches: the cache hierarchy.
        uarch_efficiency: a generation-quality scalar (1.0 = SKU1-era);
            captures branch predictors, prefetchers, and other
            improvements not modeled structurally.  Applied as a divisor
            on stall penalties.
        frontend_penalty_multiplier: scales the cost of every L1I miss.
            1.0 for healthy designs; >1 models instruction-fetch
            pathologies seen on early silicon (mis-tuned i-prefetch,
            page-size blowups) — the mechanism behind SKU-B's collapse
            on large-codebase web workloads in Section 5.1.
    """

    name: str
    arch: str
    physical_cores: int
    smt: int
    pipeline_width: int
    base_freq_ghz: float
    max_freq_ghz: float
    caches: CacheHierarchy
    uarch_efficiency: float = 1.0
    frontend_penalty_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.arch not in ("x86", "arm"):
            raise ValueError(f"unknown arch: {self.arch}")
        if self.physical_cores < 1:
            raise ValueError("physical_cores must be >= 1")
        if self.smt not in (1, 2, 4):
            raise ValueError("smt must be 1, 2, or 4")
        if self.pipeline_width < 1:
            raise ValueError("pipeline_width must be >= 1")
        if not 0 < self.base_freq_ghz <= self.max_freq_ghz:
            raise ValueError("need 0 < base_freq_ghz <= max_freq_ghz")
        if self.uarch_efficiency <= 0:
            raise ValueError("uarch_efficiency must be positive")
        if self.frontend_penalty_multiplier < 1.0:
            raise ValueError("frontend_penalty_multiplier must be >= 1.0")

    @property
    def logical_cores(self) -> int:
        """Hardware threads visible to the OS."""
        return self.physical_cores * self.smt

    @property
    def smt_throughput_factor(self) -> float:
        """Aggregate throughput gain from running all SMT siblings.

        Two hardware threads on one core do not double throughput; the
        commonly observed gain on server workloads is ~25-35%.  SMT=1
        yields 1.0 by definition.
        """
        if self.smt == 1:
            return 1.0
        if self.smt == 2:
            return 1.30
        return 1.45
