"""Server power model.

Figure 10 of the paper breaks measured wall power into four components
— CPU core, SoC non-core (interconnect + memory controller), DRAM, and
"other" (storage, NIC, BMC, fans) — each normalized to the server's
total designed power.  This model reproduces that accounting:

* **Core** power scales with utilization, frequency, and how much real
  work retires per cycle (stalled cores clock-gate; compare mcf's low
  core power to deepsjeng's high core power in Figure 10).
* **SoC non-core** power scales with memory-bandwidth and network
  activity through the on-die fabric.
* **DRAM** power scales with memory bandwidth.
* **Other** covers platform components.  The paper observes DCPerf
  *underrepresents* this component relative to production (no real
  backend traffic, logging, or storage churn on a benchmark box); the
  ``platform_activity`` input captures that residual activity and is a
  per-workload calibration value, not a derived one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class PowerBreakdown:
    """Component power as fractions of designed server power."""

    core: float
    soc: float
    dram: float
    other: float

    @property
    def total(self) -> float:
        return self.core + self.soc + self.dram + self.other

    def watts(self, designed_power_w: float) -> float:
        """Absolute wall power for a server with the given envelope."""
        return self.total * designed_power_w

    def as_dict(self) -> Dict[str, float]:
        return {
            "core": self.core,
            "soc": self.soc,
            "dram": self.dram,
            "other": self.other,
            "total": self.total,
        }


@dataclass(frozen=True)
class PowerModel:
    """Coefficients mapping activity levels to power fractions.

    Defaults are calibrated so that SKU2 reproduces the Figure 10
    breakdown: production workloads total ~87%, DCPerf ~84%, and SPEC
    ~78% of designed power.  Per-cycle core activity has three drivers:
    retiring density, wide-vector work, and *kernel time* — syscall and
    interrupt paths move a lot of state per cycle, which is why
    datacenter cores out-draw SPEC cores despite lower utilization and
    frequency (the paper: SPEC "does not sufficiently exercise the
    diverse components in CPUs").
    """

    core_idle: float = 0.06
    core_active: float = 0.40
    activity_base: float = 0.384
    activity_retire: float = 0.15
    activity_vector: float = 0.60
    activity_kernel: float = 1.90
    soc_idle: float = 0.10
    soc_bandwidth: float = 0.30
    soc_network: float = 0.08
    dram_idle: float = 0.025
    dram_bandwidth: float = 0.135
    other_idle: float = 0.145
    other_activity: float = 0.15

    def breakdown(
        self,
        cpu_util: float,
        freq_rel: float,
        retiring_frac: float,
        membw_frac: float,
        network_util: float,
        platform_activity: float,
        kernel_frac: float = 0.0,
        vector_intensity: float = 0.0,
    ) -> PowerBreakdown:
        """Compute the component power fractions for a steady-state run.

        Args:
            cpu_util: total CPU utilization in [0, 1].
            freq_rel: effective frequency relative to max turbo, (0, 1].
            retiring_frac: TMAM retiring fraction in [0, 1]; proxies
                per-cycle switching activity.
            membw_frac: memory bandwidth demand / peak, in [0, 1].
            network_util: NIC utilization in [0, 1].
            platform_activity: residual storage/NIC/BMC/fan activity in
                [0, 1] (a per-workload calibration input).
            kernel_frac: fraction of busy cycles in kernel mode.
            vector_intensity: wide-vector instruction share in [0, 1].
        """
        for label, value in (
            ("cpu_util", cpu_util),
            ("retiring_frac", retiring_frac),
            ("membw_frac", membw_frac),
            ("network_util", network_util),
            ("platform_activity", platform_activity),
            ("kernel_frac", kernel_frac),
            ("vector_intensity", vector_intensity),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{label} out of range: {value}")
        if not 0.0 < freq_rel <= 1.0:
            raise ValueError(f"freq_rel out of range: {freq_rel}")

        activity = (
            self.activity_base
            + self.activity_retire * (retiring_frac / 0.40)
            + self.activity_vector * vector_intensity
            + self.activity_kernel * kernel_frac
        )
        core = self.core_idle + self.core_active * cpu_util * freq_rel * min(
            activity, 1.6
        )
        soc = (
            self.soc_idle
            + self.soc_bandwidth * membw_frac
            + self.soc_network * network_util
        )
        dram = self.dram_idle + self.dram_bandwidth * membw_frac
        other = self.other_idle + self.other_activity * platform_activity
        total = core + soc + dram + other
        if total > 1.0:
            # Designed power is a hard envelope: the platform power-caps
            # (RAPL-style) rather than exceed it.
            scale = 1.0 / total
            core, soc, dram, other = (
                core * scale, soc * scale, dram * scale, other * scale
            )
        return PowerBreakdown(core=core, soc=soc, dram=dram, other=other)
