"""Simulated block storage devices.

A :class:`BlockDevice` turns byte counts into service times on the
discrete-event engine: each I/O claims one of ``queue_depth`` device
slots (FIFO when the queue is full — real NVMe queues are deeper, but
the modeled depth is the *effective* parallelism the firmware
sustains), then sleeps for a service time composed of a fixed per-op
latency plus a bandwidth term.  Sequential and random transfers get
distinct bandwidths, which is the property that makes LSM compaction
(large sequential I/O) and point reads (small random I/O) contend
realistically on the same device.

``fault_slowdown`` is the fault-injection surface: the
``disk_degraded`` fault multiplies every service time through it,
mirroring ``CpuScheduler.fault_slowdown`` on the CPU channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.sim.engine import Environment
from repro.sim.resources import Resource


@dataclass(frozen=True)
class BlockDeviceSpec:
    """Static performance parameters of one device class.

    Bandwidths are bytes/second; ``latency_s`` is the fixed per-op
    service component (seek/setup/flash-translation), charged once per
    operation regardless of transfer size.
    """

    name: str
    queue_depth: int
    seq_read_bps: float
    rand_read_bps: float
    seq_write_bps: float
    rand_write_bps: float
    latency_s: float

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        for field_name in (
            "seq_read_bps",
            "rand_read_bps",
            "seq_write_bps",
            "rand_write_bps",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")
        if self.latency_s < 0:
            raise ValueError("latency_s must be non-negative")

    def bandwidth_bps(self, read: bool, sequential: bool) -> float:
        if read:
            return self.seq_read_bps if sequential else self.rand_read_bps
        return self.seq_write_bps if sequential else self.rand_write_bps

    def service_seconds(
        self, num_bytes: float, read: bool, sequential: bool
    ) -> float:
        """Unloaded service time for one transfer."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return self.latency_s + num_bytes / self.bandwidth_bps(read, sequential)


#: SATA SSD (SKU1-era boot/storage drive).
SATA_SSD = BlockDeviceSpec(
    name="sata-ssd",
    queue_depth=32,
    seq_read_bps=520e6,
    rand_read_bps=300e6,
    seq_write_bps=450e6,
    rand_write_bps=230e6,
    latency_s=90e-6,
)

#: Datacenter NVMe flash (SKU2+).
NVME_FLASH = BlockDeviceSpec(
    name="nvme-flash",
    queue_depth=64,
    seq_read_bps=2.8e9,
    rand_read_bps=1.5e9,
    seq_write_bps=1.4e9,
    rand_write_bps=0.9e9,
    latency_s=60e-6,
)


def device_spec_for(storage: str) -> BlockDeviceSpec:
    """Map a SKU's storage description string to a device spec.

    The SKU table describes storage as e.g. ``"256GB SATA"`` or
    ``"1TB NVMe"``; capacity does not affect service times, so only
    the interface class matters.
    """
    if "nvme" in storage.lower():
        return NVME_FLASH
    return SATA_SSD


class IoStats:
    """Counters one device accumulates; resettable at window edges."""

    __slots__ = (
        "reads",
        "writes",
        "read_bytes",
        "write_bytes",
        "wait_seconds",
        "busy_seconds",
        "depth_area",
        "window_start",
    )

    def __init__(self) -> None:
        self.reset(0.0)

    def reset(self, now: float) -> None:
        self.reads = 0
        self.writes = 0
        self.read_bytes = 0.0
        self.write_bytes = 0.0
        #: Total time ops spent queued for a device slot.
        self.wait_seconds = 0.0
        #: Total slot-occupancy time (sums over concurrent ops).
        self.busy_seconds = 0.0
        #: Integral of outstanding-op count over time (for mean depth).
        self.depth_area = 0.0
        self.window_start = now

    @property
    def ops(self) -> int:
        return self.reads + self.writes

    def mean_queue_depth(self, now: float) -> float:
        """Time-averaged outstanding ops since the last reset."""
        elapsed = now - self.window_start
        if elapsed <= 0:
            return 0.0
        return self.depth_area / elapsed

    def utilization(self, now: float, queue_depth: int) -> float:
        """Busy fraction of the device's slots since the last reset."""
        elapsed = now - self.window_start
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / (elapsed * queue_depth))


class BlockDevice:
    """One simulated device instance bound to an environment.

    :meth:`read` and :meth:`write` are generators — yield from them in
    a process; they return the service time actually charged (useful
    for tests).  All submitted ops are counted in :attr:`stats`, and
    the in-flight count integrates into ``depth_area`` at every
    transition for time-averaged queue-depth reporting.
    """

    def __init__(self, env: Environment, spec: BlockDeviceSpec) -> None:
        self.env = env
        self.spec = spec
        self._slots = Resource(env, capacity=spec.queue_depth)
        #: Multiplier (>= 1.0) on service times; the ``disk_degraded``
        #: fault channel publishes here.
        self.fault_slowdown = 1.0
        self.stats = IoStats()
        self._outstanding = 0
        self._last_mark = env.now

    # -- depth accounting ------------------------------------------------------
    def _mark(self, delta: int) -> None:
        now = self.env.now
        self.stats.depth_area += self._outstanding * (now - self._last_mark)
        self._last_mark = now
        self._outstanding += delta

    @property
    def outstanding(self) -> int:
        """Ops submitted but not yet completed (queued + in service)."""
        return self._outstanding

    @property
    def queue_length(self) -> int:
        """Ops waiting for a device slot."""
        return self._slots.queue_length

    def settle(self) -> None:
        """Integrate depth accounting up to ``env.now`` (read barrier).

        Call before reading :attr:`stats` so ``depth_area`` covers the
        interval since the last in-flight transition.
        """
        self._mark(0)

    def reset_stats(self) -> None:
        """Start a fresh measurement window (keeps in-flight ops)."""
        self.stats.depth_area += self._outstanding * (
            self.env.now - self._last_mark
        )
        self._last_mark = self.env.now
        self.stats.reset(self.env.now)

    # -- I/O -------------------------------------------------------------------
    def read(self, num_bytes: float, sequential: bool = False) -> Generator:
        """Claim a slot, transfer ``num_bytes`` in, release (generator)."""
        return self._io(num_bytes, read=True, sequential=sequential)

    def write(self, num_bytes: float, sequential: bool = False) -> Generator:
        """Claim a slot, transfer ``num_bytes`` out, release (generator)."""
        return self._io(num_bytes, read=False, sequential=sequential)

    def _io(self, num_bytes: float, read: bool, sequential: bool) -> Generator:
        self._mark(+1)
        queued_at = self.env.now
        grant = self._slots.request()
        try:
            yield grant
        except BaseException:
            # Abandoned while queued (deadline/hedge): release the
            # claim so the slot cannot leak, then unwind.
            self._slots.release(grant)
            self._mark(-1)
            raise
        stats = self.stats
        stats.wait_seconds += self.env.now - queued_at
        service = (
            self.spec.service_seconds(num_bytes, read, sequential)
            * self.fault_slowdown
        )
        try:
            yield self.env.sleep(service)
        finally:
            self._slots.release(grant)
            self._mark(-1)
        stats.busy_seconds += service
        if read:
            stats.reads += 1
            stats.read_bytes += num_bytes
        else:
            stats.writes += 1
            stats.write_bytes += num_bytes
        return service
