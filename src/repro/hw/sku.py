"""Server SKU registry.

Reproduces Table 3 (four generations of x86 production servers,
2018-2023), Table 4 (two candidate ARM SKUs from Section 5.1), and the
prospective 384-logical-core SKU from the kernel-scalability case study
in Section 5.3.

Parameters the paper publishes (logical cores, RAM, network bandwidth,
storage, year, relative L1I size, server power) are taken verbatim.
Parameters the paper does not publish (cache sizes, frequencies,
pipeline width, memory bandwidth) are set to values representative of
the named generation and then calibrated so the suite reproduces the
paper's Figure 2 performance ratios — the same calibrate-to-baseline
step the real DCPerf performs against SKU1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.hw.cache import arm_hierarchy, standard_x86_hierarchy
from repro.hw.cpu import CpuModel
from repro.hw.memory import MemorySystem


@dataclass(frozen=True)
class ServerSku:
    """A server configuration: CPU + memory + network + power envelope."""

    name: str
    description: str
    cpu: CpuModel
    memory: MemorySystem
    network_gbps: float
    storage: str
    year: int
    designed_power_w: float
    category: str = "x86-production"

    def __post_init__(self) -> None:
        if self.network_gbps <= 0:
            raise ValueError("network_gbps must be positive")
        if self.designed_power_w <= 0:
            raise ValueError("designed_power_w must be positive")

    @property
    def logical_cores(self) -> int:
        return self.cpu.logical_cores

    def spec_row(self) -> Dict[str, object]:
        """One row of the Table 3 / Table 4 reproduction."""
        return {
            "sku": self.name,
            "logical_cores": self.logical_cores,
            "ram_gb": self.memory.capacity_gb,
            "network_gbps": self.network_gbps,
            "storage": self.storage,
            "year": self.year,
            "l1i_kb": self.cpu.caches.l1i.size_kb,
            "server_power_w": self.designed_power_w,
        }


def _build_registry() -> Dict[str, ServerSku]:
    skus: List[ServerSku] = [
        ServerSku(
            name="SKU1",
            description="2018 x86 production server (Table 3)",
            cpu=CpuModel(
                name="x86-gen2018",
                arch="x86",
                physical_cores=18,
                smt=2,
                pipeline_width=4,
                base_freq_ghz=2.02,
                max_freq_ghz=2.30,
                caches=standard_x86_hierarchy(
                    l1i_kb=32, l1d_kb=32, l2_kb=1024, llc_mb_total=24
                ),
                uarch_efficiency=1.13,
            ),
            memory=MemorySystem(capacity_gb=64, peak_bw_gbps=95.0, latency_ns=72.0),
            network_gbps=12.5,
            storage="256GB SATA",
            year=2018,
            designed_power_w=300.0,
        ),
        ServerSku(
            name="SKU2",
            description="2021 x86 production server (Table 3); most common in fleet",
            cpu=CpuModel(
                name="x86-gen2021",
                arch="x86",
                physical_cores=26,
                smt=2,
                pipeline_width=4,
                base_freq_ghz=1.70,
                max_freq_ghz=2.20,
                caches=standard_x86_hierarchy(
                    l1i_kb=32, l1d_kb=48, l2_kb=1280, llc_mb_total=39
                ),
                uarch_efficiency=1.06,
            ),
            memory=MemorySystem(capacity_gb=64, peak_bw_gbps=98.0),
            network_gbps=25.0,
            storage="512GB NVMe",
            year=2021,
            designed_power_w=400.0,
        ),
        ServerSku(
            name="SKU3",
            description="2022 x86 production server (Table 3)",
            cpu=CpuModel(
                name="x86-gen2022",
                arch="x86",
                physical_cores=36,
                smt=2,
                pipeline_width=4,
                base_freq_ghz=1.62,
                max_freq_ghz=2.30,
                caches=standard_x86_hierarchy(
                    l1i_kb=32, l1d_kb=48, l2_kb=1280, llc_mb_total=54
                ),
                uarch_efficiency=1.08,
            ),
            memory=MemorySystem(capacity_gb=64, peak_bw_gbps=130.0, latency_ns=95.0),
            network_gbps=25.0,
            storage="512GB NVMe",
            year=2022,
            designed_power_w=450.0,
        ),
        ServerSku(
            name="SKU4",
            description="2023 x86 production server, 176 threads (Table 3)",
            cpu=CpuModel(
                name="x86-gen2023",
                arch="x86",
                physical_cores=88,
                smt=2,
                pipeline_width=6,
                base_freq_ghz=1.58,
                max_freq_ghz=2.42,
                caches=standard_x86_hierarchy(
                    l1i_kb=32, l1d_kb=32, l2_kb=1024, llc_mb_total=128
                ),
                uarch_efficiency=1.16,
            ),
            memory=MemorySystem(capacity_gb=256, peak_bw_gbps=350.0, latency_ns=105.0),
            network_gbps=50.0,
            storage="1TB NVMe",
            year=2023,
            designed_power_w=780.0,
        ),
        ServerSku(
            name="SKU-A",
            description="ARM candidate with 4x L1I (Table 4); selected for fleet",
            cpu=CpuModel(
                name="arm-candidate-a",
                arch="arm",
                physical_cores=72,
                smt=1,
                pipeline_width=4,
                base_freq_ghz=1.60,
                max_freq_ghz=1.70,
                caches=arm_hierarchy(
                    l1i_kb=128, l1d_kb=64, l2_kb=1024, llc_mb_total=96
                ),
                uarch_efficiency=0.37,
            ),
            memory=MemorySystem(capacity_gb=256, peak_bw_gbps=200.0, latency_ns=105.0),
            network_gbps=50.0,
            storage="1TB NVMe",
            year=2023,
            designed_power_w=175.0,
            category="arm-candidate",
        ),
        ServerSku(
            name="SKU-B",
            description="ARM candidate with 1x L1I (Table 4); rejected",
            cpu=CpuModel(
                name="arm-candidate-b",
                arch="arm",
                physical_cores=160,
                smt=1,
                pipeline_width=3,
                base_freq_ghz=1.90,
                max_freq_ghz=2.00,
                caches=arm_hierarchy(
                    l1i_kb=32, l1d_kb=64, l2_kb=512, llc_mb_total=64
                ),
                uarch_efficiency=0.45,
                frontend_penalty_multiplier=12.0,
            ),
            memory=MemorySystem(capacity_gb=256, peak_bw_gbps=160.0, latency_ns=125.0),
            network_gbps=50.0,
            storage="1TB NVMe",
            year=2023,
            designed_power_w=275.0,
            category="arm-candidate",
        ),
        ServerSku(
            name="SKU-384",
            description="Prospective 384-thread SKU from the Section 5.3 case study",
            cpu=CpuModel(
                name="x86-gen2024",
                arch="x86",
                physical_cores=192,
                smt=2,
                pipeline_width=6,
                base_freq_ghz=1.70,
                max_freq_ghz=2.52,
                caches=standard_x86_hierarchy(
                    l1i_kb=48, l1d_kb=48, l2_kb=1024, llc_mb_total=256
                ),
                uarch_efficiency=1.28,
            ),
            memory=MemorySystem(capacity_gb=512, peak_bw_gbps=600.0, latency_ns=100.0),
            network_gbps=100.0,
            storage="2TB NVMe",
            year=2024,
            designed_power_w=900.0,
            category="future",
        ),
    ]
    return {sku.name: sku for sku in skus}


SKU_REGISTRY: Dict[str, ServerSku] = _build_registry()


def get_sku(name: str) -> ServerSku:
    """Look up a SKU by name; raises ``KeyError`` with the known names."""
    try:
        return SKU_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(SKU_REGISTRY))
        raise KeyError(f"unknown SKU {name!r}; known SKUs: {known}") from None


def list_skus(category: str = "") -> List[ServerSku]:
    """All SKUs, optionally filtered by category."""
    skus = list(SKU_REGISTRY.values())
    if category:
        skus = [sku for sku in skus if sku.category == category]
    return skus
