"""Total cost of ownership and Perf/$ (Section 2.3).

The paper: "TCO consists of two components: capital expenditures
(Capex) and operating expenses (Opex)... DCPerf is designed to capture
both performance per unit of power consumption (Perf/Watt) and
performance per TCO (Perf/$).  While higher values of both metrics are
preferred, they are not always aligned."

This module implements that accounting: amortized capex plus
power-driven opex per server-year, the budgeted-power concept (power
provisioned for the disaster-spike load level rather than TDP), and the
Perf/Watt-vs-Perf/$ comparison that drives the CPU X vs CPU Y
trade-off discussion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Hours in a year, for energy cost integration.
HOURS_PER_YEAR = 8766.0


@dataclass(frozen=True)
class TcoModel:
    """Cost parameters for a datacenter deployment.

    Attributes:
        server_price_usd: purchase price of one server (Capex).
        amortization_years: depreciation horizon for Capex.
        energy_cost_per_kwh: electricity price (Opex).
        power_overhead_pue: datacenter PUE — every server watt costs
            this many facility watts (cooling, distribution).
        provisioning_cost_per_watt_year: cost of *reserving* a watt of
            datacenter power capacity for a year (the scarce resource
            Section 2.3 describes); charged on budgeted power.
        maintenance_fraction: annual maintenance as a fraction of
            server price.
    """

    server_price_usd: float
    amortization_years: float = 4.0
    energy_cost_per_kwh: float = 0.08
    power_overhead_pue: float = 1.25
    provisioning_cost_per_watt_year: float = 2.0
    maintenance_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.server_price_usd <= 0:
            raise ValueError("server_price_usd must be positive")
        if self.amortization_years <= 0:
            raise ValueError("amortization_years must be positive")
        if self.power_overhead_pue < 1.0:
            raise ValueError("PUE must be >= 1.0")
        if not 0.0 <= self.maintenance_fraction < 1.0:
            raise ValueError("maintenance_fraction must be in [0, 1)")

    def capex_per_year(self) -> float:
        """Amortized purchase cost per server-year."""
        return self.server_price_usd / self.amortization_years

    def opex_per_year(
        self, average_power_w: float, budgeted_power_w: float
    ) -> float:
        """Operating cost per server-year.

        ``average_power_w`` drives the energy bill; ``budgeted_power_w``
        — the power reserved for spike loads (Section 2.3: budgeted
        power, not TDP) — drives the capacity-provisioning cost.
        """
        if average_power_w < 0 or budgeted_power_w < average_power_w:
            raise ValueError(
                "need 0 <= average_power_w <= budgeted_power_w"
            )
        energy_kwh = average_power_w * self.power_overhead_pue * HOURS_PER_YEAR / 1e3
        energy_cost = energy_kwh * self.energy_cost_per_kwh
        provisioning = budgeted_power_w * self.provisioning_cost_per_watt_year
        maintenance = self.server_price_usd * self.maintenance_fraction
        return energy_cost + provisioning + maintenance

    def tco_per_year(
        self, average_power_w: float, budgeted_power_w: float
    ) -> float:
        """Capex + Opex per server-year."""
        return self.capex_per_year() + self.opex_per_year(
            average_power_w, budgeted_power_w
        )


def budgeted_power_w(designed_power_w: float, spike_fraction: float = 0.90) -> float:
    """Power reserved per server: the worst *practical* load.

    Section 2.3: budgeted power "reflects power consumption under high
    but practical loads", typically when servers absorb a spike because
    another region failed — below TDP, above the steady-state draw.
    """
    if designed_power_w <= 0:
        raise ValueError("designed_power_w must be positive")
    if not 0.0 < spike_fraction <= 1.0:
        raise ValueError("spike_fraction must be in (0, 1]")
    return designed_power_w * spike_fraction


@dataclass(frozen=True)
class CostEffectiveness:
    """Perf/Watt and Perf/$ for one (SKU, workload) pairing."""

    sku: str
    performance: float
    average_power_w: float
    tco_per_year_usd: float

    @property
    def perf_per_watt(self) -> float:
        return self.performance / self.average_power_w

    @property
    def perf_per_dollar(self) -> float:
        """Performance per TCO dollar-year (the Perf/$ metric)."""
        return self.performance / self.tco_per_year_usd

    def normalized_to(self, baseline: "CostEffectiveness") -> Dict[str, float]:
        """Both metrics relative to a baseline machine."""
        return {
            "perf": self.performance / baseline.performance,
            "perf_per_watt": self.perf_per_watt / baseline.perf_per_watt,
            "perf_per_dollar": self.perf_per_dollar / baseline.perf_per_dollar,
        }


def evaluate_cost_effectiveness(
    sku_name: str,
    performance: float,
    average_power_w: float,
    designed_power_w: float,
    tco_model: TcoModel,
    spike_fraction: float = 0.90,
) -> CostEffectiveness:
    """Build the Perf/Watt + Perf/$ record for one measured run."""
    if performance <= 0:
        raise ValueError("performance must be positive")
    budgeted = budgeted_power_w(designed_power_w, spike_fraction)
    tco = tco_model.tco_per_year(average_power_w, budgeted)
    return CostEffectiveness(
        sku=sku_name,
        performance=performance,
        average_power_w=average_power_w,
        tco_per_year_usd=tco,
    )
