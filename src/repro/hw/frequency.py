"""Effective core frequency (DVFS) model.

Figure 11 of the paper shows that production datacenter workloads and
DCPerf run around 1.8-2.1 GHz on SKU2 while SPEC runs around 2.0-2.2
GHz.  Three mechanisms drive the difference, and each is a term here:

* **Kernel time** — interrupt handling and scheduling break the tight
  user loops that hold all-core turbo, and C-state exits ramp slowly.
* **Idle burstiness** — request-driven workloads idle between arrivals;
  the governor down-clocks and re-ramps, lowering average frequency.
* **Vector intensity** — wide-vector code (Spark's columnar kernels)
  draws more power per cycle, triggering AVX-style license throttling;
  this is why Spark shows the lowest frequency (1.80 GHz) in Figure 11
  despite moderate utilization.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FrequencyModel:
    """Maps workload behaviour to sustained effective frequency.

    Penalties are expressed as fractions of the base-to-turbo span lost
    per unit of the corresponding workload property.
    """

    kernel_penalty: float = 1.0
    idle_penalty: float = 0.5
    vector_penalty: float = 1.0

    def effective_ghz(
        self,
        base_ghz: float,
        max_ghz: float,
        cpu_util: float,
        kernel_frac: float,
        vector_intensity: float = 0.0,
    ) -> float:
        """Sustained effective frequency for a steady-state run.

        Args:
            base_ghz: guaranteed all-core frequency.
            max_ghz: all-core turbo ceiling.
            cpu_util: total CPU utilization in [0, 1].
            kernel_frac: fraction of busy cycles spent in the kernel.
            vector_intensity: fraction of instructions that are wide
                vector operations, in [0, 1].
        """
        if not 0.0 <= cpu_util <= 1.0:
            raise ValueError(f"cpu_util out of range: {cpu_util}")
        if not 0.0 <= kernel_frac <= 1.0:
            raise ValueError(f"kernel_frac out of range: {kernel_frac}")
        if not 0.0 <= vector_intensity <= 1.0:
            raise ValueError(f"vector_intensity out of range: {vector_intensity}")
        span = max_ghz - base_ghz
        idle = 1.0 - cpu_util
        penalty = (
            self.kernel_penalty * kernel_frac
            + self.idle_penalty * idle
            + self.vector_penalty * vector_intensity
        )
        penalty = min(penalty, 1.0)
        return max(base_ghz, max_ghz - span * penalty)
