"""Cache hierarchy model.

Caches are described structurally (sizes per level) plus a
``replacement_quality`` scalar that models microcode-tunable replacement
policies.  Section 5.2 of the paper describes a vendor iterating on the
cache replacement algorithm and cutting L1I misses by 36% and L2 misses
by 28% — in this model that experiment is expressed by raising
``replacement_quality`` (see :mod:`repro.uarch.cache_model` for how the
quality scalar rescales miss curves).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CacheLevel:
    """One level of the cache hierarchy.

    ``size_kb`` is per-core for private levels and total for shared
    levels; ``shared`` flags which interpretation applies.
    """

    name: str
    size_kb: float
    line_bytes: int = 64
    latency_cycles: int = 4
    shared: bool = False

    def __post_init__(self) -> None:
        if self.size_kb <= 0:
            raise ValueError(f"{self.name}: size_kb must be positive")
        if self.line_bytes <= 0:
            raise ValueError(f"{self.name}: line_bytes must be positive")


@dataclass(frozen=True)
class CacheHierarchy:
    """L1I / L1D / L2 / LLC hierarchy with a replacement-quality scalar.

    ``replacement_quality`` = 1.0 is the calibration baseline; values
    above 1.0 shrink effective miss rates (better replacement decisions
    retain more of the working set), values below 1.0 inflate them.
    """

    l1i: CacheLevel
    l1d: CacheLevel
    l2: CacheLevel
    llc: CacheLevel
    replacement_quality: float = 1.0

    def __post_init__(self) -> None:
        if self.replacement_quality <= 0:
            raise ValueError("replacement_quality must be positive")

    def with_replacement_quality(self, quality: float) -> "CacheHierarchy":
        """Return a copy with a different replacement quality.

        This is the knob the Section 5.2 vendor-optimization case study
        turns.
        """
        return replace(self, replacement_quality=quality)

    def llc_share_kb(self, active_cores: int) -> float:
        """Effective LLC capacity available to one core, in KB."""
        if active_cores < 1:
            raise ValueError("active_cores must be >= 1")
        if self.llc.shared:
            return self.llc.size_kb / active_cores
        return self.llc.size_kb


def standard_x86_hierarchy(
    l1i_kb: float = 32.0,
    l1d_kb: float = 32.0,
    l2_kb: float = 1024.0,
    llc_mb_total: float = 32.0,
) -> CacheHierarchy:
    """Build a typical x86 server cache hierarchy."""
    return CacheHierarchy(
        l1i=CacheLevel("L1I", l1i_kb, latency_cycles=4),
        l1d=CacheLevel("L1D", l1d_kb, latency_cycles=5),
        l2=CacheLevel("L2", l2_kb, latency_cycles=14),
        llc=CacheLevel("LLC", llc_mb_total * 1024.0, latency_cycles=42, shared=True),
    )


def arm_hierarchy(
    l1i_kb: float,
    l1d_kb: float = 64.0,
    l2_kb: float = 1024.0,
    llc_mb_total: float = 64.0,
) -> CacheHierarchy:
    """Build an ARM server cache hierarchy.

    Table 4 of the paper highlights that the two ARM candidates differ
    4x in L1I capacity, which decided the SKU selection, so ``l1i_kb``
    is the required parameter here.
    """
    return CacheHierarchy(
        l1i=CacheLevel("L1I", l1i_kb, latency_cycles=4),
        l1d=CacheLevel("L1D", l1d_kb, latency_cycles=4),
        l2=CacheLevel("L2", l2_kb, latency_cycles=12),
        llc=CacheLevel("LLC", llc_mb_total * 1024.0, latency_cycles=40, shared=True),
    )
