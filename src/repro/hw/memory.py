"""Main-memory system model."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MemorySystem:
    """DRAM capacity, peak bandwidth, and idle latency.

    ``peak_bw_gbps`` bounds the memory-bandwidth figures (Figure 7 marks
    the "Max System MemBW" ceiling); ``latency_ns`` feeds the backend-
    stall cost of LLC misses.
    """

    capacity_gb: int
    peak_bw_gbps: float
    latency_ns: float = 90.0

    def __post_init__(self) -> None:
        if self.capacity_gb <= 0:
            raise ValueError("capacity_gb must be positive")
        if self.peak_bw_gbps <= 0:
            raise ValueError("peak_bw_gbps must be positive")
        if self.latency_ns <= 0:
            raise ValueError("latency_ns must be positive")

    def latency_cycles(self, freq_ghz: float) -> float:
        """Memory latency expressed in core cycles at ``freq_ghz``."""
        if freq_ghz <= 0:
            raise ValueError("freq_ghz must be positive")
        return self.latency_ns * freq_ghz

    def bandwidth_pressure(self, demand_gbps: float) -> float:
        """Fraction of peak bandwidth a demand level represents, in [0, ...].

        Values approaching 1.0 mean queueing at the memory controller;
        the uarch model inflates effective memory latency accordingly.
        """
        if demand_gbps < 0:
            raise ValueError("demand_gbps must be non-negative")
        return demand_gbps / self.peak_bw_gbps

    def effective_latency_ns(self, demand_gbps: float) -> float:
        """Latency inflated by bandwidth contention.

        A standard closed-form queueing correction: latency grows as
        ``1 / (1 - rho)`` (capped) as demand ``rho`` approaches peak
        bandwidth.
        """
        rho = min(self.bandwidth_pressure(demand_gbps), 0.95)
        return self.latency_ns / (1.0 - rho * 0.7)
