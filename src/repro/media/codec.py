"""A real block-transform intra codec (the x264 stand-in, toy scale).

Pipeline per frame: pad to 8x8 blocks, forward 2D DCT per block,
uniform quantization (quality-controlled), zigzag scan, run-length
entropy coding of zero runs.  The decoder inverts every step, so
quality (PSNR) and bitrate are *measured*, not assumed — higher quality
presets genuinely spend more bits and recover more signal.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

_BLOCK = 8


def _dct_matrix(n: int = _BLOCK) -> np.ndarray:
    k = np.arange(n)
    mat = np.sqrt(2.0 / n) * np.cos(np.pi * (2 * k[None, :] + 1) * k[:, None] / (2 * n))
    mat[0, :] = np.sqrt(1.0 / n)
    return mat


_DCT = _dct_matrix()
_IDCT = _DCT.T


def _zigzag_order(n: int = _BLOCK) -> List[Tuple[int, int]]:
    order = sorted(
        ((y, x) for y in range(n) for x in range(n)),
        key=lambda p: (p[0] + p[1], p[1] if (p[0] + p[1]) % 2 else p[0]),
    )
    return order


_ZIGZAG = _zigzag_order()


@dataclass(frozen=True)
class EncodedFrame:
    """One compressed frame: dimensions + entropy-coded payload."""

    height: int
    width: int
    quantizer: int
    payload: bytes

    @property
    def compressed_bytes(self) -> int:
        return len(self.payload) + 12  # header

    def compression_ratio(self) -> float:
        return (self.height * self.width) / max(1, self.compressed_bytes)


class CodecError(Exception):
    """Raised on corrupt bitstreams."""


class BlockCodec:
    """Intra-only DCT codec with a uniform quantizer.

    ``quantizer`` trades quality for bits: small values keep more
    coefficients (high quality preset), large values zero more of the
    spectrum (fast preset).
    """

    def __init__(self, quantizer: int = 16) -> None:
        if not 1 <= quantizer <= 128:
            raise ValueError("quantizer must be in 1..128")
        self.quantizer = quantizer

    # --- encode ---------------------------------------------------------------
    def encode(self, frame: np.ndarray) -> EncodedFrame:
        if frame.ndim != 2 or frame.dtype != np.uint8:
            raise ValueError("frame must be a 2D uint8 array")
        h, w = frame.shape
        padded_h = -(-h // _BLOCK) * _BLOCK
        padded_w = -(-w // _BLOCK) * _BLOCK
        padded = np.zeros((padded_h, padded_w), dtype=np.float64)
        padded[:h, :w] = frame.astype(np.float64) - 128.0
        if h < padded_h:
            padded[h:, :w] = padded[h - 1 : h, :w]
        if w < padded_w:
            padded[:, w:] = padded[:, w - 1 : w]

        symbols: List[int] = []
        for by in range(0, padded_h, _BLOCK):
            for bx in range(0, padded_w, _BLOCK):
                block = padded[by : by + _BLOCK, bx : bx + _BLOCK]
                coeffs = _DCT @ block @ _IDCT
                quantized = np.rint(coeffs / self.quantizer).astype(np.int32)
                symbols.extend(
                    int(quantized[y, x]) for y, x in _ZIGZAG
                )
        payload = self._entropy_encode(symbols)
        return EncodedFrame(
            height=h, width=w, quantizer=self.quantizer, payload=payload
        )

    @staticmethod
    def _entropy_encode(symbols: List[int]) -> bytes:
        """Zero-run-length coding: (run_of_zeros, value) pairs.

        Values are zigzag-varint encoded; runs are u8 chunks.
        """
        out = bytearray()
        run = 0
        for value in symbols:
            if value == 0:
                run += 1
                continue
            while run >= 255:
                out.append(255)
                out.append(0)  # continuation marker: value 0 means "more run"
                run -= 255
            out.append(run)
            run = 0
            zz = (value << 1) ^ (value >> 31) if value >= 0 else ((-value) << 1) - 1
            while zz >= 0x80:
                out.append((zz & 0x7F) | 0x80)
                zz >>= 7
            out.append(zz)
        # Trailing zeros: encode as a final run with the sentinel value 0.
        while run >= 255:
            out.append(255)
            out.append(0)
            run -= 255
        if run:
            out.append(run)
            out.append(0)
        return bytes(out)

    # --- decode ---------------------------------------------------------------
    def decode(self, encoded: EncodedFrame) -> np.ndarray:
        h, w = encoded.height, encoded.width
        padded_h = -(-h // _BLOCK) * _BLOCK
        padded_w = -(-w // _BLOCK) * _BLOCK
        total = (padded_h // _BLOCK) * (padded_w // _BLOCK) * _BLOCK * _BLOCK
        symbols = self._entropy_decode(encoded.payload, total)

        out = np.zeros((padded_h, padded_w), dtype=np.float64)
        index = 0
        for by in range(0, padded_h, _BLOCK):
            for bx in range(0, padded_w, _BLOCK):
                quantized = np.zeros((_BLOCK, _BLOCK), dtype=np.float64)
                for y, x in _ZIGZAG:
                    quantized[y, x] = symbols[index]
                    index += 1
                coeffs = quantized * encoded.quantizer
                out[by : by + _BLOCK, bx : bx + _BLOCK] = _IDCT @ coeffs @ _DCT
        frame = np.clip(np.rint(out[:h, :w] + 128.0), 0, 255).astype(np.uint8)
        return frame

    @staticmethod
    def _entropy_decode(payload: bytes, total_symbols: int) -> List[int]:
        symbols: List[int] = []
        pos = 0
        n = len(payload)
        while pos < n and len(symbols) < total_symbols:
            run = payload[pos]
            pos += 1
            symbols.extend([0] * run)
            # varint value
            if pos >= n:
                raise CodecError("truncated bitstream (missing value)")
            shift = 0
            zz = 0
            while True:
                if pos >= n:
                    raise CodecError("truncated varint")
                byte = payload[pos]
                pos += 1
                zz |= (byte & 0x7F) << shift
                if not byte & 0x80:
                    break
                shift += 7
            value = (zz >> 1) if not zz & 1 else -((zz + 1) >> 1)
            if value != 0:
                symbols.append(value)
        # Remaining implicit zeros.
        if len(symbols) > total_symbols:
            raise CodecError("bitstream longer than the frame")
        symbols.extend([0] * (total_symbols - len(symbols)))
        return symbols


def psnr(original: np.ndarray, decoded: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB between two uint8 frames."""
    if original.shape != decoded.shape:
        raise ValueError("frames must have identical shapes")
    diff = original.astype(np.float64) - decoded.astype(np.float64)
    mse = float(np.mean(diff * diff))
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(255.0 * 255.0 / mse)
