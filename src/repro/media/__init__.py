"""Media-processing substrate (the ffmpeg/x264 stand-in).

VideoTranscodeBench's production counterpart resizes and encodes real
video (the Netflix "El Fuente" sequence) with ffmpeg/x264/svt-av1.
This package provides an executable equivalent at toy scale: a
synthetic test-sequence generator, bilinear resizing, and a real
block-transform encoder (8x8 DCT, quantization, zigzag run-length
entropy coding) with a matching decoder — enough to validate the full
resize-ladder + encode pipeline end to end and to measure real
quality/bitrate trade-offs across the benchmark's three presets.
"""

from repro.media.frames import FrameSequence, synthetic_sequence
from repro.media.codec import BlockCodec, EncodedFrame, psnr
from repro.media.pipeline import TranscodeResult, transcode_ladder

__all__ = [
    "FrameSequence",
    "synthetic_sequence",
    "BlockCodec",
    "EncodedFrame",
    "psnr",
    "TranscodeResult",
    "transcode_ladder",
]
