"""The transcode pipeline: resize ladder + encode per rendition.

This is the correctness layer of VideoTranscodeBench — the same
structure Section 3.2 describes ("resize a video clip into multiple
resolutions and encode the resized video clip with the specified video
encoder"), executed for real on the toy codec so quality/bitrate
numbers are measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.media.codec import BlockCodec, psnr
from repro.media.frames import FrameSequence, bilinear_resize

#: Quantizer per VideoTranscodeBench quality preset (1=fast..3=slow).
PRESET_QUANTIZERS: Dict[int, int] = {1: 40, 2: 20, 3: 8}


@dataclass(frozen=True)
class RenditionStats:
    """Measured outcome of encoding one rung of the ladder."""

    height: int
    width: int
    frames: int
    compressed_bytes: int
    mean_psnr_db: float

    @property
    def bits_per_pixel(self) -> float:
        pixels = self.height * self.width * self.frames
        return self.compressed_bytes * 8.0 / max(1, pixels)


@dataclass(frozen=True)
class TranscodeResult:
    """All renditions of one clip at one quality preset."""

    quality: int
    renditions: List[RenditionStats]

    @property
    def total_compressed_bytes(self) -> int:
        return sum(r.compressed_bytes for r in self.renditions)

    @property
    def mean_psnr_db(self) -> float:
        return sum(r.mean_psnr_db for r in self.renditions) / len(self.renditions)


def transcode_ladder(
    sequence: FrameSequence,
    quality: int = 2,
    ladder: Sequence[Tuple[int, int]] = ((96, 160), (48, 80), (24, 40)),
) -> TranscodeResult:
    """Resize the clip to each ladder rung and encode it.

    Returns measured bytes and PSNR per rendition; raises on invalid
    presets or empty ladders.
    """
    if quality not in PRESET_QUANTIZERS:
        raise ValueError(f"quality must be one of {sorted(PRESET_QUANTIZERS)}")
    if not ladder:
        raise ValueError("ladder must contain at least one rendition")
    codec = BlockCodec(quantizer=PRESET_QUANTIZERS[quality])
    renditions: List[RenditionStats] = []
    for out_h, out_w in ladder:
        total_bytes = 0
        psnrs: List[float] = []
        for frame in sequence:
            resized = bilinear_resize(frame, out_h, out_w)
            encoded = codec.encode(resized)
            decoded = codec.decode(encoded)
            total_bytes += encoded.compressed_bytes
            psnrs.append(psnr(resized, decoded))
        renditions.append(
            RenditionStats(
                height=out_h,
                width=out_w,
                frames=sequence.num_frames,
                compressed_bytes=total_bytes,
                mean_psnr_db=sum(psnrs) / len(psnrs),
            )
        )
    return TranscodeResult(quality=quality, renditions=renditions)
