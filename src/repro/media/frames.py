"""Synthetic test sequences (the "El Fuente" stand-in).

Generates deterministic grayscale frames with the features an encoder
has to work for: smooth gradients (cheap), moving high-contrast objects
(motion), and a textured region (expensive detail).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np


@dataclass(frozen=True)
class FrameSequence:
    """A stack of grayscale frames, shape (frames, height, width)."""

    frames: np.ndarray
    fps: float = 24.0

    def __post_init__(self) -> None:
        if self.frames.ndim != 3:
            raise ValueError("frames must be a (n, h, w) array")
        if self.frames.dtype != np.uint8:
            raise ValueError("frames must be uint8 luma samples")
        if self.fps <= 0:
            raise ValueError("fps must be positive")

    @property
    def num_frames(self) -> int:
        return self.frames.shape[0]

    @property
    def height(self) -> int:
        return self.frames.shape[1]

    @property
    def width(self) -> int:
        return self.frames.shape[2]

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self.frames)


def synthetic_sequence(
    num_frames: int = 12,
    height: int = 96,
    width: int = 160,
    seed: int = 7,
) -> FrameSequence:
    """Build a deterministic sequence with gradient + motion + texture."""
    if num_frames < 1 or height < 16 or width < 16:
        raise ValueError("need >= 1 frame of at least 16x16")
    rng = np.random.default_rng(seed)
    ys, xs = np.mgrid[0:height, 0:width]
    gradient = (xs / max(1, width - 1) * 160.0 + ys / max(1, height - 1) * 60.0)

    # A fixed texture patch in the lower-right quadrant.
    texture = rng.integers(0, 60, size=(height, width)).astype(np.float64)
    texture_mask = np.zeros((height, width))
    texture_mask[height // 2 :, width // 2 :] = 1.0

    frames = np.empty((num_frames, height, width), dtype=np.uint8)
    box = max(8, height // 6)
    for i in range(num_frames):
        frame = gradient + texture * texture_mask
        # A bright box sweeping left to right (motion).
        x0 = int((width - box) * i / max(1, num_frames - 1))
        y0 = height // 4
        frame[y0 : y0 + box, x0 : x0 + box] = 235.0
        frames[i] = np.clip(frame, 0, 255).astype(np.uint8)
    return FrameSequence(frames=frames)


def bilinear_resize(frame: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Real bilinear resampling of one grayscale frame."""
    if frame.ndim != 2:
        raise ValueError("frame must be 2D")
    if out_h < 1 or out_w < 1:
        raise ValueError("output size must be positive")
    in_h, in_w = frame.shape
    src = frame.astype(np.float64)
    ys = np.linspace(0, in_h - 1, out_h)
    xs = np.linspace(0, in_w - 1, out_w)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, in_h - 1)
    x1 = np.minimum(x0 + 1, in_w - 1)
    wy = (ys - y0)[:, None]
    wx = (xs - x0)[None, :]
    top = src[np.ix_(y0, x0)] * (1 - wx) + src[np.ix_(y0, x1)] * wx
    bottom = src[np.ix_(y1, x0)] * (1 - wx) + src[np.ix_(y1, x1)] * wx
    out = top * (1 - wy) + bottom * wy
    return np.clip(np.rint(out), 0, 255).astype(np.uint8)
