"""In-memory write buffer and immutable sorted-run metadata.

The storage model tracks *structure and byte accounting*, not value
contents: a :class:`Memtable` maps keys to value sizes, and an
:class:`SSTable` is the metadata a real LSM engine keeps per sorted
run — the sorted key list, per-key sizes, key range, level, and a
bloom filter.  Lookups bisect the key list exactly like an index-block
search; the actual data-block transfer is charged to the simulated
block device by the :class:`~repro.storage.lsm.LsmTree`.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, Iterable, List, Optional, Tuple

from repro.storage.bloom import BloomFilter


class Memtable:
    """Sorted-on-flush write buffer with byte accounting."""

    __slots__ = ("_entries", "data_bytes")

    def __init__(self) -> None:
        self._entries: Dict[int, int] = {}
        self.data_bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: int) -> bool:
        return key in self._entries

    def get(self, key: int) -> Optional[int]:
        """Value size for ``key``, or None when absent."""
        return self._entries.get(key)

    def put(self, key: int, value_bytes: int) -> None:
        """Insert or overwrite; byte accounting follows the new size."""
        if value_bytes < 0:
            raise ValueError("value_bytes must be non-negative")
        previous = self._entries.get(key)
        if previous is not None:
            self.data_bytes -= previous
        self._entries[key] = value_bytes
        self.data_bytes += value_bytes

    def sorted_entries(self) -> List[Tuple[int, int]]:
        """(key, size) pairs in key order — the flush image."""
        return sorted(self._entries.items())

    def range_entries(self, start_key: int, count: int) -> List[Tuple[int, int]]:
        """Up to ``count`` (key, size) pairs at or after ``start_key``."""
        keys = sorted(k for k in self._entries if k >= start_key)[:count]
        return [(k, self._entries[k]) for k in keys]


class SSTable:
    """One immutable sorted run.

    Keys are integers (the workloads' key ordinals); parallel lists
    keep per-key value sizes for scan/compaction byte accounting.
    """

    __slots__ = (
        "table_id",
        "level",
        "keys",
        "sizes",
        "bloom",
        "data_bytes",
        "min_key",
        "max_key",
    )

    def __init__(
        self,
        table_id: int,
        level: int,
        entries: Iterable[Tuple[int, int]],
        bits_per_key: int = 10,
    ) -> None:
        pairs = list(entries)
        if not pairs:
            raise ValueError("an SSTable needs at least one entry")
        if any(pairs[i][0] >= pairs[i + 1][0] for i in range(len(pairs) - 1)):
            raise ValueError("entries must be sorted by strictly increasing key")
        self.table_id = table_id
        self.level = level
        self.keys: List[int] = [k for k, _ in pairs]
        self.sizes: List[int] = [s for _, s in pairs]
        self.data_bytes = sum(self.sizes)
        self.min_key = self.keys[0]
        self.max_key = self.keys[-1]
        self.bloom = BloomFilter(len(pairs), bits_per_key=bits_per_key)
        for key in self.keys:
            self.bloom.add(key)

    def __len__(self) -> int:
        return len(self.keys)

    def key_position(self, key: int) -> Optional[int]:
        """Index of ``key`` in the run, or None when absent."""
        if key < self.min_key or key > self.max_key:
            return None
        index = bisect_left(self.keys, key)
        if index < len(self.keys) and self.keys[index] == key:
            return index
        return None

    def overlaps(self, min_key: int, max_key: int) -> bool:
        return self.min_key <= max_key and min_key <= self.max_key

    def range_entries(self, start_key: int, count: int) -> List[Tuple[int, int]]:
        """Up to ``count`` (key, size) pairs at or after ``start_key``."""
        index = bisect_left(self.keys, start_key)
        stop = min(len(self.keys), index + count)
        return list(zip(self.keys[index:stop], self.sizes[index:stop]))

    def entries(self) -> List[Tuple[int, int]]:
        return list(zip(self.keys, self.sizes))


def merge_runs(runs: List[SSTable]) -> List[Tuple[int, int]]:
    """K-way merge with newest-wins semantics.

    ``runs`` must be ordered newest-first (the compaction input order);
    a key present in several runs keeps the newest size, exactly like a
    real compaction dropping obsolete versions.
    """
    merged: Dict[int, int] = {}
    for run in reversed(runs):  # oldest first, newer runs overwrite
        for key, size in zip(run.keys, run.sizes):
            merged[key] = size
    return sorted(merged.items())


def split_into_tables(
    entries: List[Tuple[int, int]],
    target_bytes: int,
    next_id,
    level: int,
    bits_per_key: int = 10,
) -> List[SSTable]:
    """Cut a merged entry stream into tables of ~``target_bytes`` each.

    ``next_id`` is a callable returning fresh table ids (the tree's
    monotonic counter), keeping id assignment deterministic.
    """
    if target_bytes < 1:
        raise ValueError("target_bytes must be >= 1")
    tables: List[SSTable] = []
    chunk: List[Tuple[int, int]] = []
    chunk_bytes = 0
    for key, size in entries:
        chunk.append((key, size))
        chunk_bytes += size
        if chunk_bytes >= target_bytes:
            tables.append(
                SSTable(next_id(), level, chunk, bits_per_key=bits_per_key)
            )
            chunk = []
            chunk_bytes = 0
    if chunk:
        tables.append(SSTable(next_id(), level, chunk, bits_per_key=bits_per_key))
    return tables


__all__ = [
    "Memtable",
    "SSTable",
    "merge_runs",
    "split_into_tables",
    "bisect_left",
    "bisect_right",
]
