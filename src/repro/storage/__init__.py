"""LSM-tree storage engine model (the StorageBench vertical).

Layers: :mod:`repro.storage.bloom` (deterministic bloom filters),
:mod:`repro.storage.sstable` (memtable + sorted-run metadata), and
:mod:`repro.storage.lsm` (the leveled LSM engine driving a simulated
block device, a block cache, and background compaction).
"""

from repro.storage.bloom import BloomFilter
from repro.storage.lsm import LsmConfig, LsmStats, LsmTree
from repro.storage.sstable import Memtable, SSTable, merge_runs, split_into_tables

__all__ = [
    "BloomFilter",
    "LsmConfig",
    "LsmStats",
    "LsmTree",
    "Memtable",
    "SSTable",
    "merge_runs",
    "split_into_tables",
]
