"""Deterministic bloom filter for SSTable point-lookup gating.

RocksDB attaches a bloom filter to every SSTable so point lookups skip
tables that cannot contain the key — the difference between one random
read per lookup and one per *level*.  This implementation follows the
classic Kirsch–Mitzenmacher construction (k indices derived from two
base hashes), with both hashes computed by :func:`zlib.crc32` over
salted encodings of the key.  Built-in ``hash()`` is banned here: it is
salted per process (``PYTHONHASHSEED``), and the simulator's reports —
including which lookups pay a false-positive device read — must be
byte-identical across processes and machines.
"""

from __future__ import annotations

import zlib
from typing import Union

Key = Union[int, str, bytes]


def _key_bytes(key: Key) -> bytes:
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode("utf-8")
    return key.to_bytes(8, "big", signed=True)


class BloomFilter:
    """Fixed-size bloom filter sized for an expected key count.

    ``bits_per_key=10`` gives the RocksDB-default ~1% false-positive
    rate at ``k = round(0.69 * bits_per_key)`` hash functions.
    """

    __slots__ = ("num_bits", "num_hashes", "_bits", "keys_added")

    def __init__(self, expected_keys: int, bits_per_key: int = 10) -> None:
        if expected_keys < 1:
            raise ValueError("expected_keys must be >= 1")
        if bits_per_key < 1:
            raise ValueError("bits_per_key must be >= 1")
        self.num_bits = max(64, expected_keys * bits_per_key)
        self.num_hashes = max(1, round(0.69 * bits_per_key))
        self._bits = bytearray((self.num_bits + 7) // 8)
        self.keys_added = 0

    def _base_hashes(self, key: Key) -> "tuple[int, int]":
        data = _key_bytes(key)
        h1 = zlib.crc32(data)
        # Second independent hash: same CRC over a salted prefix; the
        # OR 1 keeps the stride odd so indices never collapse onto h1.
        h2 = zlib.crc32(b"bloom-salt:" + data) | 1
        return h1, h2

    def add(self, key: Key) -> None:
        h1, h2 = self._base_hashes(key)
        bits = self._bits
        num_bits = self.num_bits
        for i in range(self.num_hashes):
            index = (h1 + i * h2) % num_bits
            bits[index >> 3] |= 1 << (index & 7)
        self.keys_added += 1

    def might_contain(self, key: Key) -> bool:
        h1, h2 = self._base_hashes(key)
        bits = self._bits
        num_bits = self.num_bits
        for i in range(self.num_hashes):
            index = (h1 + i * h2) % num_bits
            if not bits[index >> 3] & (1 << (index & 7)):
                return False
        return True

    @property
    def fill_fraction(self) -> float:
        """Fraction of bits set (false-positive rate is roughly
        ``fill_fraction ** num_hashes``)."""
        set_bits = sum(bin(b).count("1") for b in self._bits)
        return set_bits / self.num_bits
