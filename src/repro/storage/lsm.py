"""LSM-tree storage engine model on the discrete-event engine.

The shape is RocksDB's leveled compaction, reduced to the mechanisms
that determine datacenter storage-node performance:

* **Writes** append to the WAL (sequential device write), land in the
  memtable, and rotate it into an L0 flush once the size threshold
  trips.  Flushes and compactions run as *background simulation
  processes* that share the block device — and, through the caller's
  ``compaction_cpu`` hook, the simulated CPU — with foreground traffic.
* **Reads** check the memtable, then L0 runs newest-first, then one
  candidate run per sorted level.  Every run consult is gated by its
  bloom filter; a pass reads one data block *through the block cache*
  (a :class:`~repro.cachelib.lru.LruCache`), so only cache misses reach
  the device.  Bloom false positives pay the block read and find
  nothing — exactly the wasted I/O a real engine eats.
* **Backpressure**: when L0 accumulates ``l0_stall_trigger`` runs,
  writers stall until compaction drains it — RocksDB's write-stall
  mechanism, and the main way compaction interference becomes visible
  in foreground p99.

``io_scale`` implements the suite's batch semantics: one simulated
operation stands for ``batch`` production operations, so device
transfers multiply by ``io_scale`` (bytes aggregate across the batch)
while per-op device latency is charged once (batched ops pipeline on
the device queue).  The tree's own data structures stay in sim units.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Callable, Generator, List, Optional, Tuple

from repro.cachelib.lru import LruCache
from repro.hw.blockdev import BlockDevice
from repro.sim.engine import Environment, Event
from repro.storage.sstable import Memtable, SSTable, merge_runs, split_into_tables


@dataclass(frozen=True)
class LsmConfig:
    """Geometry and trigger thresholds (sim units; see ``io_scale``)."""

    memtable_bytes: int = 256 * 1024
    #: L0 run count that starts a compaction into L1.
    l0_compaction_trigger: int = 4
    #: L0 run count that stalls writers until compaction catches up.
    l0_stall_trigger: int = 8
    #: Ln target size = base_level_bytes * multiplier**(n-1).
    base_level_bytes: int = 1024 * 1024
    level_size_multiplier: int = 10
    #: Deepest sorted level (L1..max_level).
    max_level: int = 4
    #: Data-block size: the unit of cache residency and random reads.
    block_bytes: int = 4096
    #: Keys per data block (block index granularity for the cache).
    keys_per_block: int = 10
    bloom_bits_per_key: int = 10
    #: Per-record WAL framing overhead added to the value bytes.
    wal_record_overhead: int = 32
    #: Output tables are cut at roughly this size during compaction.
    table_target_bytes: int = 512 * 1024

    def level_target_bytes(self, level: int) -> int:
        if level < 1:
            raise ValueError("sorted levels start at 1")
        return self.base_level_bytes * self.level_size_multiplier ** (level - 1)


class LsmStats:
    """Operation counters; resettable at the measurement-window edge."""

    __slots__ = (
        "gets",
        "hits",
        "puts",
        "scans",
        "scanned_entries",
        "bloom_checks",
        "bloom_negatives",
        "bloom_false_positives",
        "block_reads",
        "flushes",
        "compactions",
        "compaction_read_bytes",
        "compaction_write_bytes",
        "flush_write_bytes",
        "wal_bytes",
        "stall_events",
        "stall_seconds",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.gets = 0
        self.hits = 0
        self.puts = 0
        self.scans = 0
        self.scanned_entries = 0
        self.bloom_checks = 0
        self.bloom_negatives = 0
        self.bloom_false_positives = 0
        self.block_reads = 0
        self.flushes = 0
        self.compactions = 0
        self.compaction_read_bytes = 0.0
        self.compaction_write_bytes = 0.0
        self.flush_write_bytes = 0.0
        self.wal_bytes = 0.0
        self.stall_events = 0
        self.stall_seconds = 0.0

    @property
    def bloom_fp_rate(self) -> float:
        """False positives per bloom pass (checks that were not
        short-circuited)."""
        passes = self.bloom_checks - self.bloom_negatives
        if passes == 0:
            return 0.0
        return self.bloom_false_positives / passes


class LsmTree:
    """One LSM storage engine instance bound to a device and a cache.

    ``compaction_cpu`` (optional) is a generator factory charged with
    ``merge_bytes`` of compaction input; the caller maps bytes to CPU
    instructions on its harness, which is how background compaction
    contends with foreground request processing for simulated cores.
    ``on_stall`` (optional) observes each writer stall duration — the
    StorageBench workload feeds these into an HDR-bucketed recorder.
    """

    def __init__(
        self,
        env: Environment,
        device: BlockDevice,
        block_cache: LruCache,
        config: Optional[LsmConfig] = None,
        io_scale: int = 1,
        compaction_cpu: Optional[Callable[[float], Generator]] = None,
        on_stall: Optional[Callable[[float], None]] = None,
    ) -> None:
        if io_scale < 1:
            raise ValueError("io_scale must be >= 1")
        self.env = env
        self.device = device
        self.block_cache = block_cache
        self.config = config or LsmConfig()
        self.io_scale = io_scale
        self.compaction_cpu = compaction_cpu
        self.on_stall = on_stall
        self.memtable = Memtable()
        #: levels[0] is the L0 run list, newest first; levels[n>=1] are
        #: sorted non-overlapping runs ordered by min_key.
        self.levels: List[List[SSTable]] = [
            [] for _ in range(self.config.max_level + 1)
        ]
        self.stats = LsmStats()
        self._next_table_id = 0
        self._compacting = False
        self._stall_event: Optional[Event] = None
        #: Shared immutable block payload: cache entries model resident
        #: bytes, not contents, so every block shares one bytes object.
        self._block_value = b"\x00" * self.config.block_bytes

    # -- id/geometry helpers ---------------------------------------------------
    def _take_table_id(self) -> int:
        self._next_table_id += 1
        return self._next_table_id

    def level_bytes(self, level: int) -> int:
        return sum(t.data_bytes for t in self.levels[level])

    @property
    def table_count(self) -> int:
        return sum(len(tables) for tables in self.levels)

    @property
    def total_data_bytes(self) -> int:
        return self.memtable.data_bytes + sum(
            self.level_bytes(level) for level in range(len(self.levels))
        )

    # -- warm start ------------------------------------------------------------
    def load_level(self, level: int, entries: List[Tuple[int, int]]) -> None:
        """Install pre-built sorted runs without device traffic.

        The warm-start image a production node boots with; entries must
        be sorted by key, and the target level must be a sorted level
        (1..max_level) that is still empty.
        """
        if not 1 <= level <= self.config.max_level:
            raise ValueError(f"load_level targets sorted levels, got {level}")
        if self.levels[level]:
            raise ValueError(f"level {level} is already populated")
        self.levels[level] = split_into_tables(
            entries,
            self.config.table_target_bytes,
            self._take_table_id,
            level,
            bits_per_key=self.config.bloom_bits_per_key,
        )

    # -- read path -------------------------------------------------------------
    def _block_key(self, table: SSTable, position: int) -> str:
        return f"{table.table_id}:{position // self.config.keys_per_block}"

    def _consult_run(self, table: SSTable, key: int) -> Generator:
        """Bloom-gated lookup in one run; returns True when found.

        A bloom pass always costs a data-block access (through the
        cache): a real engine must read the block to learn whether the
        hit was genuine, which is why false positives hurt.
        """
        self.stats.bloom_checks += 1
        if not table.bloom.might_contain(key):
            self.stats.bloom_negatives += 1
            return False
        position = table.key_position(key)
        # The block a real lookup would read: the key's block when
        # present, the block the key would bisect into on a false
        # positive.
        block_position = (
            position if position is not None else bisect_left(table.keys, key)
        )
        cache_key = self._block_key(table, min(block_position, len(table) - 1))
        if self.block_cache.get(cache_key) is None:
            self.stats.block_reads += 1
            yield from self.device.read(
                self.config.block_bytes * self.io_scale, sequential=False
            )
            self.block_cache.set(cache_key, self._block_value)
        if position is None:
            self.stats.bloom_false_positives += 1
            return False
        return True

    def _sorted_level_candidate(self, level: int, key: int) -> Optional[SSTable]:
        """The one run on a sorted level that could hold ``key``."""
        for table in self.levels[level]:
            if table.min_key > key:
                return None
            if key <= table.max_key:
                return table
        return None

    def get(self, key: int) -> Generator:
        """Point lookup; returns True when the key exists (generator)."""
        self.stats.gets += 1
        if self.memtable.get(key) is not None:
            self.stats.hits += 1
            return True
        for table in self.levels[0]:
            found = yield from self._consult_run(table, key)
            if found:
                self.stats.hits += 1
                return True
        for level in range(1, len(self.levels)):
            candidate = self._sorted_level_candidate(level, key)
            if candidate is None:
                continue
            found = yield from self._consult_run(candidate, key)
            if found:
                self.stats.hits += 1
                return True
        return False

    def scan(self, start_key: int, count: int) -> Generator:
        """Short range scan; returns (entries, data_bytes) (generator).

        Merges candidates newest-first across the memtable and every
        run, then charges one sequential read for the result bytes —
        the iterator-heap behavior of a real engine, with the block
        transfers aggregated into one sequential burst.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        self.stats.scans += 1
        merged = {}
        sources = [self.memtable.range_entries(start_key, count)]
        sources.extend(t.range_entries(start_key, count) for t in self.levels[0])
        for level in range(1, len(self.levels)):
            for table in self.levels[level]:
                if table.max_key < start_key:
                    continue
                sources.append(table.range_entries(start_key, count))
                break
        for source in reversed(sources):  # oldest last in, newest wins
            for key, size in source:
                merged[key] = size
        keys = sorted(merged)[:count]
        result_bytes = sum(merged[k] for k in keys)
        self.stats.scanned_entries += len(keys)
        yield from self.device.read(
            max(self.config.block_bytes, result_bytes) * self.io_scale,
            sequential=True,
        )
        return len(keys), result_bytes

    # -- write path ------------------------------------------------------------
    def put(self, key: int, value_bytes: int) -> Generator:
        """Write one record: stall check, WAL append, memtable insert."""
        self.stats.puts += 1
        while len(self.levels[0]) >= self.config.l0_stall_trigger:
            self.stats.stall_events += 1
            stalled_at = self.env.now
            yield self._stall_cleared()
            stalled = self.env.now - stalled_at
            self.stats.stall_seconds += stalled
            if self.on_stall is not None:
                self.on_stall(stalled)
        wal_bytes = value_bytes + self.config.wal_record_overhead
        yield from self.device.write(wal_bytes * self.io_scale, sequential=True)
        self.stats.wal_bytes += wal_bytes * self.io_scale
        self.memtable.put(key, value_bytes)
        if self.memtable.data_bytes >= self.config.memtable_bytes:
            self._rotate_memtable()

    def _stall_cleared(self) -> Event:
        if self._stall_event is None:
            self._stall_event = Event(self.env)
        return self._stall_event

    def _release_stalls(self) -> None:
        if (
            self._stall_event is not None
            and len(self.levels[0]) < self.config.l0_stall_trigger
        ):
            event = self._stall_event
            self._stall_event = None
            event.succeed()

    def _rotate_memtable(self) -> None:
        entries = self.memtable.sorted_entries()
        self.memtable = Memtable()
        self.env.process(self._flush(entries))

    def _flush(self, entries: List[Tuple[int, int]]) -> Generator:
        data_bytes = sum(size for _, size in entries)
        yield from self.device.write(data_bytes * self.io_scale, sequential=True)
        table = SSTable(
            self._take_table_id(),
            0,
            entries,
            bits_per_key=self.config.bloom_bits_per_key,
        )
        self.levels[0].insert(0, table)
        self.stats.flushes += 1
        self.stats.flush_write_bytes += data_bytes * self.io_scale
        self._maybe_compact()

    # -- compaction ------------------------------------------------------------
    def _pick_compaction_level(self) -> Optional[int]:
        if len(self.levels[0]) >= self.config.l0_compaction_trigger:
            return 0
        for level in range(1, self.config.max_level):
            if self.level_bytes(level) > self.config.level_target_bytes(level):
                return level
        return None

    def _maybe_compact(self) -> None:
        if self._compacting:
            return
        level = self._pick_compaction_level()
        if level is None:
            return
        self._compacting = True
        self.env.process(self._compact(level))

    def _compact(self, from_level: int) -> Generator:
        """Merge one level's pick into the next (background process)."""
        config = self.config
        to_level = from_level + 1
        if from_level == 0:
            inputs = list(self.levels[0])
        else:
            # Deterministic pick: the lowest-keyed run on the level.
            inputs = [self.levels[from_level][0]]
        key_lo = min(t.min_key for t in inputs)
        key_hi = max(t.max_key for t in inputs)
        overlapping = [
            t for t in self.levels[to_level] if t.overlaps(key_lo, key_hi)
        ]
        merge_inputs = inputs + overlapping  # newest (upper level) first
        read_bytes = sum(t.data_bytes for t in merge_inputs)
        yield from self.device.read(read_bytes * self.io_scale, sequential=True)
        if self.compaction_cpu is not None:
            yield from self.compaction_cpu(read_bytes)
        merged = merge_runs(merge_inputs)
        out_tables = split_into_tables(
            merged,
            config.table_target_bytes,
            self._take_table_id,
            to_level,
            bits_per_key=config.bloom_bits_per_key,
        )
        write_bytes = sum(t.data_bytes for t in out_tables)
        yield from self.device.write(write_bytes * self.io_scale, sequential=True)
        # Install: drop inputs, merge outputs into the target level in
        # key order.  Dead tables' cache blocks age out via LRU.
        input_ids = {t.table_id for t in inputs}
        self.levels[from_level] = [
            t for t in self.levels[from_level] if t.table_id not in input_ids
        ]
        overlap_ids = {t.table_id for t in overlapping}
        survivors = [
            t for t in self.levels[to_level] if t.table_id not in overlap_ids
        ]
        self.levels[to_level] = sorted(
            survivors + out_tables, key=lambda t: t.min_key
        )
        self.stats.compactions += 1
        self.stats.compaction_read_bytes += read_bytes * self.io_scale
        self.stats.compaction_write_bytes += write_bytes * self.io_scale
        self._compacting = False
        self._release_stalls()
        self._maybe_compact()
