"""Syscall cost table.

Workload models compose request service times partly from syscall
costs; the table also feeds the kernel-time fraction accounting behind
Figure 9.  Costs are representative post-Spectre/Meltdown numbers for a
warm syscall path on a ~2 GHz server core.
"""

from __future__ import annotations

from typing import Dict

#: Base cost in microseconds per invocation.
SYSCALL_TABLE: Dict[str, float] = {
    "read": 0.55,
    "write": 0.60,
    "recv": 0.70,
    "send": 0.75,
    "epoll_wait": 0.90,
    "futex_wait": 1.10,
    "futex_wake": 0.80,
    "nanosleep": 1.40,
    "mmap": 2.50,
    "open": 1.80,
    "close": 0.45,
    "sched_yield": 0.50,
}


def syscall_cost_us(name: str, count: int = 1) -> float:
    """Total cost in microseconds for ``count`` invocations of ``name``."""
    if count < 0:
        raise ValueError("count must be non-negative")
    try:
        return SYSCALL_TABLE[name] * count
    except KeyError:
        known = ", ".join(sorted(SYSCALL_TABLE))
        raise KeyError(f"unknown syscall {name!r}; known: {known}") from None


def request_kernel_time_us(syscalls: Dict[str, int]) -> float:
    """Kernel time in microseconds for one request's syscall mix."""
    return sum(syscall_cost_us(name, count) for name, count in syscalls.items())
