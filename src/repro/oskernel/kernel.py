"""Kernel version descriptors.

The Section 5.3 case study compares Linux 6.4 and 6.9.  The relevant
difference is commit 1528c661 ("sched/fair: Ratelimit update to
tg->load_avg"): 6.4 updates the task-group load counter on every
enqueue/dequeue, so on high-core-count machines the cacheline holding
the counter bounces between hundreds of cores; 6.9 rate-limits updates
to roughly once per millisecond per task group, removing the contention.

``loadavg_update_ratio`` expresses the fraction of scheduling events
that still touch the shared counter (1.0 on 6.4, ~0.02 on 6.9 for a
nanosleep-heavy workload like TaoBench).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class KernelVersion:
    """Scheduler-relevant parameters of one kernel release."""

    version: str
    context_switch_us: float = 1.2
    loadavg_update_ratio: float = 1.0
    loadavg_base_cycles: float = 2100.0
    loadavg_ref_cores: int = 176
    loadavg_exponent: float = 3.15

    def __post_init__(self) -> None:
        if self.context_switch_us <= 0:
            raise ValueError("context_switch_us must be positive")
        if not 0.0 <= self.loadavg_update_ratio <= 1.0:
            raise ValueError("loadavg_update_ratio must be in [0, 1]")
        if self.loadavg_base_cycles < 0:
            raise ValueError("loadavg_base_cycles must be non-negative")

    def loadavg_cost_cycles(self, logical_cores: int) -> float:
        """Average shared-counter cost charged per scheduling event.

        The cost grows superlinearly with core count: more cores means
        both more frequent updates to the same cacheline and a longer
        coherence path per bounce.  The exponent is calibrated so the
        model reproduces Figure 16 (a ~3% effect at 176 cores, a ~35%
        capacity loss at 384 cores on kernel 6.4).
        """
        if logical_cores < 1:
            raise ValueError("logical_cores must be >= 1")
        scale = (logical_cores / self.loadavg_ref_cores) ** self.loadavg_exponent
        return self.loadavg_base_cycles * scale * self.loadavg_update_ratio


KERNEL_6_4 = KernelVersion(version="6.4", loadavg_update_ratio=1.0)
KERNEL_6_9 = KernelVersion(version="6.9", loadavg_update_ratio=0.02)

_KERNELS: Dict[str, KernelVersion] = {
    KERNEL_6_4.version: KERNEL_6_4,
    KERNEL_6_9.version: KERNEL_6_9,
}


def get_kernel(version: str) -> KernelVersion:
    """Look up a modeled kernel version ("6.4" or "6.9")."""
    try:
        return _KERNELS[version]
    except KeyError:
        known = ", ".join(sorted(_KERNELS))
        raise KeyError(f"unknown kernel {version!r}; modeled kernels: {known}") from None
