"""Self-consistent scheduler-overhead solver.

Scheduler overhead is a feedback system: throughput determines the
context-switch rate, switch rate determines scheduler CPU consumption,
and scheduler CPU consumption reduces the capacity available for
application work — which lowers throughput.  This module solves that
fixed point, producing the *scheduler overhead fraction* the workload
runner folds into its scaling efficiency.

This is the mechanism behind Figure 16: TaoBench issues ~2 scheduling
events per request (dispatch to a fast/slow thread plus the
``nanosleep()`` wakeup on the slow path), so at millions of requests
per second the per-event ``tg->load_avg`` cost — tiny at 176 cores,
large at 384 on kernel 6.4 — turns into a third of the machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.oskernel.kernel import KernelVersion


@dataclass(frozen=True)
class SchedulerOverheadResult:
    """Output of the fixed-point solve."""

    overhead_fraction: float
    switch_rate_per_sec: float
    per_event_cost_cycles: float
    iterations: int

    def __post_init__(self) -> None:
        if not 0.0 <= self.overhead_fraction < 1.0:
            raise ValueError("overhead_fraction must be in [0, 1)")


class LoadAvgContentionModel:
    """Computes scheduler overhead for a workload on a kernel + SKU."""

    def __init__(self, kernel: KernelVersion) -> None:
        self.kernel = kernel

    def per_event_cost_cycles(self, logical_cores: int) -> float:
        """Total scheduler cost per scheduling event, in cycles."""
        base_cycles = self.kernel.context_switch_us * 1e3  # ~1.2us ~ 2400 @2GHz
        return base_cycles + self.kernel.loadavg_cost_cycles(logical_cores)

    def solve(
        self,
        unimpeded_switch_rate: float,
        logical_cores: int,
        freq_ghz: float,
        max_iterations: int = 20,
        tolerance: float = 1e-6,
    ) -> SchedulerOverheadResult:
        """Fixed-point solve of the overhead/throughput feedback.

        Args:
            unimpeded_switch_rate: scheduling events per second the
                workload would generate with zero scheduler overhead.
            logical_cores: hardware threads on the machine.
            freq_ghz: effective core frequency.
        """
        if unimpeded_switch_rate < 0:
            raise ValueError("unimpeded_switch_rate must be non-negative")
        if logical_cores < 1:
            raise ValueError("logical_cores must be >= 1")
        if freq_ghz <= 0:
            raise ValueError("freq_ghz must be positive")

        cost_cycles = self.per_event_cost_cycles(logical_cores)
        capacity_cycles = logical_cores * freq_ghz * 1e9
        overhead = 0.0
        iterations = 0
        for iterations in range(1, max_iterations + 1):
            # Throughput (and hence switch rate) shrinks with overhead.
            switch_rate = unimpeded_switch_rate * (1.0 - overhead)
            new_overhead = min(0.9, switch_rate * cost_cycles / capacity_cycles)
            if abs(new_overhead - overhead) < tolerance:
                overhead = new_overhead
                break
            overhead = new_overhead
        return SchedulerOverheadResult(
            overhead_fraction=overhead,
            switch_rate_per_sec=unimpeded_switch_rate * (1.0 - overhead),
            per_event_cost_cycles=cost_cycles,
            iterations=iterations,
        )
