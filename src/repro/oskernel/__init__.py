"""OS kernel model.

Datacenter workloads spend 10-30% of cycles in the kernel (Fig. 9), and
Section 5.3 of the paper traces a 54% performance regression on a
384-core SKU to lock contention on the scheduler's ``tg->load_avg``
counter — fixed in kernel 6.9 by rate-limiting updates.  This package
models exactly those mechanisms: a kernel-version descriptor with the
contention parameters, a syscall cost table, and a discrete-event CPU
scheduler that charges context-switch and load-tracking overhead on
every dispatch.
"""

from repro.oskernel.kernel import KERNEL_6_4, KERNEL_6_9, KernelVersion, get_kernel
from repro.oskernel.loadavg import LoadAvgContentionModel
from repro.oskernel.scheduler import CpuScheduler, SchedulerStats
from repro.oskernel.syscalls import SYSCALL_TABLE, syscall_cost_us

__all__ = [
    "KernelVersion",
    "KERNEL_6_4",
    "KERNEL_6_9",
    "get_kernel",
    "LoadAvgContentionModel",
    "CpuScheduler",
    "SchedulerStats",
    "SYSCALL_TABLE",
    "syscall_cost_us",
]
