"""Discrete-event CPU scheduler.

Wraps a :class:`repro.sim.Resource` of logical cores and charges kernel
overhead (context switch + load-average update) on every dispatch.
Workload models execute CPU bursts through :meth:`CpuScheduler.execute`
from inside a sim process::

    def worker(env, sched):
        yield from sched.execute(service_seconds, kernel_seconds)

Statistics are accumulated for the utilization and kernel-time figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.errors import ServerUnavailableError
from repro.oskernel.kernel import KernelVersion
from repro.sim.engine import Environment
from repro.sim.resources import Resource


@dataclass
class SchedulerStats:
    """Aggregated busy-time accounting for one simulation run."""

    busy_seconds: float = 0.0
    kernel_seconds: float = 0.0
    dispatch_count: int = 0
    overhead_seconds: float = 0.0
    window_start: float = 0.0

    def reset(self, now: float) -> None:
        self.busy_seconds = 0.0
        self.kernel_seconds = 0.0
        self.dispatch_count = 0
        self.overhead_seconds = 0.0
        self.window_start = now

    def cpu_util(self, now: float, logical_cores: int) -> float:
        """Total CPU utilization over the observation window."""
        elapsed = now - self.window_start
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / (elapsed * logical_cores))

    def kernel_util(self, now: float, logical_cores: int) -> float:
        """Kernel-mode CPU utilization over the observation window."""
        elapsed = now - self.window_start
        if elapsed <= 0:
            return 0.0
        kernel_time = self.kernel_seconds + self.overhead_seconds
        return min(1.0, kernel_time / (elapsed * logical_cores))


@dataclass
class CpuScheduler:
    """A pool of logical cores with per-dispatch kernel overhead.

    ``single_thread_speedup`` models SMT interference: burst durations
    are calibrated to the fully-loaded machine (all SMT siblings busy);
    when fewer than half the logical cores are occupied each thread has
    a physical core to itself and runs this much faster (typically
    ``smt / smt_boost`` ~ 1.5x).  The speedup decays linearly to 1.0 as
    occupancy approaches full.  This is why request latency degrades
    well before 100% utilization on SMT machines — and one reason
    SLO-bound workloads like FeedSim peak at 50-70% CPU (Figure 9).
    """

    env: Environment
    logical_cores: int
    freq_ghz: float
    kernel: KernelVersion
    single_thread_speedup: float = 1.0
    stats: SchedulerStats = field(default_factory=SchedulerStats)
    #: Multiplier the fault injector applies to every burst (>= 1.0);
    #: 1.0 means no active CPU-channel fault.
    fault_slowdown: float = 1.0
    #: Speedup the SLO control plane's brownout responder publishes
    #: (>= 1.0): degraded serving / replica scale-out makes every
    #: request cheaper.  1.0 means full-quality serving.
    relief_speedup: float = 1.0
    #: True while a simulated crash/restart is in progress: new
    #: dispatches are refused, in-flight bursts drain.
    offline: bool = False

    def __post_init__(self) -> None:
        if self.logical_cores < 1:
            raise ValueError("logical_cores must be >= 1")
        if self.freq_ghz <= 0:
            raise ValueError("freq_ghz must be positive")
        if self.single_thread_speedup < 1.0:
            raise ValueError("single_thread_speedup must be >= 1.0")
        self.cores = Resource(self.env, capacity=self.logical_cores)
        self.stats.window_start = self.env.now
        # Per-dispatch overhead is invariant in (kernel, logical_cores)
        # and linear in 1/freq; precompute the pieces once instead of
        # re-asking the kernel model on every burst.  The occupancy
        # speedup is a pure function of the busy-core count, so the
        # whole curve is a table indexed by ``cores.count`` — built
        # with the exact per-count arithmetic of the former method, so
        # table lookups are bit-identical to on-the-fly evaluation.
        self._overhead_base = self.kernel.context_switch_us * 1e-6
        self._overhead_cycles = self.kernel.loadavg_cost_cycles(self.logical_cores)
        self._overhead_freq = 0.0
        self._overhead_cached = 0.0
        speedup = self.single_thread_speedup
        table = []
        for count in range(self.logical_cores + 1):
            if speedup <= 1.0:
                table.append(1.0)
                continue
            occupancy = count / self.logical_cores
            if occupancy <= 0.5:
                table.append(speedup)
            else:
                frac = (occupancy - 0.5) / 0.5
                table.append(speedup - frac * (speedup - 1.0))
        self._speedup_by_count = table

    def _current_speedup(self) -> float:
        """Execution speedup at the current core occupancy."""
        return self._speedup_by_count[self.cores.count]

    @property
    def dispatch_overhead_seconds(self) -> float:
        """Kernel cost charged per dispatch (switch + load-avg update).

        Cached keyed on the current frequency: the fault injector
        mutates ``freq_ghz`` at runtime (throttle faults), so the cache
        re-validates by comparing the stored frequency on every access
        and recomputes only when it actually changed.
        """
        freq = self.freq_ghz
        if freq != self._overhead_freq:
            self._overhead_freq = freq
            self._overhead_cached = (
                self._overhead_base + self._overhead_cycles / (freq * 1e9)
            )
        return self._overhead_cached

    def execute(
        self,
        user_seconds: float,
        kernel_seconds: float = 0.0,
        dispatches: int = 1,
    ):
        """Run one CPU burst on a core (generator; use ``yield from``).

        Holds a logical core for the burst duration plus the dispatch
        overhead, then releases it.  ``kernel_seconds`` is the portion
        of the burst spent in kernel mode (syscalls); dispatch overhead
        is always kernel time.  ``dispatches`` scales the overhead for
        batched simulation (one simulated burst standing for N
        production-side dispatches).
        """
        if user_seconds < 0 or kernel_seconds < 0:
            raise ValueError("burst durations must be non-negative")
        if dispatches < 1:
            raise ValueError("dispatches must be >= 1")
        if self.offline:
            raise ServerUnavailableError(
                "server is down (simulated crash/restart in progress)"
            )
        request = self.cores.request()
        try:
            yield request
        except BaseException:
            # Interrupted (abandoned request / deadline) while waiting
            # for — or at the instant of being granted — a core: hand
            # the slot back so it cannot leak.
            self.cores.release(request)
            raise
        speedup = self._current_speedup()
        overhead = self.dispatch_overhead_seconds * dispatches
        duration = (user_seconds + kernel_seconds) / speedup + overhead
        duration *= self.fault_slowdown
        # Guarded so runs without an active brownout response skip the
        # division entirely and stay bit-identical to the pre-control
        # arithmetic.
        if self.relief_speedup != 1.0:
            duration /= self.relief_speedup
        try:
            yield self.env.sleep(duration)
        finally:
            self.cores.release(request)
            self.stats.busy_seconds += duration
            self.stats.kernel_seconds += kernel_seconds
            self.stats.overhead_seconds += overhead
            self.stats.dispatch_count += dispatches
