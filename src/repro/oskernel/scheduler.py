"""Discrete-event CPU scheduler.

Wraps a :class:`repro.sim.Resource` of logical cores and charges kernel
overhead (context switch + load-average update) on every dispatch.
Workload models execute CPU bursts through :meth:`CpuScheduler.execute`
from inside a sim process::

    def worker(env, sched):
        yield from sched.execute(service_seconds, kernel_seconds)

Statistics are accumulated for the utilization and kernel-time figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.errors import ServerUnavailableError
from repro.oskernel.kernel import KernelVersion
from repro.sim.engine import Environment
from repro.sim.resources import Resource


@dataclass
class SchedulerStats:
    """Aggregated busy-time accounting for one simulation run."""

    busy_seconds: float = 0.0
    kernel_seconds: float = 0.0
    dispatch_count: int = 0
    overhead_seconds: float = 0.0
    window_start: float = 0.0

    def reset(self, now: float) -> None:
        self.busy_seconds = 0.0
        self.kernel_seconds = 0.0
        self.dispatch_count = 0
        self.overhead_seconds = 0.0
        self.window_start = now

    def cpu_util(self, now: float, logical_cores: int) -> float:
        """Total CPU utilization over the observation window."""
        elapsed = now - self.window_start
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / (elapsed * logical_cores))

    def kernel_util(self, now: float, logical_cores: int) -> float:
        """Kernel-mode CPU utilization over the observation window."""
        elapsed = now - self.window_start
        if elapsed <= 0:
            return 0.0
        kernel_time = self.kernel_seconds + self.overhead_seconds
        return min(1.0, kernel_time / (elapsed * logical_cores))


@dataclass
class CpuScheduler:
    """A pool of logical cores with per-dispatch kernel overhead.

    ``single_thread_speedup`` models SMT interference: burst durations
    are calibrated to the fully-loaded machine (all SMT siblings busy);
    when fewer than half the logical cores are occupied each thread has
    a physical core to itself and runs this much faster (typically
    ``smt / smt_boost`` ~ 1.5x).  The speedup decays linearly to 1.0 as
    occupancy approaches full.  This is why request latency degrades
    well before 100% utilization on SMT machines — and one reason
    SLO-bound workloads like FeedSim peak at 50-70% CPU (Figure 9).
    """

    env: Environment
    logical_cores: int
    freq_ghz: float
    kernel: KernelVersion
    single_thread_speedup: float = 1.0
    stats: SchedulerStats = field(default_factory=SchedulerStats)
    #: Multiplier the fault injector applies to every burst (>= 1.0);
    #: 1.0 means no active CPU-channel fault.
    fault_slowdown: float = 1.0
    #: True while a simulated crash/restart is in progress: new
    #: dispatches are refused, in-flight bursts drain.
    offline: bool = False

    def __post_init__(self) -> None:
        if self.logical_cores < 1:
            raise ValueError("logical_cores must be >= 1")
        if self.freq_ghz <= 0:
            raise ValueError("freq_ghz must be positive")
        if self.single_thread_speedup < 1.0:
            raise ValueError("single_thread_speedup must be >= 1.0")
        self.cores = Resource(self.env, capacity=self.logical_cores)
        self.stats.window_start = self.env.now

    def _current_speedup(self) -> float:
        """Execution speedup at the current core occupancy."""
        if self.single_thread_speedup <= 1.0:
            return 1.0
        occupancy = self.cores.count / self.logical_cores
        if occupancy <= 0.5:
            return self.single_thread_speedup
        # Linear decay from full speedup at half occupancy to 1.0 full.
        frac = (occupancy - 0.5) / 0.5
        return self.single_thread_speedup - frac * (self.single_thread_speedup - 1.0)

    @property
    def dispatch_overhead_seconds(self) -> float:
        """Kernel cost charged per dispatch (switch + load-avg update)."""
        base = self.kernel.context_switch_us * 1e-6
        loadavg_cycles = self.kernel.loadavg_cost_cycles(self.logical_cores)
        return base + loadavg_cycles / (self.freq_ghz * 1e9)

    def execute(
        self,
        user_seconds: float,
        kernel_seconds: float = 0.0,
        dispatches: int = 1,
    ):
        """Run one CPU burst on a core (generator; use ``yield from``).

        Holds a logical core for the burst duration plus the dispatch
        overhead, then releases it.  ``kernel_seconds`` is the portion
        of the burst spent in kernel mode (syscalls); dispatch overhead
        is always kernel time.  ``dispatches`` scales the overhead for
        batched simulation (one simulated burst standing for N
        production-side dispatches).
        """
        if user_seconds < 0 or kernel_seconds < 0:
            raise ValueError("burst durations must be non-negative")
        if dispatches < 1:
            raise ValueError("dispatches must be >= 1")
        if self.offline:
            raise ServerUnavailableError(
                "server is down (simulated crash/restart in progress)"
            )
        request = self.cores.request()
        try:
            yield request
        except BaseException:
            # Interrupted (abandoned request / deadline) while waiting
            # for — or at the instant of being granted — a core: hand
            # the slot back so it cannot leak.
            self.cores.release(request)
            raise
        speedup = self._current_speedup()
        overhead = self.dispatch_overhead_seconds * dispatches
        duration = (user_seconds + kernel_seconds) / speedup + overhead
        duration *= self.fault_slowdown
        try:
            yield self.env.sleep(duration)
        finally:
            self.cores.release(request)
            self.stats.busy_seconds += duration
            self.stats.kernel_seconds += kernel_seconds
            self.stats.overhead_seconds += overhead
            self.stats.dispatch_count += dispatches
