"""Read-through and look-aside cache policies.

Section 2.2 of the paper calls out a fidelity-critical design choice:
"while many caching benchmarks implement a look-aside cache, DCPerf
uses a read-through cache because our production systems employ it."
Both policies are implemented here so the ablation benchmark can show
why the distinction matters: in a read-through cache the *server* owns
the miss path (backend fetch + SET happen inside the cache tier, on
the slow thread pool), while look-aside pushes that work to clients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.cachelib.memcached import MemcachedServer

#: Fetches the authoritative value for a key (the "database").
BackendFetch = Callable[[str], bytes]


@dataclass
class DispatchStats:
    """Counts of fast-path (hit) and slow-path (miss) dispatches."""

    fast_path: int = 0
    slow_path: int = 0

    @property
    def total(self) -> int:
        return self.fast_path + self.slow_path

    @property
    def hit_rate(self) -> float:
        if self.total == 0:
            return 0.0
        return self.fast_path / self.total


class ReadThroughCache:
    """TAO-style read-through cache with fast/slow path dispatch.

    ``get`` always returns a value: hits return from Memcached (fast
    path), misses fetch from the backend, insert, and return (slow
    path).  The caller learns which path ran so a workload model can
    route the request to the right thread pool.
    """

    def __init__(
        self,
        server: MemcachedServer,
        backend: BackendFetch,
        ttl_seconds: Optional[float] = None,
    ) -> None:
        self.server = server
        self.backend = backend
        self.ttl_seconds = ttl_seconds
        self.stats = DispatchStats()

    def get(self, key: str) -> Tuple[bytes, bool]:
        """Return (value, was_hit)."""
        value = self.server.get(key)
        if value is not None:
            self.stats.fast_path += 1
            return value, True
        self.stats.slow_path += 1
        value = self.backend(key)
        self.server.set(key, value, ttl_seconds=self.ttl_seconds)
        return value, False

    def invalidate(self, key: str) -> bool:
        """Drop a key after a write (TAO's write-invalidate)."""
        return self.server.delete(key)


class LookAsideCache:
    """The conventional look-aside policy, for the ablation benchmark.

    ``get`` returns None on miss; the *client* is responsible for
    fetching from the backend and calling :meth:`fill`.  This shifts
    miss-path work (and its RPC round trips) out of the cache tier —
    exactly the architectural difference DCPerf corrects for.
    """

    def __init__(
        self, server: MemcachedServer, ttl_seconds: Optional[float] = None
    ) -> None:
        self.server = server
        self.ttl_seconds = ttl_seconds
        self.stats = DispatchStats()

    def get(self, key: str) -> Optional[bytes]:
        value = self.server.get(key)
        if value is not None:
            self.stats.fast_path += 1
        else:
            self.stats.slow_path += 1
        return value

    def fill(self, key: str, value: bytes) -> None:
        """Client-side fill after a backend fetch."""
        self.server.set(key, value, ttl_seconds=self.ttl_seconds)
