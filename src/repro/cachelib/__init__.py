"""In-memory cache substrate (Memcached/TAO model).

TaoBench is a read-through cache modeled after TAO, built on Memcached
with separate fast (hit) and slow (miss) thread pools.  This package
implements the actual data structures: a byte-bounded LRU store with
TTL support (:class:`LruCache`), a Memcached-style command interface
(:class:`MemcachedServer`), and read-through logic
(:class:`ReadThroughCache`) with hit/miss dispatch statistics.
"""

from repro.cachelib.lru import CacheStats, LruCache
from repro.cachelib.memcached import MemcachedServer
from repro.cachelib.readthrough import LookAsideCache, ReadThroughCache

__all__ = [
    "LruCache",
    "CacheStats",
    "MemcachedServer",
    "ReadThroughCache",
    "LookAsideCache",
]
