"""Memcached-style server model.

Exposes the core Memcached command set (get/set/delete/flush/stats)
over the LRU store, with the text-protocol semantics that matter for
correctness: flat key space, byte values, per-item TTLs, and LRU
eviction under a byte budget.  TaoBench's server component is built on
this class.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.cachelib.lru import LruCache

#: Memcached's classic limits.
MAX_KEY_BYTES = 250
MAX_VALUE_BYTES = 1024 * 1024


class MemcachedError(Exception):
    """Raised on protocol violations (bad key/value)."""


class MemcachedServer:
    """A single Memcached instance."""

    def __init__(
        self,
        capacity_bytes: int = 64 * 1024 * 1024,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.cache = LruCache(capacity_bytes, clock=clock)

    @staticmethod
    def _check_key(key: str) -> None:
        if not key or len(key.encode("utf-8")) > MAX_KEY_BYTES:
            raise MemcachedError(f"invalid key length: {len(key)}")
        if any(c.isspace() for c in key):
            raise MemcachedError("keys must not contain whitespace")

    def get(self, key: str) -> Optional[bytes]:
        self._check_key(key)
        return self.cache.get(key)

    def get_multi(self, keys: Iterable[str]) -> Dict[str, bytes]:
        """Batch get; absent keys are omitted from the result."""
        out: Dict[str, bytes] = {}
        for key in keys:
            value = self.get(key)
            if value is not None:
                out[key] = value
        return out

    def set(self, key: str, value: bytes, ttl_seconds: Optional[float] = None) -> None:
        self._check_key(key)
        if len(value) > MAX_VALUE_BYTES:
            raise MemcachedError(
                f"value of {len(value)} bytes exceeds the 1MB item limit"
            )
        self.cache.set(key, value, ttl_seconds=ttl_seconds)

    def delete(self, key: str) -> bool:
        self._check_key(key)
        return self.cache.delete(key)

    def flush_all(self) -> None:
        """Drop every item (preserves counters, like the real command)."""
        for key, _ in self.cache.items_snapshot():
            self.cache.delete(key)

    def stats(self) -> Dict[str, float]:
        s = self.cache.stats
        return {
            "get_hits": s.hits,
            "get_misses": s.misses,
            "evictions": s.evictions,
            "expired": s.expirations,
            "cmd_set": s.sets,
            "curr_items": len(self.cache),
            "bytes": self.cache.used_bytes,
            "hit_rate": s.hit_rate,
        }
