"""Memcached-style server model.

Exposes the core Memcached command set (get/set/delete/flush/stats)
over the LRU store, with the text-protocol semantics that matter for
correctness: flat key space, byte values, per-item TTLs, and LRU
eviction under a byte budget.  TaoBench's server component is built on
this class.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.cachelib.lru import LruCache

#: Memcached's classic limits.
MAX_KEY_BYTES = 250
MAX_VALUE_BYTES = 1024 * 1024

#: Every character below U+0080 for which ``str.isspace()`` is true.
#: An ASCII key can therefore be whitespace-checked with one C-level
#: ``frozenset.isdisjoint`` instead of a per-character generator.
_ASCII_WHITESPACE = frozenset("\t\n\x0b\x0c\r\x1c\x1d\x1e\x1f ")
#: Bound on the per-server validated-key memo.  TaoBench touches ~200k
#: distinct keys across a long run; 64k entries keeps the memo useful
#: (Zipf traffic concentrates on the head) without unbounded growth.
_VALIDATION_MEMO_MAX = 1 << 16


class MemcachedError(Exception):
    """Raised on protocol violations (bad key/value)."""


class MemcachedServer:
    """A single Memcached instance."""

    def __init__(
        self,
        capacity_bytes: int = 64 * 1024 * 1024,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.cache = LruCache(capacity_bytes, clock=clock)
        #: Keys that have already passed validation.  Validity is a
        #: pure function of the key string, so membership survives
        #: ``delete``/``flush_all`` safely; invalid keys are never
        #: memoized (they must keep raising).
        self._validated: set = set()

    def _check_key(self, key: str) -> None:
        validated = self._validated
        if key in validated:
            return
        if key.isascii():
            # ASCII fast path: byte length equals character length,
            # and the whitespace scan collapses to one set probe.
            if not key or len(key) > MAX_KEY_BYTES:
                raise MemcachedError(f"invalid key length: {len(key)}")
            if not _ASCII_WHITESPACE.isdisjoint(key):
                raise MemcachedError("keys must not contain whitespace")
        else:
            if len(key.encode("utf-8")) > MAX_KEY_BYTES:
                raise MemcachedError(f"invalid key length: {len(key)}")
            if any(c.isspace() for c in key):
                raise MemcachedError("keys must not contain whitespace")
        if len(validated) >= _VALIDATION_MEMO_MAX:
            validated.clear()
        validated.add(key)

    def get(self, key: str) -> Optional[bytes]:
        self._check_key(key)
        return self.cache.get(key)

    def get_multi(self, keys: Iterable[str]) -> Dict[str, bytes]:
        """Batch get; absent keys are omitted from the result."""
        out: Dict[str, bytes] = {}
        for key in keys:
            value = self.get(key)
            if value is not None:
                out[key] = value
        return out

    def set(self, key: str, value: bytes, ttl_seconds: Optional[float] = None) -> None:
        self._check_key(key)
        if len(value) > MAX_VALUE_BYTES:
            raise MemcachedError(
                f"value of {len(value)} bytes exceeds the 1MB item limit"
            )
        self.cache.set(key, value, ttl_seconds=ttl_seconds)

    def delete(self, key: str) -> bool:
        self._check_key(key)
        return self.cache.delete(key)

    def warm(self, items) -> None:
        """Restore a recorded pre-warm fill into an empty cache.

        The items must have passed validation when the fill was first
        recorded, so they skip re-validation and seed the validation
        memo directly.
        """
        self.cache.load(items)
        self._validated.update(key for key, _ in items)

    def flush_all(self) -> None:
        """Drop every item (preserves counters, like the real command).

        Delegates to :meth:`LruCache.clear` — O(1) instead of one
        LRU-bookkeeping delete per live key (and it also reclaims
        already-expired entries the old snapshot walk skipped).
        """
        self.cache.clear()

    def stats(self) -> Dict[str, float]:
        s = self.cache.stats
        return {
            "get_hits": s.hits,
            "get_misses": s.misses,
            "evictions": s.evictions,
            "expired": s.expirations,
            "cmd_set": s.sets,
            "curr_items": len(self.cache),
            "bytes": self.cache.used_bytes,
            "hit_rate": s.hit_rate,
        }
