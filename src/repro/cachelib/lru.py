"""Byte-bounded LRU cache with TTL support.

The core data structure under both the Memcached model and the
read-through cache.  Eviction is strict LRU by byte budget; expired
entries are treated as misses and reclaimed lazily on access or
eagerly via :meth:`LruCache.purge_expired`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Tuple


@dataclass
class CacheStats:
    """Hit/miss/eviction counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    sets: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class _Entry:
    """One cache node.  A plain slotted class, not a dataclass: the
    TaoBench pre-warm allocates ~50k of these per run and the slotted
    form is both smaller and faster to construct."""

    __slots__ = ("value", "size", "expires_at")

    def __init__(
        self, value: bytes, size: int, expires_at: Optional[float] = None
    ) -> None:
        self.value = value
        self.size = size
        self.expires_at = expires_at


class LruCache:
    """Strict-LRU cache bounded by total value bytes.

    ``clock`` supplies the current time for TTL decisions (inject the
    sim clock in simulations; defaults to a monotonic counter that
    never expires anything).
    """

    def __init__(
        self,
        capacity_bytes: int,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = capacity_bytes
        self._clock = clock or (lambda: 0.0)
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._used_bytes = 0
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        entry = self._entries.get(key)
        if entry is None:
            return False
        return not self._expired(entry)

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    def _expired(self, entry: _Entry) -> bool:
        return entry.expires_at is not None and self._clock() >= entry.expires_at

    def get(self, key: str) -> Optional[bytes]:
        """Return the value and refresh recency, or None on miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if self._expired(entry):
            self._remove(key)
            self.stats.expirations += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry.value

    def peek(self, key: str) -> Optional[bytes]:
        """Like :meth:`get` but without touching recency or stats."""
        entry = self._entries.get(key)
        if entry is None or self._expired(entry):
            return None
        return entry.value

    def set(self, key: str, value: bytes, ttl_seconds: Optional[float] = None) -> None:
        """Insert or replace; evicts LRU entries to fit.

        Replacement updates the node in place (no pop/realloc), and
        eviction runs *after* the entry sits at MRU.  Both forms evict
        exactly the victims the remove-then-reinsert formulation did:
        the updated/new entry is at the MRU end, so ``_evict_lru``
        pops the same LRU-ordered others, and ``used > capacity`` here
        is the old ``used_without_entry + size > capacity``.
        """
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError("values must be bytes")
        size = len(value)
        if size > self.capacity_bytes:
            raise ValueError(
                f"value of {size} bytes exceeds capacity {self.capacity_bytes}"
            )
        expires_at = None
        if ttl_seconds is not None:
            if ttl_seconds <= 0:
                raise ValueError("ttl_seconds must be positive")
            expires_at = self._clock() + ttl_seconds
        entries = self._entries
        entry = entries.get(key)
        if entry is not None:
            self._used_bytes += size - entry.size
            entry.value = bytes(value)
            entry.size = size
            entry.expires_at = expires_at
            entries.move_to_end(key)
        else:
            entries[key] = _Entry(bytes(value), size, expires_at)
            self._used_bytes += size
        while self._used_bytes > self.capacity_bytes:
            self._evict_lru()
        self.stats.sets += 1

    def delete(self, key: str) -> bool:
        """Remove a key; returns True if it was present."""
        if key in self._entries:
            self._remove(key)
            return True
        return False

    def _remove(self, key: str) -> None:
        entry = self._entries.pop(key)
        self._used_bytes -= entry.size

    def _evict_lru(self) -> None:
        key, entry = self._entries.popitem(last=False)
        self._used_bytes -= entry.size
        self.stats.evictions += 1

    def load(self, items: Iterable[Tuple[str, bytes]]) -> None:
        """Bulk-restore a known-good fill into an empty cache.

        Equivalent to calling :meth:`set` once per pair — same
        insertion order, byte accounting, and ``sets`` counter — for
        fills already known to need no eviction or TTL handling (e.g.
        replaying a memoized pre-warm).  Requires an empty cache and
        distinct keys; raises if the items exceed capacity.
        """
        if self._entries:
            raise ValueError("load() requires an empty cache")
        entries = self._entries
        used = 0
        count = 0
        for key, value in items:
            size = len(value)
            entries[key] = _Entry(value, size)
            used += size
            count += 1
        if used > self.capacity_bytes:
            self._entries.clear()
            raise ValueError("loaded items exceed capacity")
        self._used_bytes = used
        self.stats.sets += count

    def clear(self) -> int:
        """O(1) flush: drop every entry (live *and* expired) at once.

        Counters (hits/misses/evictions/expirations/sets) are
        preserved — a flush is an operator action, not cache pressure,
        so it must not distort hit-rate accounting.  Returns the
        number of entries dropped.
        """
        count = len(self._entries)
        self._entries.clear()
        self._used_bytes = 0
        return count

    def purge_expired(self) -> int:
        """Eagerly remove expired entries; returns the count removed."""
        expired = [k for k, e in self._entries.items() if self._expired(e)]
        for key in expired:
            self._remove(key)
            self.stats.expirations += 1
        return len(expired)

    def items_snapshot(self) -> Tuple[Tuple[str, bytes], ...]:
        """LRU-to-MRU snapshot of live entries (tests/debugging)."""
        return tuple(
            (k, e.value) for k, e in self._entries.items() if not self._expired(e)
        )
