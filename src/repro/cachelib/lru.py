"""Byte-bounded LRU cache with TTL support.

The core data structure under both the Memcached model and the
read-through cache.  Eviction is strict LRU by byte budget; expired
entries are treated as misses and reclaimed lazily on access or
eagerly via :meth:`LruCache.purge_expired`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple


@dataclass
class CacheStats:
    """Hit/miss/eviction counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    sets: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


@dataclass
class _Entry:
    value: bytes
    size: int
    expires_at: Optional[float] = None


class LruCache:
    """Strict-LRU cache bounded by total value bytes.

    ``clock`` supplies the current time for TTL decisions (inject the
    sim clock in simulations; defaults to a monotonic counter that
    never expires anything).
    """

    def __init__(
        self,
        capacity_bytes: int,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = capacity_bytes
        self._clock = clock or (lambda: 0.0)
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._used_bytes = 0
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        entry = self._entries.get(key)
        if entry is None:
            return False
        return not self._expired(entry)

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    def _expired(self, entry: _Entry) -> bool:
        return entry.expires_at is not None and self._clock() >= entry.expires_at

    def get(self, key: str) -> Optional[bytes]:
        """Return the value and refresh recency, or None on miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if self._expired(entry):
            self._remove(key)
            self.stats.expirations += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry.value

    def peek(self, key: str) -> Optional[bytes]:
        """Like :meth:`get` but without touching recency or stats."""
        entry = self._entries.get(key)
        if entry is None or self._expired(entry):
            return None
        return entry.value

    def set(self, key: str, value: bytes, ttl_seconds: Optional[float] = None) -> None:
        """Insert or replace; evicts LRU entries to fit."""
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError("values must be bytes")
        size = len(value)
        if size > self.capacity_bytes:
            raise ValueError(
                f"value of {size} bytes exceeds capacity {self.capacity_bytes}"
            )
        if key in self._entries:
            self._remove(key)
        expires_at = None
        if ttl_seconds is not None:
            if ttl_seconds <= 0:
                raise ValueError("ttl_seconds must be positive")
            expires_at = self._clock() + ttl_seconds
        while self._used_bytes + size > self.capacity_bytes:
            self._evict_lru()
        self._entries[key] = _Entry(bytes(value), size, expires_at)
        self._used_bytes += size
        self.stats.sets += 1

    def delete(self, key: str) -> bool:
        """Remove a key; returns True if it was present."""
        if key in self._entries:
            self._remove(key)
            return True
        return False

    def _remove(self, key: str) -> None:
        entry = self._entries.pop(key)
        self._used_bytes -= entry.size

    def _evict_lru(self) -> None:
        key, entry = self._entries.popitem(last=False)
        self._used_bytes -= entry.size
        self.stats.evictions += 1

    def purge_expired(self) -> int:
        """Eagerly remove expired entries; returns the count removed."""
        expired = [k for k, e in self._entries.items() if self._expired(e)]
        for key in expired:
            self._remove(key)
            self.stats.expirations += 1
        return len(expired)

    def items_snapshot(self) -> Tuple[Tuple[str, bytes], ...]:
        """LRU-to-MRU snapshot of live entries (tests/debugging)."""
        return tuple(
            (k, e.value) for k, e in self._entries.items() if not self._expired(e)
        )
