"""A miniature columnar query engine (the Spark/Presto stand-in).

Executes the SparkBench query shape for real: scan with predicate,
hash join against a dimension table, group-by aggregation, and a
result-table write (materialization).  The engine is deliberately
simple — enough to validate the query path end-to-end and to expose
the three-stage structure (scan/shuffle = I/O heavy, final aggregate =
CPU heavy) that SparkBench times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.data.generator import GeneratedTable


class QueryError(Exception):
    """Raised on malformed query plans."""


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregation: function over a column, output name."""

    func: str  # "sum" | "count" | "avg" | "max" | "min"
    column: str
    output: str

    def __post_init__(self) -> None:
        if self.func not in ("sum", "count", "avg", "max", "min"):
            raise QueryError(f"unknown aggregate function {self.func!r}")


def scan_filter(
    table: GeneratedTable,
    predicate: Callable[[Dict[str, Any]], bool],
) -> List[Dict[str, Any]]:
    """Stage 1: full scan with a row predicate (NULL-safe)."""
    out: List[Dict[str, Any]] = []
    for index in range(table.num_rows):
        row = table.row(index)
        try:
            keep = predicate(row)
        except TypeError:
            keep = False  # NULL participating in a comparison
        if keep:
            out.append(row)
    return out


def hash_join(
    left_rows: List[Dict[str, Any]],
    right: GeneratedTable,
    left_key: str,
    right_key: str,
    right_columns: Optional[List[str]] = None,
) -> List[Dict[str, Any]]:
    """Stage 2: inner hash join (build on the smaller dimension side)."""
    build: Dict[Any, Dict[str, Any]] = {}
    wanted = right_columns or list(right.schema.column_names)
    for index in range(right.num_rows):
        row = right.row(index)
        key = row.get(right_key)
        if key is not None:
            build[key] = {c: row[c] for c in wanted}
    out: List[Dict[str, Any]] = []
    for row in left_rows:
        key = row.get(left_key)
        if key is None:
            continue
        match = build.get(key)
        if match is not None:
            joined = dict(row)
            for column, value in match.items():
                if column != right_key:
                    joined[column] = value
            out.append(joined)
    return out


def group_aggregate(
    rows: List[Dict[str, Any]],
    group_by: str,
    aggregates: List[AggregateSpec],
) -> Dict[Any, Dict[str, Any]]:
    """Stage 3: group-by aggregation (the CPU-intensive stage)."""
    groups: Dict[Any, Dict[str, Any]] = {}
    counts: Dict[Tuple[Any, str], int] = {}
    for row in rows:
        key = row.get(group_by)
        if key is None:
            continue
        acc = groups.setdefault(key, {group_by: key})
        for spec in aggregates:
            value = row.get(spec.column)
            if spec.func == "count":
                acc[spec.output] = acc.get(spec.output, 0) + (
                    1 if value is not None else 0
                )
                continue
            if value is None:
                continue
            if spec.func == "sum":
                acc[spec.output] = acc.get(spec.output, 0) + value
            elif spec.func == "max":
                acc[spec.output] = max(acc.get(spec.output, value), value)
            elif spec.func == "min":
                acc[spec.output] = min(acc.get(spec.output, value), value)
            elif spec.func == "avg":
                acc[spec.output] = acc.get(spec.output, 0) + value
                counts[(key, spec.output)] = counts.get((key, spec.output), 0) + 1
    for (key, output), count in counts.items():
        if count > 0:
            groups[key][output] = groups[key][output] / count
    return groups


@dataclass
class QueryResult:
    """Materialized output plus per-stage row counts."""

    rows: List[Dict[str, Any]]
    scanned_rows: int
    filtered_rows: int
    joined_rows: int
    groups: int


def run_warehouse_query(
    fact: GeneratedTable,
    dim: GeneratedTable,
    min_spend: float = 100.0,
) -> QueryResult:
    """The SparkBench query: scan -> filter -> join -> aggregate -> write.

    SELECT region, advertiser, SUM(spend), SUM(clicks), COUNT(event_id)
    FROM events_fact JOIN campaign_dim USING (campaign_id)
    WHERE spend >= min_spend AND is_conversion
    GROUP BY region  (advertiser kept via MAX as a representative)
    """
    filtered = scan_filter(
        fact,
        lambda row: row.get("spend") is not None
        and row["spend"] >= min_spend
        and bool(row.get("is_conversion")),
    )
    joined = hash_join(
        filtered, dim, left_key="campaign_id", right_key="campaign_id",
        right_columns=["campaign_id", "advertiser", "active"],
    )
    groups = group_aggregate(
        joined,
        group_by="region",
        aggregates=[
            AggregateSpec("sum", "spend", "total_spend"),
            AggregateSpec("sum", "clicks", "total_clicks"),
            AggregateSpec("count", "event_id", "events"),
            AggregateSpec("max", "advertiser", "top_advertiser"),
        ],
    )
    rows = sorted(groups.values(), key=lambda r: -r.get("total_spend", 0))
    return QueryResult(
        rows=rows,
        scanned_rows=fact.num_rows,
        filtered_rows=len(filtered),
        joined_rows=len(joined),
        groups=len(rows),
    )
