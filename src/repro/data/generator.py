"""Row/column generation from a schema.

Generates deterministic columnar data respecting each column's type,
distinct-value bound, skew, and null fraction — the dataset features
the paper says SparkBench preserves when scaling production data down.
"""

from __future__ import annotations

import string
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.data.schema import Column, ColumnKind, TableSchema
from repro.sim.rng import RngStreams, ZipfSampler

_EPOCH_2026 = 1_767_225_600  # 2026-01-01 UTC


@dataclass
class GeneratedTable:
    """Columnar data: column name -> list of values (None = NULL)."""

    schema: TableSchema
    columns: Dict[str, List[Any]]

    @property
    def num_rows(self) -> int:
        first = self.schema.column_names[0]
        return len(self.columns[first])

    def row(self, index: int) -> Dict[str, Any]:
        return {name: self.columns[name][index] for name in self.schema.column_names}

    def estimated_bytes(self) -> int:
        """Approximate in-memory size (8 bytes per scalar, strings by
        length), used to scale I/O stage durations."""
        total = 0
        for col in self.schema.columns:
            values = self.columns[col.name]
            if col.kind == ColumnKind.STRING:
                total += sum(len(v) for v in values if v is not None)
            else:
                total += 8 * sum(1 for v in values if v is not None)
        return total

    def distinct_count(self, column: str) -> int:
        values = self.columns[column]
        return len({v for v in values if v is not None})


class DatasetGenerator:
    """Deterministic generator for one schema."""

    def __init__(self, schema: TableSchema, seed: int = 2025) -> None:
        self.schema = schema
        self.streams = RngStreams(seed).spawn(schema.name)
        self._zipf_cache: Dict[str, ZipfSampler] = {}

    def _value_for(self, col: Column, row_index: int) -> Optional[Any]:
        rng = self.streams.stream(col.name)
        if col.null_fraction > 0 and rng.random() < col.null_fraction:
            return None
        domain = col.distinct_values
        if domain is not None and col.zipf_skew > 0:
            sampler = self._zipf_cache.get(col.name)
            if sampler is None:
                sampler = ZipfSampler(domain, col.zipf_skew)
                self._zipf_cache[col.name] = sampler
            ordinal = sampler.sample(rng) - 1
        elif domain is not None:
            ordinal = rng.randrange(domain)
        else:
            ordinal = row_index

        if col.kind == ColumnKind.INT64:
            return ordinal if domain is not None else row_index
        if col.kind == ColumnKind.DOUBLE:
            return round(rng.uniform(0.0, 1000.0), 4)
        if col.kind == ColumnKind.BOOL:
            return rng.random() < 0.5
        if col.kind == ColumnKind.TIMESTAMP:
            return _EPOCH_2026 + rng.randrange(86_400 * 30)
        if col.kind == ColumnKind.STRING:
            return self._string_value(col, ordinal)
        raise ValueError(f"unhandled column kind {col.kind}")

    def _string_value(self, col: Column, ordinal: int) -> str:
        # Deterministic per-ordinal string so distinct counts hold.
        rng = self.streams.spawn(f"strings:{col.name}:{ordinal}").stream("v")
        length = max(1, col.avg_string_len + rng.randint(-4, 4))
        alphabet = string.ascii_lowercase + string.digits
        return "".join(rng.choice(alphabet) for _ in range(length))

    def generate(self, num_rows: int) -> GeneratedTable:
        """Generate ``num_rows`` rows of columnar data."""
        if num_rows < 0:
            raise ValueError("num_rows must be non-negative")
        columns: Dict[str, List[Any]] = {c.name: [] for c in self.schema.columns}
        for row_index in range(num_rows):
            for col in self.schema.columns:
                columns[col.name].append(self._value_for(col, row_index))
        return GeneratedTable(schema=self.schema, columns=columns)
