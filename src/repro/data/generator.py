"""Row/column generation from a schema.

Generates deterministic columnar data respecting each column's type,
distinct-value bound, skew, and null fraction — the dataset features
the paper says SparkBench preserves when scaling production data down.
"""

from __future__ import annotations

import string
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.data.schema import Column, ColumnKind, TableSchema
from repro.sim.rng import RngStreams, ZipfSampler

_EPOCH_2026 = 1_767_225_600  # 2026-01-01 UTC


@dataclass
class GeneratedTable:
    """Columnar data: column name -> list of values (None = NULL)."""

    schema: TableSchema
    columns: Dict[str, List[Any]]

    @property
    def num_rows(self) -> int:
        first = self.schema.column_names[0]
        return len(self.columns[first])

    def row(self, index: int) -> Dict[str, Any]:
        return {name: self.columns[name][index] for name in self.schema.column_names}

    def estimated_bytes(self) -> int:
        """Approximate in-memory size (8 bytes per scalar, strings by
        length), used to scale I/O stage durations."""
        total = 0
        for col in self.schema.columns:
            values = self.columns[col.name]
            if col.kind == ColumnKind.STRING:
                total += sum(len(v) for v in values if v is not None)
            else:
                total += 8 * sum(1 for v in values if v is not None)
        return total

    def distinct_count(self, column: str) -> int:
        values = self.columns[column]
        return len({v for v in values if v is not None})


class DatasetGenerator:
    """Deterministic generator for one schema."""

    def __init__(self, schema: TableSchema, seed: int = 2025) -> None:
        self.schema = schema
        self.streams = RngStreams(seed).spawn(schema.name)
        self._zipf_cache: Dict[str, ZipfSampler] = {}

    def _value_for(self, col: Column, row_index: int) -> Optional[Any]:
        """Reference single-value path.

        :meth:`generate` no longer calls this per value — it runs the
        batched columnar loops below — but the draw sequence per column
        is identical, which the draw-order test pins by comparing both.
        """
        rng = self.streams.stream(col.name)
        if col.null_fraction > 0 and rng.random() < col.null_fraction:
            return None
        domain = col.distinct_values
        if domain is not None and col.zipf_skew > 0:
            sampler = self._zipf_cache.get(col.name)
            if sampler is None:
                sampler = ZipfSampler(domain, col.zipf_skew)
                self._zipf_cache[col.name] = sampler
            ordinal = sampler.sample(rng) - 1
        elif domain is not None:
            ordinal = rng.randrange(domain)
        else:
            ordinal = row_index

        if col.kind == ColumnKind.INT64:
            return ordinal if domain is not None else row_index
        if col.kind == ColumnKind.DOUBLE:
            return round(rng.uniform(0.0, 1000.0), 4)
        if col.kind == ColumnKind.BOOL:
            return rng.random() < 0.5
        if col.kind == ColumnKind.TIMESTAMP:
            return _EPOCH_2026 + rng.randrange(86_400 * 30)
        if col.kind == ColumnKind.STRING:
            return self._string_value(col, ordinal)
        raise ValueError(f"unhandled column kind {col.kind}")

    def _string_value(self, col: Column, ordinal: int) -> str:
        # Deterministic per-ordinal string so distinct counts hold.
        rng = self.streams.spawn(f"strings:{col.name}:{ordinal}").stream("v")
        length = max(1, col.avg_string_len + rng.randint(-4, 4))
        alphabet = string.ascii_lowercase + string.digits
        return "".join(rng.choice(alphabet) for _ in range(length))

    def _ordinal_drawer(self, col: Column):
        """(rng -> ordinal) for one column, with the sampler hoisted."""
        domain = col.distinct_values
        if domain is not None and col.zipf_skew > 0:
            sampler = self._zipf_cache.get(col.name)
            if sampler is None:
                sampler = ZipfSampler(domain, col.zipf_skew)
                self._zipf_cache[col.name] = sampler
            return lambda rng: sampler.sample(rng) - 1
        if domain is not None:
            return lambda rng: rng.randrange(domain)
        return None

    def _column_values(self, col: Column, num_rows: int) -> List[Any]:
        """All of one column's values in a single batched pass.

        Draw-order contract: each column owns a named RNG stream, and
        every draw for a value comes from that stream (strings spawn
        per-ordinal child streams, which are derived by name, not by
        draw order) — so generating a whole column at once consumes the
        stream in exactly the per-row order :meth:`_value_for` would.
        The batched form hoists the stream lookup, the null test, the
        ordinal sampler, and the kind dispatch out of the per-value
        loop; the values are identical.
        """
        rng = self.streams.stream(col.name)
        random_ = rng.random
        null_fraction = col.null_fraction
        nullable = null_fraction > 0
        draw_ordinal = self._ordinal_drawer(col)
        domain = col.distinct_values
        kind = col.kind
        values: List[Any] = []
        append = values.append

        if kind == ColumnKind.INT64:
            for row_index in range(num_rows):
                if nullable and random_() < null_fraction:
                    append(None)
                elif domain is not None:
                    append(draw_ordinal(rng))
                else:
                    append(row_index)
        elif kind == ColumnKind.DOUBLE:
            uniform = rng.uniform
            for _ in range(num_rows):
                if nullable and random_() < null_fraction:
                    append(None)
                    continue
                if draw_ordinal is not None:
                    draw_ordinal(rng)
                append(round(uniform(0.0, 1000.0), 4))
        elif kind == ColumnKind.BOOL:
            for _ in range(num_rows):
                if nullable and random_() < null_fraction:
                    append(None)
                    continue
                if draw_ordinal is not None:
                    draw_ordinal(rng)
                append(random_() < 0.5)
        elif kind == ColumnKind.TIMESTAMP:
            randrange = rng.randrange
            for _ in range(num_rows):
                if nullable and random_() < null_fraction:
                    append(None)
                    continue
                if draw_ordinal is not None:
                    draw_ordinal(rng)
                append(_EPOCH_2026 + randrange(86_400 * 30))
        elif kind == ColumnKind.STRING:
            string_value = self._string_value
            for row_index in range(num_rows):
                if nullable and random_() < null_fraction:
                    append(None)
                    continue
                if draw_ordinal is not None:
                    ordinal = draw_ordinal(rng)
                else:
                    ordinal = row_index
                append(string_value(col, ordinal))
        else:
            raise ValueError(f"unhandled column kind {kind}")
        return values

    def generate(self, num_rows: int) -> GeneratedTable:
        """Generate ``num_rows`` rows of columnar data, column-major."""
        if num_rows < 0:
            raise ValueError("num_rows must be non-negative")
        columns: Dict[str, List[Any]] = {
            col.name: self._column_values(col, num_rows)
            for col in self.schema.columns
        }
        return GeneratedTable(schema=self.schema, columns=columns)
