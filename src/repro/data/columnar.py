"""Columnar serialization and compression for generated tables.

Warehouse data lives on disk column-encoded and compressed; SparkBench
reads "over 100GB" of it through NVMe-over-TCP.  This module makes that
path real at validation scale: typed column encodings (delta-zigzag
varints for integers, bit-packed booleans, length-prefixed strings, a
null bitmap per column) plus compression through the datacenter-tax
codecs, so the compression ratios SparkBench reports are measured on
actual bytes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.data.generator import GeneratedTable
from repro.data.schema import Column, ColumnKind
from repro.dctax.compression import CompressionCodec, ZlibCodec
from repro.rpc.compact import read_varint, write_varint, zigzag_decode, zigzag_encode


class ColumnarError(Exception):
    """Raised on malformed column payloads."""


def _pack_null_bitmap(values: List[Any]) -> bytes:
    out = bytearray((len(values) + 7) // 8)
    for index, value in enumerate(values):
        if value is not None:
            out[index // 8] |= 1 << (index % 8)
    return bytes(out)


def _unpack_null_bitmap(data: bytes, count: int) -> List[bool]:
    present = []
    for index in range(count):
        byte = data[index // 8]
        present.append(bool(byte & (1 << (index % 8))))
    return present


def encode_column(values: List[Any], kind: ColumnKind) -> bytes:
    """Encode one column: null bitmap + typed payload."""
    out = bytearray()
    write_varint(out, len(values))
    out.extend(_pack_null_bitmap(values))
    present = [v for v in values if v is not None]

    if kind in (ColumnKind.INT64, ColumnKind.TIMESTAMP):
        previous = 0
        for value in present:
            write_varint(out, zigzag_encode(int(value) - previous))
            previous = int(value)
    elif kind == ColumnKind.DOUBLE:
        out.extend(struct.pack(f"<{len(present)}d", *present))
    elif kind == ColumnKind.BOOL:
        bits = bytearray((len(present) + 7) // 8)
        for index, value in enumerate(present):
            if value:
                bits[index // 8] |= 1 << (index % 8)
        out.extend(bits)
    elif kind == ColumnKind.STRING:
        for value in present:
            payload = value.encode("utf-8")
            write_varint(out, len(payload))
            out.extend(payload)
    else:  # pragma: no cover - all kinds handled
        raise ColumnarError(f"unhandled column kind {kind}")
    return bytes(out)


def decode_column(data: bytes, kind: ColumnKind) -> List[Any]:
    """Invert :func:`encode_column`."""
    count, pos = read_varint(data, 0)
    bitmap_len = (count + 7) // 8
    if pos + bitmap_len > len(data):
        raise ColumnarError("truncated null bitmap")
    present_flags = _unpack_null_bitmap(data[pos : pos + bitmap_len], count)
    pos += bitmap_len
    num_present = sum(present_flags)

    present: List[Any]
    if kind in (ColumnKind.INT64, ColumnKind.TIMESTAMP):
        present = []
        previous = 0
        for _ in range(num_present):
            delta, pos = read_varint(data, pos)
            previous += zigzag_decode(delta)
            present.append(previous)
    elif kind == ColumnKind.DOUBLE:
        need = 8 * num_present
        if pos + need > len(data):
            raise ColumnarError("truncated double payload")
        present = list(struct.unpack(f"<{num_present}d", data[pos : pos + need]))
        pos += need
    elif kind == ColumnKind.BOOL:
        need = (num_present + 7) // 8
        if pos + need > len(data):
            raise ColumnarError("truncated bool payload")
        bits = data[pos : pos + need]
        present = [
            bool(bits[i // 8] & (1 << (i % 8))) for i in range(num_present)
        ]
        pos += need
    elif kind == ColumnKind.STRING:
        present = []
        for _ in range(num_present):
            length, pos = read_varint(data, pos)
            if pos + length > len(data):
                raise ColumnarError("truncated string payload")
            present.append(data[pos : pos + length].decode("utf-8"))
            pos += length
    else:  # pragma: no cover
        raise ColumnarError(f"unhandled column kind {kind}")

    iterator = iter(present)
    return [next(iterator) if flag else None for flag in present_flags]


@dataclass(frozen=True)
class ColumnStats:
    """Measured storage footprint of one encoded column."""

    name: str
    encoded_bytes: int
    compressed_bytes: int

    @property
    def compression_ratio(self) -> float:
        return self.encoded_bytes / max(1, self.compressed_bytes)


def store_table(
    table: GeneratedTable, codec: Optional[CompressionCodec] = None
) -> Dict[str, ColumnStats]:
    """Encode + compress every column; returns measured footprints.

    Also round-trips each column through decode to guarantee the stored
    form is faithful (a checksum-grade validation of the storage path).
    """
    codec = codec or ZlibCodec()
    stats: Dict[str, ColumnStats] = {}
    for column in table.schema.columns:
        values = table.columns[column.name]
        encoded = encode_column(values, column.kind)
        if decode_column(encoded, column.kind) != values:
            raise ColumnarError(f"column {column.name!r} failed round trip")
        compressed = codec.compress(encoded)
        stats[column.name] = ColumnStats(
            name=column.name,
            encoded_bytes=len(encoded),
            compressed_bytes=len(compressed),
        )
    return stats


def table_compression_ratio(stats: Dict[str, ColumnStats]) -> float:
    """Aggregate ratio across all columns."""
    encoded = sum(s.encoded_bytes for s in stats.values())
    compressed = sum(s.compressed_bytes for s in stats.values())
    return encoded / max(1, compressed)
