"""Declarative table schemas with cardinality control."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence


class ColumnKind(enum.Enum):
    """Column data types the generator supports."""

    INT64 = "int64"
    DOUBLE = "double"
    STRING = "string"
    BOOL = "bool"
    TIMESTAMP = "timestamp"


@dataclass(frozen=True)
class Column:
    """One column: a type plus distributional knobs.

    ``distinct_values`` bounds the value domain (None = unbounded);
    ``zipf_skew`` > 0 makes popular values dominate, matching the
    skewed cardinality of warehouse fact tables; ``null_fraction``
    injects NULLs.
    """

    name: str
    kind: ColumnKind
    distinct_values: Optional[int] = None
    zipf_skew: float = 0.0
    null_fraction: float = 0.0
    avg_string_len: int = 24

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("column name must be non-empty")
        if self.distinct_values is not None and self.distinct_values < 1:
            raise ValueError(f"{self.name}: distinct_values must be >= 1")
        if self.zipf_skew < 0:
            raise ValueError(f"{self.name}: zipf_skew must be non-negative")
        if not 0.0 <= self.null_fraction < 1.0:
            raise ValueError(f"{self.name}: null_fraction must be in [0, 1)")
        if self.avg_string_len < 1:
            raise ValueError(f"{self.name}: avg_string_len must be >= 1")


@dataclass(frozen=True)
class TableSchema:
    """An ordered set of columns."""

    name: str
    columns: Sequence[Column]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("table name must be non-empty")
        if not self.columns:
            raise ValueError("schema needs at least one column")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise ValueError(f"{self.name}: duplicate column names")

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise KeyError(f"no column {name!r} in table {self.name!r}")

    @property
    def column_names(self) -> Sequence[str]:
        return [c.name for c in self.columns]


def warehouse_fact_schema() -> TableSchema:
    """The representative fact-table schema SparkBench scans.

    Mirrors the shape of an ad-events fact table: high-cardinality ids,
    skewed dimension keys, metrics, and a flag column.
    """
    return TableSchema(
        name="events_fact",
        columns=[
            Column("event_id", ColumnKind.INT64),
            Column("user_id", ColumnKind.INT64, distinct_values=1_000_000,
                   zipf_skew=0.8),
            Column("campaign_id", ColumnKind.INT64, distinct_values=10_000,
                   zipf_skew=1.1),
            Column("region", ColumnKind.STRING, distinct_values=64,
                   zipf_skew=0.9, avg_string_len=8),
            Column("event_time", ColumnKind.TIMESTAMP),
            Column("spend", ColumnKind.DOUBLE, null_fraction=0.02),
            Column("clicks", ColumnKind.INT64, distinct_values=100,
                   zipf_skew=1.3),
            Column("is_conversion", ColumnKind.BOOL),
        ],
    )


def warehouse_dim_schema() -> TableSchema:
    """The campaign dimension table SparkBench joins against."""
    return TableSchema(
        name="campaign_dim",
        columns=[
            Column("campaign_id", ColumnKind.INT64),
            Column("advertiser", ColumnKind.STRING, distinct_values=2_000,
                   zipf_skew=0.7, avg_string_len=16),
            Column("budget", ColumnKind.DOUBLE),
            Column("active", ColumnKind.BOOL),
        ],
    )
