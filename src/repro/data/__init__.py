"""Synthetic dataset generation.

SparkBench "uses a synthetic, representative dataset (over 100GB)...
the dataset retains features such as table schema, data types,
cardinality, and the number of distinct values" (Section 2.2).  This
package generates such datasets at configurable scale: a declarative
schema, per-column cardinality control, and a row generator plus the
columnar table the query engine consumes.
"""

from repro.data.schema import Column, ColumnKind, TableSchema
from repro.data.generator import DatasetGenerator, GeneratedTable

__all__ = [
    "Column",
    "ColumnKind",
    "TableSchema",
    "DatasetGenerator",
    "GeneratedTable",
]
