"""Discrete-event simulation substrate.

This package provides the event-driven kernel on which every DCPerf
workload model runs: a deterministic event loop (:class:`Environment`),
generator-based processes (:class:`Process`), waitable events
(:class:`Event`, :class:`Timeout`), and synchronisation primitives
(:class:`Store`, :class:`Resource`).

The design intentionally mirrors the small core of SimPy so that
workload models read like ordinary coroutine code::

    def client(env, store):
        yield env.timeout(1.0)
        item = yield store.get()

    env = Environment()
    env.process(client(env, store))
    env.run(until=10.0)
"""

from repro.sim.engine import Environment, Event, Interrupt, Process, Timeout
from repro.sim.events import all_of, any_of
from repro.sim.resources import PriorityStore, Resource, Store
from repro.sim.rng import RngStreams

__all__ = [
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Timeout",
    "all_of",
    "any_of",
    "Store",
    "PriorityStore",
    "Resource",
    "RngStreams",
]
