"""Synchronisation primitives built on the event engine.

Three primitives cover every workload model in the suite:

* :class:`Store` — an unbounded (or bounded) FIFO queue of items; the
  natural model for request queues between thread pools.
* :class:`PriorityStore` — a store whose items pop lowest-key first;
  used for SLO-aware dispatch.
* :class:`Resource` — a counted resource with FIFO waiters; the natural
  model for a pool of CPU cores or worker slots.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Deque, List, Optional, Tuple

from repro.sim.engine import Environment, Event


class StorePut(Event):
    """Event representing a pending put; fires once the item is stored."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        store._put_queue.append(self)
        store._trigger()


class StoreGet(Event):
    """Event representing a pending get; fires with the item as value."""

    __slots__ = ()

    def __init__(self, store: "Store") -> None:
        super().__init__(store.env)
        store._get_queue.append(self)
        store._trigger()


class Store:
    """A FIFO item queue with optionally bounded capacity."""

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._put_queue: Deque[StorePut] = deque()
        self._get_queue: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Queue ``item``; the returned event fires once stored."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Request an item; the returned event fires with the item."""
        return StoreGet(self)

    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self.capacity:
            self.items.append(event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(self.items.popleft())
            return True
        return False

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._put_queue and self._do_put(self._put_queue[0]):
                self._put_queue.popleft()
                progressed = True
            while self._get_queue and self._do_get(self._get_queue[0]):
                self._get_queue.popleft()
                progressed = True


class PriorityStore(Store):
    """A store whose :meth:`get` returns the lowest-sorting item first.

    Items must be orderable; wrap payloads as ``(priority, seq, payload)``
    tuples to avoid comparing payloads directly.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        super().__init__(env, capacity)
        self._heap: List[Any] = []

    def __len__(self) -> int:
        return len(self._heap)

    def _do_put(self, event: StorePut) -> bool:
        if len(self._heap) < self.capacity:
            heappush(self._heap, event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self._heap:
            event.succeed(heappop(self._heap))
            return True
        return False


class ResourceRequest(Event):
    """A pending claim on a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._waiters.append(self)
        resource._trigger()

    def __enter__(self) -> "ResourceRequest":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.resource.release(self)


class Resource:
    """A counted resource (e.g. a pool of CPU cores) with FIFO waiters."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[ResourceRequest] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of unserved requests."""
        return len(self._waiters)

    def request(self) -> ResourceRequest:
        """Claim a slot; the returned event fires once granted."""
        return ResourceRequest(self)

    def release(self, request: ResourceRequest) -> None:
        """Return a previously granted slot."""
        if request.resource is not self:
            raise ValueError("request does not belong to this resource")
        if not request.triggered:
            # Cancel a never-granted request.
            try:
                self._waiters.remove(request)
            except ValueError:
                pass
            return
        self._in_use -= 1
        if self._in_use < 0:
            raise RuntimeError("resource released more times than acquired")
        self._trigger()

    def _trigger(self) -> None:
        while self._waiters and self._in_use < self.capacity:
            waiter = self._waiters.popleft()
            self._in_use += 1
            waiter.succeed()


class UtilizationMeter:
    """Tracks time-weighted busy fraction of a :class:`Resource`.

    Call :meth:`mark` on every acquire/release transition (or sample
    periodically); :meth:`utilization` returns the busy-core fraction
    over the observed window.
    """

    def __init__(self, env: Environment, resource: Resource) -> None:
        self.env = env
        self.resource = resource
        self._last_time = env.now
        self._last_count = resource.count
        self._busy_core_seconds = 0.0
        self._window_start = env.now

    def mark(self) -> None:
        now = self.env.now
        self._busy_core_seconds += self._last_count * (now - self._last_time)
        self._last_time = now
        self._last_count = self.resource.count

    def reset(self) -> None:
        self.mark()
        self._busy_core_seconds = 0.0
        self._window_start = self.env.now

    def utilization(self) -> float:
        """Busy fraction in [0, 1] across all slots since the last reset."""
        self.mark()
        elapsed = self.env.now - self._window_start
        if elapsed <= 0:
            return 0.0
        return self._busy_core_seconds / (elapsed * self.resource.capacity)
