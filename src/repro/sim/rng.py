"""Deterministic, named random-number streams.

Every stochastic element of a workload model (arrivals, key popularity,
object sizes, backend latencies) draws from its own named stream so that
changing one element never perturbs another — a prerequisite for
apples-to-apples comparisons between configurations, which is exactly
how DCPerf compares SKUs.
"""

from __future__ import annotations

import hashlib
import math
import random
from bisect import bisect, bisect_left
from itertools import accumulate
from typing import Dict, List, Sequence, Tuple


class RngStreams:
    """A factory of independent :class:`random.Random` streams.

    Streams are derived from a master seed and the stream name, so
    ``RngStreams(7).stream("arrivals")`` is identical across runs and
    across machines.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the stream for ``name``."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def spawn(self, name: str) -> "RngStreams":
        """Derive a child factory with an independent seed space."""
        digest = hashlib.sha256(f"{self.seed}:spawn:{name}".encode()).digest()
        return RngStreams(int.from_bytes(digest[:8], "big"))


def exponential(rng: random.Random, mean: float) -> float:
    """Sample an exponential inter-arrival time with the given mean."""
    if mean <= 0:
        raise ValueError("mean must be positive")
    return rng.expovariate(1.0 / mean)


def exponential_batch(rng: random.Random, rate: float, n: int) -> List[float]:
    """Pre-sample ``n`` exponential inter-arrival gaps at ``rate``.

    Draws are made in exactly the order a one-at-a-time loop would make
    them, so batching changes *when* the stream is consumed but never
    *what* it yields — a prerequisite for byte-identical replays.  The
    load generators drain one batch per refill instead of paying the
    attribute-lookup and call overhead on every arrival.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if n < 1:
        raise ValueError("n must be >= 1")
    expovariate = rng.expovariate
    return [expovariate(rate) for _ in range(n)]


class LognormalSampler:
    """Lognormal sampling with ``(mu, sigma)`` precomputed once.

    ``lognormal_from_mean_cv`` re-derives the underlying parameters —
    two ``log`` calls and a ``sqrt`` — on every draw, which the profile
    of a TaoBench run shows dominating the object-size path (56k draws
    per 2-second run).  A sampler freezes the ``(mean, cv)``
    parameterisation and draws are *draw-order-identical* to the
    function form: each ``sample`` consumes exactly one
    ``rng.lognormvariate(mu, sigma)`` with bit-identical arguments.
    """

    __slots__ = ("mean", "cv", "mu", "sigma")

    def __init__(self, mean: float, cv: float) -> None:
        if mean <= 0 or cv <= 0:
            raise ValueError("mean and cv must be positive")
        self.mean = mean
        self.cv = cv
        sigma2 = math.log(1.0 + cv * cv)
        self.mu = math.log(mean) - sigma2 / 2.0
        self.sigma = math.sqrt(sigma2)

    def sample(self, rng: random.Random) -> float:
        """One draw; identical to ``lognormal_from_mean_cv(rng, mean, cv)``."""
        return rng.lognormvariate(self.mu, self.sigma)

    def sample_batch(self, rng: random.Random, n: int) -> List[float]:
        """Pre-sample ``n`` draws in exactly the one-at-a-time order."""
        if n < 1:
            raise ValueError("n must be >= 1")
        lognormvariate = rng.lognormvariate
        mu = self.mu
        sigma = self.sigma
        return [lognormvariate(mu, sigma) for _ in range(n)]


#: Memoized samplers keyed by (mean, cv).  Workload models use a small
#: fixed set of parameterisations, so the memo stays tiny; the bound
#: protects against pathological callers with unbounded parameter sets.
_LOGNORMAL_SAMPLERS: Dict[Tuple[float, float], LognormalSampler] = {}
_LOGNORMAL_MEMO_MAX = 1024


def lognormal_sampler(mean: float, cv: float) -> LognormalSampler:
    """Return (creating and memoizing if needed) a sampler for (mean, cv)."""
    key = (mean, cv)
    sampler = _LOGNORMAL_SAMPLERS.get(key)
    if sampler is None:
        sampler = LognormalSampler(mean, cv)
        if len(_LOGNORMAL_SAMPLERS) >= _LOGNORMAL_MEMO_MAX:
            _LOGNORMAL_SAMPLERS.clear()
        _LOGNORMAL_SAMPLERS[key] = sampler
    return sampler


def lognormal_from_mean_cv(rng: random.Random, mean: float, cv: float) -> float:
    """Sample a lognormal with the given mean and coefficient of variation.

    Object-size and service-time distributions in production caches are
    heavy-tailed; lognormal parameterised by (mean, cv) matches the
    calibration style used in TaoBench.  Hot loops should hold a
    :class:`LognormalSampler` (or :func:`lognormal_sampler`) instead of
    paying the parameter derivation per draw; the draws are identical.
    """
    return lognormal_sampler(mean, cv).sample(rng)


class ZipfSampler:
    """Zipf(s) sampler over ranks ``1..n`` using inverse-CDF lookup.

    Key popularity in TAO-like caches follows a Zipf law; this sampler
    precomputes the CDF once (O(n)) and samples in O(log n).
    """

    #: Memoized CDFs keyed by (n, s): building the 200k-rank TaoBench
    #: CDF costs ~40ms per run, and every run of the same benchmark
    #: rebuilds the identical table.  The CDF is pure in (n, s) and
    #: never mutated, so instances share it safely.
    _CDF_MEMO: Dict[Tuple[int, float], List[float]] = {}
    _CDF_MEMO_MAX = 64

    def __init__(self, n: int, s: float = 0.99) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        if s < 0:
            raise ValueError("s must be >= 0")
        self.n = n
        self.s = s
        cdf = self._CDF_MEMO.get((n, s))
        if cdf is None:
            weights = [1.0 / (rank ** s) for rank in range(1, n + 1)]
            total = sum(weights)
            cdf = []
            acc = 0.0
            for w in weights:
                acc += w / total
                cdf.append(acc)
            cdf[-1] = 1.0
            if len(self._CDF_MEMO) >= self._CDF_MEMO_MAX:
                self._CDF_MEMO.clear()
            self._CDF_MEMO[(n, s)] = cdf
        self._cdf = cdf

    def sample(self, rng: random.Random) -> int:
        """Return a rank in ``1..n`` (1 is most popular).

        ``bisect_left`` returns the leftmost index whose CDF value is
        >= u — exactly what the hand-rolled binary search found, at C
        speed.
        """
        return bisect_left(self._cdf, rng.random()) + 1

    def hit_fraction(self, top_k: int) -> float:
        """Probability mass of the ``top_k`` most popular ranks."""
        if top_k <= 0:
            return 0.0
        if top_k >= self.n:
            return 1.0
        return self._cdf[top_k - 1]


class EmpiricalDistribution:
    """Sample from explicit (value, weight) pairs.

    DCPerf replicates production request/response size distributions;
    this class holds such replicated histograms.
    """

    def __init__(self, values: Sequence[float], weights: Sequence[float]) -> None:
        if len(values) != len(weights) or not values:
            raise ValueError("values and weights must be equal-length, non-empty")
        if any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        self.values = list(values)
        cdf: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cdf.append(acc)
        cdf[-1] = 1.0
        self._cdf = cdf

    def sample(self, rng: random.Random) -> float:
        return self.values[bisect_left(self._cdf, rng.random())]

    def mean(self) -> float:
        prev = 0.0
        out = 0.0
        for value, cum in zip(self.values, self._cdf):
            out += value * (cum - prev)
            prev = cum
        return out


class WeightedChoice:
    """Precompiled replacement for ``rng.choices(values, weights=w)[0]``.

    ``random.choices`` rebuilds the cumulative-weight table and re-enters
    its general k-draw machinery on every call; the endpoint-mix draws in
    mediawiki/djangobench pay that once per simulated request.  This
    class freezes the table and replays the *exact* arithmetic of
    ``Random.choices`` for ``k=1`` — one ``rng.random()`` scaled by the
    float total, located with the same clamped ``bisect`` — so swapping
    it in is draw-order- and value-identical.
    """

    __slots__ = ("values", "_cum", "_total", "_hi")

    def __init__(self, values: Sequence, weights: Sequence[float]) -> None:
        if len(values) != len(weights) or not values:
            raise ValueError("values and weights must be equal-length, non-empty")
        self.values = list(values)
        self._cum = list(accumulate(weights))
        self._total = self._cum[-1] + 0.0
        if self._total <= 0:
            raise ValueError("weights must sum to a positive value")
        self._hi = len(self.values) - 1

    def sample(self, rng: random.Random):
        return self.values[
            bisect(self._cum, rng.random() * self._total, 0, self._hi)
        ]
