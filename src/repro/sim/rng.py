"""Deterministic, named random-number streams.

Every stochastic element of a workload model (arrivals, key popularity,
object sizes, backend latencies) draws from its own named stream so that
changing one element never perturbs another — a prerequisite for
apples-to-apples comparisons between configurations, which is exactly
how DCPerf compares SKUs.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Dict, List, Sequence


class RngStreams:
    """A factory of independent :class:`random.Random` streams.

    Streams are derived from a master seed and the stream name, so
    ``RngStreams(7).stream("arrivals")`` is identical across runs and
    across machines.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the stream for ``name``."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def spawn(self, name: str) -> "RngStreams":
        """Derive a child factory with an independent seed space."""
        digest = hashlib.sha256(f"{self.seed}:spawn:{name}".encode()).digest()
        return RngStreams(int.from_bytes(digest[:8], "big"))


def exponential(rng: random.Random, mean: float) -> float:
    """Sample an exponential inter-arrival time with the given mean."""
    if mean <= 0:
        raise ValueError("mean must be positive")
    return rng.expovariate(1.0 / mean)


def exponential_batch(rng: random.Random, rate: float, n: int) -> List[float]:
    """Pre-sample ``n`` exponential inter-arrival gaps at ``rate``.

    Draws are made in exactly the order a one-at-a-time loop would make
    them, so batching changes *when* the stream is consumed but never
    *what* it yields — a prerequisite for byte-identical replays.  The
    load generators drain one batch per refill instead of paying the
    attribute-lookup and call overhead on every arrival.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if n < 1:
        raise ValueError("n must be >= 1")
    expovariate = rng.expovariate
    return [expovariate(rate) for _ in range(n)]


def lognormal_from_mean_cv(rng: random.Random, mean: float, cv: float) -> float:
    """Sample a lognormal with the given mean and coefficient of variation.

    Object-size and service-time distributions in production caches are
    heavy-tailed; lognormal parameterised by (mean, cv) matches the
    calibration style used in TaoBench.
    """
    if mean <= 0 or cv <= 0:
        raise ValueError("mean and cv must be positive")
    sigma2 = math.log(1.0 + cv * cv)
    mu = math.log(mean) - sigma2 / 2.0
    return rng.lognormvariate(mu, math.sqrt(sigma2))


class ZipfSampler:
    """Zipf(s) sampler over ranks ``1..n`` using inverse-CDF lookup.

    Key popularity in TAO-like caches follows a Zipf law; this sampler
    precomputes the CDF once (O(n)) and samples in O(log n).
    """

    def __init__(self, n: int, s: float = 0.99) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        if s < 0:
            raise ValueError("s must be >= 0")
        self.n = n
        self.s = s
        weights = [1.0 / (rank ** s) for rank in range(1, n + 1)]
        total = sum(weights)
        cdf: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cdf.append(acc)
        cdf[-1] = 1.0
        self._cdf = cdf

    def sample(self, rng: random.Random) -> int:
        """Return a rank in ``1..n`` (1 is most popular)."""
        u = rng.random()
        lo, hi = 0, self.n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo + 1

    def hit_fraction(self, top_k: int) -> float:
        """Probability mass of the ``top_k`` most popular ranks."""
        if top_k <= 0:
            return 0.0
        if top_k >= self.n:
            return 1.0
        return self._cdf[top_k - 1]


class EmpiricalDistribution:
    """Sample from explicit (value, weight) pairs.

    DCPerf replicates production request/response size distributions;
    this class holds such replicated histograms.
    """

    def __init__(self, values: Sequence[float], weights: Sequence[float]) -> None:
        if len(values) != len(weights) or not values:
            raise ValueError("values and weights must be equal-length, non-empty")
        if any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        self.values = list(values)
        cdf: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cdf.append(acc)
        cdf[-1] = 1.0
        self._cdf = cdf

    def sample(self, rng: random.Random) -> float:
        u = rng.random()
        lo, hi = 0, len(self.values) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return self.values[lo]

    def mean(self) -> float:
        prev = 0.0
        out = 0.0
        for value, cum in zip(self.values, self._cdf):
            out += value * (cum - prev)
            prev = cum
        return out
