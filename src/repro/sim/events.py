"""Event combinators: join on all or any of a set of events.

Fanout-join is the defining control structure of datacenter request
processing (FeedSim waits for its slowest leaf; TAO multigets wait for
every shard).  These combinators express it directly::

    yield all_of(env, leaf_events)     # barrier on the slowest
    winner = yield any_of(env, races)  # first responder wins
"""

from __future__ import annotations

from typing import List, Sequence

from repro.sim.engine import Environment, Event


def _subscribe(env: Environment, event: Event, callback) -> None:
    """Attach a callback, handling already-processed events."""
    if event.processed:
        # Replay the outcome through the queue at the current time; the
        # engine's lightweight resume entry avoids a proxy Event.
        env._schedule_resume(callback, event.ok, event.value)
        return
    event.callbacks.append(callback)


def all_of(env: Environment, events: Sequence[Event]) -> Event:
    """An event firing once every input has fired.

    Its value is the list of input values in input order.  If any input
    fails, the combinator fails with that exception (first failure
    wins; remaining results are discarded).
    """
    events = list(events)
    result = Event(env)
    if not events:
        result.succeed([])
        return result
    remaining = [len(events)]
    values: List[object] = [None] * len(events)

    def make_callback(index: int):
        def on_fire(event: Event) -> None:
            if result.triggered:
                return
            if not event.ok:
                result.fail(event.value)
                return
            values[index] = event.value
            remaining[0] -= 1
            if remaining[0] == 0:
                result.succeed(list(values))

        return on_fire

    for index, event in enumerate(events):
        _subscribe(env, event, make_callback(index))
    return result


def any_of(env: Environment, events: Sequence[Event]) -> Event:
    """An event firing when the first input fires.

    Its value is ``(index, value)`` of the winner.  A failing first
    input fails the combinator.
    """
    events = list(events)
    if not events:
        raise ValueError("any_of needs at least one event")
    result = Event(env)

    def make_callback(index: int):
        def on_fire(event: Event) -> None:
            if result.triggered:
                return
            if not event.ok:
                result.fail(event.value)
                return
            result.succeed((index, event.value))

        return on_fire

    for index, event in enumerate(events):
        _subscribe(env, event, make_callback(index))
    return result
