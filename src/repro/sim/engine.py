"""Event loop, events, and generator-based processes.

The engine is a priority-queue driven discrete-event simulator.  Time is
a float (seconds by convention).  Determinism is guaranteed: events
scheduled at the same timestamp fire in scheduling order (a
monotonically increasing sequence number breaks ties), so repeated runs
of the same model produce identical traces.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple


class SimulationError(Exception):
    """Base class for errors raised by the simulation engine."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Environment.run`."""


PENDING = object()


class Event:
    """A waitable occurrence inside the simulation.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    schedules it, and when the environment processes it every registered
    callback runs.  Processes wait on events by ``yield``-ing them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok = True

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional value."""
        if self.triggered:
            raise SimulationError("event has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every process waiting on the
        event.
        """
        if self.triggered:
            raise SimulationError("event has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self


class _Resume:
    """Pre-triggered lightweight queue entry.

    Stands in for the proxy :class:`Event` the engine used to allocate
    whenever a process (or combinator) subscribed to an event that had
    already been processed.  It carries the outcome through the queue —
    preserving the same-timestamp ordering guarantee — without a full
    Event, its property machinery, or a second ``succeed()`` round.
    """

    __slots__ = ("callbacks", "_ok", "_value")

    def __init__(
        self, callback: Callable[["Event"], None], ok: bool, value: Any
    ) -> None:
        self.callbacks: Optional[List[Callable[["Event"], None]]] = [callback]
        self._ok = ok
        self._value = value

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        return self._value


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Process(Event):
    """Wraps a generator; the process itself is an event that fires when
    the generator finishes (its value is the generator's return value).
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "send"):
            raise TypeError("Process requires a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        # Bootstrap: resume the process at the current time.
        env._schedule_resume(self._resume, True, None)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self.env._schedule_resume(self._resume_with_interrupt(cause), True, None)

    def _resume_with_interrupt(self, cause: Any) -> Callable[[Event], None]:
        def resume(event: Event) -> None:
            self._step(lambda: self._generator.throw(Interrupt(cause)))

        return resume

    def _resume(self, event: Event) -> None:
        if not event.ok:
            self._step(lambda: self._generator.throw(event.value))
        else:
            self._step(lambda: self._generator.send(event.value))

    def _step(self, advance: Callable[[], Any]) -> None:
        self._target = None
        self.env._active_process = self
        try:
            target = advance()
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except Interrupt:
            # An unhandled interrupt terminates the process quietly.
            self.env._active_process = None
            self.succeed(None)
            return
        except StopSimulation:
            raise
        except BaseException as exc:
            # Any other uncaught exception fails the process event, so
            # waiters (joins, races, resilience retries) see it as a
            # failure.  If nobody waits on the process, the orphan rule
            # in :meth:`Environment.step` re-raises it — an unhandled
            # error still stops the simulation.
            self.env._active_process = None
            self.fail(exc)
            return
        finally:
            self.env._active_process = None
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded a non-event: {target!r} "
                "(yield env.timeout(...) or another Event)"
            )
        if target.processed:
            # The event already fired (e.g. joining on a fanout where
            # some branches finished first): resume at the current time
            # via the queue, carrying the same outcome.
            self._target = self.env._schedule_resume(
                self._resume, target.ok, target.value
            )
            return
        self._target = target
        target.callbacks.append(self._resume)


class Environment:
    """The simulation environment: clock plus event queue."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process from a generator."""
        return Process(self, generator)

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self._now + delay, self._seq, event))
        self._seq += 1

    def _schedule_resume(
        self, callback: Callable[[Event], None], ok: bool, value: Any
    ) -> _Resume:
        """Schedule an immediate resume without allocating a full Event."""
        entry = _Resume(callback, ok, value)
        heapq.heappush(self._queue, (self._now, self._seq, entry))
        self._seq += 1
        return entry

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next event; raises :class:`SimulationError` if empty."""
        if not self._queue:
            raise SimulationError("no scheduled events")
        when, _, event = heapq.heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event.ok and not callbacks:
            # A failed event nobody waited on: surface the error.
            raise event.value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock reaches ``until``."""
        if until is not None:
            if until < self._now:
                raise ValueError(
                    f"until ({until}) must not be before now ({self._now})"
                )
            stop = Event(self)
            stop.callbacks.append(self._stop_callback)
            self._schedule(stop, delay=until - self._now)
        try:
            while self._queue:
                self.step()
        except StopSimulation:
            pass

    def _stop_callback(self, event: Event) -> None:
        raise StopSimulation
