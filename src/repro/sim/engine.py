"""Event loop, events, and generator-based processes.

The engine is a priority-queue driven discrete-event simulator.  Time is
a float (seconds by convention).  Determinism is guaranteed: events
scheduled at the same timestamp fire in scheduling order (a
monotonically increasing sequence number breaks ties), so repeated runs
of the same model produce identical traces.

The hot path is deliberately allocation-lean:

* :meth:`Environment.run` is a single tight loop with the queues, the
  heap primitives, and the freelists bound to locals — there is no
  per-event ``step()`` call, no sentinel event, and no exception-based
  control flow for bounded runs.
* Scheduling is split across two structures merged by global
  ``(time, seq)`` order: future-dated timeouts go through the binary
  heap, while entries scheduled at the current time (process resumes,
  completions, ``succeed``/``fail``) ride a plain deque that is sorted
  by construction — O(1) instead of O(log n) for the majority of
  steady-state traffic.
* :class:`Process` resumes its generator with a direct ``send``/
  ``throw`` dispatch; the engine never allocates a closure per step.
* Immediate resumes (:class:`_Resume`) and fire-and-forget timeouts
  (:meth:`Environment.sleep`) are recycled through per-environment
  freelists, so a steady-state request loop allocates approximately
  zero event objects per request.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Generator, List, Optional, Tuple


class SimulationError(Exception):
    """Base class for errors raised by the simulation engine."""


class StopSimulation(Exception):
    """Halts :meth:`Environment.run` when raised inside a callback.

    Bounded runs (``run(until=...)``) no longer rely on this exception —
    they stop on a queue-bound time check — but raising it from model
    code remains a supported way to end a run immediately.  Prefer
    :meth:`Environment.stop`, which does the same without unwinding
    through generator frames.
    """


PENDING = object()


class Event:
    """A waitable occurrence inside the simulation.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    schedules it, and when the environment processes it every registered
    callback runs.  Processes wait on events by ``yield``-ing them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok = True

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional value."""
        if self._value is not PENDING:
            raise SimulationError("event has already been triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._fifo.append((env.now, env._seq, self))
        env._seq += 1
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every process waiting on the
        event.
        """
        if self._value is not PENDING:
            raise SimulationError("event has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        env = self.env
        env._fifo.append((env.now, env._seq, self))
        env._seq += 1
        return self


class _Resume:
    """Pre-triggered lightweight queue entry.

    Stands in for the proxy :class:`Event` the engine used to allocate
    whenever a process (or combinator) subscribed to an event that had
    already been processed.  It carries the outcome through the queue —
    preserving the same-timestamp ordering guarantee — without a full
    Event, its property machinery, or a second ``succeed()`` round.

    Entries are recycled through the environment's freelist after their
    callback runs; nothing outside the engine may retain one.
    """

    __slots__ = ("callbacks", "_ok", "_value")

    def __init__(
        self, callback: Callable[["Event"], None], ok: bool, value: Any
    ) -> None:
        self.callbacks: Optional[List[Callable[["Event"], None]]] = [callback]
        self._ok = ok
        self._value = value

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        return self._value


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self.delay = delay
        heappush(env._queue, (env.now + delay, env._seq, self))
        env._seq += 1


class _PooledTimeout(Timeout):
    """A :class:`Timeout` recycled through the environment's freelist.

    Created only by :meth:`Environment.sleep`.  After its callbacks run
    the engine reclaims the object, so callers must not retain a
    reference past the resume — which is exactly the fire-and-forget
    ``yield env.sleep(delay)`` pattern of the hot paths.
    """

    __slots__ = ()


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Process(Event):
    """Wraps a generator; the process itself is an event that fires when
    the generator finishes (its value is the generator's return value).
    """

    __slots__ = ("_generator", "_target", "_resume_fn")

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "send"):
            raise TypeError("Process requires a generator")
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self._generator = generator
        #: The event this process is currently subscribed to (its
        #: ``_resume`` sits in that event's callback list), or ``None``
        #: while the process is running or scheduled to resume.
        self._target: Optional[Event] = None
        #: ``self._resume`` bound once: every attribute access on a
        #: method allocates a fresh bound-method object, and the resume
        #: callback is subscribed/unsubscribed several times per request.
        self._resume_fn = self._resume
        # Bootstrap: resume the process at the current time.
        env._schedule_resume(self._resume_fn, True, None)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Works whether the process is waiting on an event or already
        scheduled to resume: the pending resumption is unsubscribed
        first (list discipline — the callback must be present, so the
        removal is strict), and the interrupt is delivered through the
        queue at the current time.  Multiple interrupts queue up and are
        all delivered in order; one landing after the process finished
        is dropped.
        """
        if self._value is not PENDING:
            raise SimulationError("cannot interrupt a finished process")
        target = self._target
        if target is not None:
            callbacks = target.callbacks
            if callbacks is not None:
                # Strict removal: under the target-tracking discipline
                # the callback is always present; a ValueError here is
                # an engine bug, not a condition to swallow.
                callbacks.remove(self._resume_fn)
            self._target = None
        self.env._schedule_resume(self._deliver_interrupt, True, cause)

    def _deliver_interrupt(self, entry: "Event") -> None:
        """Queue callback: throw Interrupt(cause) into the generator."""
        if self._value is not PENDING:
            # Finished between scheduling and delivery (e.g. a first
            # interrupt made it return): nothing to interrupt.
            return
        target = self._target
        if target is not None:
            # A prior interrupt already resumed the process and it is
            # waiting on a new target: unsubscribe so the event cannot
            # resume it a second time.
            callbacks = target.callbacks
            if callbacks is not None:
                callbacks.remove(self._resume_fn)
            self._target = None
        entry._ok = False
        entry._value = Interrupt(entry._value)
        self._resume(entry)

    def _resume(self, event: "Event") -> None:
        """Advance the generator with the event's outcome.

        Direct ``send``/``throw`` dispatch: no per-step closure, no
        intermediate ``_step`` frame.  This is the single hottest
        function in the simulator.
        """
        self._target = None
        env = self.env
        generator = self._generator
        try:
            if event._ok:
                target = generator.send(event._value)
            else:
                target = generator.throw(event._value)
        except StopIteration as stop:
            self._value = stop.value
            env._fifo.append((env.now, env._seq, self))
            env._seq += 1
            return
        except Interrupt:
            # An unhandled interrupt terminates the process quietly.
            self._value = None
            env._fifo.append((env.now, env._seq, self))
            env._seq += 1
            return
        except BaseException as exc:
            if isinstance(exc, StopSimulation):
                raise
            # Any other uncaught exception fails the process event, so
            # waiters (joins, races, resilience retries) see it as a
            # failure.  If nobody waits on the process, the orphan rule
            # in the run loop re-raises it — an unhandled error still
            # stops the simulation.
            self._ok = False
            self._value = exc
            env._fifo.append((env.now, env._seq, self))
            env._seq += 1
            return
        try:
            callbacks = target.callbacks
        except AttributeError:
            raise SimulationError(
                f"process yielded a non-event: {target!r} "
                "(yield env.timeout(...) or another Event)"
            ) from None
        if callbacks is None:
            # The event already fired (e.g. joining on a fanout where
            # some branches finished first): resume at the current time
            # via the queue, carrying the same outcome.
            self._target = env._schedule_resume(
                self._resume_fn, target._ok, target._value
            )
            return
        self._target = target
        callbacks.append(self._resume_fn)


class Environment:
    """The simulation environment: clock plus event queue."""

    #: Freelists never grow past this many parked objects.
    _POOL_LIMIT = 512

    def __init__(self, initial_time: float = 0.0) -> None:
        #: Current simulation time in seconds.  A plain attribute, not a
        #: property: it is read on every latency measurement in every
        #: workload, and the descriptor indirection was measurable.
        #: Treat it as read-only outside the engine.
        self.now = float(initial_time)
        #: Future-dated entries (timeouts) live in a binary heap; entries
        #: scheduled *at the current time* (process resumes, completions,
        #: ``succeed``/``fail``) go to a plain deque instead.  Appends at
        #: ``now`` are monotone in ``(time, seq)``, so the deque is always
        #: sorted and the run loop merges the two by global ``(time, seq)``
        #: order — identical total order to a single heap, but the
        #: majority of steady-state traffic pays O(1) instead of O(log n).
        self._queue: List[Tuple[float, int, Event]] = []
        self._fifo: "deque[Tuple[float, int, Event]]" = deque()
        self._seq = 0
        self._stopped = False
        self._resume_pool: List[_Resume] = []
        self._timeout_pool: List[_PooledTimeout] = []

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def sleep(self, delay: float) -> Timeout:
        """A fire-and-forget timeout drawn from the freelist.

        Semantically ``timeout(delay)`` with no value, but the returned
        object is recycled as soon as its callbacks have run — callers
        must ``yield`` it immediately and never retain a reference
        (``yield env.sleep(d)``).  Steady-state loops built on ``sleep``
        allocate no event objects at all.
        """
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        pool = self._timeout_pool
        if pool:
            entry = pool.pop()
            entry.delay = delay
        else:
            entry = _PooledTimeout.__new__(_PooledTimeout)
            entry.env = self
            entry.callbacks = []
            entry._value = None
            entry._ok = True
            entry.delay = delay
        heappush(self._queue, (self.now + delay, self._seq, entry))
        self._seq += 1
        return entry

    def process(self, generator: Generator) -> Process:
        """Start a new process from a generator."""
        return Process(self, generator)

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heappush(self._queue, (self.now + delay, self._seq, event))
        self._seq += 1

    def _schedule_resume(
        self, callback: Callable[[Event], None], ok: bool, value: Any
    ) -> _Resume:
        """Schedule an immediate resume without allocating a full Event."""
        pool = self._resume_pool
        if pool:
            entry = pool.pop()
            entry.callbacks.append(callback)
            entry._ok = ok
            entry._value = value
        else:
            entry = _Resume(callback, ok, value)
        self._fifo.append((self.now, self._seq, entry))
        self._seq += 1
        return entry

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        queue = self._queue
        fifo = self._fifo
        if queue:
            if fifo and fifo[0] < queue[0]:
                return fifo[0][0]
            return queue[0][0]
        if fifo:
            return fifo[0][0]
        return float("inf")

    def stop(self) -> None:
        """End the current :meth:`run` after the in-flight event.

        The flag is observed once per processed event and cleared on
        the next ``run`` call, so a stopped environment can keep
        running later — this is how convergence-based early termination
        ends a measurement phase deterministically.
        """
        self._stopped = True

    def step(self) -> None:
        """Process the next event; raises :class:`SimulationError` if empty.

        Retained for tests and manual single-stepping; :meth:`run` uses
        an inlined loop instead of calling this per event.
        """
        queue = self._queue
        fifo = self._fifo
        if fifo and (not queue or fifo[0] < queue[0]):
            when, _, event = fifo.popleft()
        elif queue:
            when, _, event = heappop(queue)
        else:
            raise SimulationError("no scheduled events")
        self.now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if isinstance(event, _Resume):
            event._value = None
            event.callbacks = []
            if len(self._resume_pool) < self._POOL_LIMIT:
                self._resume_pool.append(event)
        elif type(event) is _PooledTimeout:
            event.callbacks = []
            if len(self._timeout_pool) < self._POOL_LIMIT:
                self._timeout_pool.append(event)
        elif not event._ok and not callbacks:
            # A failed event nobody waited on: surface the error.
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock reaches ``until``.

        The bound is a queue-head time check, not a sentinel event:
        entries scheduled strictly before ``until`` are processed, the
        clock then advances to exactly ``until``, and no stray entry is
        left behind — repeated bounded runs compose without exception-
        based control flow.  For entries at exactly ``until`` the old
        sentinel's tie-break is preserved: only those scheduled before
        this call (sequence numbers below the bound) still fire.
        """
        if until is not None:
            bound = float(until)
            if bound < self.now:
                raise ValueError(
                    f"until ({until}) must not be before now ({self.now})"
                )
        else:
            bound = float("inf")
        bound_seq = self._seq
        self._stopped = False
        queue = self._queue
        fifo = self._fifo
        popleft = fifo.popleft
        pop = heappop
        resume_pool = self._resume_pool
        timeout_pool = self._timeout_pool
        pool_limit = self._POOL_LIMIT
        try:
            while True:
                # Two-way merge: the deque holds at-``now`` entries (always
                # sorted — see ``_fifo``), the heap holds future-dated
                # ones; whichever head is globally next by ``(time, seq)``
                # is processed.  Pop first, then bound-check: the rare
                # entry past the bound goes back (once per run call).
                if fifo:
                    if queue and queue[0] < fifo[0]:
                        entry = pop(queue)
                        from_heap = True
                    else:
                        entry = popleft()
                        from_heap = False
                elif queue:
                    entry = pop(queue)
                    from_heap = True
                else:
                    break
                when = entry[0]
                if when >= bound and (when > bound or entry[1] >= bound_seq):
                    if from_heap:
                        heappush(queue, entry)
                    else:
                        fifo.appendleft(entry)
                    self.now = bound
                    return
                event = entry[2]
                self.now = when
                cls = event.__class__
                # Nearly every event has zero or one subscriber; the
                # single-callback path below skips the list-iterator
                # allocation a for-loop would make per event.
                if cls is _Resume:
                    # Pooled entries cannot gain subscribers while their
                    # callbacks run (nothing outside the engine holds
                    # one), so skip the processed-marker round-trip and
                    # recycle the entry and its list in place.
                    callbacks = event.callbacks
                    if len(callbacks) == 1:
                        callbacks[0](event)
                        callbacks.clear()
                    elif callbacks:
                        for callback in callbacks:
                            callback(event)
                        callbacks.clear()
                    event._value = None
                    if len(resume_pool) < pool_limit:
                        resume_pool.append(event)
                elif cls is _PooledTimeout:
                    callbacks = event.callbacks
                    if len(callbacks) == 1:
                        callbacks[0](event)
                        callbacks.clear()
                    elif callbacks:
                        for callback in callbacks:
                            callback(event)
                        callbacks.clear()
                    if len(timeout_pool) < pool_limit:
                        timeout_pool.append(event)
                else:
                    callbacks = event.callbacks
                    event.callbacks = None
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    elif callbacks:
                        for callback in callbacks:
                            callback(event)
                    elif not event._ok:
                        # A failed event nobody waited on: surface it.
                        raise event._value
                if self._stopped:
                    return
        except StopSimulation:
            return
        # Queue drained before the bound: a bounded run still ends with
        # the clock at ``until`` (the sentinel used to guarantee this).
        if until is not None:
            self.now = bound
