"""repro — a DCPerf reproduction on a simulated datacenter substrate.

Reproduces "DCPerf: An Open-Source, Battle-Tested Performance Benchmark
Suite for Datacenter Workloads" (Su et al., ISCA 2025) as a calibrated
simulation.  The most common entry points::

    from repro.core.benchmark import Benchmark
    from repro.core.suite import DCPerfSuite
    from repro.workloads.base import RunConfig

    report = Benchmark.by_name("taobench").run(RunConfig(sku_name="SKU2"))
    suite = DCPerfSuite().run("SKU4")

See README.md for the architecture overview, DESIGN.md for the system
inventory and substitutions, and EXPERIMENTS.md for the
paper-vs-measured record.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
