"""Calibrated characteristics for every modeled workload.

Combines the published fidelity targets (:mod:`repro.workloads.targets`)
with workload structure (Table 1 and the Section 3.2 benchmark
descriptions) through the closed-form calibrator
(:func:`repro.uarch.calibrate.calibrate`).  The result is a registry of
:class:`WorkloadCharacteristics` for the six DCPerf benchmarks, their
production counterparts, and the SPEC CPU 2006/2017 comparators.
"""

from __future__ import annotations

from typing import Dict

from repro.uarch.calibrate import (
    FidelityTargets,
    StructuralParams,
    calibrate,
)
from repro.uarch.characteristics import WorkloadCharacteristics
from repro.workloads.targets import (
    BENCHMARK_TARGETS,
    FIG12_TAX_PROFILES,
    PRODUCTION_TARGETS,
    SPEC2017_TARGETS,
)

# --- structural parameters per workload category ------------------------------
# Instructions per request are set so the SKU2 request rates land on
# Table 1's per-server orders of magnitude given the measured
# instruction rates; thread-to-core ratios and fanouts come straight
# from Table 1.

_STRUCTURES: Dict[str, StructuralParams] = {
    # TAO-style caching: tiny requests, heavy context switching, the
    # instruction count includes the kernel network path.
    "taobench": StructuralParams(
        instructions_per_request=48_000,
        thread_core_ratio=10,
        rpc_fanout=10,
        switches_per_kinstr=1.55,
        mem_refs_per_kinstr=300,
        locality_beta=0.55,
        memory_level_parallelism=8.0,
        network_bytes_per_request=1_200,
        tax_shares=FIG12_TAX_PROFILES["taobench"],
    ),
    "cache-prod": StructuralParams(
        instructions_per_request=52_000,
        thread_core_ratio=10,
        rpc_fanout=10,
        switches_per_kinstr=1.65,
        mem_refs_per_kinstr=320,
        locality_beta=0.55,
        memory_level_parallelism=8.0,
        network_bytes_per_request=1_400,
        tax_shares=FIG12_TAX_PROFILES["cache-prod"],
    ),
    # Newsfeed ranking: large requests, wide RPC fanout, SLO-bound.
    "feedsim": StructuralParams(
        instructions_per_request=6e8,
        thread_core_ratio=10,
        rpc_fanout=10,
        switches_per_kinstr=0.05,
        mem_refs_per_kinstr=330,
        locality_beta=0.50,
        memory_level_parallelism=14.0,
        network_bytes_per_request=120_000,
        tax_shares=FIG12_TAX_PROFILES["feedsim"],
    ),
    "ranking-prod": StructuralParams(
        instructions_per_request=6e8,
        thread_core_ratio=10,
        rpc_fanout=10,
        switches_per_kinstr=0.06,
        mem_refs_per_kinstr=330,
        locality_beta=0.50,
        memory_level_parallelism=14.0,
        network_bytes_per_request=140_000,
        tax_shares=FIG12_TAX_PROFILES["ranking-prod"],
    ),
    # Instagram-style web: multi-process Python, large code footprint.
    "djangobench": StructuralParams(
        instructions_per_request=2.5e8,
        serial_fraction=0.034,
        thread_core_ratio=100,
        rpc_fanout=100,
        switches_per_kinstr=0.02,
        mem_refs_per_kinstr=340,
        locality_beta=0.60,
        memory_level_parallelism=10.0,
        network_bytes_per_request=60_000,
        tax_shares=FIG12_TAX_PROFILES["fbweb-prod"],
    ),
    "igweb-prod": StructuralParams(
        instructions_per_request=2.5e8,
        serial_fraction=0.034,
        thread_core_ratio=100,
        rpc_fanout=100,
        switches_per_kinstr=0.02,
        mem_refs_per_kinstr=340,
        locality_beta=0.60,
        memory_level_parallelism=10.0,
        network_bytes_per_request=70_000,
        tax_shares=FIG12_TAX_PROFILES["fbweb-prod"],
    ),
    # Facebook-style web on HHVM: threaded, biggest fanout.
    "mediawiki": StructuralParams(
        instructions_per_request=1.5e8,
        serial_fraction=0.034,
        thread_core_ratio=100,
        rpc_fanout=100,
        switches_per_kinstr=0.02,
        mem_refs_per_kinstr=350,
        locality_beta=0.60,
        memory_level_parallelism=10.0,
        network_bytes_per_request=80_000,
        tax_shares=FIG12_TAX_PROFILES["mediawiki"],
    ),
    "fbweb-prod": StructuralParams(
        instructions_per_request=1.5e8,
        serial_fraction=0.034,
        thread_core_ratio=100,
        rpc_fanout=100,
        switches_per_kinstr=0.02,
        mem_refs_per_kinstr=350,
        locality_beta=0.60,
        memory_level_parallelism=10.0,
        network_bytes_per_request=90_000,
        tax_shares=FIG12_TAX_PROFILES["fbweb-prod"],
    ),
    # Warehouse queries: vectorized scans, one task per core.
    "sparkbench": StructuralParams(
        instructions_per_request=2.4e10,
        thread_core_ratio=1,
        rpc_fanout=10,
        switches_per_kinstr=0.01,
        mem_refs_per_kinstr=360,
        locality_beta=0.45,
        memory_level_parallelism=40.0,
        network_bytes_per_request=8_000_000,
        tax_shares=FIG12_TAX_PROFILES["sparkbench"],
    ),
    "spark-prod": StructuralParams(
        instructions_per_request=2.4e10,
        thread_core_ratio=1,
        rpc_fanout=10,
        switches_per_kinstr=0.01,
        mem_refs_per_kinstr=360,
        locality_beta=0.45,
        memory_level_parallelism=40.0,
        network_bytes_per_request=9_000_000,
        tax_shares=FIG12_TAX_PROFILES["spark-prod"],
    ),
    # LSM key-value storage: small point ops like caching but with a
    # heavier per-op engine path (memtable, bloom probes, block
    # decode); the I/O itself lives on the simulated block device, not
    # in these CPU-side parameters.
    "storagebench": StructuralParams(
        instructions_per_request=60_000,
        thread_core_ratio=10,
        rpc_fanout=1,
        switches_per_kinstr=1.10,
        mem_refs_per_kinstr=320,
        locality_beta=0.55,
        memory_level_parallelism=8.0,
        network_bytes_per_request=2_000,
        tax_shares=FIG12_TAX_PROFILES["storagebench"],
    ),
    # One "request" is one serving turn (mean prefill + decode of the
    # chat mix); a compact inference loop pinned to its cores — almost
    # no context switches, streaming access patterns with low reuse.
    "llmbench": StructuralParams(
        instructions_per_request=11_000_000,
        thread_core_ratio=2,
        rpc_fanout=1,
        switches_per_kinstr=0.04,
        mem_refs_per_kinstr=420,
        locality_beta=0.40,
        memory_level_parallelism=20.0,
        network_bytes_per_request=20_000,
        tax_shares=FIG12_TAX_PROFILES["llmbench"],
    ),
    "storage-prod": StructuralParams(
        instructions_per_request=66_000,
        thread_core_ratio=10,
        rpc_fanout=1,
        switches_per_kinstr=1.20,
        mem_refs_per_kinstr=330,
        locality_beta=0.55,
        memory_level_parallelism=8.0,
        network_bytes_per_request=2_400,
        tax_shares=FIG12_TAX_PROFILES["storage-prod"],
    ),
    # Video transcode: per-core ffmpeg instances, zero fanout.
    "videotranscode": StructuralParams(
        instructions_per_request=2e9,
        thread_core_ratio=1,
        rpc_fanout=0,
        switches_per_kinstr=0.005,
        mem_refs_per_kinstr=320,
        locality_beta=0.50,
        memory_level_parallelism=24.0,
        network_bytes_per_request=2_000_000,
    ),
    "video-prod": StructuralParams(
        instructions_per_request=2e9,
        thread_core_ratio=1,
        rpc_fanout=0,
        switches_per_kinstr=0.005,
        mem_refs_per_kinstr=320,
        locality_beta=0.50,
        memory_level_parallelism=24.0,
        network_bytes_per_request=2_500_000,
    ),
}

#: SPEC benchmarks share one structure: single-process rate runs.
_SPEC_STRUCTURE = StructuralParams(
    instructions_per_request=1e9,
    thread_core_ratio=1,
    rpc_fanout=0,
    switches_per_kinstr=0.001,
    mem_refs_per_kinstr=380,
    locality_beta=0.50,
    memory_level_parallelism=10.0,
    network_bytes_per_request=0.001,
)

#: Per-SPEC-benchmark MLP overrides: pointer chasers have low MLP,
#: streaming codes high MLP.
_SPEC_MLP: Dict[str, float] = {
    "505.mcf": 4.0,
    "520.omnetpp": 5.0,
    "523.xalancbmk": 7.0,
    "502.gcc": 12.0,
    "525.x264": 24.0,
    "548.exchange2": 10.0,
}


def _build(
    targets: Dict[str, FidelityTargets],
    default_structure: StructuralParams = None,
) -> Dict[str, WorkloadCharacteristics]:
    out: Dict[str, WorkloadCharacteristics] = {}
    for name, target in targets.items():
        structure = _STRUCTURES.get(name, default_structure)
        if structure is None:
            raise KeyError(f"no structural parameters for workload {name!r}")
        out[name] = calibrate(target, structure)
    return out


def _build_spec2017() -> Dict[str, WorkloadCharacteristics]:
    out: Dict[str, WorkloadCharacteristics] = {}
    for name, target in SPEC2017_TARGETS.items():
        structure = _SPEC_STRUCTURE
        if name in _SPEC_MLP:
            from dataclasses import replace

            structure = replace(
                structure, memory_level_parallelism=_SPEC_MLP[name]
            )
        out[name] = calibrate(target, structure)
    return out


BENCHMARK_PROFILES: Dict[str, WorkloadCharacteristics] = _build(BENCHMARK_TARGETS)
PRODUCTION_PROFILES: Dict[str, WorkloadCharacteristics] = _build(PRODUCTION_TARGETS)
SPEC2017_PROFILES: Dict[str, WorkloadCharacteristics] = _build_spec2017()

#: Maps each DCPerf benchmark to the production workload it models.
BENCHMARK_TO_PRODUCTION: Dict[str, str] = {
    "taobench": "cache-prod",
    "feedsim": "ranking-prod",
    "djangobench": "igweb-prod",
    "mediawiki": "fbweb-prod",
    "sparkbench": "spark-prod",
    "videotranscode": "video-prod",
    "storagebench": "storage-prod",
}


def get_profile(name: str) -> WorkloadCharacteristics:
    """Look up any calibrated profile by workload name."""
    for registry in (BENCHMARK_PROFILES, PRODUCTION_PROFILES, SPEC2017_PROFILES):
        if name in registry:
            return registry[name]
    raise KeyError(f"unknown workload profile {name!r}")
