"""Shared discrete-event execution harness.

Couples the analytical model (service rates) with the event-level
concurrency structure (thread pools, queues, schedulers).  The split of
responsibilities:

* :class:`ServerModel` — converts a workload's instruction counts into
  core-seconds using the projection engine's IPC and frequency for the
  (workload, SKU) pair.
* :class:`ThreadPool` — a worker pool pulling work items off a queue;
  models UWSGI worker processes, HHVM threads, TAO fast/slow pools.
* :class:`BenchmarkHarness` — wires a load generator to a handler,
  runs warmup + measurement windows, and assembles a
  :class:`WorkloadResult` with both simulated observations (throughput,
  latency, utilization) and model-derived microarchitecture metrics.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Generator, Optional

from repro.faults.control import SloControlPlane
from repro.faults.injector import FaultInjector
from repro.faults.resilience import ResilienceStats, ServiceClient
from repro.loadgen.windows import WindowedSloTracker
from repro.loadgen.generators import Handler, OpenLoopGenerator, Request
from repro.loadgen.recorder import LatencyRecorder
from repro.oskernel.kernel import KernelVersion
from repro.oskernel.scheduler import CpuScheduler
from repro.hw.sku import ServerSku
from repro.sim.engine import Environment, Event
from repro.sim.resources import Resource
from repro.sim.rng import RngStreams
from repro.uarch.characteristics import WorkloadCharacteristics
from repro.uarch.projection import ProjectionEngine, SteadyState
from repro.workloads.base import RunConfig, WorkloadResult


@dataclass
class ServerModel:
    """Analytic rates for one (workload, SKU, kernel) combination."""

    sku: ServerSku
    kernel: KernelVersion
    chars: WorkloadCharacteristics
    util_hint: float = 0.9

    def __post_init__(self) -> None:
        self.engine = ProjectionEngine(self.sku)
        state = self.engine.solve(self.chars, cpu_util=self.util_hint)
        self.effective_freq_ghz = state.effective_freq_ghz
        self.ipc_thread = state.tmam.ipc_per_thread
        cpu = self.sku.cpu
        smt_boost = 1.0 + (cpu.smt_throughput_factor - 1.0) * self.chars.smt_friendly
        #: Instructions per second one logical core sustains.
        self.per_logical_ips = (
            self.ipc_thread
            * self.effective_freq_ghz
            * 1e9
            * (smt_boost / cpu.smt)
        )
        #: Instructions per second the whole server sustains at 100%.
        self.server_ips = self.per_logical_ips * cpu.logical_cores

    def service_seconds(self, instructions: float) -> float:
        """Core-seconds one logical core needs for an instruction count."""
        if instructions < 0:
            raise ValueError("instructions must be non-negative")
        return instructions / self.per_logical_ips

    def capacity_rps(self) -> float:
        """Unimpeded request capacity (no queueing/scheduler losses)."""
        return self.server_ips / self.chars.instructions_per_request

    def steady_state(
        self, cpu_util: float, scaling_efficiency: float
    ) -> SteadyState:
        """Model-side metrics at the measured operating point."""
        return self.engine.solve(
            self.chars,
            cpu_util=max(0.01, min(1.0, cpu_util)),
            scaling_efficiency=max(0.01, min(1.0, scaling_efficiency)),
        )


class ConvergenceMonitor:
    """Deterministic steady-state detector over completion-count windows.

    Groups successful completions into fixed-size windows of
    :attr:`WINDOW` requests, keeps the mean latency of the last
    :attr:`WINDOWS` windows, and declares convergence when their
    coefficient of variation drops below :attr:`COV_THRESHOLD`.  The
    test depends only on the completion sequence — never on wall time —
    so two runs of the same seed stop at the same simulated instant.

    Errors and timed-out requests (latency ``None``) do not count
    toward a window: a fault-degraded stretch keeps windows open rather
    than converging on garbage.  Fault-injection runs skip the monitor
    entirely (their measurement windows are deliberately
    non-stationary).
    """

    #: Successful completions per window.
    WINDOW = 200
    #: Trailing windows whose means must agree.
    WINDOWS = 5
    #: Coefficient-of-variation threshold for "converged".
    COV_THRESHOLD = 0.04

    __slots__ = (
        "env",
        "window",
        "threshold",
        "_sum",
        "_count",
        "_means",
        "windows_closed",
        "converged_at",
    )

    def __init__(
        self,
        env: Environment,
        window: int = WINDOW,
        windows: int = WINDOWS,
        threshold: float = COV_THRESHOLD,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if windows < 2:
            raise ValueError("windows must be >= 2")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.env = env
        self.window = window
        self.threshold = threshold
        self._sum = 0.0
        self._count = 0
        self._means: Deque[float] = deque(maxlen=windows)
        self.windows_closed = 0
        self.converged_at: Optional[float] = None

    def on_complete(self, latency: Optional[float]) -> None:
        """Generator completion hook; stops the run once converged."""
        if latency is None or self.converged_at is not None:
            return
        self._sum += latency
        self._count += 1
        if self._count < self.window:
            return
        means = self._means
        means.append(self._sum / self._count)
        self._sum = 0.0
        self._count = 0
        self.windows_closed += 1
        if len(means) < means.maxlen:
            return
        mean = sum(means) / len(means)
        if mean <= 0.0:
            return
        variance = sum((m - mean) ** 2 for m in means) / len(means)
        if variance ** 0.5 / mean < self.threshold:
            self.converged_at = self.env.now
            self.env.stop()


class _WorkerDock:
    """Parking lot for idle pool workers, yieldable like an event.

    A worker that yields the dock never schedules anything: the process
    machinery appends its resume callback here, and :meth:`append`
    either hands it a backlogged item immediately or files it as idle.
    ``submit`` wakes idle workers the same way.  Every handoff is one
    recycled resume entry through the engine's freelist — no ``Store``
    events, no allocations at steady state.
    """

    __slots__ = ("pool", "idle")

    def __init__(self, pool: "ThreadPool") -> None:
        self.pool = pool
        self.idle: Deque[Callable] = deque()

    @property
    def callbacks(self) -> "_WorkerDock":
        # Ducks as Event.callbacks so a process can yield the dock.
        return self

    def append(self, resume: Callable) -> None:
        pool = self.pool
        if pool._backlog:
            pool.env._schedule_resume(resume, True, pool._backlog.popleft())
        else:
            self.idle.append(resume)

    def remove(self, resume: Callable) -> None:
        # Interrupting a parked worker unsubscribes it, like any event.
        self.idle.remove(resume)


class ThreadPool:
    """A pool of worker threads fed by a FIFO queue.

    Work items are generator factories; a worker runs one item at a
    time to completion.  Queue depth is observable for backpressure
    modeling.
    """

    __slots__ = ("env", "name", "num_threads", "_backlog", "_dock", "completed")

    def __init__(
        self,
        env: Environment,
        name: str,
        num_threads: int,
    ) -> None:
        if num_threads < 1:
            raise ValueError(f"{name}: num_threads must be >= 1")
        self.env = env
        self.name = name
        self.num_threads = num_threads
        self._backlog: Deque[tuple] = deque()
        self._dock = _WorkerDock(self)
        self.completed = 0
        for _ in range(num_threads):
            env.process(self._worker())

    def submit(self, work: Callable[[], Generator]) -> Event:
        """Queue a work item; the returned event fires on completion."""
        env = self.env
        done = Event(env)
        idle = self._dock.idle
        if idle:
            env._schedule_resume(idle.popleft(), True, (work, done))
        else:
            self._backlog.append((work, done))
        return done

    @property
    def queue_depth(self) -> int:
        return len(self._backlog)

    def _worker(self) -> Generator:
        dock = self._dock
        while True:
            work, done = yield dock
            try:
                yield from work()
            except Exception as exc:  # propagate into the waiter
                if done.callbacks:
                    done.fail(exc)
                # No waiter left (the request was abandoned by a
                # deadline/hedge): swallow the failure instead of
                # leaving an orphaned failed event to crash the sim.
            else:
                done.succeed()
                self.completed += 1


class BenchmarkHarness:
    """One benchmark execution: environment, scheduler, measurement."""

    #: Utilization sampling period for the timeline (sim seconds).
    SAMPLE_PERIOD_S = 0.1

    def __init__(self, config: RunConfig, chars: WorkloadCharacteristics) -> None:
        self.config = config
        self.chars = chars
        self.sku = config.sku
        self.kernel = config.kernel
        self.env = Environment()
        self.server = ServerModel(self.sku, self.kernel, chars)
        cpu = self.sku.cpu
        smt_boost = 1.0 + (cpu.smt_throughput_factor - 1.0) * chars.smt_friendly
        self.scheduler = CpuScheduler(
            env=self.env,
            logical_cores=cpu.logical_cores,
            freq_ghz=self.server.effective_freq_ghz,
            kernel=self.kernel,
            single_thread_speedup=max(1.0, cpu.smt / smt_boost),
        )
        self.recorder = LatencyRecorder()
        self.rng = RngStreams(config.seed).spawn(chars.name)
        self.timeline: list = []
        self.injector: Optional[FaultInjector] = None
        if config.faults:
            self.injector = FaultInjector(
                env=self.env,
                schedule=config.faults,
                scheduler=self.scheduler,
                rng=self.rng.stream("faults"),
                window_start=config.warmup_seconds,
                window_seconds=config.measure_seconds,
                memory_intensity=self._memory_intensity(chars),
            )
        self.resilience_stats = ResilienceStats()
        self.client: Optional[ServiceClient] = None
        if config.resilience.enabled:
            self.client = ServiceClient(
                env=self.env,
                policy=config.resilience,
                rng=self.rng.stream("resilience"),
                injector=self.injector,
                stats=self.resilience_stats,
            )
        self.control: Optional[SloControlPlane] = None
        if config.slo_control.enabled:
            env = self.env
            self.control = SloControlPlane(
                policy=config.slo_control,
                rng=self.rng.stream("slo-control"),
                clock=lambda: env.now,
            )
            # Brownout relief publishes to the scheduler the way
            # disk_degraded publishes to attached block devices.
            self.control.brownout.attach(self.scheduler)

    @staticmethod
    def _memory_intensity(chars: WorkloadCharacteristics) -> float:
        """Memory-boundness proxy in [0, 1] for fault severity scaling.

        Workloads with large data working sets and high memory traffic
        suffer more from memory pressure and cache flushes.
        """
        return min(
            1.0,
            chars.data_reuse_kb / 4096.0 + chars.mem_refs_per_kinstr / 1200.0,
        )

    # --- burst helpers --------------------------------------------------------
    def burst(
        self,
        instructions: float,
        kernel_frac: Optional[float] = None,
        dispatches_per_request: int = 1,
    ):
        """Generator executing one CPU burst with kernel accounting.

        ``dispatches_per_request`` is the number of production-side
        scheduling events this burst represents per request (e.g. a
        cache-miss path that naps on the backend wakes the thread
        again); it multiplies with the batch factor.
        """
        kf = self.chars.kernel_frac if kernel_frac is None else kernel_frac
        seconds = self.server.service_seconds(instructions) * self.config.batch
        yield from self.scheduler.execute(
            seconds * (1.0 - kf),
            seconds * kf,
            dispatches=self.config.batch * dispatches_per_request,
        )

    def make_pool(self, name: str, num_threads: int) -> ThreadPool:
        return ThreadPool(self.env, name, num_threads)

    # --- measurement ----------------------------------------------------------
    def run_open_loop(
        self,
        handler: Handler,
        offered_rps: float,
        timeout_seconds: Optional[float] = None,
    ) -> WorkloadResult:
        """Drive ``handler`` with Poisson arrivals and measure.

        ``offered_rps`` is in production requests/s; the generator
        issues ``offered_rps / batch`` simulated arrivals per second.

        When the run config carries a resilience policy, every request
        goes through the :class:`~repro.faults.resilience.ServiceClient`
        pipeline; when it carries a fault schedule, the injector starts
        before warmup so fault onsets (fractions of the measurement
        window) land deterministically.

        With ``config.early_stop`` set (and no fault schedule), a
        :class:`ConvergenceMonitor` watches completions during the
        measurement window and ends the run at the first converged
        window boundary; throughput and goodput then normalize by the
        simulated seconds actually measured.  Without early stop the
        measured span equals ``measure_seconds`` exactly and reports
        are byte-identical to the fixed-window path.
        """
        generator = OpenLoopGenerator(
            env=self.env,
            rate_rps=offered_rps / self.config.batch,
            handler=self._wrap_handler(handler),
            recorder=self.recorder,
            rng=self.rng.stream("arrivals"),
            timeout_seconds=timeout_seconds,
        )
        if self.injector is not None:
            self.injector.start()
        if self.control is not None:
            # The control plane observes (and sheds) from t=0: a
            # production box reaching the measurement window has
            # already converged on its operating point.
            generator.on_complete = self.control.on_complete
        generator.start()
        self.env.run(until=self.config.warmup_seconds)
        self.recorder.reset()
        self.scheduler.stats.reset(self.env.now)
        self.resilience_stats.reset()
        if self.control is not None:
            # Counters restart at the warmup edge; controller *state*
            # (drop probability, relief steps, in-flight) carries over.
            self.control.reset_measurement()
        self.env.process(self._sampler())
        completed_before = generator.completed
        monitor = None
        if (
            self.config.early_stop
            and self.injector is None
            and self.control is None
        ):
            # Armed only for the measurement window: warmup completions
            # must not seed the convergence windows.  Control-plane runs
            # never arm it — shedding makes their windows deliberately
            # non-stationary, exactly like fault runs.
            monitor = ConvergenceMonitor(self.env)
            generator.on_complete = monitor.on_complete
        measure_start = self.env.now
        self.env.run(until=self.config.warmup_seconds + self.config.measure_seconds)
        # Subtract clocks only when the run actually stopped early: the
        # full window is ``measure_seconds`` *by definition*, and the
        # float round-trip (warmup + measure) - warmup would perturb
        # throughput in its last bits and break byte-identical reports.
        if monitor is not None and monitor.converged_at is not None:
            measured_seconds = self.env.now - measure_start
        else:
            measured_seconds = self.config.measure_seconds
        completed = generator.completed - completed_before
        result = self._assemble(completed, measured_seconds)
        self._attach_fault_metrics(result, measured_seconds)
        if monitor is not None:
            result.extra["measured_seconds"] = measured_seconds
            result.extra["early_stopped"] = (
                1.0 if monitor.converged_at is not None else 0.0
            )
            result.extra["convergence_windows"] = float(monitor.windows_closed)
        if self.config.shard_index >= 0:
            # Shard sub-runs ship their full recorder state (sorted
            # samples or HDR buckets) so the parent merge computes the
            # union-stream percentiles exactly, instead of averaging
            # per-shard summaries.
            result.extra["shard_latency"] = self.recorder.mergeable_state()
        return result

    def _wrap_handler(self, handler: Handler) -> Handler:
        """Route requests through resilience + SLO-control pipelines.

        The control wrapper is outermost: shed/refused requests fail at
        admission, before the resilience client would spend retries (or
        any service work) on them.
        """
        client = self.client
        if client is not None:
            inner = handler

            def resilient_handler(request: Request) -> Generator:
                yield from client.call(lambda: inner(request))

            handler = resilient_handler
        if self.control is not None:
            handler = self.control.wrap_handler(handler)
        return handler

    @property
    def slo_tracker(self) -> Optional[WindowedSloTracker]:
        """The control plane's windowed tracker, when the run has one.

        Workloads use this to fold extra signals into the SLO windows —
        StorageBench attributes block-device write-stall time here so
        stalls land in the SLO accounting, not just the iostat section.
        """
        return self.control.tracker if self.control is not None else None

    def register_instance_set(self, instances: "InstanceSet") -> None:
        """Size the admission controller to an InstanceSet's instances."""
        if self.control is not None:
            self.control.admission.set_instances(instances.num_instances)

    def _attach_fault_metrics(
        self, result: WorkloadResult, elapsed: Optional[float] = None
    ) -> None:
        """Surface resilience/fault counters in ``result.extra``."""
        if elapsed is None:
            elapsed = self.config.measure_seconds
        if self.client is not None:
            stats = self.resilience_stats
            result.extra.update(stats.as_extra())
            result.extra["resilience_goodput_rps"] = (
                stats.successes * self.config.batch / elapsed
            )
            slo = self.client.policy.slo_latency_s
            result.extra["resilience_slo_latency_s"] = slo
            result.extra["resilience_slo_compliance"] = self.recorder.fraction_below(
                slo
            )
        if self.injector is not None:
            result.extra["fault_events_applied"] = float(
                self.injector.events_applied
            )
        if self.control is not None:
            result.extra.update(
                self.control.as_extra(self.config.batch, elapsed)
            )

    def _sampler(self) -> Generator:
        """Record (time, utilization) samples during measurement."""
        cores = self.sku.cpu.logical_cores
        previous_busy = self.scheduler.stats.busy_seconds
        while True:
            yield self.env.sleep(self.SAMPLE_PERIOD_S)
            busy = self.scheduler.stats.busy_seconds
            window_util = min(
                1.0, (busy - previous_busy) / (self.SAMPLE_PERIOD_S * cores)
            )
            previous_busy = busy
            self.timeline.append((self.env.now, window_util))

    def _assemble(
        self, completed_requests: int, elapsed: Optional[float] = None
    ) -> WorkloadResult:
        if elapsed is None:
            elapsed = self.config.measure_seconds
        cores = self.sku.cpu.logical_cores
        stats = self.scheduler.stats
        cpu_util = stats.cpu_util(self.env.now, cores)
        kernel_util = stats.kernel_util(self.env.now, cores)
        busy = max(stats.busy_seconds, 1e-12)
        efficiency = max(0.05, 1.0 - stats.overhead_seconds / busy)
        throughput = completed_requests * self.config.batch / elapsed
        steady = self.server.steady_state(cpu_util, efficiency)
        return WorkloadResult(
            timeline=list(self.timeline),
            workload=self.chars.name,
            sku=self.sku.name,
            kernel=self.kernel.version,
            throughput_rps=throughput,
            latency=self.recorder.summary(),
            cpu_util=cpu_util,
            kernel_util=kernel_util,
            scaling_efficiency=efficiency,
            steady=steady,
        )


class InstanceSet:
    """Multi-instance deployment with per-instance serialized sections.

    DCPerf spawns multiple benchmark instances on many-core machines to
    model production multi-tenancy (Section 2.2).  Each instance still
    has a serialized slice per request — allocator locks, GC, the
    master process — and, critically, that slice is *memory-latency
    bound*: it runs at a rate set by frequency and DRAM latency, not by
    the core's IPC improvements.  Wider/smarter cores therefore shrink
    the parallel part of a request but not the serial part, which is
    one reason production web workloads gain less from new many-core
    SKUs than SPEC suggests (Figures 2/3).
    """

    #: Logical cores served by one instance (production sizing).
    CORES_PER_INSTANCE = 36

    def __init__(self, harness: "BenchmarkHarness") -> None:
        self.harness = harness
        logical = harness.sku.cpu.logical_cores
        self.num_instances = max(
            1, -(-logical // self.CORES_PER_INSTANCE)  # ceil division
        )
        self._locks = [
            Resource(harness.env, capacity=1) for _ in range(self.num_instances)
        ]
        self._next = 0
        # The SLO control plane's admission controller caps in-flight
        # work per instance; tell it how many instances exist.
        harness.register_instance_set(self)

    def pick(self) -> int:
        """Round-robin instance assignment for a new request."""
        index = self._next
        # Wrap at increment so the counter stays bounded over
        # arbitrarily long simulations instead of growing without limit.
        self._next = (self._next + 1) % self.num_instances
        return index

    def serial_seconds(self, instructions: float) -> float:
        """Duration of a serialized slice: latency-bound, IPC-blind."""
        freq_hz = self.harness.server.effective_freq_ghz * 1e9
        return instructions / freq_hz * self.harness.config.batch

    def serial_section(self, instance: int, instructions: float):
        """Run a serialized slice under the instance's lock (generator)."""
        lock = self._locks[instance]
        grant = lock.request()
        try:
            yield grant
        except BaseException:
            # Abandoned while queued for (or just granted) the lock:
            # release so the slot cannot leak.
            lock.release(grant)
            raise
        try:
            seconds = self.serial_seconds(instructions)
            kf = self.harness.chars.kernel_frac
            yield from self.harness.scheduler.execute(
                seconds * (1.0 - kf), seconds * kf,
                dispatches=self.harness.config.batch,
            )
        finally:
            lock.release(grant)


def poisson_thinning_rng(config: RunConfig, name: str) -> random.Random:
    """Convenience: a named deterministic stream for a workload."""
    return RngStreams(config.seed).spawn(name).stream("main")
