"""Workload models: the six DCPerf benchmarks, their production
counterparts, SPEC CPU 2006/2017, and CloudSuite comparators.

Each workload couples a calibrated characteristics vector (what the
PMU would see) with an event-level concurrency model (how the software
is built: thread pools, processes, fanout, cache hit/miss paths) and
runs on a simulated server (:mod:`repro.workloads.runner`).
"""

from repro.workloads.base import RunConfig, Workload, WorkloadResult
from repro.workloads.profiles import (
    BENCHMARK_PROFILES,
    BENCHMARK_TO_PRODUCTION,
    PRODUCTION_PROFILES,
    SPEC2017_PROFILES,
    get_profile,
)
from repro.workloads.registry import (
    dcperf_benchmarks,
    get_workload,
    production_counterparts,
)

__all__ = [
    "RunConfig",
    "Workload",
    "WorkloadResult",
    "BENCHMARK_PROFILES",
    "PRODUCTION_PROFILES",
    "SPEC2017_PROFILES",
    "BENCHMARK_TO_PRODUCTION",
    "get_profile",
    "get_workload",
    "dcperf_benchmarks",
    "production_counterparts",
]
