"""Production-counterpart workloads.

Each DCPerf benchmark models a production workload ("Cache (prod)",
"Ranking (prod)", ...).  The counterpart runs the *same concurrency
structure* as its benchmark but with the production-calibrated
characteristics vector — the production codebase is orders of magnitude
larger, its datasets bigger, and its platform busier, all of which the
calibrated vectors capture.  Figures 4-12 compare these pairs; Figure 2
aggregates the counterparts into the "Production" line.
"""

from __future__ import annotations

from typing import Dict

from repro.workloads.base import Workload
from repro.workloads.profiles import BENCHMARK_TO_PRODUCTION, PRODUCTION_PROFILES


def production_workload(benchmark_name: str) -> Workload:
    """The production counterpart of a DCPerf benchmark.

    Returns a workload instance running the benchmark's structure with
    the production profile; its ``name`` is the production workload's
    (e.g. ``cache-prod``).
    """
    try:
        prod_name = BENCHMARK_TO_PRODUCTION[benchmark_name]
    except KeyError:
        known = ", ".join(sorted(BENCHMARK_TO_PRODUCTION))
        raise KeyError(
            f"no production counterpart for {benchmark_name!r}; known: {known}"
        ) from None
    chars = PRODUCTION_PROFILES[prod_name]

    if benchmark_name == "taobench":
        from repro.workloads.taobench import TaoBench

        return TaoBench(chars=chars)
    if benchmark_name == "feedsim":
        from repro.workloads.feedsim import FeedSim

        return FeedSim(chars=chars)
    if benchmark_name == "djangobench":
        from repro.workloads.djangobench import DjangoBench

        return DjangoBench(chars=chars)
    if benchmark_name == "mediawiki":
        from repro.workloads.mediawiki import MediaWiki

        return MediaWiki(chars=chars)
    if benchmark_name == "sparkbench":
        from repro.workloads.sparkbench import SparkBench

        return SparkBench(chars=chars)
    if benchmark_name == "videotranscode":
        from repro.workloads.videotranscode import VideoTranscodeBench

        return VideoTranscodeBench(chars=chars)
    if benchmark_name == "storagebench":
        from repro.workloads.storagebench import StorageBench

        return StorageBench(chars=chars)
    raise KeyError(f"unhandled benchmark {benchmark_name!r}")


def production_profile_names() -> Dict[str, str]:
    """benchmark name -> production profile name."""
    return dict(BENCHMARK_TO_PRODUCTION)
