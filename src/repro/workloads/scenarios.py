"""Operational scenarios: the region-failover load spike (Section 2.3).

"This situation typically arises when some servers must handle a load
spike due to another datacenter region failing entirely."  Budgeted
power — the quantity datacenters actually reserve — is defined by this
scenario, not by TDP.  The scenario runner executes a workload at its
normal operating point and again at the post-failover load, and reports
what procurement needs: the spike's power draw (is it within budget?)
and its SLO behaviour (does the service survive?).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hw.tco import budgeted_power_w
from repro.workloads.base import RunConfig, Workload, WorkloadResult


@dataclass(frozen=True)
class SpikeOutcome:
    """Results of the normal vs failover-spike comparison."""

    workload: str
    sku: str
    normal: WorkloadResult
    spiked: WorkloadResult
    spike_multiplier: float
    budgeted_power_w: float

    @property
    def power_headroom_w(self) -> float:
        """Budgeted power minus the spike's draw (negative = violation)."""
        return self.budgeted_power_w - self.spiked.power_watts

    @property
    def within_power_budget(self) -> bool:
        return self.power_headroom_w >= 0.0

    @property
    def throughput_gain(self) -> float:
        """How much extra traffic the spike actually served."""
        if self.normal.throughput_rps <= 0:
            return 0.0
        return self.spiked.throughput_rps / self.normal.throughput_rps - 1.0

    @property
    def latency_inflation(self) -> float:
        """p95 inflation under the spike (uses whatever p95 both report)."""
        normal_p95 = self.normal.latency.get("p95")
        spiked_p95 = self.spiked.latency.get("p95")
        if not normal_p95 or not spiked_p95:
            return 0.0
        return spiked_p95 / normal_p95 - 1.0


def run_failover_spike(
    workload: Workload,
    config: Optional[RunConfig] = None,
    regions: int = 3,
    spike_fraction: float = 0.95,
) -> SpikeOutcome:
    """Run the normal and post-failover operating points.

    With ``regions`` regions sharing traffic evenly, losing one region
    multiplies every survivor's load by ``regions / (regions - 1)``.
    """
    if regions < 2:
        raise ValueError("need at least 2 regions for a failover scenario")
    config = config or RunConfig()
    spike_multiplier = regions / (regions - 1)

    normal = workload.run(config)
    spiked_config = RunConfig(
        sku_name=config.sku_name,
        kernel_version=config.kernel_version,
        seed=config.seed,
        warmup_seconds=config.warmup_seconds,
        measure_seconds=config.measure_seconds,
        load_scale=config.load_scale * spike_multiplier,
        batch=config.batch,
    )
    spiked = workload.run(spiked_config)
    return SpikeOutcome(
        workload=workload.name,
        sku=config.sku_name,
        normal=normal,
        spiked=spiked,
        spike_multiplier=spike_multiplier,
        budgeted_power_w=budgeted_power_w(
            config.sku.designed_power_w, spike_fraction
        ),
    )
