"""Operational scenarios: failover spikes and named fault scenarios.

Region-failover load spike (Section 2.3):

"This situation typically arises when some servers must handle a load
spike due to another datacenter region failing entirely."  Budgeted
power — the quantity datacenters actually reserve — is defined by this
scenario, not by TDP.  The scenario runner executes a workload at its
normal operating point and again at the post-failover load, and reports
what procurement needs: the spike's power draw (is it within budget?)
and its SLO behaviour (does the service survive?).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.faults.control import DISABLED_CONTROL, SloControlPolicy
from repro.faults.resilience import ResiliencePolicy
from repro.faults.schedule import EMPTY_SCHEDULE, FaultSchedule, FaultSpec
from repro.hw.tco import budgeted_power_w
from repro.workloads.base import RunConfig, Workload, WorkloadResult


@dataclass(frozen=True)
class SpikeOutcome:
    """Results of the normal vs failover-spike comparison."""

    workload: str
    sku: str
    normal: WorkloadResult
    spiked: WorkloadResult
    spike_multiplier: float
    budgeted_power_w: float

    @property
    def power_headroom_w(self) -> float:
        """Budgeted power minus the spike's draw (negative = violation)."""
        return self.budgeted_power_w - self.spiked.power_watts

    @property
    def within_power_budget(self) -> bool:
        return self.power_headroom_w >= 0.0

    @property
    def throughput_gain(self) -> float:
        """How much extra traffic the spike actually served."""
        if self.normal.throughput_rps <= 0:
            return 0.0
        return self.spiked.throughput_rps / self.normal.throughput_rps - 1.0

    @property
    def latency_inflation(self) -> float:
        """p95 inflation under the spike (uses whatever p95 both report)."""
        normal_p95 = self.normal.latency.get("p95")
        spiked_p95 = self.spiked.latency.get("p95")
        if not normal_p95 or not spiked_p95:
            return 0.0
        return spiked_p95 / normal_p95 - 1.0


def run_failover_spike(
    workload: Workload,
    config: Optional[RunConfig] = None,
    regions: int = 3,
    spike_fraction: float = 0.95,
) -> SpikeOutcome:
    """Run the normal and post-failover operating points.

    With ``regions`` regions sharing traffic evenly, losing one region
    multiplies every survivor's load by ``regions / (regions - 1)``.
    """
    if regions < 2:
        raise ValueError("need at least 2 regions for a failover scenario")
    config = config or RunConfig()
    spike_multiplier = regions / (regions - 1)

    normal = workload.run(config)
    spiked_config = dataclasses.replace(
        config, load_scale=config.load_scale * spike_multiplier
    )
    spiked = workload.run(spiked_config)
    return SpikeOutcome(
        workload=workload.name,
        sku=config.sku_name,
        normal=normal,
        spiked=spiked,
        spike_multiplier=spike_multiplier,
        budgeted_power_w=budgeted_power_w(
            config.sku.designed_power_w, spike_fraction
        ),
    )


# --- Named fault scenarios ----------------------------------------------------


@dataclass(frozen=True)
class FaultScenario:
    """A named fault schedule + resilience policy + SLO control policy.

    Scenarios are the user-facing handle for fault injection: a name on
    the CLI (``--faults brownout``) resolves here, travels on
    :class:`~repro.exec.spec.RunPoint` as a string, and is digested
    into the run fingerprint via the registry below — renaming or
    re-tuning a scenario invalidates cached results, exactly as a code
    change would.

    ``control`` opts the scenario into the in-run SLO control plane
    (windowed tracking + shedding/admission/brownout behaviors);
    ``load_multiplier`` scales the run's offered load, letting pure
    overload scenarios exist without any hardware fault at all.
    """

    name: str
    description: str
    schedule: FaultSchedule
    policy: ResiliencePolicy
    control: SloControlPolicy = DISABLED_CONTROL
    load_multiplier: float = 1.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "description": self.description,
            "schedule": self.schedule.as_dict(),
            "policy": self.policy.as_dict(),
            "control": self.control.as_dict(),
            "load_multiplier": self.load_multiplier,
        }


#: Scenario registry.  Onsets/durations are fractions of the
#: measurement window, so scenarios are meaningful at any
#: ``measure_seconds``.
FAULT_SCENARIOS: Dict[str, FaultScenario] = {
    scenario.name: scenario
    for scenario in (
        FaultScenario(
            name="brownout",
            description=(
                "Thermal brownout: the clock loses 35% for half the "
                "window while a co-tenant leans on the memory subsystem."
            ),
            schedule=FaultSchedule.of(
                FaultSpec("freq_throttle", 0.20, 0.50, 0.35),
                FaultSpec("mem_pressure", 0.40, 0.40, 0.50),
            ),
            policy=ResiliencePolicy(
                deadline_s=0.5,
                max_retries=1,
                hedge_delay_s=0.0,
                slo_latency_s=0.1,
            ),
        ),
        FaultScenario(
            name="blackout",
            description=(
                "Crash-restart: the server refuses work for 15% of the "
                "window; clients ride it out with retries and a breaker."
            ),
            schedule=FaultSchedule.of(
                FaultSpec("server_crash", 0.30, 0.15),
            ),
            policy=ResiliencePolicy(
                deadline_s=0.5,
                max_retries=3,
                backoff_base_s=0.01,
                breaker_failure_threshold=20,
                breaker_reset_s=0.1,
                slo_latency_s=0.1,
            ),
        ),
        FaultScenario(
            name="flaky_network",
            description=(
                "Lossy, slow network: 2ms extra latency and 5% attempt "
                "loss for most of the window; hedging covers the tail."
            ),
            schedule=FaultSchedule.of(
                FaultSpec("net_latency", 0.20, 0.70, 0.002),
                FaultSpec("net_loss", 0.20, 0.70, 0.05),
            ),
            policy=ResiliencePolicy(
                deadline_s=0.5,
                max_retries=2,
                hedge_delay_s=0.02,
                slo_latency_s=0.1,
            ),
        ),
        FaultScenario(
            name="disk_degraded",
            description=(
                "Degraded flash: block-device service times inflate 4x "
                "for most of the window — compaction backlogs, the "
                "block cache stops absorbing misses, and write stalls "
                "surface in foreground p99."
            ),
            schedule=FaultSchedule.of(
                FaultSpec("disk_degraded", 0.20, 0.60, 4.0),
            ),
            policy=ResiliencePolicy(
                deadline_s=0.5,
                max_retries=1,
                slo_latency_s=0.1,
            ),
        ),
        FaultScenario(
            name="brownout_degraded_disk",
            description=(
                "Compound brownout: a 30% clock throttle overlaps a "
                "3x-degraded flash device and memory pressure; the "
                "control plane sheds load and browns out serving "
                "quality until the SLO recovers."
            ),
            schedule=FaultSchedule.of(
                FaultSpec("freq_throttle", 0.15, 0.55, 0.30),
                FaultSpec("disk_degraded", 0.25, 0.50, 3.0),
                FaultSpec("mem_pressure", 0.35, 0.40, 0.40),
            ),
            policy=ResiliencePolicy(
                deadline_s=0.5,
                max_retries=1,
                slo_latency_s=0.1,
            ),
            control=SloControlPolicy(
                window_completions=100,
                slo_latency_s=0.1,
                shed_enabled=True,
                shed_percentile=95.0,
                shed_target_latency_s=0.1,
                shed_interval_windows=2,
                shed_step=0.1,
                shed_decay=0.5,
                brownout_enabled=True,
                brownout_relief=0.25,
                brownout_trigger_windows=2,
                brownout_recover_windows=2,
                brownout_max_steps=2,
            ),
        ),
        FaultScenario(
            name="flaky_network_compaction",
            description=(
                "Lossy, slow network while storage compactions back up "
                "on a 4x-degraded device; per-instance admission caps "
                "bound in-flight work and device stall time lands in "
                "the SLO accounting, not just the iostat section."
            ),
            schedule=FaultSchedule.of(
                FaultSpec("net_latency", 0.15, 0.65, 0.002),
                FaultSpec("net_loss", 0.20, 0.55, 0.05),
                FaultSpec("disk_degraded", 0.30, 0.55, 4.0),
            ),
            policy=ResiliencePolicy(
                deadline_s=0.5,
                max_retries=2,
                hedge_delay_s=0.02,
                slo_latency_s=0.1,
            ),
            control=SloControlPolicy(
                window_completions=100,
                slo_latency_s=0.1,
                shed_enabled=True,
                shed_percentile=95.0,
                shed_target_latency_s=0.1,
                shed_interval_windows=2,
                shed_step=0.08,
                shed_decay=0.5,
                admit_enabled=True,
                admit_max_inflight_per_instance=96,
            ),
        ),
        FaultScenario(
            name="overload_shed",
            description=(
                "Pure overload: offered load doubles (a failed "
                "region's traffic) with no hardware fault; the "
                "CoDel-style shedder drops just enough at admission "
                "to keep admitted requests inside the SLO."
            ),
            schedule=EMPTY_SCHEDULE,
            policy=ResiliencePolicy(
                deadline_s=0.5,
                max_retries=0,
                slo_latency_s=0.1,
            ),
            load_multiplier=2.0,
            control=SloControlPolicy(
                window_completions=100,
                slo_latency_s=0.1,
                shed_enabled=True,
                shed_percentile=95.0,
                shed_target_latency_s=0.08,
                shed_interval_windows=1,
                shed_step=0.15,
                shed_decay=0.7,
                shed_max_fraction=0.95,
                shed_error_rate_threshold=0.15,
            ),
        ),
        FaultScenario(
            name="noisy_neighbor",
            description=(
                "Co-tenant interference: a 1.6x slowdown through the "
                "middle of the window plus a cache flush at its center."
            ),
            schedule=FaultSchedule.of(
                FaultSpec("server_slowdown", 0.25, 0.50, 1.6),
                FaultSpec("cache_flush", 0.50, 0.20, 0.40),
            ),
            policy=ResiliencePolicy(
                deadline_s=0.5,
                max_retries=1,
                slo_latency_s=0.1,
            ),
        ),
    )
}


def fault_scenario_names() -> Tuple[str, ...]:
    """Registered scenario names, sorted for stable CLI help/digests."""
    return tuple(sorted(FAULT_SCENARIOS))


def get_fault_scenario(name: str) -> FaultScenario:
    """Look up a scenario by name, with a helpful error."""
    try:
        return FAULT_SCENARIOS[name]
    except KeyError:
        known = ", ".join(fault_scenario_names())
        raise KeyError(
            f"unknown fault scenario {name!r}; known scenarios: {known}"
        ) from None


def apply_fault_scenario(config: RunConfig, name: str) -> RunConfig:
    """Return ``config`` with the named scenario fully applied.

    Applies the fault schedule, the client resilience policy, the SLO
    control policy, and the scenario's load multiplier (compounding
    with any ``load_scale`` already on the config).
    """
    scenario = get_fault_scenario(name)
    return dataclasses.replace(
        config,
        faults=scenario.schedule,
        resilience=scenario.policy,
        slo_control=scenario.control,
        load_scale=config.load_scale * scenario.load_multiplier,
        fault_scenario=scenario.name,
    )
